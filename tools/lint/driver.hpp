// Lint driver: collects files, runs the rule set, applies suppression
// comments, and renders reports (human text via format_text, machine JSON via
// report_to_json — the same src/obs/json model the stats layer emits, so
// downstream tooling parses one dialect).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "rules.hpp"

namespace csrlmrm::lint {

struct LintOptions {
  /// When non-empty, only rules whose name appears here run.
  std::vector<std::string> rule_filter;
};

struct LintReport {
  std::vector<Diagnostic> diagnostics;  // unsuppressed, in file/line order
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;  // matches silenced by lint:allow comments
  std::vector<std::string> errors;  // unreadable paths etc.

  bool clean() const { return diagnostics.empty() && errors.empty(); }
};

/// Lints one in-memory buffer under a virtual path (unit tests, stdin).
LintReport lint_source(std::string virtual_path, std::string source,
                       const LintOptions& options = {});

/// Lints files and directory trees. Directories are walked recursively for
/// .cpp/.hpp/.h, skipping build trees, VCS dirs, and `lint_fixtures` corpora
/// (which contain intentional violations).
LintReport lint_paths(const std::vector<std::string>& paths,
                      const LintOptions& options = {});

/// JSON schema: {tool, version, files_scanned, suppressed, clean,
/// diagnostics: [{rule, file, line, column, message}], errors: [...]}.
obs::JsonValue report_to_json(const LintReport& report);

/// One "file:line:col: [rule] message" line per diagnostic plus a summary.
std::string format_text(const LintReport& report);

}  // namespace csrlmrm::lint

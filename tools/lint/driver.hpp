// Lint driver: collects files, runs the rule set, applies suppression
// comments, and renders reports (human text via format_text, machine JSON via
// report_to_json — the same src/obs/json model the stats layer emits, so
// downstream tooling parses one dialect; SARIF via sarif.hpp).
//
// v2: files are scanned in parallel through src/parallel's deterministic
// chunk layout with results merged in sorted-path order — the report is
// byte-identical at every thread count. An optional incremental cache
// (cache.hpp) keyed by content hash skips unchanged files on warm runs, and
// --fix applies the mechanical autofix edits in place.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "rules.hpp"

namespace csrlmrm::lint {

struct LintOptions {
  /// When non-empty, only rules whose name appears here run.
  std::vector<std::string> rule_filter;
  /// Worker threads for the file scan; 0 = the process default
  /// (CSRLMRM_THREADS / hardware concurrency), 1 = serial. Output is
  /// identical at every setting.
  unsigned threads = 1;
  /// Path of the incremental cache file; empty disables caching. The cache
  /// self-invalidates on rule-set version or rule-filter changes.
  std::string cache_path;
  /// Apply mechanical autofixes in place (endl, pragma-once). Files are
  /// re-linted after fixing so the report reflects the fixed text. Fix runs
  /// bypass the incremental cache.
  bool fix = false;
};

struct LintReport {
  std::vector<Diagnostic> diagnostics;  // unsuppressed, in file/line order
  std::size_t files_scanned = 0;  // files actually analyzed this run
  std::size_t files_cached = 0;   // files satisfied from the incremental cache
  std::size_t suppressed = 0;  // matches silenced by lint:allow comments
  std::size_t fixes_applied = 0;  // autofix edits written by --fix
  std::vector<std::string> errors;  // unreadable paths etc.

  bool clean() const { return diagnostics.empty() && errors.empty(); }
};

/// Lints one in-memory buffer under a virtual path (unit tests, stdin).
LintReport lint_source(std::string virtual_path, std::string source,
                       const LintOptions& options = {});

/// Lints one in-memory buffer with a companion header, as the tree scan does
/// for a .cpp with a sibling .hpp: the header's member declarations and
/// guarded_by annotations feed the source's IR.
LintReport lint_source_with_companion(std::string virtual_path, std::string source,
                                      std::string companion_path, std::string companion,
                                      const LintOptions& options = {});

/// Lints files and directory trees. Directories are walked recursively for
/// .cpp/.hpp/.h, skipping build trees, VCS dirs, and `lint_fixtures` corpora
/// (which contain intentional violations). A scanned .cpp/.cc/.cxx picks up
/// its sibling .hpp/.h as companion header automatically.
LintReport lint_paths(const std::vector<std::string>& paths,
                      const LintOptions& options = {});

/// JSON schema: {tool, version, files_scanned, files_cached, suppressed,
/// fixes_applied, clean, diagnostics: [{rule, file, line, column, message}],
/// errors: [...]}.
obs::JsonValue report_to_json(const LintReport& report);

/// One "file:line:col: [rule] message" line per diagnostic plus a summary.
std::string format_text(const LintReport& report);

}  // namespace csrlmrm::lint

#include "context.hpp"

#include <algorithm>
#include <array>

#include "ir.hpp"

namespace csrlmrm::lint {

namespace {

// Control keywords that can precede a parenthesized clause + `{` without
// being a function name.
bool is_control_keyword(std::string_view word) {
  static constexpr std::array<std::string_view, 8> kWords = {
      "if", "for", "while", "switch", "catch", "return", "do", "else"};
  return std::find(kWords.begin(), kWords.end(), word) != kWords.end();
}

// Tokens that may sit between a function's closing `)` and its `{`.
bool is_decl_tail(std::string_view word) {
  static constexpr std::array<std::string_view, 7> kWords = {
      "const", "noexcept", "override", "final", "mutable", "volatile", "&&"};
  return std::find(kWords.begin(), kWords.end(), word) != kWords.end() || word == "&";
}

}  // namespace

FileContext::FileContext(LexedFile file) : file_(std::move(file)) { init(); }

FileContext::FileContext(LexedFile file, LexedFile companion_header)
    : file_(std::move(file)),
      companion_(std::make_unique<FileContext>(std::move(companion_header))) {
  init();
}

FileContext::~FileContext() = default;
FileContext::FileContext(FileContext&&) noexcept = default;
FileContext& FileContext::operator=(FileContext&&) noexcept = default;

void FileContext::init() {
  classify_path();
  scan_suppressions();
  scan_functions();
  scan_unordered_declarations();
  ir_ = std::make_shared<const FileIr>(build_file_ir(*this, companion_.get()));
}

void FileContext::classify_path() {
  const std::string& p = file_.path;
  is_header_ = p.ends_with(".hpp") || p.ends_with(".h");

  auto segment_after = [&p](std::string_view dir) -> std::string {
    const std::string needle = "/" + std::string(dir) + "/";
    std::size_t at = p.find(needle);
    if (at == std::string::npos) {
      if (p.rfind(std::string(dir) + "/", 0) == 0) {
        at = 0;
      } else {
        return {};
      }
    } else {
      at += 1;  // skip the leading '/'
    }
    const std::size_t rest = at + dir.size() + 1;
    const std::size_t slash = p.find('/', rest);
    if (slash == std::string::npos) return {};
    return p.substr(rest, slash - rest);
  };

  struct TreeName {
    std::string_view dir;
    Tree tree;
  };
  static constexpr std::array<TreeName, 5> kTrees = {{{"src", Tree::kSrc},
                                                      {"tests", Tree::kTests},
                                                      {"bench", Tree::kBench},
                                                      {"examples", Tree::kExamples},
                                                      {"tools", Tree::kTools}}};
  for (const auto& [dir, tree] : kTrees) {
    const std::string needle = "/" + std::string(dir) + "/";
    if (p.find(needle) != std::string::npos || p.rfind(std::string(dir) + "/", 0) == 0) {
      tree_ = tree;
      if (tree == Tree::kSrc) subsystem_ = segment_after(dir);
      return;
    }
  }
  tree_ = Tree::kOther;
}

bool FileContext::in_hot_path() const {
  static constexpr std::array<std::string_view, 7> kHot = {
      "checker", "numeric", "linalg", "core", "graph", "parallel", "sim"};
  return tree_ == Tree::kSrc &&
         std::find(kHot.begin(), kHot.end(), subsystem_) != kHot.end();
}

void FileContext::scan_suppressions() {
  // Which lines carry code tokens, so a comment-only `lint:allow` line can
  // forward its suppression to the next code line.
  std::set<std::size_t> code_lines;
  for (const Token& t : file_.tokens) code_lines.insert(t.line);

  for (const Comment& c : file_.comments) {
    const std::string_view body = file_.text(c);
    std::size_t at = 0;
    while ((at = body.find("lint:allow", at)) != std::string::npos) {
      std::size_t cursor = at + std::string_view("lint:allow").size();
      bool file_wide = false;
      if (body.substr(cursor, 5) == "-file") {
        file_wide = true;
        cursor += 5;
      }
      at = cursor;
      if (cursor >= body.size() || body[cursor] != '(') continue;
      const std::size_t close = body.find(')', cursor);
      if (close == std::string::npos) continue;
      std::string_view list = body.substr(cursor + 1, close - cursor - 1);
      at = close;
      // Split on commas, trim spaces.
      while (!list.empty()) {
        const std::size_t comma = list.find(',');
        std::string_view name = list.substr(0, comma);
        list = comma == std::string_view::npos ? std::string_view{} : list.substr(comma + 1);
        const std::size_t b = name.find_first_not_of(" \t");
        const std::size_t e = name.find_last_not_of(" \t");
        if (b == std::string_view::npos) continue;
        name = name.substr(b, e - b + 1);
        if (file_wide) {
          file_allows_.insert(std::string(name));
        } else if (c.owns_line && !code_lines.count(c.line)) {
          // Comment stands alone: the allowance targets the next code line,
          // skipping any further comment-only lines of the justification.
          const auto next = code_lines.upper_bound(c.end_line);
          if (next != code_lines.end()) line_allows_.insert({*next, std::string(name)});
        } else {
          line_allows_.insert({c.line, std::string(name)});
        }
      }
    }
  }
}

bool FileContext::suppressed(std::string_view rule, std::size_t line) const {
  if (file_allows_.count(rule) || file_allows_.count("all")) return true;
  return line_allows_.count({line, std::string(rule)}) ||
         line_allows_.count({line, "all"});
}

// Recovers function definition spans by brace matching. When a `{` opens, we
// look backwards: skip declaration-tail tokens (`const`, `noexcept`, a
// trailing `-> Type`), then require a balanced `(...)` parameter list, then
// take the identifier before its `(` as the function name — unless it is a
// control keyword. Lambdas and expression braces get anonymous spans. This is
// a heuristic: good enough to scope rules like the approx_* exemption, not a
// parser.
void FileContext::scan_functions() {
  const auto& toks = file_.tokens;
  std::vector<std::pair<std::string, std::size_t>> stack;  // (name, open index)

  auto name_before_brace = [&](std::size_t brace) -> std::string {
    if (brace == 0) return {};
    std::size_t i = brace - 1;
    // Skip a trailing return type: scan back to `->` within a small window.
    for (std::size_t back = 0; back < 4 && i > 0; ++back) {
      if (toks[i].kind == TokenKind::kPunct && file_.text(toks[i]) == ">") break;  // template tail
      if (toks[i].kind == TokenKind::kPunct && file_.text(toks[i]) == "->") {
        if (i == 0) return {};
        i = i - 1;
        break;
      }
      if (toks[i].kind == TokenKind::kIdentifier || file_.text(toks[i]) == "::" ||
          file_.text(toks[i]) == "*" || file_.text(toks[i]) == "&") {
        if (i == 0) return {};
        --i;
        continue;
      }
      break;
    }
    // Skip declaration-tail keywords and ref-qualifiers.
    while (i > 0 && toks[i].kind == TokenKind::kIdentifier && is_decl_tail(file_.text(toks[i]))) {
      --i;
    }
    while (i > 0 && toks[i].kind == TokenKind::kPunct &&
           (file_.text(toks[i]) == "&" || file_.text(toks[i]) == "&&")) {
      --i;
    }
    if (toks[i].kind != TokenKind::kPunct || file_.text(toks[i]) != ")") return {};
    // Match the parameter list backwards.
    int depth = 0;
    while (true) {
      const std::string_view t = file_.text(toks[i]);
      if (toks[i].kind == TokenKind::kPunct && t == ")") ++depth;
      if (toks[i].kind == TokenKind::kPunct && t == "(") {
        --depth;
        if (depth == 0) break;
      }
      if (i == 0) return {};
      --i;
    }
    if (i == 0) return {};
    const Token& prev = toks[i - 1];
    if (prev.kind != TokenKind::kIdentifier) return {};
    const std::string_view word = file_.text(prev);
    if (is_control_keyword(word)) return {};
    return std::string(word);
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    const std::string_view t = file_.text(toks[i]);
    if (t == "{") {
      stack.emplace_back(name_before_brace(i), i);
    } else if (t == "}" && !stack.empty()) {
      auto [name, open] = std::move(stack.back());
      stack.pop_back();
      if (!name.empty()) functions_.push_back({std::move(name), open, i});
    }
  }
  // Unclosed spans (truncated file) are dropped: rules fall back to
  // file-level scoping.
  std::sort(functions_.begin(), functions_.end(),
            [](const FunctionSpan& a, const FunctionSpan& b) { return a.open_brace < b.open_brace; });
}

std::vector<std::string> FileContext::enclosing_functions(std::size_t tok_index) const {
  std::vector<std::string> names;
  for (const FunctionSpan& f : functions_) {
    if (f.open_brace <= tok_index && tok_index <= f.close_brace) names.push_back(f.name);
  }
  return names;
}

bool FileContext::in_approved_helper(std::size_t tok_index) const {
  for (const FunctionSpan& f : functions_) {
    if (f.open_brace <= tok_index && tok_index <= f.close_brace &&
        (f.name.rfind("approx_", 0) == 0 || f.name.rfind("exactly_", 0) == 0)) {
      return true;
    }
  }
  return false;
}

// Find `unordered_map<...> name` / `unordered_set<...> name` declarations and
// remember the declared identifiers, so the iteration rule can recognize
// range-fors and begin()/end() calls over them anywhere else in the file.
void FileContext::scan_unordered_declarations() {
  const auto& toks = file_.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    const std::string_view t = file_.text(toks[i]);
    if (t != "unordered_map" && t != "unordered_set" && t != "unordered_multimap" &&
        t != "unordered_multiset") {
      continue;
    }
    std::size_t j = i + 1;
    if (j >= toks.size() || file_.text(toks[j]) != "<") continue;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      const std::string_view w = file_.text(toks[j]);
      if (toks[j].kind != TokenKind::kPunct) continue;
      if (w == "<") ++depth;
      if (w == ">") {
        --depth;
        if (depth == 0) break;
      }
      if (w == ">>") {
        depth -= 2;
        if (depth <= 0) break;
      }
      if (w == ";") break;  // malformed; bail
    }
    if (j >= toks.size()) continue;
    // After the closing '>' expect: [&|*]? identifier followed by ; = { (
    ++j;
    while (j < toks.size() && toks[j].kind == TokenKind::kPunct &&
           (file_.text(toks[j]) == "&" || file_.text(toks[j]) == "*")) {
      ++j;
    }
    if (j + 1 < toks.size() && toks[j].kind == TokenKind::kIdentifier) {
      const std::string_view next = file_.text(toks[j + 1]);
      if (next == ";" || next == "=" || next == "{" || next == "," || next == ")") {
        unordered_names_.insert(std::string(file_.text(toks[j])));
      }
    }
  }
}

}  // namespace csrlmrm::lint

// csrlmrm-lint CLI.
//
//   csrlmrm-lint [--json[=FILE]] [--format=sarif] [--output=FILE]
//                [--rule=NAME ...] [--threads=N] [--cache=FILE] [--fix]
//                [--list-rules] [--quiet] <file-or-directory> ...
//
// Exit codes: 0 = clean, 1 = diagnostics found, 2 = usage or I/O error.
// Directories are walked recursively for C++ sources; build trees and
// tests/lint_fixtures are skipped. `ctest -L lint` runs this binary over
// src/ tests/ bench/ examples/ tools/.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "driver.hpp"
#include "sarif.hpp"

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: csrlmrm-lint [--json[=FILE]] [--format=sarif] [--output=FILE]\n"
         "                    [--rule=NAME ...] [--threads=N] [--cache=FILE] [--fix]\n"
         "                    [--list-rules] [--quiet] <path>...\n"
         "  --json[=FILE]  write the machine-readable report to stdout (or FILE)\n"
         "  --format=FMT   machine output format: json or sarif (SARIF 2.1.0)\n"
         "  --output=FILE  write the --format document to FILE instead of stdout\n"
         "  --rule=NAME    run only rule NAME (repeatable)\n"
         "  --threads=N    scan files with N worker threads (0 = process default;\n"
         "                 output is identical at every thread count)\n"
         "  --cache=FILE   incremental cache: warm reruns skip unchanged files\n"
         "  --fix          apply mechanical autofixes (endl, pragma-once) in place\n"
         "  --list-rules   print the rule catalogue and exit\n"
         "  --quiet        suppress the human-readable diagnostic listing\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csrlmrm::lint;

  bool json = false;
  bool sarif = false;
  bool quiet = false;
  std::string json_file;
  std::string output_file;
  LintOptions options;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--list-rules") {
      for (const auto& rule : make_default_rules()) {
        std::cout << rule->name() << "\n    " << rule->description() << "\n";
      }
      return 0;
    }
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_file = arg.substr(7);
    } else if (arg.rfind("--format=", 0) == 0) {
      const std::string format = arg.substr(9);
      if (format == "json") {
        json = true;
      } else if (format == "sarif") {
        sarif = true;
      } else {
        std::cerr << "csrlmrm-lint: unknown format '" << format
                  << "' (json or sarif)\n";
        return 2;
      }
    } else if (arg.rfind("--output=", 0) == 0) {
      output_file = arg.substr(9);
    } else if (arg.rfind("--rule=", 0) == 0) {
      options.rule_filter.push_back(arg.substr(7));
    } else if (arg.rfind("--threads=", 0) == 0) {
      char* end = nullptr;
      const long value = std::strtol(arg.c_str() + 10, &end, 10);
      if (end == nullptr || *end != '\0' || value < 0) {
        std::cerr << "csrlmrm-lint: bad thread count in '" << arg << "'\n";
        return 2;
      }
      options.threads = static_cast<unsigned>(value);
    } else if (arg.rfind("--cache=", 0) == 0) {
      options.cache_path = arg.substr(8);
    } else if (arg == "--fix") {
      options.fix = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "csrlmrm-lint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "csrlmrm-lint: no paths given\n";
    return usage(std::cerr, 2);
  }

  // Validate --rule names before running: a typo'd rule silently matching
  // nothing would report a false "clean".
  if (!options.rule_filter.empty()) {
    const auto rules = make_default_rules();
    for (const std::string& wanted : options.rule_filter) {
      bool known = false;
      for (const auto& rule : rules) {
        if (rule->name() == wanted) known = true;
      }
      if (!known) {
        std::cerr << "csrlmrm-lint: unknown rule '" << wanted
                  << "' (see --list-rules)\n";
        return 2;
      }
    }
  }

  const LintReport report = lint_paths(paths, options);

  if (!quiet) std::cerr << format_text(report);
  auto emit = [&](const std::string& doc, const std::string& file) -> bool {
    if (file.empty()) {
      std::cout << doc << '\n';
      return true;
    }
    std::ofstream out(file);
    if (!out) {
      std::cerr << "csrlmrm-lint: cannot write '" << file << "'\n";
      return false;
    }
    out << doc << '\n';
    return true;
  };
  if (json) {
    const std::string doc = csrlmrm::obs::write_json(report_to_json(report));
    if (!emit(doc, json_file.empty() ? output_file : json_file)) return 2;
  }
  if (sarif) {
    const std::string doc = csrlmrm::obs::write_json(report_to_sarif(report));
    if (!emit(doc, output_file)) return 2;
  }

  if (!report.errors.empty()) return 2;
  return report.clean() ? 0 : 1;
}

// csrlmrm-lint CLI.
//
//   csrlmrm-lint [--json[=FILE]] [--rule=NAME ...] [--list-rules] [--quiet]
//                <file-or-directory> ...
//
// Exit codes: 0 = clean, 1 = diagnostics found, 2 = usage or I/O error.
// Directories are walked recursively for C++ sources; build trees and
// tests/lint_fixtures are skipped. `ctest -L lint` runs this binary over
// src/ tests/ bench/ examples/ tools/.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "driver.hpp"

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: csrlmrm-lint [--json[=FILE]] [--rule=NAME ...] [--list-rules] "
         "[--quiet] <path>...\n"
         "  --json[=FILE]  write the machine-readable report to stdout (or FILE)\n"
         "  --rule=NAME    run only rule NAME (repeatable)\n"
         "  --list-rules   print the rule catalogue and exit\n"
         "  --quiet        suppress the human-readable diagnostic listing\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csrlmrm::lint;

  bool json = false;
  bool quiet = false;
  std::string json_file;
  LintOptions options;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--list-rules") {
      for (const auto& rule : make_default_rules()) {
        std::cout << rule->name() << "\n    " << rule->description() << "\n";
      }
      return 0;
    }
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_file = arg.substr(7);
    } else if (arg.rfind("--rule=", 0) == 0) {
      options.rule_filter.push_back(arg.substr(7));
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "csrlmrm-lint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "csrlmrm-lint: no paths given\n";
    return usage(std::cerr, 2);
  }

  // Validate --rule names before running: a typo'd rule silently matching
  // nothing would report a false "clean".
  if (!options.rule_filter.empty()) {
    const auto rules = make_default_rules();
    for (const std::string& wanted : options.rule_filter) {
      bool known = false;
      for (const auto& rule : rules) {
        if (rule->name() == wanted) known = true;
      }
      if (!known) {
        std::cerr << "csrlmrm-lint: unknown rule '" << wanted
                  << "' (see --list-rules)\n";
        return 2;
      }
    }
  }

  const LintReport report = lint_paths(paths, options);

  if (!quiet) std::cerr << format_text(report);
  if (json) {
    const std::string doc = csrlmrm::obs::write_json(report_to_json(report));
    if (json_file.empty()) {
      std::cout << doc << '\n';
    } else {
      std::ofstream out(json_file);
      if (!out) {
        std::cerr << "csrlmrm-lint: cannot write '" << json_file << "'\n";
        return 2;
      }
      out << doc << '\n';
    }
  }

  if (!report.errors.empty()) return 2;
  return report.clean() ? 0 : 1;
}

// --fix engine: applies the mechanical FixEdits attached to diagnostics
// (endl -> '\n', missing #pragma once). Pure string-to-string so tests can
// pin idempotency (fix twice == fix once) without touching the filesystem.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "rules.hpp"

namespace csrlmrm::lint {

/// Applies every FixEdit carried by `diagnostics` to `source` and returns
/// the fixed text. Edits are applied back-to-front so earlier offsets stay
/// valid; overlapping edits keep the first (in offset order) and drop the
/// rest. `applied`, when non-null, receives the number of edits applied.
std::string apply_fixes(std::string_view source, const std::vector<Diagnostic>& diagnostics,
                        std::size_t* applied = nullptr);

}  // namespace csrlmrm::lint

#include "lexer.hpp"

#include <cctype>

namespace csrlmrm::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Multi-character punctuation, longest first within each leading character so
// a greedy prefix match implements maximal munch.
constexpr std::string_view kMultiPunct[] = {
    "<<=", ">>=", "...", "->*", "<=>",                            // 3 chars
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",   // 2 chars
    "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    ".*",
};

class Lexer {
 public:
  Lexer(std::string path, std::string source) {
    out_.path = std::move(path);
    out_.source = std::move(source);
  }

  LexedFile run() {
    const std::string& s = out_.source;
    while (pos_ < s.size()) {
      const char c = s[pos_];
      if (c == '\n') {
        ++line_;
        line_start_ = ++pos_;
        line_has_code_ = false;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && pos_ + 1 < s.size() && s[pos_ + 1] == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && pos_ + 1 < s.size() && s[pos_ + 1] == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && !line_has_code_) {
        preprocessor_line();
        continue;
      }
      if (is_ident_start(c)) {
        identifier_or_literal();
        continue;
      }
      if (is_digit(c) || (c == '.' && pos_ + 1 < s.size() && is_digit(s[pos_ + 1]))) {
        number();
        continue;
      }
      if (c == '"') {
        string_literal();
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      punct();
    }
    return std::move(out_);
  }

 private:
  std::size_t column(std::size_t offset) const { return offset - line_start_ + 1; }

  void emit(TokenKind kind, std::size_t start, std::size_t start_line,
            std::size_t start_col, bool is_float = false) {
    out_.tokens.push_back(Token{kind, start, pos_ - start, start_line, start_col, is_float});
    line_has_code_ = true;
  }

  void line_comment() {
    const std::size_t start = pos_;
    const std::string& s = out_.source;
    while (pos_ < s.size() && s[pos_] != '\n') ++pos_;
    out_.comments.push_back(
        Comment{start, pos_ - start, line_, line_, false, !line_has_code_});
  }

  void block_comment() {
    const std::size_t start = pos_;
    const std::size_t start_line = line_;
    const bool owns = !line_has_code_;
    const std::string& s = out_.source;
    pos_ += 2;
    while (pos_ < s.size()) {
      if (s[pos_] == '\n') {
        ++line_;
        line_start_ = pos_ + 1;
      } else if (s[pos_] == '*' && pos_ + 1 < s.size() && s[pos_ + 1] == '/') {
        pos_ += 2;
        out_.comments.push_back(
            Comment{start, pos_ - start, start_line, line_, true, owns});
        return;
      }
      ++pos_;
    }
    out_.comments.push_back(Comment{start, pos_ - start, start_line, line_, true, owns});
  }

  // One directive, folding backslash-continuations into a single token. Block
  // comments inside the directive are skipped so a `/* \n */` cannot desync
  // the line count.
  void preprocessor_line() {
    const std::size_t start = pos_;
    const std::size_t start_line = line_;
    const std::size_t start_col = column(pos_);
    const std::string& s = out_.source;
    while (pos_ < s.size()) {
      if (s[pos_] == '\\' && pos_ + 1 < s.size() && s[pos_ + 1] == '\n') {
        pos_ += 2;
        ++line_;
        line_start_ = pos_;
        continue;
      }
      if (s[pos_] == '/' && pos_ + 1 < s.size() && s[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ < s.size() && !(s[pos_] == '*' && pos_ + 1 < s.size() && s[pos_ + 1] == '/')) {
          if (s[pos_] == '\n') {
            ++line_;
            line_start_ = pos_ + 1;
          }
          ++pos_;
        }
        if (pos_ < s.size()) pos_ += 2;
        continue;
      }
      if (s[pos_] == '/' && pos_ + 1 < s.size() && s[pos_ + 1] == '/') break;
      if (s[pos_] == '\n') break;
      ++pos_;
    }
    emit(TokenKind::kPreprocessor, start, start_line, start_col);
    // The directive owned its line; a trailing // comment still follows.
  }

  void identifier_or_literal() {
    const std::size_t start = pos_;
    const std::size_t start_col = column(pos_);
    const std::string& s = out_.source;
    while (pos_ < s.size() && is_ident_char(s[pos_])) ++pos_;
    const std::string_view word = std::string_view(s).substr(start, pos_ - start);
    // String/char literal prefixes: R"(..)", u8"..", L'..', uR"(..)" etc.
    if (pos_ < s.size() && (s[pos_] == '"' || s[pos_] == '\'') &&
        (word == "R" || word == "L" || word == "u" || word == "U" || word == "u8" ||
         word == "LR" || word == "uR" || word == "UR" || word == "u8R")) {
      const bool raw = word.back() == 'R';
      if (s[pos_] == '"') {
        pos_ = start;  // rewind; string_literal() re-consumes the prefix
        string_literal_at(start, start_col, raw);
      } else {
        pos_ = start;
        char_literal_at(start, start_col);
      }
      return;
    }
    emit(TokenKind::kIdentifier, start, line_, start_col);
  }

  void number() {
    const std::size_t start = pos_;
    const std::size_t start_col = column(pos_);
    const std::string& s = out_.source;
    bool is_float = false;
    bool hex = false;
    if (s[pos_] == '0' && pos_ + 1 < s.size() && (s[pos_ + 1] == 'x' || s[pos_ + 1] == 'X')) {
      hex = true;
      pos_ += 2;
    }
    while (pos_ < s.size()) {
      const char c = s[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.') {
        if (c == '.') is_float = true;
        if (!hex && (c == 'e' || c == 'E') && pos_ + 1 < s.size() &&
            (s[pos_ + 1] == '+' || s[pos_ + 1] == '-')) {
          is_float = true;
          ++pos_;  // consume the sign with the exponent
        } else if (!hex && (c == 'e' || c == 'E')) {
          is_float = true;
        } else if (hex && (c == 'p' || c == 'P')) {
          is_float = true;  // hex float exponent
          if (pos_ + 1 < s.size() && (s[pos_ + 1] == '+' || s[pos_ + 1] == '-')) ++pos_;
        } else if (!hex && (c == 'f' || c == 'F')) {
          is_float = true;  // float suffix (2.f, 1f is invalid C++ anyway)
        }
        ++pos_;
        continue;
      }
      if (c == '\'' && pos_ + 1 < s.size() && std::isalnum(static_cast<unsigned char>(s[pos_ + 1]))) {
        ++pos_;  // digit separator
        continue;
      }
      break;
    }
    emit(TokenKind::kNumber, start, line_, start_col, is_float);
  }

  void string_literal() { string_literal_at(pos_, column(pos_), false); }
  void char_literal() { char_literal_at(pos_, column(pos_)); }

  void string_literal_at(std::size_t start, std::size_t start_col, bool raw_prefix) {
    const std::string& s = out_.source;
    const std::size_t start_line = line_;
    pos_ = start;
    while (pos_ < s.size() && s[pos_] != '"') ++pos_;  // skip prefix
    bool raw = raw_prefix || (pos_ > start && s[pos_ - 1] == 'R');
    if (pos_ >= s.size()) {
      emit(TokenKind::kString, start, start_line, start_col);
      return;
    }
    ++pos_;  // opening quote
    if (raw) {
      // R"delim( ... )delim"
      std::string delim;
      while (pos_ < s.size() && s[pos_] != '(') delim += s[pos_++];
      if (pos_ < s.size()) ++pos_;  // '('
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = s.find(closer, pos_);
      if (end == std::string::npos) {
        while (pos_ < s.size()) {
          if (s[pos_] == '\n') {
            ++line_;
            line_start_ = pos_ + 1;
          }
          ++pos_;
        }
      } else {
        for (std::size_t i = pos_; i < end; ++i) {
          if (s[i] == '\n') {
            ++line_;
            line_start_ = i + 1;
          }
        }
        pos_ = end + closer.size();
      }
      emit(TokenKind::kString, start, start_line, start_col);
      return;
    }
    while (pos_ < s.size() && s[pos_] != '"' && s[pos_] != '\n') {
      if (s[pos_] == '\\' && pos_ + 1 < s.size()) ++pos_;
      ++pos_;
    }
    if (pos_ < s.size() && s[pos_] == '"') ++pos_;
    emit(TokenKind::kString, start, start_line, start_col);
  }

  void char_literal_at(std::size_t start, std::size_t start_col) {
    const std::string& s = out_.source;
    pos_ = start;
    while (pos_ < s.size() && s[pos_] != '\'') ++pos_;  // skip prefix
    if (pos_ < s.size()) ++pos_;
    while (pos_ < s.size() && s[pos_] != '\'' && s[pos_] != '\n') {
      if (s[pos_] == '\\' && pos_ + 1 < s.size()) ++pos_;
      ++pos_;
    }
    if (pos_ < s.size() && s[pos_] == '\'') ++pos_;
    emit(TokenKind::kChar, start, line_, start_col);
  }

  void punct() {
    const std::size_t start = pos_;
    const std::size_t start_col = column(pos_);
    const std::string_view rest = std::string_view(out_.source).substr(pos_);
    for (std::string_view p : kMultiPunct) {
      if (rest.substr(0, p.size()) == p) {
        pos_ += p.size();
        emit(TokenKind::kPunct, start, line_, start_col);
        return;
      }
    }
    ++pos_;
    emit(TokenKind::kPunct, start, line_, start_col);
  }

  LexedFile out_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t line_start_ = 0;
  bool line_has_code_ = false;
};

}  // namespace

LexedFile lex(std::string path, std::string source) {
  return Lexer(std::move(path), std::move(source)).run();
}

}  // namespace csrlmrm::lint

#include "fix.hpp"

#include <algorithm>

namespace csrlmrm::lint {

std::string apply_fixes(std::string_view source, const std::vector<Diagnostic>& diagnostics,
                        std::size_t* applied) {
  std::vector<FixEdit> edits;
  for (const Diagnostic& d : diagnostics) {
    for (const FixEdit& fix : d.fixes) {
      if (fix.offset > source.size() || fix.offset + fix.length > source.size()) continue;
      edits.push_back(fix);
    }
  }
  std::stable_sort(edits.begin(), edits.end(), [](const FixEdit& a, const FixEdit& b) {
    return a.offset < b.offset;
  });
  // Drop overlaps (keep the first): two rules rewriting the same bytes must
  // not compose into garbage.
  std::vector<FixEdit> kept;
  std::size_t consumed_to = 0;
  bool first = true;
  for (const FixEdit& e : edits) {
    if (!first && e.offset < consumed_to) continue;
    // A second pure insertion at the same offset is also dropped (a repeat
    // of the same fix must be a no-op for idempotency).
    if (!kept.empty() && e.offset == kept.back().offset && e.length == 0 &&
        kept.back().length == 0) {
      continue;
    }
    kept.push_back(e);
    consumed_to = e.offset + std::max<std::size_t>(e.length, 1);
    first = false;
  }

  std::string out(source);
  for (auto it = kept.rbegin(); it != kept.rend(); ++it) {
    out.replace(it->offset, it->length, it->replacement);
  }
  if (applied != nullptr) *applied = kept.size();
  return out;
}

}  // namespace csrlmrm::lint

// SARIF 2.1.0 emitter (--format=sarif): the static-analysis interchange
// format CI annotators and editors consume. Built on obs/json so the writer
// shares one JSON dialect with --stats and the --json report.
#pragma once

#include "driver.hpp"
#include "obs/json.hpp"

namespace csrlmrm::lint {

/// Renders `report` as a minimal SARIF 2.1.0 document: one run, the full
/// rule catalogue under tool.driver.rules (stable order), one result per
/// diagnostic in file/line order. Deterministic for a given report, so a
/// golden-file test can pin the output byte-for-byte.
obs::JsonValue report_to_sarif(const LintReport& report);

}  // namespace csrlmrm::lint

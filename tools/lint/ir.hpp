// Lightweight per-function IR for the flow-aware lint rules.
//
// The token-level rules of PR 4 can see spellings but not structure: whether
// a returned reference points into an LRU-evicted member container, whether a
// guarded member is read outside its lock's scope, whether a raw socket call
// sits in a function with an EINTR retry. This IR recovers exactly that much
// structure from the lexer's token stream — no more: it indexes classes and
// their member fields (with `// lint:guarded_by(<mutex>)` annotations),
// recovers method definitions with their class qualifier and return-type
// refness, computes lock-guard scopes, and marks classes with an eviction
// path. It is built by an explicit pass pipeline (see build_file_ir) so each
// analysis reads the product of the previous one, mirroring how the real
// compiler repos split their pass stacks.
//
// Headers declare, sources define: when a .cpp is scanned, the declarations
// (member fields, guarded_by annotations) of its companion header feed the
// same IR, so `TransformCache::absorbing` in transform.cpp is checked against
// the `entries_` declared in transform.hpp.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace csrlmrm::lint {

class FileContext;

/// One member-variable declaration inside a class/struct body.
struct MemberField {
  std::string class_name;
  std::string name;
  std::string type_text;   // declaration tokens before the name, joined by ' '
  bool is_container = false;  // map/set/vector/deque/list/unordered_* flavors
  std::string guarded_by;  // mutex member named by lint:guarded_by(...); "" if none
  std::size_t decl_line = 0;
};

/// The extent of one lock_guard/unique_lock/scoped_lock/shared_lock object:
/// from its declaration token to the closing brace of the innermost enclosing
/// block. `mutexes` holds every identifier in the constructor argument list,
/// so `lock(mutex_)` and `lock(owner.mutex_)` both cover "mutex_".
struct LockScope {
  std::vector<std::string> mutexes;
  std::size_t begin_tok = 0;
  std::size_t end_tok = 0;  // inclusive token index of the closing brace
};

/// One function definition in the scanned file, enriched over
/// FileContext::FunctionSpan with the class it belongs to (from a
/// `Class::method` qualifier or the enclosing class block) and whether its
/// return type is a raw reference or pointer.
struct MethodIr {
  std::string class_name;  // empty for free functions
  std::string name;
  std::size_t name_tok = 0;    // token index of the name, 0 if unrecovered
  std::size_t open_brace = 0;  // token indices into the scanned file
  std::size_t close_brace = 0;
  bool returns_ref = false;
  bool returns_ptr = false;
};

/// The per-file IR the flow-aware rules read. Declarations are merged from
/// the scanned file and its companion header; bodies (methods, lock scopes)
/// come from the scanned file only.
struct FileIr {
  std::vector<MemberField> fields;
  /// member name -> mutex name, for every field with a guarded_by annotation.
  std::map<std::string, std::string> guarded_members;
  /// Names of container-typed member fields (for the dangling-reference rule).
  std::set<std::string> container_members;
  /// Classes with an eviction path: a method body that erases/pops/clears a
  /// member container, or a method named evict*/trim*.
  std::set<std::string> eviction_classes;
  std::vector<MethodIr> methods;
  std::vector<LockScope> lock_scopes;
  /// Every matched brace pair (open token index, close token index).
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  /// True when the file includes a socket-layer header (<sys/socket.h> et
  /// al.) — the scope gate of the syscall-hygiene rule.
  bool networked = false;

  /// True when token `tok` lies inside a lock scope covering `mutex_name`.
  bool covered_by_lock(std::size_t tok, const std::string& mutex_name) const;
};

/// Builds the IR for `ctx` through the pass pipeline:
///   1. blocks      — match every brace pair
///   2. classes     — index class/struct member fields (self + companion)
///   3. annotations — attach lint:guarded_by(<mutex>) comments to fields
///   4. methods     — recover definitions with qualifier and return refness
///   5. locks       — compute RAII lock-object scopes
///   6. eviction    — mark classes whose methods erase from member containers
/// `companion` may be null (headers, single-file scans).
FileIr build_file_ir(const FileContext& ctx, const FileContext* companion);

}  // namespace csrlmrm::lint

#include "rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>

namespace csrlmrm::lint {

namespace {

void report(std::vector<Diagnostic>& out, std::string_view rule, const FileContext& ctx,
            const Token& tok, std::string message) {
  out.push_back(Diagnostic{std::string(rule), ctx.path(), tok.line, tok.column,
                           std::move(message)});
}

// ---------------------------------------------------------------------------
// float-equality: no raw ==/!= against floating-point literals. Exact
// comparisons are only legitimate inside the approved approx_*/exactly_*
// helpers (src/core/approx.hpp), which make the intent machine-visible; a
// tolerance comparison belongs in approx_eq. Heuristic scope: fires when
// either operand adjacent to the comparison is a floating literal (the
// lexer cannot type arbitrary expressions).
class FloatEqualityRule : public Rule {
 public:
  std::string_view name() const override { return "float-equality"; }
  std::string_view description() const override {
    return "no raw ==/!= on floating-point values; use approx_eq/exactly_zero "
           "from core/approx.hpp so intent (tolerance vs exact-by-design) is explicit";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    const auto& toks = ctx.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kPunct) continue;
      const std::string_view op = ctx.text(toks[i]);
      if (op != "==" && op != "!=") continue;
      bool floaty = false;
      if (i > 0 && toks[i - 1].kind == TokenKind::kNumber && toks[i - 1].is_float_literal) {
        floaty = true;
      }
      std::size_t rhs = i + 1;
      if (rhs < toks.size() && toks[rhs].kind == TokenKind::kPunct) {
        const std::string_view sign = ctx.text(toks[rhs]);
        if (sign == "-" || sign == "+") ++rhs;  // unary sign
      }
      if (rhs < toks.size() && toks[rhs].kind == TokenKind::kNumber &&
          toks[rhs].is_float_literal) {
        floaty = true;
      }
      if (!floaty || ctx.in_approved_helper(i)) continue;
      report(out, name(), ctx, toks[i],
             "floating-point " + std::string(op) +
                 " comparison; use approx_eq(...) for tolerance or exactly_zero/"
                 "exactly_equal (core/approx.hpp) for intentional exact compares");
    }
  }
};

// ---------------------------------------------------------------------------
// unordered-iteration: iterating an unordered associative container in a
// deterministic subsystem makes accumulation order (and therefore floating-
// point results) depend on hash seeds and load factors. PR 3's error-band
// work requires bitwise-identical verdicts across runs; collect into a
// vector and sort, or use std::map, before folding.
class UnorderedIterationRule : public Rule {
 public:
  std::string_view name() const override { return "unordered-iteration"; }
  std::string_view description() const override {
    return "no iteration over unordered_map/unordered_set in deterministic "
           "subsystems (checker/numeric/linalg/core/graph/parallel/sim): "
           "iteration order is hash-dependent, breaking reproducibility";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    if (!ctx.in_hot_path()) return;
    const auto& names = ctx.unordered_names();
    if (names.empty()) return;
    const auto& toks = ctx.tokens();

    auto is_unordered_ident = [&](std::size_t k) {
      return toks[k].kind == TokenKind::kIdentifier &&
             names.count(std::string(ctx.text(toks[k]))) > 0;
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
      const std::string_view t = ctx.text(toks[i]);
      // Range-for whose range expression names an unordered container.
      if (toks[i].kind == TokenKind::kIdentifier && t == "for" && i + 1 < toks.size() &&
          ctx.text(toks[i + 1]) == "(") {
        int depth = 0;
        std::size_t colon = 0;
        std::size_t close = 0;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
          if (toks[j].kind != TokenKind::kPunct) continue;
          const std::string_view w = ctx.text(toks[j]);
          if (w == "(") ++depth;
          if (w == ")") {
            if (--depth == 0) {
              close = j;
              break;
            }
          }
          if (w == ":" && depth == 1 && colon == 0) colon = j;
          if (w == ";" && depth == 1) break;  // classic for, not range-for
        }
        if (colon != 0 && close != 0) {
          for (std::size_t k = colon + 1; k < close; ++k) {
            if (is_unordered_ident(k)) {
              report(out, name(), ctx, toks[i],
                     "range-for over unordered container '" +
                         std::string(ctx.text(toks[k])) +
                         "'; iteration order is non-deterministic — sort into a "
                         "vector (or use std::map) before accumulating");
              break;
            }
          }
        }
        continue;
      }
      // Explicit iterator walk: container.begin()/end()/cbegin()/... .
      if (is_unordered_ident(i) && i + 2 < toks.size() && ctx.text(toks[i + 1]) == "." &&
          toks[i + 2].kind == TokenKind::kIdentifier) {
        static constexpr std::array<std::string_view, 6> kIter = {
            "begin", "end", "cbegin", "cend", "rbegin", "rend"};
        const std::string_view m = ctx.text(toks[i + 2]);
        if (std::find(kIter.begin(), kIter.end(), m) != kIter.end()) {
          report(out, name(), ctx, toks[i],
                 "iterator over unordered container '" + std::string(t) +
                     "' (." + std::string(m) +
                     "()); iteration order is non-deterministic in a "
                     "deterministic subsystem");
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// unsafe-libm: libc/libm entry points that mutate hidden global state. The
// thread pool evaluates Poisson masses concurrently; std::lgamma writes
// `signgam` (the PR 1 data race), strtok keeps a static cursor, rand() a
// hidden seed. Reentrant or C++ replacements exist for each.
class UnsafeLibmRule : public Rule {
 public:
  std::string_view name() const override { return "unsafe-libm"; }
  std::string_view description() const override {
    return "no thread-unsafe libc/libm calls (lgamma, strtok, rand, ...): they "
           "mutate hidden global state raced by the thread pool; use lgamma_r, "
           "strtok_r, <random>";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    static const std::map<std::string_view, std::string_view> kBanned = {
        {"lgamma", "writes the global signgam; use lgamma_r (see numeric/poisson.cpp)"},
        {"lgammaf", "writes the global signgam; use lgamma_r"},
        {"lgammal", "writes the global signgam; use lgamma_r"},
        {"strtok", "keeps a static cursor; use strtok_r or std::string_view parsing"},
        {"rand", "hidden global seed, not thread-safe; use <random> engines"},
        {"srand", "hidden global seed, not thread-safe; use <random> engines"},
        {"drand48", "hidden global state; use <random> engines"},
        {"lrand48", "hidden global state; use <random> engines"},
        {"mrand48", "hidden global state; use <random> engines"},
        {"gmtime", "returns a pointer to static storage; use gmtime_r"},
        {"localtime", "returns a pointer to static storage; use localtime_r"},
        {"asctime", "returns a pointer to static storage; use strftime"},
        {"ctime", "returns a pointer to static storage; use strftime"},
    };
    const auto& toks = ctx.tokens();
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier) continue;
      const auto hit = kBanned.find(ctx.text(toks[i]));
      if (hit == kBanned.end()) continue;
      if (ctx.text(toks[i + 1]) != "(") continue;  // only calls, not mentions
      report(out, name(), ctx, toks[i],
             "call to thread-unsafe '" + std::string(hit->first) + "': " +
                 std::string(hit->second));
    }
  }
};

// ---------------------------------------------------------------------------
// float-narrowing: every probability, rate, and reward in this codebase is a
// double; introducing `float` anywhere narrows silently at an interface
// boundary sooner or later (and the error-band layer's interval arithmetic
// assumes double precision throughout).
class FloatNarrowingRule : public Rule {
 public:
  std::string_view name() const override { return "float-narrowing"; }
  std::string_view description() const override {
    return "no `float` in reward/probability code: the project convention is "
           "double end-to-end; float narrows silently and breaks the error-band "
           "guarantees";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    const auto& toks = ctx.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier || ctx.text(toks[i]) != "float") continue;
      report(out, name(), ctx, toks[i],
             "`float` type used; the project numeric convention is double "
             "end-to-end (use double, or suppress with justification)");
    }
  }
};

// ---------------------------------------------------------------------------
// naked-new: manual new/delete invites leaks on the exception paths the
// checker throws through (NodeBudgetError, SpecError). Use containers,
// make_unique/make_shared, or an arena.
class NakedNewRule : public Rule {
 public:
  std::string_view name() const override { return "naked-new"; }
  std::string_view description() const override {
    return "no naked new/delete: the checker unwinds through exceptions "
           "(NodeBudgetError et al.); use containers or std::make_unique";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    const auto& toks = ctx.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier) continue;
      const std::string_view t = ctx.text(toks[i]);
      if (t != "new" && t != "delete") continue;
      // `= delete;` / `= delete(` declarations are not deallocations.
      if (t == "delete" && i > 0 && ctx.text(toks[i - 1]) == "=") {
        if (i + 1 >= toks.size() || ctx.text(toks[i + 1]) == ";" ||
            ctx.text(toks[i + 1]) == "(") {
          continue;
        }
      }
      // operator new/delete declarations.
      if (i > 0 && ctx.text(toks[i - 1]) == "operator") continue;
      report(out, name(), ctx, toks[i],
             "naked `" + std::string(t) +
                 "`; use std::vector/std::make_unique so exception unwinding "
                 "cannot leak");
    }
  }
};

// ---------------------------------------------------------------------------
// solver-stats: every iterative solver entry point must be observable. A
// solver function (name contains "solve") with a loop but no obs::
// instrumentation silently drops out of --stats output and the
// BENCH_*_stats.json regression baselines.
class SolverStatsRule : public Rule {
 public:
  std::string_view name() const override { return "solver-stats"; }
  std::string_view description() const override {
    return "iterative solver entry points (functions named *solve*) must carry "
           "obs:: instrumentation (ScopedTimer/counter_add) so --stats and the "
           "bench baselines see them";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    if (ctx.tree() != Tree::kSrc) return;
    const auto& toks = ctx.tokens();
    for (const FunctionSpan& f : ctx.functions()) {
      std::string lowered = f.name;
      std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (lowered.find("solve") == std::string::npos) continue;
      bool has_loop = false;
      bool has_obs = false;
      for (std::size_t i = f.open_brace; i <= f.close_brace && i < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::kIdentifier) continue;
        const std::string_view t = ctx.text(toks[i]);
        if (t == "for" || t == "while") has_loop = true;
        if (t == "obs" || t == "counter_add" || t == "ScopedTimer") has_obs = true;
      }
      if (has_loop && !has_obs) {
        report(out, name(), ctx, toks[f.open_brace],
               "solver '" + f.name +
                   "' loops without obs:: instrumentation; add "
                   "obs::ScopedTimer/obs::counter_add (see linalg/gauss_seidel.cpp)");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// endl: std::endl flushes; in solver/bench loops that turns buffered output
// into one syscall per line. '\n' expresses the newline without the flush.
class EndlRule : public Rule {
 public:
  std::string_view name() const override { return "endl"; }
  std::string_view description() const override {
    return "no std::endl: it flushes on every use; write '\\n' and flush "
           "explicitly where needed";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    for (std::size_t i = 0; i < ctx.tokens().size(); ++i) {
      const Token& t = ctx.tokens()[i];
      if (t.kind == TokenKind::kIdentifier && ctx.text(t) == "endl") {
        report(out, name(), ctx, t, "std::endl flushes the stream; use '\\n'");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// banned-identifier: a curated list of calls with superior project-approved
// replacements. Each entry says why and what to use instead.
class BannedIdentifierRule : public Rule {
 public:
  std::string_view name() const override { return "banned-identifier"; }
  std::string_view description() const override {
    return "banned identifiers with mandated replacements (sprintf->snprintf, "
           "atof->strtod, unqualified abs->std::abs, ...)";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    static const std::map<std::string_view, std::string_view> kBanned = {
        {"sprintf", "unbounded write; use snprintf or std::string"},
        {"strcpy", "unbounded write; use std::string"},
        {"strcat", "unbounded write; use std::string"},
        {"gets", "unbounded read; use std::getline"},
        {"atof", "silent failure on garbage; use strtod or the io/ helpers"},
        {"atoi", "silent failure on garbage; use strtol or the io/ helpers"},
        {"atol", "silent failure on garbage; use strtol or the io/ helpers"},
        {"tmpnam", "filename race; use mkstemp"},
        {"random_shuffle", "removed in C++17; use std::shuffle"},
        {"setjmp", "skips destructors; use exceptions"},
        {"longjmp", "skips destructors; use exceptions"},
    };
    const auto& toks = ctx.tokens();
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier) continue;
      const std::string_view t = ctx.text(toks[i]);
      if (ctx.text(toks[i + 1]) != "(") continue;
      const auto hit = kBanned.find(t);
      if (hit != kBanned.end()) {
        report(out, name(), ctx, toks[i],
               "banned call '" + std::string(t) + "': " + std::string(hit->second));
        continue;
      }
      // Unqualified abs( truncates doubles to int (the <cstdlib> overload);
      // std::abs resolves the floating overloads from <cmath>.
      if (t == "abs" && (i == 0 || ctx.text(toks[i - 1]) != "::")) {
        report(out, name(), ctx, toks[i],
               "unqualified 'abs' call binds the int overload and truncates "
               "doubles; use std::abs or std::fabs");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// pragma-once: every header must start its preprocessor life with #pragma
// once; a missing guard turns an innocent double-include into ODR soup.
class PragmaOnceRule : public Rule {
 public:
  std::string_view name() const override { return "pragma-once"; }
  std::string_view description() const override {
    return "headers must contain #pragma once";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    if (!ctx.is_header()) return;
    for (const Token& t : ctx.tokens()) {
      if (t.kind != TokenKind::kPreprocessor) continue;
      const std::string_view text = ctx.text(t);
      if (text.find("pragma") != std::string_view::npos &&
          text.find("once") != std::string_view::npos) {
        return;
      }
    }
    out.push_back(Diagnostic{std::string(name()), ctx.path(), 1, 1,
                             "header is missing #pragma once"});
  }
};

// ---------------------------------------------------------------------------
// reserved-identifier: names starting with _[A-Z] or containing __ are
// reserved for the implementation ([lex.name]); colliding with a libc macro
// is undefined behavior that UBSan cannot see.
class ReservedIdentifierRule : public Rule {
 public:
  std::string_view name() const override { return "reserved-identifier"; }
  std::string_view description() const override {
    return "no identifiers reserved for the implementation (leading _Upper or "
           "any __)";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    for (const Token& t : ctx.tokens()) {
      if (t.kind != TokenKind::kIdentifier) continue;
      const std::string_view text = ctx.text(t);
      const bool double_underscore = text.find("__") != std::string_view::npos;
      const bool underscore_upper =
          text.size() >= 2 && text[0] == '_' && std::isupper(static_cast<unsigned char>(text[1]));
      if (double_underscore || underscore_upper) {
        report(out, name(), ctx, t,
               "identifier '" + std::string(text) +
                   "' is reserved for the implementation ([lex.name]/3)");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// simd-hygiene: raw vector machinery is confined to src/core/simd.hpp (the
// portable DoubleVec layer). Anywhere else, `vector_size` attributes,
// <immintrin.h>-family includes, _mm* intrinsics, or `#pragma omp simd`
// fork the scalar and vector code paths at the call site — exactly what the
// bitwise-determinism contract forbids. Kernels use the simd.hpp helpers so
// one source of truth serves every platform.
class SimdHygieneRule : public Rule {
 public:
  std::string_view name() const override { return "simd-hygiene"; }
  std::string_view description() const override {
    return "raw SIMD machinery (vector_size attributes, <immintrin.h>-family "
           "includes, _mm* intrinsics, #pragma omp simd) is confined to "
           "src/core/simd.hpp; use the DoubleVec helpers everywhere else";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    // The one sanctioned home of raw vector machinery.
    if (ctx.path().ends_with("core/simd.hpp")) return;
    static constexpr std::array<std::string_view, 7> kIntrinsicHeaders = {
        "immintrin.h", "x86intrin.h", "emmintrin.h", "xmmintrin.h",
        "pmmintrin.h", "smmintrin.h", "arm_neon.h"};
    const auto& toks = ctx.tokens();
    for (const Token& t : toks) {
      if (t.kind == TokenKind::kPreprocessor) {
        const std::string_view text = ctx.text(t);
        if (text.find("include") != std::string_view::npos) {
          for (const std::string_view header : kIntrinsicHeaders) {
            if (text.find(header) != std::string_view::npos) {
              report(out, name(), ctx, t,
                     "intrinsic header <" + std::string(header) +
                         "> included outside src/core/simd.hpp; use the "
                         "DoubleVec helpers");
              break;
            }
          }
        } else if (text.find("pragma") != std::string_view::npos &&
                   text.find("omp") != std::string_view::npos &&
                   text.find("simd") != std::string_view::npos) {
          report(out, name(), ctx, t,
                 "`#pragma omp simd` outside src/core/simd.hpp; vectorization "
                 "lives behind the DoubleVec helpers");
        }
        continue;
      }
      if (t.kind != TokenKind::kIdentifier) continue;
      const std::string_view text = ctx.text(t);
      const bool intrinsic = text.starts_with("_mm_") || text.starts_with("_mm256_") ||
                             text.starts_with("_mm512_");
      const bool vector_attr = text == "vector_size";
      if (intrinsic || vector_attr) {
        report(out, name(), ctx, t,
               "raw SIMD spelling '" + std::string(text) +
                   "' outside src/core/simd.hpp; use the DoubleVec helpers so "
                   "scalar and vector builds share one source of truth");
      }
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> make_default_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<FloatEqualityRule>());
  rules.push_back(std::make_unique<UnorderedIterationRule>());
  rules.push_back(std::make_unique<UnsafeLibmRule>());
  rules.push_back(std::make_unique<FloatNarrowingRule>());
  rules.push_back(std::make_unique<NakedNewRule>());
  rules.push_back(std::make_unique<SolverStatsRule>());
  rules.push_back(std::make_unique<EndlRule>());
  rules.push_back(std::make_unique<BannedIdentifierRule>());
  rules.push_back(std::make_unique<PragmaOnceRule>());
  rules.push_back(std::make_unique<ReservedIdentifierRule>());
  rules.push_back(std::make_unique<SimdHygieneRule>());
  return rules;
}

}  // namespace csrlmrm::lint

#include "rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <set>

#include "ir.hpp"

namespace csrlmrm::lint {

namespace {

void report(std::vector<Diagnostic>& out, std::string_view rule, const FileContext& ctx,
            const Token& tok, std::string message) {
  out.push_back(Diagnostic{std::string(rule), ctx.path(), tok.line, tok.column,
                           std::move(message), {}});
}

// ---------------------------------------------------------------------------
// float-equality: no raw ==/!= against floating-point literals. Exact
// comparisons are only legitimate inside the approved approx_*/exactly_*
// helpers (src/core/approx.hpp), which make the intent machine-visible; a
// tolerance comparison belongs in approx_eq. Heuristic scope: fires when
// either operand adjacent to the comparison is a floating literal (the
// lexer cannot type arbitrary expressions).
class FloatEqualityRule : public Rule {
 public:
  std::string_view name() const override { return "float-equality"; }
  std::string_view description() const override {
    return "no raw ==/!= on floating-point values; use approx_eq/exactly_zero "
           "from core/approx.hpp so intent (tolerance vs exact-by-design) is explicit";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    const auto& toks = ctx.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kPunct) continue;
      const std::string_view op = ctx.text(toks[i]);
      if (op != "==" && op != "!=") continue;
      bool floaty = false;
      if (i > 0 && toks[i - 1].kind == TokenKind::kNumber && toks[i - 1].is_float_literal) {
        floaty = true;
      }
      std::size_t rhs = i + 1;
      if (rhs < toks.size() && toks[rhs].kind == TokenKind::kPunct) {
        const std::string_view sign = ctx.text(toks[rhs]);
        if (sign == "-" || sign == "+") ++rhs;  // unary sign
      }
      if (rhs < toks.size() && toks[rhs].kind == TokenKind::kNumber &&
          toks[rhs].is_float_literal) {
        floaty = true;
      }
      if (!floaty || ctx.in_approved_helper(i)) continue;
      report(out, name(), ctx, toks[i],
             "floating-point " + std::string(op) +
                 " comparison; use approx_eq(...) for tolerance or exactly_zero/"
                 "exactly_equal (core/approx.hpp) for intentional exact compares");
    }
  }
};

// ---------------------------------------------------------------------------
// unordered-iteration: iterating an unordered associative container in a
// deterministic subsystem makes accumulation order (and therefore floating-
// point results) depend on hash seeds and load factors. PR 3's error-band
// work requires bitwise-identical verdicts across runs; collect into a
// vector and sort, or use std::map, before folding.
class UnorderedIterationRule : public Rule {
 public:
  std::string_view name() const override { return "unordered-iteration"; }
  std::string_view description() const override {
    return "no iteration over unordered_map/unordered_set in deterministic "
           "subsystems (checker/numeric/linalg/core/graph/parallel/sim): "
           "iteration order is hash-dependent, breaking reproducibility";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    if (!ctx.in_hot_path()) return;
    const auto& names = ctx.unordered_names();
    if (names.empty()) return;
    const auto& toks = ctx.tokens();

    auto is_unordered_ident = [&](std::size_t k) {
      return toks[k].kind == TokenKind::kIdentifier &&
             names.count(std::string(ctx.text(toks[k]))) > 0;
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
      const std::string_view t = ctx.text(toks[i]);
      // Range-for whose range expression names an unordered container.
      if (toks[i].kind == TokenKind::kIdentifier && t == "for" && i + 1 < toks.size() &&
          ctx.text(toks[i + 1]) == "(") {
        int depth = 0;
        std::size_t colon = 0;
        std::size_t close = 0;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
          if (toks[j].kind != TokenKind::kPunct) continue;
          const std::string_view w = ctx.text(toks[j]);
          if (w == "(") ++depth;
          if (w == ")") {
            if (--depth == 0) {
              close = j;
              break;
            }
          }
          if (w == ":" && depth == 1 && colon == 0) colon = j;
          if (w == ";" && depth == 1) break;  // classic for, not range-for
        }
        if (colon != 0 && close != 0) {
          for (std::size_t k = colon + 1; k < close; ++k) {
            if (is_unordered_ident(k)) {
              report(out, name(), ctx, toks[i],
                     "range-for over unordered container '" +
                         std::string(ctx.text(toks[k])) +
                         "'; iteration order is non-deterministic — sort into a "
                         "vector (or use std::map) before accumulating");
              break;
            }
          }
        }
        continue;
      }
      // Explicit iterator walk: container.begin()/end()/cbegin()/... .
      if (is_unordered_ident(i) && i + 2 < toks.size() && ctx.text(toks[i + 1]) == "." &&
          toks[i + 2].kind == TokenKind::kIdentifier) {
        static constexpr std::array<std::string_view, 6> kIter = {
            "begin", "end", "cbegin", "cend", "rbegin", "rend"};
        const std::string_view m = ctx.text(toks[i + 2]);
        if (std::find(kIter.begin(), kIter.end(), m) != kIter.end()) {
          report(out, name(), ctx, toks[i],
                 "iterator over unordered container '" + std::string(t) +
                     "' (." + std::string(m) +
                     "()); iteration order is non-deterministic in a "
                     "deterministic subsystem");
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// unsafe-libm: libc/libm entry points that mutate hidden global state. The
// thread pool evaluates Poisson masses concurrently; std::lgamma writes
// `signgam` (the PR 1 data race), strtok keeps a static cursor, rand() a
// hidden seed. Reentrant or C++ replacements exist for each.
class UnsafeLibmRule : public Rule {
 public:
  std::string_view name() const override { return "unsafe-libm"; }
  std::string_view description() const override {
    return "no thread-unsafe libc/libm calls (lgamma, strtok, rand, ...): they "
           "mutate hidden global state raced by the thread pool; use lgamma_r, "
           "strtok_r, <random>";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    static const std::map<std::string_view, std::string_view> kBanned = {
        {"lgamma", "writes the global signgam; use lgamma_r (see numeric/poisson.cpp)"},
        {"lgammaf", "writes the global signgam; use lgamma_r"},
        {"lgammal", "writes the global signgam; use lgamma_r"},
        {"strtok", "keeps a static cursor; use strtok_r or std::string_view parsing"},
        {"rand", "hidden global seed, not thread-safe; use <random> engines"},
        {"srand", "hidden global seed, not thread-safe; use <random> engines"},
        {"drand48", "hidden global state; use <random> engines"},
        {"lrand48", "hidden global state; use <random> engines"},
        {"mrand48", "hidden global state; use <random> engines"},
        {"gmtime", "returns a pointer to static storage; use gmtime_r"},
        {"localtime", "returns a pointer to static storage; use localtime_r"},
        {"asctime", "returns a pointer to static storage; use strftime"},
        {"ctime", "returns a pointer to static storage; use strftime"},
    };
    const auto& toks = ctx.tokens();
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier) continue;
      const auto hit = kBanned.find(ctx.text(toks[i]));
      if (hit == kBanned.end()) continue;
      if (ctx.text(toks[i + 1]) != "(") continue;  // only calls, not mentions
      report(out, name(), ctx, toks[i],
             "call to thread-unsafe '" + std::string(hit->first) + "': " +
                 std::string(hit->second));
    }
  }
};

// ---------------------------------------------------------------------------
// float-narrowing: every probability, rate, and reward in this codebase is a
// double; introducing `float` anywhere narrows silently at an interface
// boundary sooner or later (and the error-band layer's interval arithmetic
// assumes double precision throughout).
class FloatNarrowingRule : public Rule {
 public:
  std::string_view name() const override { return "float-narrowing"; }
  std::string_view description() const override {
    return "no `float` in reward/probability code: the project convention is "
           "double end-to-end; float narrows silently and breaks the error-band "
           "guarantees";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    const auto& toks = ctx.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier || ctx.text(toks[i]) != "float") continue;
      report(out, name(), ctx, toks[i],
             "`float` type used; the project numeric convention is double "
             "end-to-end (use double, or suppress with justification)");
    }
  }
};

// ---------------------------------------------------------------------------
// naked-new: manual new/delete invites leaks on the exception paths the
// checker throws through (NodeBudgetError, SpecError). Use containers,
// make_unique/make_shared, or an arena.
class NakedNewRule : public Rule {
 public:
  std::string_view name() const override { return "naked-new"; }
  std::string_view description() const override {
    return "no naked new/delete: the checker unwinds through exceptions "
           "(NodeBudgetError et al.); use containers or std::make_unique";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    const auto& toks = ctx.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier) continue;
      const std::string_view t = ctx.text(toks[i]);
      if (t != "new" && t != "delete") continue;
      // `= delete;` / `= delete(` declarations are not deallocations.
      if (t == "delete" && i > 0 && ctx.text(toks[i - 1]) == "=") {
        if (i + 1 >= toks.size() || ctx.text(toks[i + 1]) == ";" ||
            ctx.text(toks[i + 1]) == "(") {
          continue;
        }
      }
      // operator new/delete declarations.
      if (i > 0 && ctx.text(toks[i - 1]) == "operator") continue;
      report(out, name(), ctx, toks[i],
             "naked `" + std::string(t) +
                 "`; use std::vector/std::make_unique so exception unwinding "
                 "cannot leak");
    }
  }
};

// ---------------------------------------------------------------------------
// solver-stats: every iterative solver entry point must be observable. A
// solver function (name contains "solve") with a loop but no obs::
// instrumentation silently drops out of --stats output and the
// BENCH_*_stats.json regression baselines.
class SolverStatsRule : public Rule {
 public:
  std::string_view name() const override { return "solver-stats"; }
  std::string_view description() const override {
    return "iterative solver entry points (functions named *solve*) must carry "
           "obs:: instrumentation (ScopedTimer/counter_add) so --stats and the "
           "bench baselines see them";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    if (ctx.tree() != Tree::kSrc) return;
    const auto& toks = ctx.tokens();
    for (const FunctionSpan& f : ctx.functions()) {
      std::string lowered = f.name;
      std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (lowered.find("solve") == std::string::npos) continue;
      bool has_loop = false;
      bool has_obs = false;
      for (std::size_t i = f.open_brace; i <= f.close_brace && i < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::kIdentifier) continue;
        const std::string_view t = ctx.text(toks[i]);
        if (t == "for" || t == "while") has_loop = true;
        if (t == "obs" || t == "counter_add" || t == "ScopedTimer") has_obs = true;
      }
      if (has_loop && !has_obs) {
        report(out, name(), ctx, toks[f.open_brace],
               "solver '" + f.name +
                   "' loops without obs:: instrumentation; add "
                   "obs::ScopedTimer/obs::counter_add (see linalg/gauss_seidel.cpp)");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// endl: std::endl flushes; in solver/bench loops that turns buffered output
// into one syscall per line. '\n' expresses the newline without the flush.
class EndlRule : public Rule {
 public:
  std::string_view name() const override { return "endl"; }
  std::string_view description() const override {
    return "no std::endl: it flushes on every use; write '\\n' and flush "
           "explicitly where needed";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    const auto& toks = ctx.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdentifier || ctx.text(t) != "endl") continue;
      report(out, name(), ctx, t, "std::endl flushes the stream; use '\\n'");
      // Autofix: rewrite `std::endl` / `::endl` / `endl` to the literal '\n'.
      std::size_t start = t.offset;
      if (i >= 1 && ctx.text(toks[i - 1]) == "::") {
        start = toks[i - 1].offset;
        if (i >= 2 && ctx.text(toks[i - 2]) == "std") start = toks[i - 2].offset;
      }
      out.back().fixes.push_back(FixEdit{start, t.offset + t.length - start, "'\\n'"});
    }
  }
};

// ---------------------------------------------------------------------------
// banned-identifier: a curated list of calls with superior project-approved
// replacements. Each entry says why and what to use instead.
class BannedIdentifierRule : public Rule {
 public:
  std::string_view name() const override { return "banned-identifier"; }
  std::string_view description() const override {
    return "banned identifiers with mandated replacements (sprintf->snprintf, "
           "atof->strtod, unqualified abs->std::abs, ...)";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    static const std::map<std::string_view, std::string_view> kBanned = {
        {"sprintf", "unbounded write; use snprintf or std::string"},
        {"strcpy", "unbounded write; use std::string"},
        {"strcat", "unbounded write; use std::string"},
        {"gets", "unbounded read; use std::getline"},
        {"atof", "silent failure on garbage; use strtod or the io/ helpers"},
        {"atoi", "silent failure on garbage; use strtol or the io/ helpers"},
        {"atol", "silent failure on garbage; use strtol or the io/ helpers"},
        {"tmpnam", "filename race; use mkstemp"},
        {"random_shuffle", "removed in C++17; use std::shuffle"},
        {"setjmp", "skips destructors; use exceptions"},
        {"longjmp", "skips destructors; use exceptions"},
    };
    const auto& toks = ctx.tokens();
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier) continue;
      const std::string_view t = ctx.text(toks[i]);
      if (ctx.text(toks[i + 1]) != "(") continue;
      const auto hit = kBanned.find(t);
      if (hit != kBanned.end()) {
        report(out, name(), ctx, toks[i],
               "banned call '" + std::string(t) + "': " + std::string(hit->second));
        continue;
      }
      // Unqualified abs( truncates doubles to int (the <cstdlib> overload);
      // std::abs resolves the floating overloads from <cmath>.
      if (t == "abs" && (i == 0 || ctx.text(toks[i - 1]) != "::")) {
        report(out, name(), ctx, toks[i],
               "unqualified 'abs' call binds the int overload and truncates "
               "doubles; use std::abs or std::fabs");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// pragma-once: every header must start its preprocessor life with #pragma
// once; a missing guard turns an innocent double-include into ODR soup.
class PragmaOnceRule : public Rule {
 public:
  std::string_view name() const override { return "pragma-once"; }
  std::string_view description() const override {
    return "headers must contain #pragma once";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    if (!ctx.is_header()) return;
    for (const Token& t : ctx.tokens()) {
      if (t.kind != TokenKind::kPreprocessor) continue;
      const std::string_view text = ctx.text(t);
      if (text.find("pragma") != std::string_view::npos &&
          text.find("once") != std::string_view::npos) {
        return;
      }
    }
    out.push_back(Diagnostic{std::string(name()), ctx.path(), 1, 1,
                             "header is missing #pragma once", {}});
    // Autofix: prepend the guard. Inserting at offset 0 keeps the edit
    // position-independent of comments and whitespace.
    out.back().fixes.push_back(FixEdit{0, 0, "#pragma once\n"});
  }
};

// ---------------------------------------------------------------------------
// reserved-identifier: names starting with _[A-Z] or containing __ are
// reserved for the implementation ([lex.name]); colliding with a libc macro
// is undefined behavior that UBSan cannot see.
class ReservedIdentifierRule : public Rule {
 public:
  std::string_view name() const override { return "reserved-identifier"; }
  std::string_view description() const override {
    return "no identifiers reserved for the implementation (leading _Upper or "
           "any __)";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    for (const Token& t : ctx.tokens()) {
      if (t.kind != TokenKind::kIdentifier) continue;
      const std::string_view text = ctx.text(t);
      const bool double_underscore = text.find("__") != std::string_view::npos;
      const bool underscore_upper =
          text.size() >= 2 && text[0] == '_' && std::isupper(static_cast<unsigned char>(text[1]));
      if (double_underscore || underscore_upper) {
        report(out, name(), ctx, t,
               "identifier '" + std::string(text) +
                   "' is reserved for the implementation ([lex.name]/3)");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// simd-hygiene: raw vector machinery is confined to src/core/simd.hpp (the
// portable DoubleVec layer). Anywhere else, `vector_size` attributes,
// <immintrin.h>-family includes, _mm* intrinsics, or `#pragma omp simd`
// fork the scalar and vector code paths at the call site — exactly what the
// bitwise-determinism contract forbids. Kernels use the simd.hpp helpers so
// one source of truth serves every platform.
class SimdHygieneRule : public Rule {
 public:
  std::string_view name() const override { return "simd-hygiene"; }
  std::string_view description() const override {
    return "raw SIMD machinery (vector_size attributes, <immintrin.h>-family "
           "includes, _mm* intrinsics, #pragma omp simd) is confined to "
           "src/core/simd.hpp; use the DoubleVec helpers everywhere else";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    // The one sanctioned home of raw vector machinery.
    if (ctx.path().ends_with("core/simd.hpp")) return;
    static constexpr std::array<std::string_view, 7> kIntrinsicHeaders = {
        "immintrin.h", "x86intrin.h", "emmintrin.h", "xmmintrin.h",
        "pmmintrin.h", "smmintrin.h", "arm_neon.h"};
    const auto& toks = ctx.tokens();
    for (const Token& t : toks) {
      if (t.kind == TokenKind::kPreprocessor) {
        const std::string_view text = ctx.text(t);
        if (text.find("include") != std::string_view::npos) {
          for (const std::string_view header : kIntrinsicHeaders) {
            if (text.find(header) != std::string_view::npos) {
              report(out, name(), ctx, t,
                     "intrinsic header <" + std::string(header) +
                         "> included outside src/core/simd.hpp; use the "
                         "DoubleVec helpers");
              break;
            }
          }
        } else if (text.find("pragma") != std::string_view::npos &&
                   text.find("omp") != std::string_view::npos &&
                   text.find("simd") != std::string_view::npos) {
          report(out, name(), ctx, t,
                 "`#pragma omp simd` outside src/core/simd.hpp; vectorization "
                 "lives behind the DoubleVec helpers");
        }
        continue;
      }
      if (t.kind != TokenKind::kIdentifier) continue;
      const std::string_view text = ctx.text(t);
      const bool intrinsic = text.starts_with("_mm_") || text.starts_with("_mm256_") ||
                             text.starts_with("_mm512_");
      const bool vector_attr = text == "vector_size";
      if (intrinsic || vector_attr) {
        report(out, name(), ctx, t,
               "raw SIMD spelling '" + std::string(text) +
                   "' outside src/core/simd.hpp; use the DoubleVec helpers so "
                   "scalar and vector builds share one source of truth");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// dangling-cache-reference: the PR 8 bug class. TransformCache::absorbing
// originally returned `const Mrm&` into an LRU-evicted map — any later insert
// could erase the referent while a caller still held the reference. The rule
// reads the flow IR: in src/, a method of a class with an eviction path
// (erase/pop on a member container, or an evict*/trim* method) must not
// return a raw reference or pointer whose return expression reaches a member
// container — directly, or through a local derived from find()/begin()/
// emplace() on one.
class DanglingCacheReferenceRule : public Rule {
 public:
  std::string_view name() const override { return "dangling-cache-reference"; }
  std::string_view description() const override {
    return "methods of classes with an eviction path (erase/pop/evict on a "
           "member container) must not return references/pointers into that "
           "container; return by value or shared_ptr (see core/transform.hpp)";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    if (ctx.tree() != Tree::kSrc) return;
    const FileIr& ir = ctx.ir();
    if (ir.eviction_classes.empty()) return;
    const auto& toks = ctx.tokens();

    static constexpr std::array<std::string_view, 7> kDeriving = {
        "find", "begin", "at", "emplace", "try_emplace", "insert", "lower_bound"};

    for (const MethodIr& method : ir.methods) {
      if (!method.returns_ref && !method.returns_ptr) continue;
      if (!ir.eviction_classes.count(method.class_name)) continue;

      // Locals derived from container lookups inside this body: `auto it =
      // entries_.find(key)` makes `it` (and structured bindings likewise)
      // carry container aliasing.
      std::set<std::string> derived;
      for (std::size_t i = method.open_brace; i + 3 < method.close_brace && i < toks.size();
           ++i) {
        if (toks[i].kind != TokenKind::kIdentifier ||
            !ir.container_members.count(std::string(ctx.text(toks[i])))) {
          continue;
        }
        if (ctx.text(toks[i + 1]) != ".") continue;
        const std::string_view call = ctx.text(toks[i + 2]);
        if (toks[i + 2].kind != TokenKind::kIdentifier ||
            std::find(kDeriving.begin(), kDeriving.end(), call) == kDeriving.end() ||
            i + 3 >= toks.size() || ctx.text(toks[i + 3]) != "(") {
          continue;
        }
        // Walk back across `=` to the declared name(s).
        std::size_t k = i;
        while (k > method.open_brace && ctx.text(toks[k - 1]) != "=" &&
               ctx.text(toks[k - 1]) != ";" && ctx.text(toks[k - 1]) != "{") {
          --k;
        }
        if (k == method.open_brace || ctx.text(toks[k - 1]) != "=") continue;
        for (std::size_t b = k - 1; b-- > method.open_brace;) {
          const std::string_view w = ctx.text(toks[b]);
          if (toks[b].kind == TokenKind::kIdentifier) {
            if (w != "auto" && w != "const") derived.insert(std::string(w));
            if (w == "auto" || w == "const") break;
          } else if (w != "[" && w != "]" && w != "," && w != "&" && w != "*") {
            break;
          }
        }
      }

      for (std::size_t i = method.open_brace; i < method.close_brace && i < toks.size();
           ++i) {
        if (toks[i].kind != TokenKind::kIdentifier || ctx.text(toks[i]) != "return") continue;
        for (std::size_t j = i + 1; j < method.close_brace && ctx.text(toks[j]) != ";"; ++j) {
          if (toks[j].kind != TokenKind::kIdentifier) continue;
          const std::string word(ctx.text(toks[j]));
          const bool direct = ir.container_members.count(word) > 0;
          if (direct || derived.count(word)) {
            report(out, name(), ctx, toks[i],
                   "'" + method.class_name + "::" + method.name + "' returns a " +
                       (method.returns_ptr ? std::string("pointer") : std::string("reference")) +
                       (direct ? " into member container '" + word + "'"
                               : " through '" + word +
                                     "', a local derived from a member-container lookup,") +
                       " while the class has an eviction path; the referent can "
                       "be erased under the caller — return by value or "
                       "std::shared_ptr (the PR 8 TransformCache bug)");
            i = j;
            break;
          }
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// lock-hygiene: members annotated `// lint:guarded_by(<mutex>)` (on the
// declaration line or the comment line above it, header annotations included
// via the companion mechanism) may only be touched inside a lock_guard/
// unique_lock/scoped_lock/shared_lock scope naming that mutex. Functions
// whose name ends in `_locked` are exempt — the project convention for
// helpers documented to require the lock already held.
class LockHygieneRule : public Rule {
 public:
  std::string_view name() const override { return "lock-hygiene"; }
  std::string_view description() const override {
    return "members annotated lint:guarded_by(<mutex>) must only be accessed "
           "under a lock_guard/unique_lock/scoped_lock on that mutex "
           "(helpers named *_locked are exempt)";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    const FileIr& ir = ctx.ir();
    if (ir.guarded_members.empty()) return;
    const auto& toks = ctx.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier) continue;
      const auto guarded = ir.guarded_members.find(std::string(ctx.text(toks[i])));
      if (guarded == ir.guarded_members.end()) continue;
      // Member access through another object (`other.queue_`) or a qualifier
      // is not an access to *this* instance's member.
      if (i > 0) {
        const std::string_view before = ctx.text(toks[i - 1]);
        if (before == "." || before == "->" || before == "::") continue;
      }
      // Only accesses inside a function body count: declarations and default
      // member initializers live outside every span.
      const auto enclosing = ctx.enclosing_functions(i);
      if (enclosing.empty()) continue;
      bool exempt = false;
      for (const std::string& fn : enclosing) {
        if (fn.size() > 7 && fn.rfind("_locked") == fn.size() - 7) exempt = true;
      }
      if (exempt) continue;
      if (ir.covered_by_lock(i, guarded->second)) continue;
      report(out, name(), ctx, toks[i],
             "guarded member '" + guarded->first + "' accessed outside a lock on '" +
                 guarded->second +
                 "' (lint:guarded_by); take std::lock_guard/std::unique_lock "
                 "first, or move the access into a *_locked helper");
    }
  }
};

// ---------------------------------------------------------------------------
// syscall-hygiene: the daemon retrofits of PR 7/8, mechanized. In files that
// include a socket header: every raw `::send` must pass MSG_NOSIGNAL (a hung-
// up peer must surface as EPIPE, not a process-killing SIGPIPE), and every
// raw `::read`/`::recv`/`::accept` must sit in a function that handles EINTR
// (a stray signal must not be misread as connection loss).
class SyscallHygieneRule : public Rule {
 public:
  std::string_view name() const override { return "syscall-hygiene"; }
  std::string_view description() const override {
    return "in networked code (socket headers included): ::send must pass "
           "MSG_NOSIGNAL, and ::read/::recv/::accept must sit in a function "
           "with an EINTR retry";
  }
  void check(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    if (ctx.tree() != Tree::kSrc) return;
    const FileIr& ir = ctx.ir();
    if (!ir.networked) return;
    const auto& toks = ctx.tokens();
    for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier) continue;
      if (ctx.text(toks[i - 1]) != "::") continue;
      // Require the *global* qualifier: `obj::send` / `Type::read` have an
      // identifier (or template tail) before the `::` — but keywords like
      // `return ::read(...)` still start a global-qualified expression.
      if (i >= 2) {
        const std::string_view before = ctx.text(toks[i - 2]);
        static constexpr std::array<std::string_view, 7> kExprKeywords = {
            "return", "throw", "case", "else", "do", "co_return", "co_yield"};
        const bool keyword = std::find(kExprKeywords.begin(), kExprKeywords.end(),
                                       before) != kExprKeywords.end();
        if (!keyword && (toks[i - 2].kind == TokenKind::kIdentifier || before == ">" ||
                         before == ")")) {
          continue;
        }
      }
      if (ctx.text(toks[i + 1]) != "(") continue;
      const std::string_view call = ctx.text(toks[i]);
      if (call == "send") {
        bool has_nosignal = false;
        int depth = 0;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
          if (toks[j].kind == TokenKind::kIdentifier &&
              ctx.text(toks[j]) == "MSG_NOSIGNAL") {
            has_nosignal = true;
          }
          if (toks[j].kind != TokenKind::kPunct) continue;
          const std::string_view w = ctx.text(toks[j]);
          if (w == "(") ++depth;
          if (w == ")" && --depth == 0) break;
        }
        if (!has_nosignal) {
          report(out, name(), ctx, toks[i],
                 "::send without MSG_NOSIGNAL: a peer that hung up raises "
                 "SIGPIPE and kills the daemon; pass MSG_NOSIGNAL and handle "
                 "the EPIPE return instead");
        }
        continue;
      }
      if (call != "read" && call != "recv" && call != "accept") continue;
      // The enclosing function must mention EINTR (an `errno == EINTR`
      // retry). Innermost span wins; free-standing calls fall back to a
      // whole-file search.
      std::size_t begin = 0;
      std::size_t end = toks.size();
      for (const FunctionSpan& f : ctx.functions()) {
        if (f.open_brace <= i && i <= f.close_brace) {
          begin = f.open_brace;
          end = f.close_brace;
        }
      }
      bool has_eintr = false;
      for (std::size_t j = begin; j <= end && j < toks.size(); ++j) {
        if (toks[j].kind == TokenKind::kIdentifier && ctx.text(toks[j]) == "EINTR") {
          has_eintr = true;
          break;
        }
      }
      if (!has_eintr) {
        report(out, name(), ctx, toks[i],
               "::" + std::string(call) +
                   " without an EINTR retry in the enclosing function: a stray "
                   "signal makes the call fail spuriously and gets misread as "
                   "connection loss; check errno == EINTR and retry");
      }
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> make_default_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<FloatEqualityRule>());
  rules.push_back(std::make_unique<UnorderedIterationRule>());
  rules.push_back(std::make_unique<UnsafeLibmRule>());
  rules.push_back(std::make_unique<FloatNarrowingRule>());
  rules.push_back(std::make_unique<NakedNewRule>());
  rules.push_back(std::make_unique<SolverStatsRule>());
  rules.push_back(std::make_unique<EndlRule>());
  rules.push_back(std::make_unique<BannedIdentifierRule>());
  rules.push_back(std::make_unique<PragmaOnceRule>());
  rules.push_back(std::make_unique<ReservedIdentifierRule>());
  rules.push_back(std::make_unique<SimdHygieneRule>());
  rules.push_back(std::make_unique<DanglingCacheReferenceRule>());
  rules.push_back(std::make_unique<LockHygieneRule>());
  rules.push_back(std::make_unique<SyscallHygieneRule>());
  return rules;
}

}  // namespace csrlmrm::lint

// Incremental lint cache: content-hash keyed verdicts so a warm whole-tree
// scan re-analyzes only the files that changed.
//
// The cache is a JSON document (obs/json dialect) keyed by file path; each
// entry stores the FNV-1a hash of the file's bytes, the hash of its companion
// header (headers feed the .cpp's IR, so a header edit must re-scan the
// .cpp), and the diagnostics + suppression count of the last scan. The whole
// cache is invalidated when kRuleSetVersion or the active rule filter
// changes — a new rule must re-judge every file, not just edited ones.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "rules.hpp"

namespace csrlmrm::lint {

/// FNV-1a 64-bit over raw bytes — the same scheme the daemon's model
/// registry uses for fingerprints; stable across platforms and runs.
std::uint64_t fnv1a_hash(std::string_view bytes);

/// One cached per-file verdict.
struct CacheEntry {
  std::uint64_t hash = 0;            // content hash of the scanned file
  std::uint64_t companion_hash = 0;  // 0 when the file has no companion header
  std::size_t suppressed = 0;
  std::vector<Diagnostic> diagnostics;  // unsuppressed findings of that scan
};

class LintCache {
 public:
  /// Loads `path`; returns an empty cache when the file is missing,
  /// unparsable, or was written by a different rule-set version / rule
  /// filter (`filter_signature` — the sorted, comma-joined --rule list).
  static LintCache load(const std::string& path, const std::string& filter_signature);

  /// True (and fills `out`) when `file` is cached with matching hashes.
  bool lookup(const std::string& file, std::uint64_t hash, std::uint64_t companion_hash,
              CacheEntry& out) const;

  void store(const std::string& file, CacheEntry entry);

  /// Writes the cache document; best-effort (returns false on I/O failure).
  bool save(const std::string& path, const std::string& filter_signature) const;

 private:
  std::map<std::string, CacheEntry> entries_;
};

}  // namespace csrlmrm::lint

#include "ir.hpp"

#include <algorithm>
#include <array>

#include "context.hpp"

namespace csrlmrm::lint {

namespace {

bool is_container_word(std::string_view word) {
  static constexpr std::array<std::string_view, 12> kContainers = {
      "map",  "set",  "multimap", "multiset", "unordered_map", "unordered_set",
      "unordered_multimap", "unordered_multiset", "vector", "deque", "list",
      "forward_list"};
  return std::find(kContainers.begin(), kContainers.end(), word) != kContainers.end();
}

bool is_lock_type(std::string_view word) {
  static constexpr std::array<std::string_view, 4> kLocks = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};
  return std::find(kLocks.begin(), kLocks.end(), word) != kLocks.end();
}

bool is_eviction_call(std::string_view word) {
  static constexpr std::array<std::string_view, 4> kCalls = {"erase", "pop_front",
                                                            "pop_back", "clear"};
  return std::find(kCalls.begin(), kCalls.end(), word) != kCalls.end();
}

/// A class/struct definition block found in one file.
struct ClassBlock {
  std::string name;
  std::size_t open_brace = 0;
  std::size_t close_brace = 0;
};

// ---------------------------------------------------------------------------
// Pass 1: match every brace pair.
void blocks_pass(const FileContext& ctx, FileIr& ir) {
  const auto& toks = ctx.tokens();
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    const std::string_view t = ctx.text(toks[i]);
    if (t == "{") {
      stack.push_back(i);
    } else if (t == "}" && !stack.empty()) {
      ir.blocks.emplace_back(stack.back(), i);
      stack.pop_back();
    }
  }
  std::sort(ir.blocks.begin(), ir.blocks.end());
}

std::size_t matching_close(const FileIr& ir, std::size_t open) {
  for (const auto& [o, c] : ir.blocks) {
    if (o == open) return c;
  }
  return open;  // unmatched (truncated file): degrade to a zero-length block
}

/// Innermost block containing `tok`, or (0,0) when outside every block.
std::pair<std::size_t, std::size_t> innermost_block(const FileIr& ir, std::size_t tok) {
  std::pair<std::size_t, std::size_t> best{0, 0};
  bool found = false;
  for (const auto& [open, close] : ir.blocks) {
    if (open < tok && tok <= close && (!found || open > best.first)) {
      best = {open, close};
      found = true;
    }
  }
  return found ? best : std::pair<std::size_t, std::size_t>{0, 0};
}

// ---------------------------------------------------------------------------
// Pass 2: index class/struct member fields. Within a class body, nested
// braces (method bodies, nested types, brace initializers) are skipped; the
// remaining depth-1 tokens split into declarations at ';'. A declaration
// whose top-level shape ends in an identifier — after truncating `= init`
// trailers and that contains no top-level '(' — is a member field.
void classes_pass(const FileContext& ctx, const FileIr& self_ir, FileIr& ir,
                  std::vector<ClassBlock>& class_blocks) {
  const auto& toks = ctx.tokens();
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    const std::string_view kw = ctx.text(toks[i]);
    if (kw != "class" && kw != "struct") continue;
    if (i > 0 && ctx.text(toks[i - 1]) == "enum") continue;  // enum class
    if (toks[i + 1].kind != TokenKind::kIdentifier) continue;
    const std::string class_name(ctx.text(toks[i + 1]));
    // Find the body '{' (skipping a base-clause) or bail on a forward decl.
    std::size_t open = 0;
    for (std::size_t j = i + 2; j < toks.size(); ++j) {
      if (toks[j].kind != TokenKind::kPunct) continue;
      const std::string_view w = ctx.text(toks[j]);
      if (w == ";") break;  // forward declaration
      if (w == "{") {
        open = j;
        break;
      }
    }
    if (open == 0) continue;
    const std::size_t close = matching_close(self_ir, open);
    class_blocks.push_back({class_name, open, close});

    std::vector<std::size_t> decl;  // token indices of the current declaration
    auto flush = [&]() {
      std::vector<std::size_t> stmt;
      stmt.swap(decl);
      if (stmt.size() < 2) return;
      const std::string_view head = ctx.text(toks[stmt[0]]);
      if (head == "using" || head == "typedef" || head == "friend" || head == "static" ||
          head == "enum" || head == "class" || head == "struct" || head == "template") {
        return;
      }
      // Truncate an `= initializer` trailer (top level only).
      int angle = 0;
      int paren = 0;
      std::size_t end = stmt.size();
      bool has_top_paren = false;
      for (std::size_t k = 0; k < stmt.size(); ++k) {
        const Token& t = toks[stmt[k]];
        if (t.kind != TokenKind::kPunct) continue;
        const std::string_view w = ctx.text(t);
        if (w == "<") ++angle;
        if (w == ">") angle = std::max(0, angle - 1);
        if (w == ">>") angle = std::max(0, angle - 2);
        if (angle == 0 && w == "(") {
          ++paren;
          has_top_paren = true;
        }
        if (angle == 0 && w == ")") paren = std::max(0, paren - 1);
        if (angle == 0 && paren == 0 && w == "=") {
          end = k;
          break;
        }
      }
      if (has_top_paren || end == 0) return;  // method declaration (or malformed)
      const Token& name_tok = toks[stmt[end - 1]];
      if (name_tok.kind != TokenKind::kIdentifier) return;
      MemberField field;
      field.class_name = class_name;
      field.name = std::string(ctx.text(name_tok));
      field.decl_line = name_tok.line;
      for (std::size_t k = 0; k + 1 < end; ++k) {
        if (!field.type_text.empty()) field.type_text += ' ';
        field.type_text += std::string(ctx.text(toks[stmt[k]]));
        if (toks[stmt[k]].kind == TokenKind::kIdentifier &&
            is_container_word(ctx.text(toks[stmt[k]]))) {
          field.is_container = true;
        }
      }
      if (field.type_text.empty()) return;
      ir.fields.push_back(std::move(field));
    };

    // Whether the declaration in progress contains a top-level '(' — the
    // discriminator between an inline method definition (its `{...}` body has
    // no trailing ';', so the declaration must be discarded) and a member
    // brace initializer (`std::atomic<bool> running_{false};` keeps its
    // prefix and flushes at the ';').
    auto decl_has_paren = [&]() {
      int angle = 0;
      for (const std::size_t idx : decl) {
        if (toks[idx].kind != TokenKind::kPunct) continue;
        const std::string_view w = ctx.text(toks[idx]);
        if (w == "<") ++angle;
        if (w == ">") angle = std::max(0, angle - 1);
        if (w == ">>") angle = std::max(0, angle - 2);
        if (angle == 0 && w == "(") return true;
      }
      return false;
    };

    for (std::size_t j = open + 1; j < close && j < toks.size(); ++j) {
      const std::string_view w = ctx.text(toks[j]);
      if (toks[j].kind == TokenKind::kPunct && w == "{") {
        if (decl_has_paren()) decl.clear();  // inline method body: not a field
        j = matching_close(self_ir, j);
        continue;
      }
      if (toks[j].kind == TokenKind::kIdentifier &&
          (w == "public" || w == "private" || w == "protected") && j + 1 < close &&
          ctx.text(toks[j + 1]) == ":") {
        decl.clear();
        ++j;
        continue;
      }
      if (toks[j].kind == TokenKind::kPunct && w == ";") {
        flush();
        continue;
      }
      if (toks[j].kind == TokenKind::kPreprocessor) continue;
      decl.push_back(j);
    }
    // Skip past this class body so nested classes are not re-indexed with the
    // outer loop (they were already walked above as opaque nested blocks —
    // their own pass iteration still finds them via `class` keyword).
  }
}

// ---------------------------------------------------------------------------
// Pass 3: attach `lint:guarded_by(<mutex>)` comments to member fields. The
// annotation sits on the declaration line or on a comment-only line directly
// above it (same placement contract as lint:allow).
void annotations_pass(const FileContext& ctx, FileIr& ir) {
  const LexedFile& file = ctx.file();
  std::set<std::size_t> code_lines;
  for (const Token& t : file.tokens) code_lines.insert(t.line);

  std::map<std::size_t, std::string> line_guards;  // code line -> mutex name
  static constexpr std::string_view kNeedle = "lint:guarded_by";
  for (const Comment& c : file.comments) {
    const std::string_view body = file.text(c);
    const std::size_t at = body.find(kNeedle);
    if (at == std::string_view::npos) continue;
    std::size_t cursor = at + kNeedle.size();
    if (cursor >= body.size() || body[cursor] != '(') continue;
    const std::size_t close = body.find(')', cursor);
    if (close == std::string_view::npos) continue;
    std::string_view name = body.substr(cursor + 1, close - cursor - 1);
    const std::size_t b = name.find_first_not_of(" \t");
    const std::size_t e = name.find_last_not_of(" \t");
    if (b == std::string_view::npos) continue;
    name = name.substr(b, e - b + 1);
    if (c.owns_line && !code_lines.count(c.line)) {
      const auto next = code_lines.upper_bound(c.end_line);
      if (next != code_lines.end()) line_guards[*next] = std::string(name);
    } else {
      line_guards[c.line] = std::string(name);
    }
  }
  if (line_guards.empty()) return;
  for (MemberField& field : ir.fields) {
    const auto hit = line_guards.find(field.decl_line);
    if (hit == line_guards.end()) continue;
    field.guarded_by = hit->second;
    ir.guarded_members[field.name] = hit->second;
  }
}

// ---------------------------------------------------------------------------
// Pass 4: enrich FunctionSpans into MethodIr — recover the name token, the
// `Class::` qualifier (or the enclosing class block for inline methods), and
// whether the return type is a raw reference/pointer (the token immediately
// before the qualified name).
void methods_pass(const FileContext& ctx, const std::vector<ClassBlock>& class_blocks,
                  FileIr& ir) {
  const auto& toks = ctx.tokens();
  for (const FunctionSpan& f : ctx.functions()) {
    MethodIr method;
    method.name = f.name;
    method.open_brace = f.open_brace;
    method.close_brace = f.close_brace;

    // The name token: nearest `name (` pair scanning back from the brace.
    const std::size_t window = f.open_brace > 256 ? f.open_brace - 256 : 0;
    for (std::size_t k = f.open_brace; k-- > window;) {
      if (toks[k].kind == TokenKind::kIdentifier && ctx.text(toks[k]) == f.name &&
          k + 1 < toks.size() && ctx.text(toks[k + 1]) == "(") {
        method.name_tok = k;
        break;
      }
    }
    if (method.name_tok != 0) {
      // Walk back over `Outer::Inner::` qualifiers; the nearest qualifier is
      // the class, the token before the whole chain types the return.
      std::size_t start = method.name_tok;
      while (start >= 2 && ctx.text(toks[start - 1]) == "::" &&
             toks[start - 2].kind == TokenKind::kIdentifier) {
        if (method.class_name.empty()) {
          method.class_name = std::string(ctx.text(toks[start - 2]));
        }
        start -= 2;
      }
      if (start > 0) {
        const std::string_view before = ctx.text(toks[start - 1]);
        method.returns_ref = before == "&";
        method.returns_ptr = before == "*";
      }
    }
    if (method.class_name.empty()) {
      for (const ClassBlock& block : class_blocks) {
        if (block.open_brace < f.open_brace && f.close_brace < block.close_brace) {
          method.class_name = block.name;  // innermost wins: keep iterating
        }
      }
    }
    ir.methods.push_back(std::move(method));
  }
}

// ---------------------------------------------------------------------------
// Pass 5: RAII lock scopes. A `lock_guard<...> name(args)` declaration
// covers from its type token to the closing brace of the innermost enclosing
// block; every identifier among the constructor arguments counts as a locked
// mutex name (so member access through `owner.mutex_` still matches).
void locks_pass(const FileContext& ctx, FileIr& ir) {
  const auto& toks = ctx.tokens();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier || !is_lock_type(ctx.text(toks[i]))) continue;
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].kind == TokenKind::kPunct && ctx.text(toks[j]) == "<") {
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (toks[j].kind != TokenKind::kPunct) continue;
        const std::string_view w = ctx.text(toks[j]);
        if (w == "<") ++depth;
        if (w == ">" && --depth == 0) {
          ++j;
          break;
        }
        if (w == ">>") {
          depth -= 2;
          if (depth <= 0) {
            ++j;
            break;
          }
        }
        if (w == ";") break;
      }
    }
    if (j >= toks.size() || toks[j].kind != TokenKind::kIdentifier) continue;  // not a decl
    std::size_t open_paren = j + 1;
    if (open_paren >= toks.size() || ctx.text(toks[open_paren]) != "(") continue;
    LockScope scope;
    scope.begin_tok = i;
    int depth = 0;
    for (std::size_t k = open_paren; k < toks.size(); ++k) {
      if (toks[k].kind == TokenKind::kIdentifier) {
        scope.mutexes.push_back(std::string(ctx.text(toks[k])));
        continue;
      }
      if (toks[k].kind != TokenKind::kPunct) continue;
      const std::string_view w = ctx.text(toks[k]);
      if (w == "(") ++depth;
      if (w == ")" && --depth == 0) break;
    }
    if (scope.mutexes.empty()) continue;
    const auto block = innermost_block(ir, i);
    scope.end_tok = block.second != 0 ? block.second : toks.size() - 1;
    ir.lock_scopes.push_back(std::move(scope));
  }
}

// ---------------------------------------------------------------------------
// Pass 6: eviction classes — a method body erasing/popping/clearing a member
// container, or a method named evict*/trim*.
void eviction_pass(const FileContext& ctx, FileIr& ir) {
  const auto& toks = ctx.tokens();
  for (const MethodIr& method : ir.methods) {
    if (method.class_name.empty()) continue;
    if (method.name.rfind("evict", 0) == 0 || method.name.rfind("trim", 0) == 0) {
      ir.eviction_classes.insert(method.class_name);
      continue;
    }
    for (std::size_t k = method.open_brace; k + 3 <= method.close_brace && k < toks.size();
         ++k) {
      if (toks[k].kind != TokenKind::kIdentifier) continue;
      if (!ir.container_members.count(std::string(ctx.text(toks[k])))) continue;
      if (ctx.text(toks[k + 1]) != ".") continue;
      if (toks[k + 2].kind != TokenKind::kIdentifier ||
          !is_eviction_call(ctx.text(toks[k + 2]))) {
        continue;
      }
      if (k + 3 >= toks.size() || ctx.text(toks[k + 3]) != "(") continue;
      ir.eviction_classes.insert(method.class_name);
      break;
    }
  }
}

void networked_pass(const FileContext& ctx, FileIr& ir) {
  for (const Token& t : ctx.tokens()) {
    if (t.kind != TokenKind::kPreprocessor) continue;
    const std::string_view text = ctx.text(t);
    if (text.find("include") == std::string_view::npos) continue;
    if (text.find("sys/socket.h") != std::string_view::npos ||
        text.find("sys/un.h") != std::string_view::npos ||
        text.find("netinet/") != std::string_view::npos) {
      ir.networked = true;
      return;
    }
  }
}

}  // namespace

bool FileIr::covered_by_lock(std::size_t tok, const std::string& mutex_name) const {
  for (const LockScope& scope : lock_scopes) {
    if (scope.begin_tok <= tok && tok <= scope.end_tok &&
        std::find(scope.mutexes.begin(), scope.mutexes.end(), mutex_name) !=
            scope.mutexes.end()) {
      return true;
    }
  }
  return false;
}

FileIr build_file_ir(const FileContext& ctx, const FileContext* companion) {
  FileIr ir;
  std::vector<ClassBlock> class_blocks;
  blocks_pass(ctx, ir);
  classes_pass(ctx, ir, ir, class_blocks);
  annotations_pass(ctx, ir);
  // Companion header declarations merge into the same field index: a .cpp is
  // checked against the members (and guarded_by annotations) its header
  // declares. Bodies, locks, and eviction detection stay file-local.
  if (companion != nullptr) {
    FileIr companion_blocks_only;
    std::vector<ClassBlock> companion_classes;
    blocks_pass(*companion, companion_blocks_only);
    classes_pass(*companion, companion_blocks_only, companion_blocks_only,
                 companion_classes);
    annotations_pass(*companion, companion_blocks_only);
    for (MemberField& field : companion_blocks_only.fields) {
      ir.fields.push_back(std::move(field));
    }
    for (const auto& [member, mutex] : companion_blocks_only.guarded_members) {
      ir.guarded_members.emplace(member, mutex);
    }
  }
  for (const MemberField& field : ir.fields) {
    if (field.is_container) ir.container_members.insert(field.name);
  }
  methods_pass(ctx, class_blocks, ir);
  locks_pass(ctx, ir);
  eviction_pass(ctx, ir);
  networked_pass(ctx, ir);
  return ir;
}

}  // namespace csrlmrm::lint

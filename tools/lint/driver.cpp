#include "driver.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cache.hpp"
#include "context.hpp"
#include "fix.hpp"
#include "lexer.hpp"
#include "parallel/thread_pool.hpp"

namespace csrlmrm::lint {

namespace {

namespace fs = std::filesystem;

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" || ext == ".cxx";
}

bool implementation_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx";
}

// Directories never descended into: generated trees, VCS metadata, and the
// fixture corpus of intentional violations.
bool skipped_directory(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == ".git" || name == "Testing" || name == "lint_fixtures" ||
         name.rfind("build", 0) == 0;
}

/// Sibling header of an implementation file, or "" when none exists on disk.
std::string companion_header_path(const std::string& path) {
  const fs::path p(path);
  if (!implementation_extension(p)) return {};
  for (const char* ext : {".hpp", ".h"}) {
    fs::path sibling = p;
    sibling.replace_extension(ext);
    std::error_code ec;
    if (fs::is_regular_file(sibling, ec)) return sibling.string();
  }
  return {};
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = std::move(buf).str();
  return true;
}

/// The per-file unit of work; everything the merge step needs, so worker
/// threads never touch shared state.
struct FileResult {
  std::vector<Diagnostic> diagnostics;
  std::size_t suppressed = 0;
  std::size_t fixes_applied = 0;
  bool scanned = false;
  bool cached = false;
  std::string error;  // non-empty on read failure
  CacheEntry cache_entry;
};

void run_rules(const FileContext& ctx, const std::vector<std::unique_ptr<Rule>>& rules,
               const LintOptions& options, std::vector<Diagnostic>& diagnostics,
               std::size_t& suppressed) {
  std::vector<Diagnostic> raw;
  for (const auto& rule : rules) {
    if (!options.rule_filter.empty() &&
        std::find(options.rule_filter.begin(), options.rule_filter.end(), rule->name()) ==
            options.rule_filter.end()) {
      continue;
    }
    rule->check(ctx, raw);
  }
  for (Diagnostic& d : raw) {
    if (ctx.suppressed(d.rule, d.line)) {
      ++suppressed;
    } else {
      diagnostics.push_back(std::move(d));
    }
  }
}

void lint_buffer(const std::string& path, std::string source,
                 const std::string& companion_path, std::string companion,
                 const std::vector<std::unique_ptr<Rule>>& rules,
                 const LintOptions& options, std::vector<Diagnostic>& diagnostics,
                 std::size_t& suppressed) {
  if (companion_path.empty()) {
    const FileContext ctx(lex(path, std::move(source)));
    run_rules(ctx, rules, options, diagnostics, suppressed);
  } else {
    const FileContext ctx(lex(path, std::move(source)),
                          lex(companion_path, std::move(companion)));
    run_rules(ctx, rules, options, diagnostics, suppressed);
  }
}

/// Scans one on-disk file into `result`, consulting (and feeding) the cache.
void scan_file(const std::string& path, const std::vector<std::unique_ptr<Rule>>& rules,
               const LintOptions& options, const LintCache* cache, FileResult& result) {
  std::string source;
  if (!read_file(path, source)) {
    result.error = path + ": unreadable";
    return;
  }
  const std::string companion_path = companion_header_path(path);
  std::string companion;
  if (!companion_path.empty()) read_file(companion_path, companion);

  const std::uint64_t hash = fnv1a_hash(source);
  const std::uint64_t companion_hash =
      companion_path.empty() ? 0 : fnv1a_hash(companion);
  if (cache != nullptr && !options.fix) {
    CacheEntry hit;
    if (cache->lookup(path, hash, companion_hash, hit)) {
      result.diagnostics = hit.diagnostics;
      result.suppressed = hit.suppressed;
      result.cached = true;
      result.cache_entry = std::move(hit);
      return;
    }
  }

  lint_buffer(path, source, companion_path, companion, rules, options,
              result.diagnostics, result.suppressed);
  result.scanned = true;

  if (options.fix) {
    std::size_t applied = 0;
    const std::string fixed = apply_fixes(source, result.diagnostics, &applied);
    if (applied > 0 && fixed != source) {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      if (!out || !(out << fixed)) {
        result.error = path + ": cannot write fixes";
        return;
      }
      result.fixes_applied = applied;
      // Re-lint the fixed text so the report describes what is now on disk.
      result.diagnostics.clear();
      result.suppressed = 0;
      lint_buffer(path, fixed, companion_path, std::move(companion), rules, options,
                  result.diagnostics, result.suppressed);
    }
  }

  result.cache_entry.hash = options.fix ? fnv1a_hash(source) : hash;
  result.cache_entry.companion_hash = companion_hash;
  result.cache_entry.suppressed = result.suppressed;
  result.cache_entry.diagnostics = result.diagnostics;
  if (result.fixes_applied > 0) {
    // The on-disk bytes changed; recompute so the next warm run trusts it.
    std::string now_on_disk;
    if (read_file(path, now_on_disk)) result.cache_entry.hash = fnv1a_hash(now_on_disk);
  }
}

std::string filter_signature(const LintOptions& options) {
  std::vector<std::string> names = options.rule_filter;
  std::sort(names.begin(), names.end());
  std::string joined;
  for (const std::string& n : names) {
    if (!joined.empty()) joined += ',';
    joined += n;
  }
  return joined;
}

}  // namespace

LintReport lint_source(std::string virtual_path, std::string source,
                       const LintOptions& options) {
  LintReport report;
  const auto rules = make_default_rules();
  lint_buffer(virtual_path, std::move(source), {}, {}, rules, options,
              report.diagnostics, report.suppressed);
  report.files_scanned = 1;
  return report;
}

LintReport lint_source_with_companion(std::string virtual_path, std::string source,
                                      std::string companion_path, std::string companion,
                                      const LintOptions& options) {
  LintReport report;
  const auto rules = make_default_rules();
  lint_buffer(virtual_path, std::move(source), companion_path, std::move(companion),
              rules, options, report.diagnostics, report.suppressed);
  report.files_scanned = 1;
  return report;
}

LintReport lint_paths(const std::vector<std::string>& paths, const LintOptions& options) {
  LintReport report;
  const auto rules = make_default_rules();

  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      fs::recursive_directory_iterator it(p, fs::directory_options::skip_permission_denied, ec);
      if (ec) {
        report.errors.push_back(p + ": " + ec.message());
        continue;
      }
      for (auto end = fs::end(it); it != end; it.increment(ec)) {
        if (ec) break;
        if (it->is_directory() && skipped_directory(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && lintable_extension(it->path())) {
          files.push_back(it->path().string());
        }
      }
    } else if (fs::exists(p, ec)) {
      files.push_back(p);
    } else {
      report.errors.push_back(p + ": no such file or directory");
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  const std::string signature = filter_signature(options);
  LintCache cache;
  const bool caching = !options.cache_path.empty();
  if (caching) cache = LintCache::load(options.cache_path, signature);

  // Scan in parallel into per-file slots; the merge below walks the slots in
  // sorted-path order, so the report is byte-identical at every thread count.
  std::vector<FileResult> results(files.size());
  parallel::parallel_for(files.size(), options.threads,
                         [&](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i) {
                             scan_file(files[i], rules, options,
                                       caching ? &cache : nullptr, results[i]);
                           }
                         });

  for (std::size_t i = 0; i < files.size(); ++i) {
    FileResult& r = results[i];
    if (!r.error.empty()) {
      report.errors.push_back(r.error);
      continue;
    }
    if (r.cached) {
      ++report.files_cached;
    } else {
      ++report.files_scanned;
    }
    report.suppressed += r.suppressed;
    report.fixes_applied += r.fixes_applied;
    for (Diagnostic& d : r.diagnostics) report.diagnostics.push_back(std::move(d));
    if (caching) cache.store(files[i], std::move(r.cache_entry));
  }

  std::stable_sort(report.diagnostics.begin(), report.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });

  if (caching) cache.save(options.cache_path, signature);
  return report;
}

obs::JsonValue report_to_json(const LintReport& report) {
  obs::JsonValue root = obs::JsonValue::object();
  root.set("tool", obs::JsonValue(std::string("csrlmrm-lint")));
  root.set("version", obs::JsonValue(2.0));
  root.set("files_scanned", obs::JsonValue(static_cast<double>(report.files_scanned)));
  root.set("files_cached", obs::JsonValue(static_cast<double>(report.files_cached)));
  root.set("suppressed", obs::JsonValue(static_cast<double>(report.suppressed)));
  root.set("fixes_applied", obs::JsonValue(static_cast<double>(report.fixes_applied)));
  root.set("clean", obs::JsonValue(report.clean()));
  obs::JsonValue diags = obs::JsonValue::array();
  for (const Diagnostic& d : report.diagnostics) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("rule", obs::JsonValue(d.rule));
    entry.set("file", obs::JsonValue(d.file));
    entry.set("line", obs::JsonValue(static_cast<double>(d.line)));
    entry.set("column", obs::JsonValue(static_cast<double>(d.column)));
    entry.set("message", obs::JsonValue(d.message));
    diags.push_back(std::move(entry));
  }
  root.set("diagnostics", std::move(diags));
  obs::JsonValue errors = obs::JsonValue::array();
  for (const std::string& e : report.errors) errors.push_back(obs::JsonValue(e));
  root.set("errors", std::move(errors));
  return root;
}

std::string format_text(const LintReport& report) {
  std::ostringstream out;
  for (const Diagnostic& d : report.diagnostics) {
    out << d.file << ':' << d.line << ':' << d.column << ": [" << d.rule << "] "
        << d.message << '\n';
  }
  for (const std::string& e : report.errors) out << "error: " << e << '\n';
  out << report.files_scanned << " file(s) scanned, " << report.files_cached
      << " cached, " << report.diagnostics.size() << " diagnostic(s), "
      << report.suppressed << " suppressed";
  if (report.fixes_applied > 0) out << ", " << report.fixes_applied << " fix(es) applied";
  out << '\n';
  return std::move(out).str();
}

}  // namespace csrlmrm::lint

#include "driver.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "context.hpp"
#include "lexer.hpp"

namespace csrlmrm::lint {

namespace {

namespace fs = std::filesystem;

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" || ext == ".cxx";
}

// Directories never descended into: generated trees, VCS metadata, and the
// fixture corpus of intentional violations.
bool skipped_directory(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == ".git" || name == "Testing" || name == "lint_fixtures" ||
         name.rfind("build", 0) == 0;
}

void lint_one(const std::string& path, std::string source,
              const std::vector<std::unique_ptr<Rule>>& rules,
              const LintOptions& options, LintReport& report) {
  FileContext ctx(lex(path, std::move(source)));
  ++report.files_scanned;
  std::vector<Diagnostic> raw;
  for (const auto& rule : rules) {
    if (!options.rule_filter.empty() &&
        std::find(options.rule_filter.begin(), options.rule_filter.end(), rule->name()) ==
            options.rule_filter.end()) {
      continue;
    }
    rule->check(ctx, raw);
  }
  for (Diagnostic& d : raw) {
    if (ctx.suppressed(d.rule, d.line)) {
      ++report.suppressed;
    } else {
      report.diagnostics.push_back(std::move(d));
    }
  }
}

}  // namespace

LintReport lint_source(std::string virtual_path, std::string source,
                       const LintOptions& options) {
  LintReport report;
  const auto rules = make_default_rules();
  lint_one(virtual_path, std::move(source), rules, options, report);
  return report;
}

LintReport lint_paths(const std::vector<std::string>& paths, const LintOptions& options) {
  LintReport report;
  const auto rules = make_default_rules();

  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      fs::recursive_directory_iterator it(p, fs::directory_options::skip_permission_denied, ec);
      if (ec) {
        report.errors.push_back(p + ": " + ec.message());
        continue;
      }
      for (auto end = fs::end(it); it != end; it.increment(ec)) {
        if (ec) break;
        if (it->is_directory() && skipped_directory(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && lintable_extension(it->path())) {
          files.push_back(it->path().string());
        }
      }
    } else if (fs::exists(p, ec)) {
      files.push_back(p);
    } else {
      report.errors.push_back(p + ": no such file or directory");
    }
  }
  std::sort(files.begin(), files.end());

  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      report.errors.push_back(path + ": unreadable");
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    lint_one(path, std::move(buf).str(), rules, options, report);
  }

  std::stable_sort(report.diagnostics.begin(), report.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  return report;
}

obs::JsonValue report_to_json(const LintReport& report) {
  obs::JsonValue root = obs::JsonValue::object();
  root.set("tool", obs::JsonValue(std::string("csrlmrm-lint")));
  root.set("version", obs::JsonValue(1.0));
  root.set("files_scanned", obs::JsonValue(static_cast<double>(report.files_scanned)));
  root.set("suppressed", obs::JsonValue(static_cast<double>(report.suppressed)));
  root.set("clean", obs::JsonValue(report.clean()));
  obs::JsonValue diags = obs::JsonValue::array();
  for (const Diagnostic& d : report.diagnostics) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("rule", obs::JsonValue(d.rule));
    entry.set("file", obs::JsonValue(d.file));
    entry.set("line", obs::JsonValue(static_cast<double>(d.line)));
    entry.set("column", obs::JsonValue(static_cast<double>(d.column)));
    entry.set("message", obs::JsonValue(d.message));
    diags.push_back(std::move(entry));
  }
  root.set("diagnostics", std::move(diags));
  obs::JsonValue errors = obs::JsonValue::array();
  for (const std::string& e : report.errors) errors.push_back(obs::JsonValue(e));
  root.set("errors", std::move(errors));
  return root;
}

std::string format_text(const LintReport& report) {
  std::ostringstream out;
  for (const Diagnostic& d : report.diagnostics) {
    out << d.file << ':' << d.line << ':' << d.column << ": [" << d.rule << "] "
        << d.message << '\n';
  }
  for (const std::string& e : report.errors) out << "error: " << e << '\n';
  out << report.files_scanned << " file(s) scanned, " << report.diagnostics.size()
      << " diagnostic(s), " << report.suppressed << " suppressed\n";
  return std::move(out).str();
}

}  // namespace csrlmrm::lint

// Minimal C++ lexer for csrlmrm-lint.
//
// This is not a conforming C++ tokenizer — it is a single-pass scanner that
// splits a translation unit into the token classes the lint rules care about:
// identifiers, numeric literals (with a float/integer distinction), string and
// character literals (including raw strings), punctuation (maximal munch over
// the multi-character operators), and whole preprocessor lines. Comments are
// not emitted as tokens; they are collected separately so the suppression
// scanner (`// lint:allow(<rule>)`) can see them while rules iterate over pure
// code tokens and can never trip on commented-out code.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace csrlmrm::lint {

enum class TokenKind {
  kIdentifier,    // identifiers and keywords alike; rules match by text
  kNumber,        // numeric literal; see Token::is_float_literal
  kString,        // "..." or R"(...)" including encoding prefixes
  kChar,          // '...'
  kPunct,         // operators/punctuation, maximal munch ("==", "::", "->")
  kPreprocessor,  // one whole directive line (continuations folded in)
};

struct Token {
  TokenKind kind;
  std::size_t offset;  // byte offset into LexedFile::source
  std::size_t length;
  std::size_t line;    // 1-based line of the first byte
  std::size_t column;  // 1-based column of the first byte
  bool is_float_literal = false;  // kNumber only: has '.', exponent, or f/F suffix
};

struct Comment {
  std::size_t offset;
  std::size_t length;
  std::size_t line;        // line the comment starts on
  std::size_t end_line;    // line the comment ends on (== line for //)
  bool block;              // true for /* */, false for //
  bool owns_line;          // no code token earlier on `line`
};

/// A lexed translation unit. Tokens and comments hold offsets into `source`,
/// which the LexedFile owns; `text(tok)` views into it.
struct LexedFile {
  std::string path;
  std::string source;
  std::vector<Token> tokens;
  std::vector<Comment> comments;

  std::string_view text(const Token& t) const {
    return std::string_view(source).substr(t.offset, t.length);
  }
  std::string_view text(const Comment& c) const {
    return std::string_view(source).substr(c.offset, c.length);
  }
};

/// Lexes `source` (never throws: unrecognized bytes become 1-char kPunct
/// tokens, unterminated literals run to end of file).
LexedFile lex(std::string path, std::string source);

}  // namespace csrlmrm::lint

#include "sarif.hpp"

namespace csrlmrm::lint {

using obs::JsonValue;

obs::JsonValue report_to_sarif(const LintReport& report) {
  JsonValue driver = JsonValue::object();
  driver.set("name", JsonValue(std::string("csrlmrm-lint")));
  driver.set("version", JsonValue(std::string("2.0.0")));
  driver.set("informationUri",
             JsonValue(std::string("https://example.invalid/csrlmrm-lint")));
  JsonValue rules = JsonValue::array();
  for (const auto& rule : make_default_rules()) {
    JsonValue entry = JsonValue::object();
    entry.set("id", JsonValue(std::string(rule->name())));
    JsonValue text = JsonValue::object();
    text.set("text", JsonValue(std::string(rule->description())));
    entry.set("shortDescription", std::move(text));
    rules.push_back(std::move(entry));
  }
  driver.set("rules", std::move(rules));

  JsonValue tool = JsonValue::object();
  tool.set("driver", std::move(driver));

  JsonValue results = JsonValue::array();
  for (const Diagnostic& d : report.diagnostics) {
    JsonValue result = JsonValue::object();
    result.set("ruleId", JsonValue(d.rule));
    result.set("level", JsonValue(std::string("error")));
    JsonValue message = JsonValue::object();
    message.set("text", JsonValue(d.message));
    result.set("message", std::move(message));
    JsonValue artifact = JsonValue::object();
    artifact.set("uri", JsonValue(d.file));
    JsonValue region = JsonValue::object();
    region.set("startLine", JsonValue(static_cast<double>(d.line)));
    region.set("startColumn", JsonValue(static_cast<double>(d.column)));
    JsonValue physical = JsonValue::object();
    physical.set("artifactLocation", std::move(artifact));
    physical.set("region", std::move(region));
    JsonValue location = JsonValue::object();
    location.set("physicalLocation", std::move(physical));
    JsonValue locations = JsonValue::array();
    locations.push_back(std::move(location));
    result.set("locations", std::move(locations));
    results.push_back(std::move(result));
  }

  JsonValue run = JsonValue::object();
  run.set("tool", std::move(tool));
  run.set("results", std::move(results));
  JsonValue runs = JsonValue::array();
  runs.push_back(std::move(run));

  JsonValue root = JsonValue::object();
  root.set("$schema",
           JsonValue(std::string(
               "https://json.schemastore.org/sarif-2.1.0.json")));
  root.set("version", JsonValue(std::string("2.1.0")));
  root.set("runs", std::move(runs));
  return root;
}

}  // namespace csrlmrm::lint

// Rule interface and the default rule set for csrlmrm-lint.
//
// Each rule encodes one project convention the compiler cannot check (see
// README "Lint & sanitizer lanes" for the catalogue with rationale). Rules
// are token-level heuristics by design: they must be fast, dependency-free,
// and conservative enough to run over the whole tree on every ctest
// invocation. False negatives are acceptable; false positives must be rare
// and suppressible via `// lint:allow(<rule>)`.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "context.hpp"

namespace csrlmrm::lint {

/// Monotonic rule-set version: bump whenever a rule is added, removed, or its
/// matching logic changes, so the incremental cache (cache.hpp) invalidates
/// stale verdicts. v1 = the PR 4 token catalogue; v2 = the flow-aware rules
/// (dangling-cache-reference, lock-hygiene, syscall-hygiene) + autofixes.
inline constexpr int kRuleSetVersion = 2;

/// One mechanical source edit attached to a diagnostic, applied by --fix.
/// Replaces `length` bytes at `offset` in the original source with
/// `replacement` (length 0 inserts).
struct FixEdit {
  std::size_t offset = 0;
  std::size_t length = 0;
  std::string replacement;
};

struct Diagnostic {
  std::string rule;
  std::string file;
  std::size_t line = 0;
  std::size_t column = 0;
  std::string message;
  std::vector<FixEdit> fixes;  // empty when the rule has no autofix
};

class Rule {
 public:
  virtual ~Rule() = default;
  virtual std::string_view name() const = 0;
  /// One-line rationale shown by --list-rules and in the JSON report.
  virtual std::string_view description() const = 0;
  /// Appends diagnostics for `ctx`. Suppression comments are applied by the
  /// driver afterwards, so rules report every match unconditionally.
  virtual void check(const FileContext& ctx, std::vector<Diagnostic>& out) const = 0;
};

/// The full rule catalogue, in stable order:
///   float-equality, unordered-iteration, unsafe-libm, float-narrowing,
///   naked-new, solver-stats, endl, banned-identifier, pragma-once,
///   reserved-identifier, simd-hygiene, dangling-cache-reference,
///   lock-hygiene, syscall-hygiene
std::vector<std::unique_ptr<Rule>> make_default_rules();

}  // namespace csrlmrm::lint

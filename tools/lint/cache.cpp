#include "cache.hpp"

#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace csrlmrm::lint {

namespace {

// Hashes travel as fixed-width hex strings: a JSON number is a double and
// cannot carry 64 bits losslessly.
std::string hash_to_hex(std::uint64_t hash) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

std::uint64_t hex_to_hash(const std::string& hex) {
  std::uint64_t hash = 0;
  for (const char c : hex) {
    hash <<= 4;
    if (c >= '0' && c <= '9') {
      hash |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      hash |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return 0;
    }
  }
  return hash;
}

}  // namespace

std::uint64_t fnv1a_hash(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

LintCache LintCache::load(const std::string& path, const std::string& filter_signature) {
  LintCache cache;
  std::ifstream in(path, std::ios::binary);
  if (!in) return cache;
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    const obs::JsonValue doc = obs::parse_json(buf.str());
    const obs::JsonValue* version = doc.find("ruleset_version");
    if (version == nullptr || !version->is_number() ||
        static_cast<int>(version->as_number()) != kRuleSetVersion) {
      return cache;
    }
    const obs::JsonValue* filter = doc.find("rule_filter");
    if (filter == nullptr || !filter->is_string() ||
        filter->as_string() != filter_signature) {
      return cache;
    }
    const obs::JsonValue* entries = doc.find("entries");
    if (entries == nullptr || !entries->is_object()) return cache;
    for (const auto& [file, value] : entries->members()) {
      CacheEntry entry;
      entry.hash = hex_to_hash(value.at("hash").as_string());
      entry.companion_hash = hex_to_hash(value.at("companion_hash").as_string());
      entry.suppressed = static_cast<std::size_t>(value.at("suppressed").as_number());
      if (const obs::JsonValue* diags = value.find("diagnostics")) {
        for (const obs::JsonValue& d : diags->items()) {
          Diagnostic diag;
          diag.rule = d.at("rule").as_string();
          diag.file = d.at("file").as_string();
          diag.line = static_cast<std::size_t>(d.at("line").as_number());
          diag.column = static_cast<std::size_t>(d.at("column").as_number());
          diag.message = d.at("message").as_string();
          entry.diagnostics.push_back(std::move(diag));
        }
      }
      cache.entries_.emplace(file, std::move(entry));
    }
  } catch (const std::exception&) {
    return LintCache{};  // corrupt cache: fall back to a cold scan
  }
  return cache;
}

bool LintCache::lookup(const std::string& file, std::uint64_t hash,
                       std::uint64_t companion_hash, CacheEntry& out) const {
  const auto hit = entries_.find(file);
  if (hit == entries_.end()) return false;
  if (hit->second.hash != hash || hit->second.companion_hash != companion_hash) {
    return false;
  }
  out = hit->second;
  return true;
}

void LintCache::store(const std::string& file, CacheEntry entry) {
  entries_[file] = std::move(entry);
}

bool LintCache::save(const std::string& path, const std::string& filter_signature) const {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("tool", obs::JsonValue(std::string("csrlmrm-lint")));
  doc.set("ruleset_version", obs::JsonValue(static_cast<double>(kRuleSetVersion)));
  doc.set("rule_filter", obs::JsonValue(filter_signature));
  obs::JsonValue entries = obs::JsonValue::object();
  for (const auto& [file, entry] : entries_) {
    obs::JsonValue value = obs::JsonValue::object();
    value.set("hash", obs::JsonValue(hash_to_hex(entry.hash)));
    value.set("companion_hash", obs::JsonValue(hash_to_hex(entry.companion_hash)));
    value.set("suppressed", obs::JsonValue(static_cast<double>(entry.suppressed)));
    obs::JsonValue diags = obs::JsonValue::array();
    for (const Diagnostic& d : entry.diagnostics) {
      obs::JsonValue item = obs::JsonValue::object();
      item.set("rule", obs::JsonValue(d.rule));
      item.set("file", obs::JsonValue(d.file));
      item.set("line", obs::JsonValue(static_cast<double>(d.line)));
      item.set("column", obs::JsonValue(static_cast<double>(d.column)));
      item.set("message", obs::JsonValue(d.message));
      diags.push_back(std::move(item));
    }
    value.set("diagnostics", std::move(diags));
    entries.set(file, std::move(value));
  }
  doc.set("entries", std::move(entries));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << obs::write_json(doc) << '\n';
  return static_cast<bool>(out);
}

}  // namespace csrlmrm::lint

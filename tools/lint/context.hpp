// Per-file analysis context shared by every rule: path classification (which
// tree and subsystem the file lives in), suppression comments, and a
// brace-matched map of function definition spans recovered from the token
// stream. Rules read this instead of re-deriving structure themselves.
#pragma once

#include <cstddef>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"

namespace csrlmrm::lint {

struct FileIr;

/// Which top-level tree the file belongs to, relative to the repo root.
enum class Tree { kSrc, kTests, kBench, kExamples, kTools, kOther };

/// A function definition recovered from the token stream: `name` is the
/// identifier preceding the parameter list (empty for lambdas and for shapes
/// the heuristic cannot name), and [open_brace, close_brace] index into
/// LexedFile::tokens.
struct FunctionSpan {
  std::string name;
  std::size_t open_brace;
  std::size_t close_brace;
};

class FileContext {
 public:
  explicit FileContext(LexedFile file);
  /// Constructs the context with a companion header (the sibling .hpp/.h of a
  /// scanned .cpp): the companion's member declarations and guarded_by
  /// annotations feed this file's IR, so definitions are checked against the
  /// class shape their header declares.
  FileContext(LexedFile file, LexedFile companion_header);
  ~FileContext();
  FileContext(FileContext&&) noexcept;
  FileContext& operator=(FileContext&&) noexcept;

  const LexedFile& file() const { return file_; }
  const std::vector<Token>& tokens() const { return file_.tokens; }
  std::string_view text(const Token& t) const { return file_.text(t); }
  const std::string& path() const { return file_.path; }

  Tree tree() const { return tree_; }
  bool is_header() const { return is_header_; }
  /// Subsystem directory under src/ ("checker", "numeric", ...); empty
  /// outside src/.
  const std::string& subsystem() const { return subsystem_; }
  /// True for the subsystems whose results must be bitwise deterministic and
  /// fast: the checker/numeric/linalg/core/graph/parallel/sim layers.
  bool in_hot_path() const;

  /// True when `rule` is suppressed on `line` (via `lint:allow(rule)` on the
  /// line itself or a comment-only line directly above) or file-wide (via
  /// `lint:allow-file(rule)` anywhere).
  bool suppressed(std::string_view rule, std::size_t line) const;

  const std::vector<FunctionSpan>& functions() const { return functions_; }
  /// Names of every function span enclosing token `tok_index`, innermost last.
  std::vector<std::string> enclosing_functions(std::size_t tok_index) const;
  /// True when any enclosing function name starts with one of the approved
  /// comparison-helper prefixes ("approx_", "exactly_").
  bool in_approved_helper(std::size_t tok_index) const;

  /// Identifiers declared in this file with an unordered associative type
  /// (std::unordered_map / std::unordered_set / flavors thereof).
  const std::set<std::string>& unordered_names() const { return unordered_names_; }

  /// The flow-aware IR (fields, methods, lock scopes, eviction classes) built
  /// by the pass pipeline in ir.cpp; includes companion-header declarations.
  const FileIr& ir() const { return *ir_; }
  /// The companion header context, or nullptr when scanned standalone.
  const FileContext* companion() const { return companion_.get(); }

 private:
  void init();
  void classify_path();
  void scan_suppressions();
  void scan_functions();
  void scan_unordered_declarations();

  LexedFile file_;
  Tree tree_ = Tree::kOther;
  bool is_header_ = false;
  std::string subsystem_;
  // (line, rule) pairs plus file-wide rule names.
  std::set<std::pair<std::size_t, std::string>> line_allows_;
  std::set<std::string, std::less<>> file_allows_;
  std::vector<FunctionSpan> functions_;
  std::set<std::string> unordered_names_;
  std::unique_ptr<FileContext> companion_;
  std::shared_ptr<const FileIr> ir_;
};

}  // namespace csrlmrm::lint

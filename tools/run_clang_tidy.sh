#!/usr/bin/env sh
# Runs clang-tidy (config: .clang-tidy at the repo root) over the project
# sources using the compile database from the build tree.
#
#   tools/run_clang_tidy.sh [build-dir] [extra clang-tidy args...]
#
# Degrades gracefully: exits 0 with a notice when clang-tidy is not installed
# (the custom csrlmrm-lint rules still run via `ctest -L lint`), and
# generates the compile database on the fly if the build tree lacks one.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="${1:-"$repo_root/build"}"
[ $# -gt 0 ] && shift

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy_bin" >/dev/null 2>&1; then
    echo "run_clang_tidy: '$tidy_bin' not found; skipping (csrlmrm-lint via" \
         "'ctest -L lint' still covers the project-specific rules)" >&2
    exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "run_clang_tidy: generating compile database in $build_dir" >&2
    cmake -B "$build_dir" -S "$repo_root" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# Everything the lint lane covers except the fixture corpus (intentionally
# bad) — keep this list in sync with the lint_tree ctest entry.
files=$(find "$repo_root/src" "$repo_root/tools" "$repo_root/bench" \
             "$repo_root/examples" "$repo_root/tests" \
             -name lint_fixtures -prune -o -name '*.cpp' -print | sort)

status=0
for f in $files; do
    "$tidy_bin" -p "$build_dir" --quiet "$@" "$f" || status=1
done
exit $status

#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/stats.hpp"
#include "core/approx.hpp"

namespace csrlmrm::sim {

namespace {

void require_masks(const core::Mrm& model, const std::vector<bool>& a,
                   const std::vector<bool>& b) {
  if (a.size() != model.num_states() || b.size() != model.num_states()) {
    throw std::invalid_argument("simulator: satisfaction mask size mismatch");
  }
}

void require_finite_horizon(const logic::Interval& time_bound) {
  if (time_bound.is_upper_unbounded()) {
    throw std::invalid_argument(
        "simulator: until estimation requires a finite time horizon (an unbounded formula "
        "may produce non-terminating sample paths; use the exact P0 solver instead)");
  }
}

Estimate bernoulli_estimate(std::size_t successes, std::size_t samples) {
  const double p = static_cast<double>(successes) / static_cast<double>(samples);
  const double half = 1.96 * std::sqrt(std::max(p * (1.0 - p), 0.0) /
                                       static_cast<double>(samples));
  return {p, half, samples};
}

}  // namespace

MrmSimulator::MrmSimulator(const core::Mrm& model, std::uint64_t seed)
    : model_(&model), rng_(seed) {}

bool MrmSimulator::sample_transition(core::StateIndex state, double& holding_time,
                                     core::StateIndex& successor) {
  const double exit = model_->rates().exit_rate(state);
  if (core::exactly_zero(exit)) return false;
  holding_time = std::exponential_distribution<double>(exit)(rng_);
  // Sample the winner of the transition race proportional to its rate.
  double pick = std::uniform_real_distribution<double>(0.0, exit)(rng_);
  const auto transitions = model_->rates().transitions(state);
  for (const auto& e : transitions) {
    pick -= e.value;
    if (pick <= 0.0) {
      successor = e.col;
      return true;
    }
  }
  successor = transitions.back().col;  // numerical slack: attribute to the last edge
  return true;
}

bool MrmSimulator::sample_until(core::StateIndex start, const std::vector<bool>& sat_phi,
                                const std::vector<bool>& sat_psi,
                                const logic::Interval& time_bound,
                                const logic::Interval& reward_bound) {
  require_masks(*model_, sat_phi, sat_psi);
  require_finite_horizon(time_bound);
  if (start >= model_->num_states()) {
    throw std::invalid_argument("simulator: start state out of range");
  }

  double now = 0.0;
  double reward = 0.0;
  core::StateIndex state = start;
  while (true) {
    if (sat_psi[state]) {
      if (!sat_phi[state]) {
        // A (!Phi && Psi)-state can only witness the formula at the instant
        // of arrival: any tau beyond `now` has a [0,tau) prefix visiting
        // this !Phi state.
        return time_bound.contains(now) && reward_bound.contains(reward);
      }
      // (Phi && Psi): the witness time tau may lie anywhere in the residence
      // window; determine the residence first (infinite when absorbing).
      double holding = std::numeric_limits<double>::infinity();
      core::StateIndex next = state;
      const bool moves = sample_transition(state, holding, next);
      const double window_low = std::max(now, time_bound.lower());
      const double window_high = std::min(now + holding, time_bound.upper());
      if (window_low <= window_high) {
        const double rho = model_->state_reward(state);
        const double reward_low = reward + rho * (window_low - now);
        const double reward_high = reward + rho * (window_high - now);
        // The reward sweeps [reward_low, reward_high] over the window; the
        // formula holds iff that segment meets the reward interval.
        if (reward_high >= reward_bound.lower() && reward_low <= reward_bound.upper()) {
          return true;
        }
      }
      if (!moves) return false;
      now += holding;
      reward += model_->state_reward(state) * holding + model_->impulse_reward(state, next);
      state = next;
    } else {
      if (!sat_phi[state]) return false;  // (!Phi && !Psi): the path is lost
      double holding = 0.0;
      core::StateIndex next = state;
      if (!sample_transition(state, holding, next)) return false;  // stuck in Phi forever
      now += holding;
      reward += model_->state_reward(state) * holding + model_->impulse_reward(state, next);
      state = next;
    }
    if (now > time_bound.upper()) return false;
    // Rewards are non-negative, so overshooting a bounded reward interval is
    // unrecoverable.
    if (!reward_bound.is_upper_unbounded() && reward > reward_bound.upper()) return false;
  }
}

bool MrmSimulator::sample_next(core::StateIndex start, const std::vector<bool>& sat_phi,
                               const logic::Interval& time_bound,
                               const logic::Interval& reward_bound) {
  require_masks(*model_, sat_phi, sat_phi);
  if (start >= model_->num_states()) {
    throw std::invalid_argument("simulator: start state out of range");
  }
  double holding = 0.0;
  core::StateIndex next = start;
  if (!sample_transition(start, holding, next)) return false;
  const double reward_at_jump =
      model_->state_reward(start) * holding + model_->impulse_reward(start, next);
  return sat_phi[next] && time_bound.contains(holding) && reward_bound.contains(reward_at_jump);
}

double MrmSimulator::sample_accumulated_reward(core::StateIndex start, double t) {
  if (start >= model_->num_states()) {
    throw std::invalid_argument("simulator: start state out of range");
  }
  if (!(t >= 0.0) || !std::isfinite(t)) {
    throw std::invalid_argument("simulator: t must be finite and >= 0");
  }
  double now = 0.0;
  double reward = 0.0;
  core::StateIndex state = start;
  while (true) {
    double holding = 0.0;
    core::StateIndex next = state;
    if (!sample_transition(state, holding, next) || now + holding >= t) {
      reward += model_->state_reward(state) * (t - now);
      return reward;
    }
    now += holding;
    reward += model_->state_reward(state) * holding + model_->impulse_reward(state, next);
    state = next;
  }
}

Estimate estimate_until(const core::Mrm& model, core::StateIndex start,
                        const std::vector<bool>& sat_phi, const std::vector<bool>& sat_psi,
                        const logic::Interval& time_bound, const logic::Interval& reward_bound,
                        const SimulationOptions& options) {
  if (options.samples == 0) throw std::invalid_argument("estimate_until: need samples > 0");
  obs::ScopedTimer timer("sim.estimate_until");
  obs::counter_add("sim.samples", options.samples);
  MrmSimulator simulator(model, options.seed);
  std::size_t successes = 0;
  for (std::size_t i = 0; i < options.samples; ++i) {
    successes += simulator.sample_until(start, sat_phi, sat_psi, time_bound, reward_bound);
  }
  return bernoulli_estimate(successes, options.samples);
}

Estimate estimate_next(const core::Mrm& model, core::StateIndex start,
                       const std::vector<bool>& sat_phi, const logic::Interval& time_bound,
                       const logic::Interval& reward_bound, const SimulationOptions& options) {
  if (options.samples == 0) throw std::invalid_argument("estimate_next: need samples > 0");
  obs::ScopedTimer timer("sim.estimate_next");
  obs::counter_add("sim.samples", options.samples);
  MrmSimulator simulator(model, options.seed);
  std::size_t successes = 0;
  for (std::size_t i = 0; i < options.samples; ++i) {
    successes += simulator.sample_next(start, sat_phi, time_bound, reward_bound);
  }
  return bernoulli_estimate(successes, options.samples);
}

Estimate estimate_performability(const core::Mrm& model, core::StateIndex start, double t,
                                 double r, const SimulationOptions& options) {
  if (options.samples == 0) {
    throw std::invalid_argument("estimate_performability: need samples > 0");
  }
  obs::ScopedTimer timer("sim.estimate_performability");
  obs::counter_add("sim.samples", options.samples);
  MrmSimulator simulator(model, options.seed);
  std::size_t successes = 0;
  for (std::size_t i = 0; i < options.samples; ++i) {
    successes += simulator.sample_accumulated_reward(start, t) <= r;
  }
  return bernoulli_estimate(successes, options.samples);
}

Estimate estimate_expected_reward(const core::Mrm& model, core::StateIndex start, double t,
                                  const SimulationOptions& options) {
  if (options.samples == 0) {
    throw std::invalid_argument("estimate_expected_reward: need samples > 0");
  }
  obs::ScopedTimer timer("sim.estimate_expected_reward");
  obs::counter_add("sim.samples", options.samples);
  MrmSimulator simulator(model, options.seed);
  double sum = 0.0;
  double sum_squares = 0.0;
  for (std::size_t i = 0; i < options.samples; ++i) {
    const double y = simulator.sample_accumulated_reward(start, t);
    sum += y;
    sum_squares += y * y;
  }
  const double n = static_cast<double>(options.samples);
  const double mean = sum / n;
  const double variance = std::max(0.0, sum_squares / n - mean * mean);
  return {mean, 1.96 * std::sqrt(variance / n), options.samples};
}

}  // namespace csrlmrm::sim

// Discrete-event Monte Carlo simulation of MRMs.
//
// The thesis (1.2) names simulation as the alternative to exact model
// checking; this module provides it as an independent oracle: paths are
// sampled from the exponential-race semantics of section 2.4, rewards
// accumulate per Definition 3.3 (state rates + transition impulses), and
// CSRL path formulas are evaluated per Definition 3.6 on each sampled path.
//
// Unlike the numerical until engines (restricted to I = [0,t]/[t,t] and
// J = [0,r]), the estimators accept arbitrary closed intervals — which makes
// them the reference for the "general time and reward bounds" the thesis
// lists as future work.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "core/mrm.hpp"
#include "logic/interval.hpp"

namespace csrlmrm::sim {

/// Sampling controls.
struct SimulationOptions {
  std::size_t samples = 100000;
  std::uint64_t seed = 1;
};

/// A Monte Carlo estimate with a 95% confidence half-width (normal
/// approximation).
struct Estimate {
  double mean = 0.0;
  double half_width_95 = 0.0;
  std::size_t samples = 0;
};

/// Stateful path sampler over one MRM. The model must outlive the simulator.
class MrmSimulator {
 public:
  MrmSimulator(const core::Mrm& model, std::uint64_t seed);

  /// One Bernoulli sample of the path formula Phi U_J^I Psi from `start`
  /// (Definition 3.6 semantics, arbitrary closed intervals).
  bool sample_until(core::StateIndex start, const std::vector<bool>& sat_phi,
                    const std::vector<bool>& sat_psi, const logic::Interval& time_bound,
                    const logic::Interval& reward_bound);

  /// One Bernoulli sample of the path formula X_J^I Phi from `start`.
  bool sample_next(core::StateIndex start, const std::vector<bool>& sat_phi,
                   const logic::Interval& time_bound, const logic::Interval& reward_bound);

  /// One sample of the accumulated reward Y(t) from `start`.
  double sample_accumulated_reward(core::StateIndex start, double t);

 private:
  /// Samples the next transition of `state`: returns false for absorbing
  /// states, else fills the holding time and successor.
  bool sample_transition(core::StateIndex state, double& holding_time,
                         core::StateIndex& successor);

  const core::Mrm* model_;
  std::mt19937_64 rng_;
};

/// Estimates P(start, Phi U_J^I Psi) by simple Monte Carlo.
Estimate estimate_until(const core::Mrm& model, core::StateIndex start,
                        const std::vector<bool>& sat_phi, const std::vector<bool>& sat_psi,
                        const logic::Interval& time_bound, const logic::Interval& reward_bound,
                        const SimulationOptions& options = {});

/// Estimates P(start, X_J^I Phi).
Estimate estimate_next(const core::Mrm& model, core::StateIndex start,
                       const std::vector<bool>& sat_phi, const logic::Interval& time_bound,
                       const logic::Interval& reward_bound,
                       const SimulationOptions& options = {});

/// Estimates the performability distribution value Pr{Y(t) <= r}
/// (Definition 3.4).
Estimate estimate_performability(const core::Mrm& model, core::StateIndex start, double t,
                                 double r, const SimulationOptions& options = {});

/// Estimates the expected accumulated reward E[Y(t)].
Estimate estimate_expected_reward(const core::Mrm& model, core::StateIndex start, double t,
                                  const SimulationOptions& options = {});

}  // namespace csrlmrm::sim

#include "models/wavelan.hpp"

namespace csrlmrm::models {

core::Mrm make_wavelan(const WavelanConfig& config) {
  const std::size_t n = 5;

  core::RateMatrixBuilder rates(n);
  rates.add(kWavelanOff, kWavelanSleep, config.off_to_sleep);
  rates.add(kWavelanSleep, kWavelanOff, config.sleep_to_off);
  rates.add(kWavelanSleep, kWavelanIdle, config.sleep_to_idle);
  rates.add(kWavelanIdle, kWavelanSleep, config.idle_to_sleep);
  rates.add(kWavelanIdle, kWavelanReceive, config.idle_to_receive);
  rates.add(kWavelanIdle, kWavelanTransmit, config.idle_to_transmit);
  rates.add(kWavelanReceive, kWavelanIdle, config.receive_to_idle);
  rates.add(kWavelanTransmit, kWavelanIdle, config.transmit_to_idle);

  core::Labeling labels(n);
  labels.add(kWavelanOff, "off");
  labels.add(kWavelanSleep, "sleep");
  labels.add(kWavelanIdle, "idle");
  labels.add(kWavelanReceive, "receive");
  labels.add(kWavelanReceive, "busy");
  labels.add(kWavelanTransmit, "transmit");
  labels.add(kWavelanTransmit, "busy");

  // Power draw in mW (Example 3.1, after [Pau01]).
  const std::vector<double> state_rewards{0.0, 80.0, 1319.0, 1675.0, 1425.0};

  // Mode-switch energies in mJ: the power of the target mode times the
  // switching latency (250 us power-up, 254 us payload setup).
  core::ImpulseRewardsBuilder impulses(n);
  impulses.add(kWavelanOff, kWavelanSleep, 80.0 * 250e-6);        // 0.02
  impulses.add(kWavelanSleep, kWavelanIdle, 1319.0 * 250e-6);     // 0.32975
  impulses.add(kWavelanIdle, kWavelanReceive, 1675.0 * 254e-6);   // 0.42545
  impulses.add(kWavelanIdle, kWavelanTransmit, 1425.0 * 254e-6);  // 0.36195

  return core::Mrm(core::Ctmc(rates.build(), std::move(labels)), state_rewards,
                   impulses.build());
}

}  // namespace csrlmrm::models

// The WaveLAN modem MRM of Examples 2.4 / 3.1 / 4.2 of the thesis: a
// five-state energy model (off, sleep, idle, receive, transmit) with power
// draws as state rewards and mode-switch energies as impulse rewards.
#pragma once

#include "core/mrm.hpp"

namespace csrlmrm::models {

/// State indices of the WaveLAN model (thesis numbering minus one).
enum WavelanState : core::StateIndex {
  kWavelanOff = 0,
  kWavelanSleep = 1,
  kWavelanIdle = 2,
  kWavelanReceive = 3,
  kWavelanTransmit = 4,
};

/// Transition rates (per hour) of the WaveLAN modem; defaults are the values
/// of Example 4.2.
struct WavelanConfig {
  double off_to_sleep = 0.1;     // lambda_OS
  double sleep_to_idle = 5.0;    // lambda_SI
  double idle_to_receive = 1.5;  // lambda_IR
  double idle_to_transmit = 0.75;  // lambda_IT
  double sleep_to_off = 0.05;    // mu_SO
  double idle_to_sleep = 12.0;   // mu_IS
  double receive_to_idle = 10.0;  // mu_RI
  double transmit_to_idle = 15.0;  // mu_TI
};

/// Builds the WaveLAN MRM with labels {off, sleep, idle, receive, transmit,
/// busy}, power-draw state rewards (0/80/1319/1675/1425 mW) and the
/// mode-switch impulse rewards of Example 3.1.
core::Mrm make_wavelan(const WavelanConfig& config = {});

}  // namespace csrlmrm::models

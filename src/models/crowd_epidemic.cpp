#include "models/crowd_epidemic.hpp"

#include <cmath>
#include <stdexcept>

namespace csrlmrm::models {

namespace {

class CrowdEpidemicGenerator final : public StateGenerator {
 public:
  explicit CrowdEpidemicGenerator(const CrowdEpidemicConfig& config)
      : config_(config),
        outbreak_count_(static_cast<std::size_t>(
            std::ceil(config.outbreak_fraction * static_cast<double>(config.population)))) {}

  std::vector<std::uint64_t> initial_states() const override {
    return {key(config_.population - 1, 1)};
  }

  void expand(std::uint64_t state, GeneratedState& out) const override {
    const std::size_t n = config_.population;
    const std::size_t susceptible = static_cast<std::size_t>(state) / (n + 1);
    const std::size_t infected = static_cast<std::size_t>(state) % (n + 1);

    if (susceptible == n - 1 && infected == 1) out.label_mask |= 1u << 0;  // start
    if (infected == 0) out.label_mask |= 1u << 1;                          // extinct
    if (infected >= outbreak_count_) out.label_mask |= 1u << 2;            // outbreak
    out.state_reward = static_cast<double>(infected);

    if (infected == 0) return;  // no infected left: absorbing
    if (susceptible > 0) {
      const double infection = config_.contact_rate * static_cast<double>(susceptible) *
                               static_cast<double>(infected) / static_cast<double>(n);
      out.transitions.push_back({key(susceptible - 1, infected + 1), infection, 0.0});
    }
    const double recovery = config_.recovery_rate * static_cast<double>(infected);
    out.transitions.push_back({key(susceptible, infected - 1), recovery, config_.treatment_cost});
  }

  std::vector<std::string> propositions() const override {
    return {"start", "extinct", "outbreak"};
  }

  std::size_t expected_states() const override {
    const std::size_t n = config_.population;
    return (n + 1) * (n + 2) / 2;
  }
  std::size_t expected_transitions() const override { return 2 * expected_states(); }

 private:
  std::uint64_t key(std::size_t susceptible, std::size_t infected) const {
    return static_cast<std::uint64_t>(susceptible) * (config_.population + 1) + infected;
  }

  CrowdEpidemicConfig config_;
  std::size_t outbreak_count_;
};

}  // namespace

std::unique_ptr<StateGenerator> make_crowd_epidemic(const CrowdEpidemicConfig& config) {
  if (config.population < 2) {
    throw std::invalid_argument("crowd: population must be at least 2");
  }
  if (!(config.contact_rate > 0.0) || !(config.recovery_rate > 0.0)) {
    throw std::invalid_argument("crowd: contact and recovery rates must be positive");
  }
  if (config.treatment_cost < 0.0) {
    throw std::invalid_argument("crowd: treatment cost must be >= 0");
  }
  if (!(config.outbreak_fraction > 0.0) || config.outbreak_fraction > 1.0) {
    throw std::invalid_argument("crowd: outbreak fraction must be in (0, 1]");
  }
  return std::make_unique<CrowdEpidemicGenerator>(config);
}

}  // namespace csrlmrm::models

#include "models/generator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <unordered_map>

#include "models/crowd_epidemic.hpp"
#include "models/grid_network.hpp"
#include "models/virus_spread.hpp"
#include "obs/stats.hpp"

namespace csrlmrm::models {

core::Mrm explore(const StateGenerator& generator, const ExploreOptions& options) {
  obs::ScopedTimer timer("generator.explore");
  const std::vector<std::string> props = generator.propositions();
  if (props.size() > 32) {
    throw std::invalid_argument("explore: a generator may declare at most 32 propositions");
  }

  // Key interning: first sight assigns the next dense index, which makes the
  // BFS queue, the index order, and the CSR row order one and the same.
  std::unordered_map<std::uint64_t, core::StateIndex> index_of;
  std::vector<std::uint64_t> keys;
  const std::size_t state_hint = generator.expected_states();
  if (state_hint > 0) {
    index_of.reserve(state_hint);
    keys.reserve(state_hint);
  }
  const auto intern = [&](std::uint64_t key) -> core::StateIndex {
    const auto [it, inserted] = index_of.try_emplace(key, keys.size());
    if (inserted) {
      if (options.max_states > 0 && keys.size() >= options.max_states) {
        throw std::runtime_error("explore: state space exceeds max_states=" +
                                 std::to_string(options.max_states));
      }
      keys.push_back(key);
    }
    return it->second;
  };

  for (const std::uint64_t key : generator.initial_states()) intern(key);
  if (keys.empty()) throw std::invalid_argument("explore: generator has no initial states");

  // Direct CSR assembly: each expanded row is sorted, merged, and appended;
  // no intermediate triplet buffer or per-row map ever exists.
  std::vector<std::size_t> row_ptr{0};
  std::vector<linalg::Entry> entries;
  std::vector<std::size_t> impulse_row_ptr{0};
  std::vector<linalg::Entry> impulse_entries;
  std::vector<double> rewards;
  std::vector<std::uint32_t> label_masks;
  const std::size_t transition_hint = generator.expected_transitions();
  if (transition_hint > 0) entries.reserve(transition_hint);
  if (state_hint > 0) {
    row_ptr.reserve(state_hint + 1);
    impulse_row_ptr.reserve(state_hint + 1);
    rewards.reserve(state_hint);
    label_masks.reserve(state_hint);
  }

  struct RowEntry {
    core::StateIndex col;
    double rate;
    double impulse;
  };
  std::vector<RowEntry> row;
  GeneratedState state;
  for (core::StateIndex s = 0; s < keys.size(); ++s) {
    state.state_reward = 0.0;
    state.label_mask = 0;
    state.transitions.clear();
    generator.expand(keys[s], state);

    if (!(state.state_reward >= 0.0) || !std::isfinite(state.state_reward)) {
      throw std::invalid_argument("explore: generator emitted a bad state reward");
    }
    if (props.size() < 32 && (state.label_mask >> props.size()) != 0) {
      throw std::invalid_argument("explore: label mask uses undeclared proposition bits");
    }
    rewards.push_back(state.state_reward);
    label_masks.push_back(state.label_mask);

    row.clear();
    for (const auto& tr : state.transitions) {
      if (!(tr.rate > 0.0) || !std::isfinite(tr.rate)) {
        throw std::invalid_argument("explore: generator emitted a non-positive rate");
      }
      if (tr.impulse < 0.0 || !std::isfinite(tr.impulse)) {
        throw std::invalid_argument("explore: generator emitted a bad impulse reward");
      }
      row.push_back({intern(tr.target), tr.rate, tr.impulse});
    }
    std::sort(row.begin(), row.end(),
              [](const RowEntry& a, const RowEntry& b) { return a.col < b.col; });
    // Merge duplicate targets by addition — the same semantics the triplet
    // builders apply, so generated and file-loaded models agree bitwise.
    for (std::size_t j = 0; j < row.size();) {
      double rate = row[j].rate;
      double impulse = row[j].impulse;
      std::size_t k = j + 1;
      while (k < row.size() && row[k].col == row[j].col) {
        rate += row[k].rate;
        impulse += row[k].impulse;
        ++k;
      }
      entries.push_back({row[j].col, rate});
      if (impulse > 0.0) impulse_entries.push_back({row[j].col, impulse});
      j = k;
    }
    row_ptr.push_back(entries.size());
    impulse_row_ptr.push_back(impulse_entries.size());
  }

  const std::size_t n = keys.size();
  obs::counter_add("generator.states", n);
  obs::counter_add("generator.transitions", entries.size());

  core::Labeling labels(n);
  for (const auto& ap : props) labels.declare(ap);
  for (core::StateIndex s = 0; s < n; ++s) {
    const std::uint32_t mask = label_masks[s];
    for (std::size_t bit = 0; bit < props.size(); ++bit) {
      if ((mask >> bit) & 1u) labels.add(s, props[bit]);
    }
  }

  core::RateMatrix rates(
      linalg::CsrMatrix(n, n, std::move(row_ptr), std::move(entries)));
  linalg::CsrMatrix impulses(n, n, std::move(impulse_row_ptr), std::move(impulse_entries));
  return core::Mrm(core::Ctmc(std::move(rates), std::move(labels)), std::move(rewards),
                   std::move(impulses));
}

namespace {

struct SpecParam {
  std::string key;
  std::string value;
};

/// Splits "family:key=value,key=value" (the parameter part is optional).
void parse_spec(const std::string& spec, std::string& family, std::vector<SpecParam>& params) {
  const std::size_t colon = spec.find(':');
  family = spec.substr(0, colon);
  if (family.empty()) {
    throw std::invalid_argument("model-gen: empty generator family in spec '" + spec + "'");
  }
  if (colon == std::string::npos) return;
  std::size_t pos = colon + 1;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string item = spec.substr(pos, comma - pos);
    if (!item.empty()) {
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
        throw std::invalid_argument("model-gen: expected key=value, got '" + item + "'");
      }
      params.push_back({item.substr(0, eq), item.substr(eq + 1)});
    }
    pos = comma + 1;
  }
}

double parse_double_param(const std::string& family, const SpecParam& param) {
  const char* begin = param.value.c_str();
  char* end = nullptr;
  const double parsed = std::strtod(begin, &end);
  if (end == begin || *end != '\0' || !std::isfinite(parsed)) {
    throw std::invalid_argument(family + ": bad numeric value for '" + param.key + "': '" +
                                param.value + "'");
  }
  return parsed;
}

std::size_t parse_size_param(const std::string& family, const SpecParam& param) {
  if (param.value.empty() || param.value[0] == '-') {
    throw std::invalid_argument(family + ": bad integer value for '" + param.key + "': '" +
                                param.value + "'");
  }
  const char* begin = param.value.c_str();
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(begin, &end, 10);
  if (end == begin || *end != '\0') {
    throw std::invalid_argument(family + ": bad integer value for '" + param.key + "': '" +
                                param.value + "'");
  }
  return static_cast<std::size_t>(parsed);
}

[[noreturn]] void unknown_parameter(const std::string& family, const std::string& key,
                                    const std::string& available) {
  throw std::invalid_argument(family + ": unknown parameter '" + key +
                              "' (available: " + available + ")");
}

std::unique_ptr<StateGenerator> make_grid(const std::vector<SpecParam>& params) {
  GridNetworkConfig config;
  for (const auto& p : params) {
    if (p.key == "width") {
      config.width = parse_size_param("grid", p);
    } else if (p.key == "height") {
      config.height = parse_size_param("grid", p);
    } else if (p.key == "hop") {
      config.hop_rate = parse_double_param("grid", p);
    } else if (p.key == "drift") {
      config.drift_rate = parse_double_param("grid", p);
    } else if (p.key == "energy") {
      config.hop_energy = parse_double_param("grid", p);
    } else if (p.key == "power") {
      config.idle_power = parse_double_param("grid", p);
    } else {
      unknown_parameter("grid", p.key, "width, height, hop, drift, energy, power");
    }
  }
  return make_grid_network(config);
}

std::unique_ptr<StateGenerator> make_crowd(const std::vector<SpecParam>& params) {
  CrowdEpidemicConfig config;
  for (const auto& p : params) {
    if (p.key == "population") {
      config.population = parse_size_param("crowd", p);
    } else if (p.key == "contact") {
      config.contact_rate = parse_double_param("crowd", p);
    } else if (p.key == "recovery") {
      config.recovery_rate = parse_double_param("crowd", p);
    } else if (p.key == "treatment") {
      config.treatment_cost = parse_double_param("crowd", p);
    } else if (p.key == "outbreak") {
      config.outbreak_fraction = parse_double_param("crowd", p);
    } else {
      unknown_parameter("crowd", p.key, "population, contact, recovery, treatment, outbreak");
    }
  }
  return make_crowd_epidemic(config);
}

std::unique_ptr<StateGenerator> make_virus(const std::vector<SpecParam>& params) {
  VirusSpreadConfig config;
  for (const auto& p : params) {
    if (p.key == "hosts") {
      config.hosts = static_cast<unsigned>(parse_size_param("virus", p));
    } else if (p.key == "infect") {
      config.infect_rate = parse_double_param("virus", p);
    } else if (p.key == "recover") {
      config.recover_rate = parse_double_param("virus", p);
    } else if (p.key == "damage") {
      config.damage_cost = parse_double_param("virus", p);
    } else {
      unknown_parameter("virus", p.key, "hosts, infect, recover, damage");
    }
  }
  return make_virus_spread(config);
}

}  // namespace

std::unique_ptr<StateGenerator> make_generator(const std::string& spec) {
  std::string family;
  std::vector<SpecParam> params;
  parse_spec(spec, family, params);
  if (family == "grid") return make_grid(params);
  if (family == "crowd") return make_crowd(params);
  if (family == "virus") return make_virus(params);
  throw std::invalid_argument("unknown generator family '" + family +
                              "' (available: crowd, grid, virus)");
}

core::Mrm make_generated_mrm(const std::string& spec, const ExploreOptions& options) {
  return explore(*make_generator(spec), options);
}

std::vector<std::string> generator_families() { return {"crowd", "grid", "virus"}; }

}  // namespace csrlmrm::models

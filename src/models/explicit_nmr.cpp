#include "models/explicit_nmr.hpp"

#include <bit>
#include <stdexcept>
#include <string>

namespace csrlmrm::models {

core::StateIndex explicit_nmr_state(unsigned failed_mask, bool voter_down,
                                    unsigned num_modules) {
  const unsigned masks = 1u << num_modules;
  return static_cast<core::StateIndex>(failed_mask + (voter_down ? masks : 0u));
}

core::Mrm make_explicit_nmr(const TmrConfig& config) {
  if (config.num_modules < 1 || config.num_modules > 16) {
    throw std::invalid_argument("make_explicit_nmr: num_modules must be in 1..16");
  }
  const unsigned modules = config.num_modules;
  const unsigned masks = 1u << modules;
  const std::size_t n = 2u * masks;

  const double voter_down_reward =
      config.voter_down_reward > 0.0
          ? config.voter_down_reward
          : config.base_reward + config.degraded_step * static_cast<double>(modules) + 2.0;

  core::RateMatrixBuilder rates(n);
  core::ImpulseRewardsBuilder impulses(n);
  core::Labeling labels(n);
  std::vector<double> rewards(n, 0.0);

  for (unsigned mask = 0; mask < masks; ++mask) {
    const unsigned failed = static_cast<unsigned>(std::popcount(mask));
    const unsigned working = modules - failed;
    const core::StateIndex up = explicit_nmr_state(mask, false, modules);
    const core::StateIndex down = explicit_nmr_state(mask, true, modules);

    // Individual module failures (this is the "variable" total rate:
    // working * module_failure_rate).
    for (unsigned m = 0; m < modules; ++m) {
      if (mask & (1u << m)) continue;
      rates.add(up, explicit_nmr_state(mask | (1u << m), false, modules),
                config.module_failure_rate);
    }
    // One repair facility: the lowest-index failed module is being fixed.
    if (mask != 0) {
      const unsigned lowest = mask & (~mask + 1u);  // lowest set bit
      rates.add(up, explicit_nmr_state(mask & ~lowest, false, modules),
                config.module_repair_rate);
      impulses.add(up, explicit_nmr_state(mask & ~lowest, false, modules),
                   config.module_repair_impulse);
    }
    // Voter failure; repair restores the system "as new".
    rates.add(up, down, config.voter_failure_rate);
    rates.add(down, explicit_nmr_state(0, false, modules), config.voter_repair_rate);
    impulses.add(down, explicit_nmr_state(0, false, modules), config.voter_repair_impulse);

    // Labels and rewards depend only on the failed count / voter condition,
    // exactly as in the counter model.
    labels.add(up, std::to_string(working) + "up");
    if (failed == 0) labels.add(up, "allUp");
    if (working >= 2) {
      labels.add(up, "Sup");
    } else {
      labels.add(up, "failed");
    }
    rewards[up] = config.base_reward + config.degraded_step * static_cast<double>(failed);

    labels.add(down, "vdown");
    labels.add(down, "failed");
    rewards[down] = voter_down_reward;
  }

  return core::Mrm(core::Ctmc(rates.build(), std::move(labels)), std::move(rewards),
                   impulses.build());
}

}  // namespace csrlmrm::models

#include "models/cellphone.hpp"

namespace csrlmrm::models {

core::Mrm make_cellphone() {
  const std::size_t n = 5;

  // Rates per hour. The phone dozes most of the time, wakes into a
  // low-traffic idle mode, occasionally enters a high-traffic idle mode, and
  // initiates calls from either idle mode; from doze it may also be switched
  // off for good. Magnitudes are kept small (Lambda ~ 0.7/h) so that the
  // uniformization engine remains usable at the 24 h horizon of the
  // Table 5.1 experiment — the thesis itself notes path enumeration is only
  // practical for small Lambda*t.
  core::RateMatrixBuilder rates(n);
  rates.add(kCellDoze, kCellIdleLow, 0.12);
  rates.add(kCellIdleLow, kCellDoze, 0.2);
  rates.add(kCellIdleLow, kCellIdleHigh, 0.06);
  rates.add(kCellIdleHigh, kCellIdleLow, 0.12);
  rates.add(kCellIdleLow, kCellInitiated, 0.06);
  rates.add(kCellIdleHigh, kCellInitiated, 0.12);
  rates.add(kCellDoze, kCellOff, 0.0005);

  core::Labeling labels(n);
  labels.add(kCellDoze, "Doze");
  labels.add(kCellIdleLow, "Call_Idle");
  labels.add(kCellIdleHigh, "Call_Idle");
  labels.add(kCellInitiated, "Call_Initiated");
  labels.add(kCellOff, "Off");

  // Integer power draws (units per hour) so discretization needs no scaling.
  const std::vector<double> state_rewards{2.0, 30.0, 45.0, 50.0, 0.0};

  // Zero impulse rewards: Table 5.1 exercises the pure rate-reward path.
  return core::Mrm(core::Ctmc(rates.build(), std::move(labels)), state_rewards);
}

}  // namespace csrlmrm::models

#include "models/virus_spread.hpp"

#include <stdexcept>

namespace csrlmrm::models {

namespace {

class VirusSpreadGenerator final : public StateGenerator {
 public:
  explicit VirusSpreadGenerator(const VirusSpreadConfig& config) : config_(config) {
    // Ring edges plus the chord 0 -- hosts/2 (the hub shortcut).
    const unsigned k = config_.hosts;
    neighbors_.assign(k, 0);
    for (unsigned h = 0; h < k; ++h) {
      neighbors_[h] |= 1u << ((h + 1) % k);
      neighbors_[h] |= 1u << ((h + k - 1) % k);
    }
    neighbors_[0] |= 1u << (k / 2);
    neighbors_[k / 2] |= 1u << 0;
  }

  std::vector<std::uint64_t> initial_states() const override { return {1}; }

  void expand(std::uint64_t state, GeneratedState& out) const override {
    const std::uint32_t infected = static_cast<std::uint32_t>(state);
    const unsigned k = config_.hosts;
    const std::uint32_t all = (k < 32) ? ((1u << k) - 1u) : ~0u;

    if (infected == 1u) out.label_mask |= 1u << 0;    // start
    if (infected == 0u) out.label_mask |= 1u << 1;    // clean (absorbing)
    if (infected == all) out.label_mask |= 1u << 2;   // epidemic
    unsigned count = 0;
    for (unsigned h = 0; h < k; ++h) {
      if ((infected >> h) & 1u) ++count;
    }
    out.state_reward = static_cast<double>(count);
    if (infected == 0u) return;

    for (unsigned h = 0; h < k; ++h) {
      if ((infected >> h) & 1u) {
        // Detection and cleanup of an infected host.
        out.transitions.push_back({state & ~(std::uint64_t{1} << h), config_.recover_rate, 0.0});
      } else {
        // Infection pressure: one rate per infected neighbor.
        unsigned pressure = 0;
        std::uint32_t adjacent = neighbors_[h] & infected;
        while (adjacent != 0) {
          adjacent &= adjacent - 1;
          ++pressure;
        }
        if (pressure > 0) {
          out.transitions.push_back({state | (std::uint64_t{1} << h),
                                     config_.infect_rate * pressure, config_.damage_cost});
        }
      }
    }
  }

  std::vector<std::string> propositions() const override {
    return {"start", "clean", "epidemic"};
  }

  std::size_t expected_states() const override { return std::size_t{1} << config_.hosts; }
  std::size_t expected_transitions() const override {
    return (std::size_t{1} << config_.hosts) * config_.hosts;
  }

 private:
  VirusSpreadConfig config_;
  std::vector<std::uint32_t> neighbors_;  // adjacency bitmask per host
};

}  // namespace

std::unique_ptr<StateGenerator> make_virus_spread(const VirusSpreadConfig& config) {
  if (config.hosts < 3 || config.hosts > 26) {
    throw std::invalid_argument("virus: hosts must be in [3, 26]");
  }
  if (!(config.infect_rate > 0.0) || !(config.recover_rate > 0.0)) {
    throw std::invalid_argument("virus: infection and recovery rates must be positive");
  }
  if (config.damage_cost < 0.0) {
    throw std::invalid_argument("virus: damage cost must be >= 0");
  }
  return std::make_unique<VirusSpreadGenerator>(config);
}

}  // namespace csrlmrm::models

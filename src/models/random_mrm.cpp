#include "models/random_mrm.hpp"

#include <random>

namespace csrlmrm::models {

core::Mrm make_random_mrm(std::uint32_t seed, const RandomMrmConfig& config) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  const std::size_t n = config.num_states;
  core::RateMatrixBuilder rates(n);
  core::ImpulseRewardsBuilder impulses(n);
  for (core::StateIndex s = 0; s < n; ++s) {
    for (core::StateIndex s2 = 0; s2 < n; ++s2) {
      if (s == s2) continue;  // keep iota(s,s) = 0 trivially satisfied
      if (uniform(rng) >= config.edge_probability) continue;
      // Rate in (0, max]: avoid zero so the edge really exists.
      const double rate = config.max_rate * std::max(uniform(rng), 1e-3);
      rates.add(s, s2, rate);
      if (uniform(rng) < config.impulse_probability) {
        // Impulse as a positive multiple of 0.25.
        const int quarters =
            1 + static_cast<int>(uniform(rng) * (config.max_impulse * 4.0 - 1.0));
        impulses.add(s, s2, 0.25 * quarters);
      }
    }
  }

  core::Labeling labels(n);
  for (core::StateIndex s = 0; s < n; ++s) {
    for (const char* ap : {"a", "b", "c"}) {
      if (uniform(rng) < config.label_probability) labels.add(s, ap);
    }
  }

  std::vector<double> state_rewards(n, 0.0);
  std::uniform_int_distribution<unsigned> reward(0, config.max_state_reward);
  for (core::StateIndex s = 0; s < n; ++s) state_rewards[s] = static_cast<double>(reward(rng));

  return core::Mrm(core::Ctmc(rates.build(), std::move(labels)), std::move(state_rewards),
                   impulses.build());
}

}  // namespace csrlmrm::models

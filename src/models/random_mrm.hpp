// Seeded random MRM generator for property-based tests and kernel
// benchmarks. Generated models are reproducible (std::mt19937 with explicit
// seed), always deadlock-free in the CTMC sense (absorbing states are legal),
// and use small integer state rewards plus impulses that are multiples of
// 1/4 — so both numerical until engines accept every generated model and can
// be cross-validated against each other.
#pragma once

#include <cstdint>

#include "core/mrm.hpp"

namespace csrlmrm::models {

/// Shape of the random models.
struct RandomMrmConfig {
  std::size_t num_states = 8;
  /// Probability that any ordered pair (s,s'), s != s', has a transition.
  double edge_probability = 0.35;
  /// Probability that a transition with positive rate carries an impulse.
  double impulse_probability = 0.4;
  /// Rates are drawn uniformly from (0, max_rate].
  double max_rate = 2.0;
  /// State rewards are integers drawn from [0, max_state_reward].
  unsigned max_state_reward = 6;
  /// Impulses are multiples of 0.25 in (0, max_impulse].
  double max_impulse = 2.0;
  /// Atomic propositions "a", "b", "c" are attached independently with this
  /// probability per state.
  double label_probability = 0.4;
};

/// Builds a random MRM from `seed`. The same (seed, config) pair always
/// yields the same model.
core::Mrm make_random_mrm(std::uint32_t seed, const RandomMrmConfig& config = {});

}  // namespace csrlmrm::models

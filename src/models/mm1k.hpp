// An energy-aware M/M/1/K server queue as an MRM — the kind of
// performance/dependability workload MRM analysis was built for (section
// 1.1) and a natural showcase for impulse rewards.
//
// States 0..K count queued jobs. Arrivals (rate lambda) are dropped when the
// buffer is full; services complete at rate mu. The reward structure models
// energy: the idle server draws idle_power, a busy server busy_power, and
// the 0 -> 1 arrival transition pays a wakeup_energy impulse (spinning the
// server up from its power-save state) — the same pattern as the cellular
// phone example that motivates the thesis (section 1.3).
#pragma once

#include "core/mrm.hpp"

namespace csrlmrm::models {

/// Parameters of the energy-aware M/M/1/K queue.
struct Mm1kConfig {
  unsigned capacity = 8;       // K: buffer size including the job in service
  double arrival_rate = 0.8;   // lambda (jobs per time unit)
  double service_rate = 1.0;   // mu
  double idle_power = 1.0;     // rho(0)
  double busy_power = 5.0;     // rho(k > 0)
  double wakeup_energy = 2.0;  // iota(0, 1)
};

/// State index = number of jobs in the system (0..capacity).
core::StateIndex mm1k_state_with_jobs(unsigned jobs);

/// Builds the (K+1)-state queue MRM with labels "empty" (state 0), "busy"
/// (k >= 1), "full" (k = K), and "halfFull" (k >= ceil(K/2)). Throws
/// std::invalid_argument for capacity < 1 or non-positive rates.
core::Mrm make_mm1k(const Mm1kConfig& config = {});

}  // namespace csrlmrm::models

// Crowd/epidemic spread generator: the stochastic SIR model over a closed
// crowd of `population` individuals, in the counting abstraction — state
// (s, i) = (susceptible, infected), recovered = population - s - i. The
// state space is the triangle s + i <= population, so states grow
// quadratically in the crowd size (population 1400 ~ 1e6 states).
//
// Infections fire at contact_rate * s * i / population (mass-action
// contact), recoveries at recovery_rate * i. Each recovery pays a
// treatment_cost impulse (the discrete cost of treating one person); the
// state reward is the infected head count i, so cumulative reward measures
// infection-days and the impulse total measures treatments administered.
//
// Labels: "start" ((population-1, 1)), "extinct" (i = 0, absorbing),
// "outbreak" (i >= outbreak_fraction * population).
#pragma once

#include <memory>

#include "models/generator.hpp"

namespace csrlmrm::models {

struct CrowdEpidemicConfig {
  std::size_t population = 40;
  double contact_rate = 0.6;      // beta in beta * s * i / N
  double recovery_rate = 0.25;    // gamma per infected individual
  double treatment_cost = 1.0;    // impulse per recovery
  double outbreak_fraction = 0.25;  // "outbreak" label threshold on i / N
};

/// Throws std::invalid_argument for population < 2, non-positive rates,
/// negative cost, or an outbreak fraction outside (0, 1].
std::unique_ptr<StateGenerator> make_crowd_epidemic(const CrowdEpidemicConfig& config = {});

}  // namespace csrlmrm::models

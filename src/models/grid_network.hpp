// Grid/mesh network generator: a packet random-walks over a width x height
// mesh toward a sink in the far corner — the canonical mesh-interconnect
// delivery model, and the family that scales to the million-state rows of
// BENCH_large.json (states = width * height, ~4 transitions per state).
//
// State = the cell holding the packet. Each hop to a lateral neighbor fires
// at hop_rate; hops that shrink the Manhattan distance to the sink get
// drift_rate on top (a routed network, not a pure diffusion). Every hop pays
// a hop_energy impulse (link energy); every non-sink cell accrues idle_power
// reward per time unit (the packet occupies a router). The sink absorbs.
//
// Labels: "start" (cell 0,0), "delivered" (the sink), "edge" (boundary
// cells).
#pragma once

#include <memory>

#include "models/generator.hpp"

namespace csrlmrm::models {

struct GridNetworkConfig {
  std::size_t width = 64;
  std::size_t height = 64;
  double hop_rate = 1.0;    // base rate per lateral neighbor
  double drift_rate = 2.0;  // extra rate on sink-ward hops
  double hop_energy = 0.1;  // impulse per hop
  double idle_power = 1.0;  // state reward off the sink
};

/// Throws std::invalid_argument for a degenerate mesh (either side < 2) or
/// non-positive hop_rate / negative drift, energy, or power.
std::unique_ptr<StateGenerator> make_grid_network(const GridNetworkConfig& config = {});

}  // namespace csrlmrm::models

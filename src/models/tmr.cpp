#include "models/tmr.hpp"

#include <stdexcept>
#include <string>

namespace csrlmrm::models {

core::StateIndex tmr_state_with_failed(unsigned failed) {
  return static_cast<core::StateIndex>(failed);
}

core::StateIndex tmr_voter_down_state(unsigned num_modules) {
  return static_cast<core::StateIndex>(num_modules + 1);
}

TmrConfig chapter5_nmr_config(bool variable_failure_rate) {
  TmrConfig config;
  config.num_modules = 11;
  config.variable_failure_rate = variable_failure_rate;
  config.base_reward = 24.0;
  config.degraded_step = 1.0;
  config.module_repair_impulse = 1.0;
  config.voter_repair_impulse = 2.0;
  return config;
}

core::Mrm make_tmr(const TmrConfig& config) {
  if (config.num_modules < 1) {
    throw std::invalid_argument("make_tmr: need at least one module");
  }
  const unsigned modules = config.num_modules;
  const std::size_t n = modules + 2;  // 0..modules failed + voter-down
  const core::StateIndex voter_down = tmr_voter_down_state(modules);

  core::RateMatrixBuilder rates(n);
  core::ImpulseRewardsBuilder impulses(n);
  for (unsigned k = 0; k <= modules; ++k) {
    const core::StateIndex state = tmr_state_with_failed(k);
    const unsigned working = modules - k;
    if (working > 0) {
      const double failure_rate = config.variable_failure_rate
                                      ? static_cast<double>(working) * config.module_failure_rate
                                      : config.module_failure_rate;
      rates.add(state, tmr_state_with_failed(k + 1), failure_rate);
    }
    if (k > 0) {
      rates.add(state, tmr_state_with_failed(k - 1), config.module_repair_rate);
      impulses.add(state, tmr_state_with_failed(k - 1), config.module_repair_impulse);
    }
    rates.add(state, voter_down, config.voter_failure_rate);
  }
  rates.add(voter_down, tmr_state_with_failed(0), config.voter_repair_rate);
  impulses.add(voter_down, tmr_state_with_failed(0), config.voter_repair_impulse);

  core::Labeling labels(n);
  for (unsigned k = 0; k <= modules; ++k) {
    const core::StateIndex state = tmr_state_with_failed(k);
    const unsigned working = modules - k;
    labels.add(state, std::to_string(working) + "up");
    if (working == modules) labels.add(state, "allUp");
    if (working >= 2) {
      labels.add(state, "Sup");
    } else {
      labels.add(state, "failed");
    }
  }
  labels.add(voter_down, "vdown");
  labels.add(voter_down, "failed");

  std::vector<double> rewards(n, 0.0);
  for (unsigned k = 0; k <= modules; ++k) {
    rewards[tmr_state_with_failed(k)] =
        config.base_reward + config.degraded_step * static_cast<double>(k);
  }
  rewards[voter_down] =
      config.voter_down_reward > 0.0
          ? config.voter_down_reward
          : config.base_reward + config.degraded_step * static_cast<double>(modules) + 2.0;

  return core::Mrm(core::Ctmc(rates.build(), std::move(labels)), std::move(rewards),
                   impulses.build());
}

}  // namespace csrlmrm::models

// A cell-phone energy model standing in for the [Hav02] case study that the
// thesis uses to validate the no-impulse-rewards code path (Table 5.1).
//
// The original model's rates are not given in the thesis; this substitute
// (documented in DESIGN.md §4) preserves the experiment's structure: five
// states of which exactly three satisfy (Call_Idle v Doze) — so the
// transformed model M[!(Call_Idle v Doze) v Call_Initiated] has three
// transient and two absorbing states, as reported — zero impulse rewards,
// integer power-draw state rewards, and the checked probability of
//   (Call_Idle v Doze) U^[0,24]_[0,600] Call_Initiated
// from the Call_Idle start state lying near 0.5.
#pragma once

#include "core/mrm.hpp"

namespace csrlmrm::models {

/// State indices of the cell-phone model.
enum CellphoneState : core::StateIndex {
  kCellDoze = 0,
  kCellIdleLow = 1,   // Call_Idle (low traffic)
  kCellIdleHigh = 2,  // Call_Idle (high traffic)
  kCellInitiated = 3,
  kCellOff = 4,
};

/// Builds the cell-phone MRM with labels {Doze, Call_Idle, Call_Initiated,
/// Off} and integer state rewards (power draw per hour); no impulse rewards.
core::Mrm make_cellphone();

/// The starting state used in the Table 5.1 reproduction.
inline constexpr core::StateIndex kCellphoneStart = kCellIdleLow;

}  // namespace csrlmrm::models

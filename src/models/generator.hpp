// Streamed model generators — the million-state substrate.
//
// A StateGenerator describes an MRM implicitly: a set of initial state keys
// plus an expand() callback producing one state's rewards, labels, and
// outgoing transitions. explore() discovers the reachable state space
// breadth-first and assembles the CSR arrays directly as rows are emitted —
// no intermediate model file, no per-row maps — because BFS discovery order
// IS the state index order, so every row arrives exactly when its slot in
// the row pointer array comes up.
//
// The result is bitwise-identical to materializing the same model through
// save_mrm/load_mrm (tests/test_generator.cpp pins this on small instances):
// both routes feed identical (row, col, rate) triplets to the same CSR
// validation, in the same order.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/mrm.hpp"

namespace csrlmrm::models {

/// One streamed transition out of the state being expanded. `target` is an
/// opaque 64-bit key in the generator's own encoding (bitmask, packed
/// coordinates, ...); explore() interns keys to dense state indices in
/// discovery order. An `impulse` > 0 attaches iota = impulse to the
/// transition.
struct GeneratedTransition {
  std::uint64_t target = 0;
  double rate = 0.0;
  double impulse = 0.0;
};

/// One streamed state, filled in by StateGenerator::expand. `label_mask` has
/// bit i set iff the state carries propositions()[i]; a mask (rather than
/// strings) keeps per-state label storage at one word across a million
/// states.
struct GeneratedState {
  double state_reward = 0.0;
  std::uint32_t label_mask = 0;
  std::vector<GeneratedTransition> transitions;
};

/// An implicit MRM: initial keys + successor function.
class StateGenerator {
 public:
  virtual ~StateGenerator() = default;

  /// Keys of the initial states, explored first in the given order.
  virtual std::vector<std::uint64_t> initial_states() const = 0;

  /// Fills `out` for the state with key `key`. Called exactly once per
  /// discovered state, in BFS order; `out` arrives cleared. Rates must be
  /// finite and positive, impulses finite and >= 0.
  virtual void expand(std::uint64_t key, GeneratedState& out) const = 0;

  /// The atomic propositions this generator can emit, in label_mask bit
  /// order. Declared up front so labelings agree across instance sizes.
  virtual std::vector<std::string> propositions() const = 0;

  /// Preallocation hints (0 = unknown); exactness is not required.
  virtual std::size_t expected_states() const { return 0; }
  virtual std::size_t expected_transitions() const { return 0; }
};

struct ExploreOptions {
  /// Abort (std::runtime_error) when BFS discovers more than this many
  /// states; 0 = unbounded. A guard against mis-parameterized generators,
  /// not a truncation mechanism.
  std::size_t max_states = 0;
};

/// Breadth-first exploration of `generator` into a fully validated MRM.
core::Mrm explore(const StateGenerator& generator, const ExploreOptions& options = {});

/// Parses a "family:key=value,key=value" spec into a generator. Families:
/// "crowd" (epidemic spread), "grid" (mesh network random walk), "virus"
/// (virus propagation over a host topology); see the per-family headers for
/// parameters. Throws std::invalid_argument for unknown families, unknown
/// keys, or malformed values.
std::unique_ptr<StateGenerator> make_generator(const std::string& spec);

/// make_generator + explore in one call (the mrmcheck --model-gen= path).
core::Mrm make_generated_mrm(const std::string& spec, const ExploreOptions& options = {});

/// The known family names, sorted ("crowd", "grid", "virus").
std::vector<std::string> generator_families();

}  // namespace csrlmrm::models

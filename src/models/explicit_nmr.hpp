// The N-modular-redundant system with *explicit per-module state*: each
// state records which individual modules are failed (a bitmask) plus the
// voter condition — 2^N * 2 states in total, the model a naive translation
// of the system description would produce.
//
// Because the modules are interchangeable, this model is ordinarily
// lumpable to the (N+2)-state failed-module *counter* abstraction that
// models/tmr.hpp builds directly; core/lumping.hpp recovers that quotient
// automatically. Tests verify the quotient matches make_tmr state-for-state
// and benchmarks quantify the state-space collapse.
//
// Dynamics mirror the chapter-5 system with variable failure rates: every
// working module fails independently (rate module_failure_rate), one repair
// facility fixes the lowest-index failed module (rate module_repair_rate,
// paying the repair impulse), the voter fails from any state and its repair
// restores the system "as new" (all modules repaired).
#pragma once

#include "core/mrm.hpp"
#include "models/tmr.hpp"

namespace csrlmrm::models {

/// State index of (failed-module bitmask, voter down?): voter-up states come
/// first, ordered by mask.
core::StateIndex explicit_nmr_state(unsigned failed_mask, bool voter_down,
                                    unsigned num_modules);

/// Builds the explicit-state NMR MRM for `config` (the failure-rate mode is
/// forced to per-module/variable, which is what independent module failures
/// mean). Labels, rewards and impulses follow the same conventions as
/// make_tmr, keyed by the number of failed modules. Throws
/// std::invalid_argument for num_modules < 1 or > 16 (2^17 states is past
/// the point where the counter model should be used directly).
core::Mrm make_explicit_nmr(const TmrConfig& config);

}  // namespace csrlmrm::models

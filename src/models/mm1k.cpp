#include "models/mm1k.hpp"

#include <stdexcept>

namespace csrlmrm::models {

core::StateIndex mm1k_state_with_jobs(unsigned jobs) {
  return static_cast<core::StateIndex>(jobs);
}

core::Mrm make_mm1k(const Mm1kConfig& config) {
  if (config.capacity < 1) {
    throw std::invalid_argument("make_mm1k: capacity must be at least 1");
  }
  if (!(config.arrival_rate > 0.0) || !(config.service_rate > 0.0)) {
    throw std::invalid_argument("make_mm1k: rates must be positive");
  }
  const unsigned k = config.capacity;
  const std::size_t n = k + 1;

  core::RateMatrixBuilder rates(n);
  core::ImpulseRewardsBuilder impulses(n);
  for (unsigned jobs = 0; jobs < k; ++jobs) {
    rates.add(mm1k_state_with_jobs(jobs), mm1k_state_with_jobs(jobs + 1),
              config.arrival_rate);
  }
  for (unsigned jobs = 1; jobs <= k; ++jobs) {
    rates.add(mm1k_state_with_jobs(jobs), mm1k_state_with_jobs(jobs - 1),
              config.service_rate);
  }
  if (config.wakeup_energy > 0.0) {
    impulses.add(mm1k_state_with_jobs(0), mm1k_state_with_jobs(1), config.wakeup_energy);
  }

  core::Labeling labels(n);
  labels.add(mm1k_state_with_jobs(0), "empty");
  for (unsigned jobs = 1; jobs <= k; ++jobs) labels.add(mm1k_state_with_jobs(jobs), "busy");
  labels.add(mm1k_state_with_jobs(k), "full");
  for (unsigned jobs = (k + 1) / 2; jobs <= k; ++jobs) {
    labels.add(mm1k_state_with_jobs(jobs), "halfFull");
  }

  std::vector<double> rewards(n, config.busy_power);
  rewards[mm1k_state_with_jobs(0)] = config.idle_power;

  return core::Mrm(core::Ctmc(rates.build(), std::move(labels)), std::move(rewards),
                   impulses.build());
}

}  // namespace csrlmrm::models

// Virus propagation generator: an SIS infection process over a fixed host
// topology (a ring of `hosts` machines plus a chord from host 0 to the
// opposite side — a hub-and-ring network). State = the bitmask of infected
// hosts, so the reachable space grows as 2^hosts (hosts = 20 ~ 1e6 states)
// with up to `hosts` transitions per state — the dense-row stress test among
// the generator families.
//
// A clean host with k infected neighbors is infected at infect_rate * k;
// every infection pays a damage_cost impulse (the compromise). Each infected
// host is detected and cleaned at recover_rate, with no impulse. The
// all-clean state is absorbing; the state reward is the infected host count
// (compromised machines accrue exposure per time unit).
//
// Labels: "start" (only host 0 infected), "clean" (no host infected),
// "epidemic" (every host infected).
#pragma once

#include <memory>

#include "models/generator.hpp"

namespace csrlmrm::models {

struct VirusSpreadConfig {
  unsigned hosts = 10;       // ring size; capped at 26 (2^26 states)
  double infect_rate = 0.8;  // per infected neighbor
  double recover_rate = 0.6; // detection/cleanup per infected host
  double damage_cost = 2.0;  // impulse per successful infection
};

/// Throws std::invalid_argument for hosts outside [3, 26], non-positive
/// rates, or negative damage cost.
std::unique_ptr<StateGenerator> make_virus_spread(const VirusSpreadConfig& config = {});

}  // namespace csrlmrm::models

#include "models/grid_network.hpp"

#include <stdexcept>

namespace csrlmrm::models {

namespace {

class GridNetworkGenerator final : public StateGenerator {
 public:
  explicit GridNetworkGenerator(const GridNetworkConfig& config) : config_(config) {}

  std::vector<std::uint64_t> initial_states() const override { return {key(0, 0)}; }

  void expand(std::uint64_t state, GeneratedState& out) const override {
    const std::size_t x = static_cast<std::size_t>(state) % config_.width;
    const std::size_t y = static_cast<std::size_t>(state) / config_.width;
    const std::size_t sink_x = config_.width - 1;
    const std::size_t sink_y = config_.height - 1;

    if (x == 0 && y == 0) out.label_mask |= 1u << 0;  // start
    if (x == sink_x && y == sink_y) {
      out.label_mask |= 1u << 1;  // delivered: the absorbing sink
      out.state_reward = 0.0;
      return;
    }
    if (x == 0 || y == 0 || x == sink_x || y == sink_y) out.label_mask |= 1u << 2;  // edge
    out.state_reward = config_.idle_power;

    // Lateral hops; sink-ward moves (here: +x and +y) carry the drift.
    const auto hop = [&](std::size_t nx, std::size_t ny, bool toward_sink) {
      const double rate = config_.hop_rate + (toward_sink ? config_.drift_rate : 0.0);
      out.transitions.push_back({key(nx, ny), rate, config_.hop_energy});
    };
    if (x > 0) hop(x - 1, y, false);
    if (x + 1 < config_.width) hop(x + 1, y, true);
    if (y > 0) hop(x, y - 1, false);
    if (y + 1 < config_.height) hop(x, y + 1, true);
  }

  std::vector<std::string> propositions() const override {
    return {"start", "delivered", "edge"};
  }

  std::size_t expected_states() const override { return config_.width * config_.height; }
  std::size_t expected_transitions() const override {
    // 4 neighbors minus the boundary deficit; an upper bound is fine.
    return 4 * config_.width * config_.height;
  }

 private:
  std::uint64_t key(std::size_t x, std::size_t y) const {
    return static_cast<std::uint64_t>(y) * config_.width + x;
  }

  GridNetworkConfig config_;
};

}  // namespace

std::unique_ptr<StateGenerator> make_grid_network(const GridNetworkConfig& config) {
  if (config.width < 2 || config.height < 2) {
    throw std::invalid_argument("grid: width and height must be at least 2");
  }
  if (!(config.hop_rate > 0.0)) {
    throw std::invalid_argument("grid: hop rate must be positive");
  }
  if (config.drift_rate < 0.0 || config.hop_energy < 0.0 || config.idle_power < 0.0) {
    throw std::invalid_argument("grid: drift, energy, and power must be >= 0");
  }
  return std::make_unique<GridNetworkGenerator>(config);
}

}  // namespace csrlmrm::models

#include "models/random_formula.hpp"

#include <random>

namespace csrlmrm::models {

namespace {

using logic::Comparison;
using logic::FormulaPtr;
using logic::Interval;

class Generator {
 public:
  Generator(std::uint32_t seed, const RandomFormulaConfig& config)
      : rng_(seed), config_(config) {}

  FormulaPtr state_formula(unsigned depth) {
    const double roll = uniform();
    if (depth == 0 || roll < 0.35) return leaf();
    if (roll < 0.5) return logic::make_not(state_formula(depth - 1));
    if (roll < 0.65) {
      return logic::make_or(state_formula(depth - 1), state_formula(depth - 1));
    }
    if (roll < 0.75) {
      return logic::make_and(state_formula(depth - 1), state_formula(depth - 1));
    }
    if (roll < 0.75 + config_.probabilistic_probability) return probabilistic(depth - 1);
    return leaf();
  }

 private:
  FormulaPtr leaf() {
    switch (pick(5)) {
      case 0:
        return logic::make_true();
      case 1:
        return logic::make_false();
      case 2:
        return logic::make_atomic("a");
      case 3:
        return logic::make_atomic("b");
      default:
        return logic::make_atomic("c");
    }
  }

  FormulaPtr probabilistic(unsigned depth) {
    const Comparison op = static_cast<Comparison>(pick(4));
    const double bound = uniform();
    switch (pick(4)) {
      case 0:
        return logic::make_steady(op, bound, state_formula(depth));
      case 1: {
        // Next with arbitrary closed intervals (fully supported).
        const double t1 = uniform() * config_.max_time_bound;
        const double t2 = t1 + uniform() * config_.max_time_bound;
        const double r1 = uniform() * config_.max_reward_bound;
        const double r2 = r1 + uniform() * config_.max_reward_bound;
        return logic::make_prob_next(op, bound, Interval(t1, t2), Interval(r1, r2),
                                     state_formula(depth));
      }
      case 2: {
        // Reward-bounded until: time [0,t], reward [0,r].
        const double t = 0.25 + uniform() * config_.max_time_bound;
        const double r = 0.5 + uniform() * config_.max_reward_bound;
        return logic::make_prob_until(op, bound, logic::up_to(t), logic::up_to(r),
                                      state_formula(depth), state_formula(depth));
      }
      default: {
        // Reward-unbounded until with [0,t] or [t1,t2] (both supported).
        const double t1 = pick(2) == 0 ? 0.0 : uniform() * config_.max_time_bound;
        const double t2 = t1 + 0.25 + uniform() * config_.max_time_bound;
        return logic::make_prob_until(op, bound, Interval(t1, t2), Interval{},
                                      state_formula(depth), state_formula(depth));
      }
    }
  }

  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(rng_); }
  unsigned pick(unsigned n) {
    return std::uniform_int_distribution<unsigned>(0, n - 1)(rng_);
  }

  std::mt19937 rng_;
  RandomFormulaConfig config_;
};

}  // namespace

logic::FormulaPtr make_random_formula(std::uint32_t seed, const RandomFormulaConfig& config) {
  Generator generator(seed, config);
  // Force at least one probabilistic operator at the top so the formula
  // exercises more than the boolean fragment... half of the time.
  return generator.state_formula(config.max_depth);
}

}  // namespace csrlmrm::models

// Seeded random CSRL formula generator for property-based testing of the
// parser, printer and checker. Generated formulas only use bound shapes the
// checker supports (time [0,t]/[t1,t2], reward [0,r] on until; arbitrary
// closed intervals on next), so every generated formula must check without
// raising UnsupportedFormulaError.
#pragma once

#include <cstdint>

#include "logic/ast.hpp"

namespace csrlmrm::models {

/// Shape controls for generated formulas.
struct RandomFormulaConfig {
  /// Maximum nesting depth (path operators count as one level).
  unsigned max_depth = 3;
  /// Probability of nesting an S/P operator where a state formula is needed
  /// (kept small: nested probabilistic operators are expensive to check).
  double probabilistic_probability = 0.25;
  /// Keep until time bounds at most this large (so uniformization stays
  /// cheap on the small random models these formulas are checked against).
  double max_time_bound = 2.0;
  double max_reward_bound = 10.0;
};

/// Generates a random CSRL state formula over the propositions {a, b, c}.
/// The same (seed, config) pair always yields the same formula.
logic::FormulaPtr make_random_formula(std::uint32_t seed,
                                      const RandomFormulaConfig& config = {});

}  // namespace csrlmrm::models

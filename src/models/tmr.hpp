// The triple-modular-redundant (TMR) system of section 5.3.1, generalized to
// N identical modules plus a voter (the 11-module variant of Tables 5.5/5.7).
//
// State space: index k in 0..N counts *failed* modules (k = 0: all modules
// up); index N+1 is the voter-down state. Dynamics:
//   k -> k+1   module failure (rate: constant, or (N-k) * rate in the
//              variable-failure-rate variant of Table 5.6)
//   k -> k-1   module repair (one repair facility), pays a repair impulse
//   k -> N+1   voter failure (from every module state)
//   N+1 -> 0   voter repair ("the system starts as new"), pays an impulse
//
// Labels: "<w>up" with w = N-k working modules, "allUp" (k = 0), "Sup" while
// operational (>= 2 working modules, voter up), "failed" otherwise, "vdown"
// on the voter-down state.
//
// The thesis fixes the rates (Table 5.2) but not the reward magnitudes ("no
// explicit units are given"); the defaults below were calibrated against the
// published Tables 5.3/5.4: rho(k failed) = 8 + 2k with repair impulses
// 2.5 (module) / 5 (voter) reproduces the reported probabilities to ~7
// significant digits, including the plateau at P ~ 0.037779 once
// rho(allUp) * t exceeds the reward bound r = 3000 (t ~ 375 h). The
// 11-module experiments of Tables 5.5/5.7 used a different (heavier) reward
// file; chapter5_nmr_config() below carries that calibration. See
// DESIGN.md §4 and EXPERIMENTS.md.
#pragma once

#include "core/mrm.hpp"

namespace csrlmrm::models {

/// Configuration of the N-modular-redundant model.
struct TmrConfig {
  unsigned num_modules = 3;
  /// Module failure rate (per hour, Table 5.2). In variable mode the
  /// effective rate from a state with w working modules is w * this.
  double module_failure_rate = 0.0004;
  bool variable_failure_rate = false;
  double voter_failure_rate = 0.0001;
  double module_repair_rate = 0.05;
  double voter_repair_rate = 0.06;
  /// Resource-consumption rate of the fully operational state.
  double base_reward = 8.0;
  /// Extra consumption per failed (under-repair) module.
  double degraded_step = 2.0;
  /// Consumption rate while the voter is down; 0 = derive as
  /// base + step * num_modules + 2.
  double voter_down_reward = 0.0;
  /// Impulse reward paid when a module repair completes.
  double module_repair_impulse = 2.5;
  /// Impulse reward paid when the voter repair completes.
  double voter_repair_impulse = 5.0;
};

/// The reward calibration of the 11-module experiments (Tables 5.5/5.7,
/// Figures 5.4/5.5): rho(k failed) = 24 + k, repair impulses 1 (module) /
/// 2 (voter). Fitted against the published probability columns, after which
/// every published row agrees within the experiments' own truncation error
/// (see EXPERIMENTS.md); pass `variable` for the Table 5.6 failure-rate
/// mode.
TmrConfig chapter5_nmr_config(bool variable_failure_rate = false);

/// State index holding k failed modules.
core::StateIndex tmr_state_with_failed(unsigned failed);
/// The voter-down state index for a given module count.
core::StateIndex tmr_voter_down_state(unsigned num_modules);

/// Builds the (N+2)-state NMR MRM described above. Throws
/// std::invalid_argument for num_modules < 1.
core::Mrm make_tmr(const TmrConfig& config = {});

}  // namespace csrlmrm::models

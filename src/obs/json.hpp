// Minimal JSON value model, parser, and writer.
//
// The observability layer serializes its StatsRegistry to JSON, and the test
// suite (plus downstream tooling reading BENCH_*.json / --stats output) needs
// to parse that output back without an external dependency. This is a
// deliberately small, strict subset implementation: UTF-8 pass-through,
// doubles for every number, objects preserve insertion order. It is not a
// general-purpose JSON library — inputs it rejects are malformed per RFC
// 8259, but it makes no attempt at lenient recovery.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace csrlmrm::obs {

/// Raised by parse_json on malformed input; carries the byte offset.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& message, std::size_t offset)
      : std::runtime_error(message + " (at byte " + std::to_string(offset) + ")"),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_ = 0;
};

/// One JSON value. Objects keep their members in document order (the stats
/// schema is order-insensitive, but round-trip tests compare structures).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(double n) : kind_(Kind::kNumber), number_(n) {}
  explicit JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  /// Typed accessors; throw std::logic_error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member by key; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;
  /// Object member by key; throws std::out_of_range when absent.
  const JsonValue& at(std::string_view key) const;

  /// Mutators used by writers/tests.
  void push_back(JsonValue value);
  void set(std::string key, JsonValue value);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// rejected). Throws JsonParseError on malformed input.
JsonValue parse_json(std::string_view text);

/// Serializes with 2-space indentation and keys in stored order. Numbers use
/// shortest round-trip formatting; non-finite numbers are emitted as null
/// (JSON has no representation for them).
std::string write_json(const JsonValue& value);

/// Serializes without any whitespace — one line, suitable for
/// newline-delimited JSON framing (the mrmcheckd wire protocol). Numbers use
/// the same shortest round-trip formatting as write_json, so doubles survive
/// a serialize/parse round trip bitwise.
std::string write_json_compact(const JsonValue& value);

/// Escapes one string for embedding in JSON output (quotes not included).
std::string json_escape(std::string_view text);

}  // namespace csrlmrm::obs

#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace csrlmrm::obs {

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw std::logic_error("JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) throw std::logic_error("JsonValue: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw std::logic_error("JsonValue: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) throw std::logic_error("JsonValue: not an array");
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  if (kind_ != Kind::kObject) throw std::logic_error("JsonValue: not an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* value = find(key);
  if (value == nullptr) throw std::out_of_range("JsonValue: no member '" + std::string(key) + "'");
  return *value;
}

void JsonValue::push_back(JsonValue value) {
  if (kind_ != Kind::kArray) throw std::logic_error("JsonValue: not an array");
  array_.push_back(std::move(value));
}

void JsonValue::set(std::string key, JsonValue value) {
  if (kind_ != Kind::kObject) throw std::logic_error("JsonValue: not an object");
  for (auto& [name, existing] : object_) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing garbage after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError(message, pos_);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue object = JsonValue::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object.set(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') return object;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue array = JsonValue::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    for (;;) {
      array.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') return array;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not needed
          // by the stats schema; lone surrogates encode as-is).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc{} || end != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("malformed number");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void write_value(const JsonValue& value, std::string& out, int depth) {
  const auto indent = [&](int d) { out.append(static_cast<std::size_t>(d) * 2, ' '); };
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      out += "null";
      return;
    case JsonValue::Kind::kBool:
      out += value.as_bool() ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber: {
      const double n = value.as_number();
      if (!std::isfinite(n)) {
        out += "null";
        return;
      }
      // Integers (the common case: counters, call counts) print without a
      // fraction; everything else uses shortest round-trip formatting.
      if (n == std::floor(n) && std::abs(n) < 9.007199254740992e15) {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.0f", n);
        out += buffer;
      } else {
        char buffer[40];
        std::snprintf(buffer, sizeof(buffer), "%.17g", n);
        out += buffer;
      }
      return;
    }
    case JsonValue::Kind::kString:
      out += '"';
      out += json_escape(value.as_string());
      out += '"';
      return;
    case JsonValue::Kind::kArray: {
      const auto& items = value.items();
      if (items.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < items.size(); ++i) {
        indent(depth + 1);
        write_value(items[i], out, depth + 1);
        out += (i + 1 == items.size()) ? "\n" : ",\n";
      }
      indent(depth);
      out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      const auto& members = value.members();
      if (members.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members.size(); ++i) {
        indent(depth + 1);
        out += '"';
        out += json_escape(members[i].first);
        out += "\": ";
        write_value(members[i].second, out, depth + 1);
        out += (i + 1 == members.size()) ? "\n" : ",\n";
      }
      indent(depth);
      out += '}';
      return;
    }
  }
}

/// Whitespace-free form for newline-delimited framing. Scalars delegate to
/// write_value (which emits no indentation for them), so the two writers
/// format numbers identically.
void write_value_compact(const JsonValue& value, std::string& out) {
  switch (value.kind()) {
    case JsonValue::Kind::kArray: {
      const auto& items = value.items();
      out += '[';
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ',';
        write_value_compact(items[i], out);
      }
      out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      const auto& members = value.members();
      out += '{';
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i > 0) out += ',';
        out += '"';
        out += json_escape(members[i].first);
        out += "\":";
        write_value_compact(members[i].second, out);
      }
      out += '}';
      return;
    }
    default:
      write_value(value, out, 0);
      return;
  }
}

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).parse_document(); }

std::string write_json(const JsonValue& value) {
  std::string out;
  write_value(value, out, 0);
  out += '\n';
  return out;
}

std::string write_json_compact(const JsonValue& value) {
  std::string out;
  write_value_compact(value, out);
  return out;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace csrlmrm::obs

// Engine observability: named counters, max-gauges, and scoped trace timers
// feeding a process-wide StatsRegistry that serializes to JSON.
//
// Every numeric engine, solver, and checker operator reports what it did —
// solver sweeps, Fox-Glynn truncation windows, DFS paths generated and cut,
// SpMV rows touched, thread-pool tasks — so accuracy/cost trade-offs (the
// truncation probability w, the discretization step d) can be read off a
// run instead of guessed. `mrmcheck --stats` and the bench harnesses dump
// the registry; EXPERIMENTS.md walks through reading one.
//
// Design constraints, in order:
//
//   1. Zero cost when compiled out: with CSRLMRM_STATS_COMPILED=0 every
//      recording call is an empty inline function and ScopedTimer an empty
//      object — the build target `csrlmrm_nostats` proves this path compiles
//      warning-free. Near-zero cost when merely disabled at runtime (the
//      default): one relaxed atomic load and branch per call site.
//   2. Race-free under ThreadSanitizer: recording goes to a thread-local
//      block; the thread pool flushes each worker's block into the global
//      registry at the end of every executed chunk (before the region is
//      reported complete), so no two threads ever touch the same counter
//      slot unsynchronized.
//   3. Deterministic aggregation: counters merge by addition and gauges by
//      maximum — both order-independent — so for a fixed workload the
//      registry totals are identical at every thread count (asserted by
//      tests/test_stats.cpp at 1/2/8 threads).
//
// Naming convention: dotted lower-case paths, "<layer>.<component>.<what>",
// e.g. "solver.gauss_seidel.iterations", "uniformization.paths_truncated",
// "fox_glynn.right". The JSON schema is documented in README.md
// ("Observability").
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

// Compile-time gate. Builds that define CSRLMRM_STATS_COMPILED=0 turn every
// recording call into a no-op; the registry/JSON side stays available so
// callers (mrmcheck, benches) need no conditional code — they just see an
// empty registry.
#ifndef CSRLMRM_STATS_COMPILED
#define CSRLMRM_STATS_COMPILED 1
#endif

namespace csrlmrm::obs {

/// One node of the trace tree: a named scope with call count, accumulated
/// wall-clock nanoseconds, and children in first-seen order. Timers opened
/// inside thread-pool tasks root at the worker's own tree and merge into the
/// registry root, so cross-thread nesting flattens one level (documented
/// behavior, not a bug).
struct TraceNode {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::vector<TraceNode> children;

  /// The child with this name, or nullptr.
  const TraceNode* find(std::string_view child_name) const;
};

/// Point-in-time copy of a registry's counters and gauges, taken before a
/// request so the work attributable to that request can be reported as a
/// *delta* instead of the process-lifetime totals. A long-lived service
/// (mrmcheckd) serves hundreds of queries from one process; without deltas
/// every response would report cumulative `classdp.*` / `plan.*` numbers.
struct StatsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
};

/// Thread-safe store of counters (merge: sum), gauges (merge: max), and the
/// merged trace tree. One global instance backs the whole process; local
/// instances exist for unit tests.
class StatsRegistry {
 public:
  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  /// The process-wide registry that thread-local blocks flush into.
  static StatsRegistry& global();

  void add_counter(std::string_view name, std::uint64_t delta);
  void max_gauge(std::string_view name, double value);
  /// Merges a whole trace tree (same-named children sum their calls/time).
  void merge_trace(const TraceNode& root);

  /// Snapshots. The calling thread's pending block is flushed first when
  /// this is the global registry, so a serial caller always sees its own
  /// writes. Counter/gauge maps are ordered by name; trace children are
  /// sorted by name for deterministic output.
  std::map<std::string, std::uint64_t> counters() const;
  std::map<std::string, double> gauges() const;
  TraceNode trace() const;

  /// One counter value; 0 when never written.
  std::uint64_t counter(std::string_view name) const;
  /// One gauge value; NaN when never written.
  double gauge(std::string_view name) const;

  /// The full registry as a JSON document (schema "csrlmrm-stats-v1", see
  /// README.md): {"schema", "counters": {...}, "gauges": {...},
  /// "trace": {...}} with trace times in both ns and ms.
  std::string to_json() const;

  /// Counters/gauges right now (the calling thread's pending block flushed
  /// first when this is the global registry). Callers that run work on other
  /// threads must ensure those threads flushed (the thread pool does so after
  /// every chunk; a service worker calls flush_thread() when its request
  /// ends) or the snapshot under-counts.
  StatsSnapshot snapshot() const;

  /// What happened since `base`: counters subtract (a counter absent from
  /// the base counts from 0; counters never decrease). Gauges merge by max
  /// and cannot be subtracted — the delta carries a gauge only when it is
  /// new or higher than in the base, with its current value. Scoped-reset
  /// alternative for callers that own the registry: reset() + snapshot().
  StatsSnapshot delta_since(const StatsSnapshot& base) const;

  /// Drops all recorded data (counters, gauges, trace).
  void reset();

 private:
  /// Flushes the calling thread's pending block when this is the global
  /// registry (no-op otherwise, and when stats are compiled out).
  void flush_calling_thread_if_global() const;

  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  TraceNode root_{"root", 0, 0, {}};
};

class JsonValue;

/// A snapshot as the JSON object {"counters": {...}, "gauges": {...}} — the
/// shape of StatsRegistry::to_json() minus schema and trace. The mrmcheckd
/// responses embed per-request deltas this way.
JsonValue snapshot_to_json(const StatsSnapshot& snapshot);

/// Runtime switch. Defaults to the CSRLMRM_STATS environment variable (unset
/// or "0" = disabled); mrmcheck --stats and the benches enable it
/// explicitly. Reading is one relaxed atomic load.
bool stats_enabled();
void set_stats_enabled(bool on);

#if CSRLMRM_STATS_COMPILED

/// Adds `delta` to the named counter in the calling thread's block.
void counter_add(std::string_view name, std::uint64_t delta = 1);

/// Raises the named gauge to at least `value` in the calling thread's block.
void gauge_max(std::string_view name, double value);

/// Merges the calling thread's block into the global registry. Counters and
/// gauges always merge; the trace merges only when no ScopedTimer is open on
/// this thread (open timers keep indices into the pending tree). The thread
/// pool calls this after every executed chunk; serial code never needs to —
/// global-registry snapshots flush the calling thread automatically.
void flush_thread();

/// RAII trace scope: nests under the innermost open ScopedTimer of the same
/// thread. The name must outlive the timer (string literals in practice).
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  bool active_ = false;
  std::uint64_t start_ns_ = 0;
};

#else  // CSRLMRM_STATS_COMPILED == 0: everything below compiles to nothing.

inline void counter_add(std::string_view, std::uint64_t = 1) {}
inline void gauge_max(std::string_view, double) {}
inline void flush_thread() {}

class ScopedTimer {
 public:
  explicit ScopedTimer(const char*) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

#endif  // CSRLMRM_STATS_COMPILED

}  // namespace csrlmrm::obs

#include "obs/stats.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>

#include "obs/json.hpp"

namespace csrlmrm::obs {

namespace {

/// -1 = not yet initialized from the environment, 0 = off, 1 = on.
std::atomic<int> g_enabled{-1};

int read_enabled_from_environment() {
  const char* text = std::getenv("CSRLMRM_STATS");
  const bool on = text != nullptr && *text != '\0' &&
                  !(text[0] == '0' && text[1] == '\0');
  return on ? 1 : 0;
}

/// Sorts children by name, recursively (snapshot form: deterministic output
/// regardless of first-seen/merge order).
void sort_trace(TraceNode& node) {
  std::sort(node.children.begin(), node.children.end(),
            [](const TraceNode& a, const TraceNode& b) { return a.name < b.name; });
  for (TraceNode& child : node.children) sort_trace(child);
}

void merge_trace_into(TraceNode& target, const TraceNode& source) {
  target.calls += source.calls;
  target.total_ns += source.total_ns;
  for (const TraceNode& child : source.children) {
    auto it = std::find_if(target.children.begin(), target.children.end(),
                           [&](const TraceNode& t) { return t.name == child.name; });
    if (it == target.children.end()) {
      target.children.push_back({child.name, 0, 0, {}});
      it = target.children.end() - 1;
    }
    merge_trace_into(*it, child);
  }
}

}  // namespace

const TraceNode* TraceNode::find(std::string_view child_name) const {
  for (const TraceNode& child : children) {
    if (child.name == child_name) return &child;
  }
  return nullptr;
}

bool stats_enabled() {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    state = read_enabled_from_environment();
    g_enabled.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void set_stats_enabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

#if CSRLMRM_STATS_COMPILED

namespace {

/// Per-thread pending data. Recording never takes a lock; flush_thread()
/// moves the block's content into the global registry under its mutex.
struct ThreadBlock {
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::map<std::string, double, std::less<>> gauges;
  TraceNode root{"root", 0, 0, {}};
  /// Path of the open ScopedTimers as child indices from `root` (indices,
  /// not pointers: sibling insertion reallocates children vectors).
  std::vector<std::size_t> open_scopes;
  bool has_data = false;

  TraceNode& current() {
    TraceNode* node = &root;
    for (const std::size_t index : open_scopes) node = &node->children[index];
    return *node;
  }
};

thread_local ThreadBlock t_block;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void counter_add(std::string_view name, std::uint64_t delta) {
  if (!stats_enabled()) return;
  auto& counters = t_block.counters;
  const auto it = counters.find(name);
  if (it != counters.end()) {
    it->second += delta;
  } else {
    counters.emplace(std::string(name), delta);
  }
  t_block.has_data = true;
}

void gauge_max(std::string_view name, double value) {
  if (!stats_enabled()) return;
  auto& gauges = t_block.gauges;
  const auto it = gauges.find(name);
  if (it != gauges.end()) {
    it->second = std::max(it->second, value);
  } else {
    gauges.emplace(std::string(name), value);
  }
  t_block.has_data = true;
}

void flush_thread() {
  ThreadBlock& block = t_block;
  if (!block.has_data) return;
  StatsRegistry& registry = StatsRegistry::global();
  for (const auto& [name, delta] : block.counters) registry.add_counter(name, delta);
  for (const auto& [name, value] : block.gauges) registry.max_gauge(name, value);
  block.counters.clear();
  block.gauges.clear();
  // Trace data can only move while no timer is open: open ScopedTimers hold
  // child indices into this tree. They are closed by the time the pool
  // reports a chunk done, so worker flushes always include the trace.
  if (block.open_scopes.empty()) {
    if (!block.root.children.empty()) {
      registry.merge_trace(block.root);
      block.root.children.clear();
    }
    block.has_data = false;
  } else {
    block.has_data = !block.root.children.empty();
  }
}

ScopedTimer::ScopedTimer(const char* name) {
  if (!stats_enabled()) return;
  ThreadBlock& block = t_block;
  TraceNode& parent = block.current();
  std::size_t index = 0;
  for (; index < parent.children.size(); ++index) {
    if (parent.children[index].name == name) break;
  }
  if (index == parent.children.size()) parent.children.push_back({name, 0, 0, {}});
  block.open_scopes.push_back(index);
  active_ = true;
  start_ns_ = now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (!active_) return;
  const std::uint64_t elapsed = now_ns() - start_ns_;
  ThreadBlock& block = t_block;
  TraceNode& node = block.current();
  node.calls += 1;
  node.total_ns += elapsed;
  block.open_scopes.pop_back();
  block.has_data = true;
}

void StatsRegistry::flush_calling_thread_if_global() const {
  if (this == &StatsRegistry::global()) flush_thread();
}

#else  // CSRLMRM_STATS_COMPILED == 0

void StatsRegistry::flush_calling_thread_if_global() const {}

#endif  // CSRLMRM_STATS_COMPILED

StatsRegistry& StatsRegistry::global() {
  static StatsRegistry registry;
  return registry;
}

void StatsRegistry::add_counter(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    it->second += delta;
  } else {
    counters_.emplace(std::string(name), delta);
  }
}

void StatsRegistry::max_gauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    it->second = std::max(it->second, value);
  } else {
    gauges_.emplace(std::string(name), value);
  }
}

void StatsRegistry::merge_trace(const TraceNode& root) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Root-level calls/time are never recorded (the root is not a timer), so
  // only children merge meaningfully; merge_trace_into handles both anyway.
  for (const TraceNode& child : root.children) {
    auto it = std::find_if(root_.children.begin(), root_.children.end(),
                           [&](const TraceNode& t) { return t.name == child.name; });
    if (it == root_.children.end()) {
      root_.children.push_back({child.name, 0, 0, {}});
      it = root_.children.end() - 1;
    }
    merge_trace_into(*it, child);
  }
}

std::map<std::string, std::uint64_t> StatsRegistry::counters() const {
  flush_calling_thread_if_global();
  std::lock_guard<std::mutex> lock(mutex_);
  return {counters_.begin(), counters_.end()};
}

std::map<std::string, double> StatsRegistry::gauges() const {
  flush_calling_thread_if_global();
  std::lock_guard<std::mutex> lock(mutex_);
  return {gauges_.begin(), gauges_.end()};
}

TraceNode StatsRegistry::trace() const {
  flush_calling_thread_if_global();
  TraceNode snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = root_;
  }
  sort_trace(snapshot);
  return snapshot;
}

std::uint64_t StatsRegistry::counter(std::string_view name) const {
  flush_calling_thread_if_global();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

double StatsRegistry::gauge(std::string_view name) const {
  flush_calling_thread_if_global();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second : std::nan("");
}

namespace {

JsonValue trace_to_json(const TraceNode& node) {
  JsonValue object = JsonValue::object();
  object.set("name", JsonValue(node.name));
  object.set("calls", JsonValue(static_cast<double>(node.calls)));
  object.set("total_ns", JsonValue(static_cast<double>(node.total_ns)));
  object.set("total_ms", JsonValue(static_cast<double>(node.total_ns) / 1e6));
  JsonValue children = JsonValue::array();
  for (const TraceNode& child : node.children) children.push_back(trace_to_json(child));
  object.set("children", std::move(children));
  return object;
}

}  // namespace

std::string StatsRegistry::to_json() const {
  // Snapshot through the public accessors (they flush + lock); building the
  // document itself needs no lock.
  const auto counter_map = counters();
  const auto gauge_map = gauges();
  const TraceNode trace_root = trace();

  JsonValue document = JsonValue::object();
  document.set("schema", JsonValue(std::string("csrlmrm-stats-v1")));
  JsonValue counters_json = JsonValue::object();
  for (const auto& [name, value] : counter_map) {
    counters_json.set(name, JsonValue(static_cast<double>(value)));
  }
  document.set("counters", std::move(counters_json));
  JsonValue gauges_json = JsonValue::object();
  for (const auto& [name, value] : gauge_map) gauges_json.set(name, JsonValue(value));
  document.set("gauges", std::move(gauges_json));
  document.set("trace", trace_to_json(trace_root));
  return write_json(document);
}

StatsSnapshot StatsRegistry::snapshot() const {
  // counters()/gauges() each flush the calling thread and lock; two calls
  // are fine — counters only grow, so an interleaved write between them can
  // only make the delta attribute slightly *less* work to the request, never
  // negative.
  return StatsSnapshot{counters(), gauges()};
}

StatsSnapshot StatsRegistry::delta_since(const StatsSnapshot& base) const {
  const StatsSnapshot now = snapshot();
  StatsSnapshot delta;
  for (const auto& [name, value] : now.counters) {
    const auto it = base.counters.find(name);
    const std::uint64_t before = it != base.counters.end() ? it->second : 0;
    // Guard against a caller mixing snapshots across a reset(): a counter
    // can then read lower than the base, and wrapping to ~2^64 would be
    // worse than dropping the entry.
    if (value > before) delta.counters.emplace(name, value - before);
  }
  for (const auto& [name, value] : now.gauges) {
    const auto it = base.gauges.find(name);
    if (it == base.gauges.end() || value > it->second) delta.gauges.emplace(name, value);
  }
  return delta;
}

JsonValue snapshot_to_json(const StatsSnapshot& snapshot) {
  JsonValue object = JsonValue::object();
  JsonValue counters = JsonValue::object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.set(name, JsonValue(static_cast<double>(value)));
  }
  object.set("counters", std::move(counters));
  JsonValue gauges = JsonValue::object();
  for (const auto& [name, value] : snapshot.gauges) gauges.set(name, JsonValue(value));
  object.set("gauges", std::move(gauges));
  return object;
}

void StatsRegistry::reset() {
  flush_calling_thread_if_global();  // don't let stale thread data resurface later
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  root_.children.clear();
}

}  // namespace csrlmrm::obs

// Timed paths through an MRM (Definition 3.3) and the accumulated reward
// function y_sigma(t). These are primarily a *specification* device: the
// numerical engines never materialize timed paths, but tests and examples use
// them to validate the reward semantics against hand-computed values
// (e.g. Example 3.2 of the thesis).
#pragma once

#include <limits>
#include <vector>

#include "core/mrm.hpp"

namespace csrlmrm::core {

/// One step of a timed path: the state and the residence time spent in it.
/// The final step of a finite path (one ending in an absorbing state) has
/// residence time infinity.
struct PathStep {
  StateIndex state = 0;
  double residence_time = 0.0;
};

/// A (prefix of a) timed path sigma = s0 --t0--> s1 --t1--> ...
class TimedPath {
 public:
  /// Builds a path from explicit steps. Throws std::invalid_argument when a
  /// non-final residence time is not positive, or the step list is empty.
  explicit TimedPath(std::vector<PathStep> steps);

  /// Number of recorded states.
  std::size_t length() const { return steps_.size(); }

  /// sigma[i]: the (i+1)-st state. Throws std::out_of_range beyond length().
  StateIndex state(std::size_t i) const;

  /// Residence time t_i in sigma[i].
  double residence_time(std::size_t i) const;

  /// sigma@t: the state occupied at time t (Definition 3.3: the i-th state is
  /// occupied when sum_{j<i} t_j < t <= sum_{j<=i} t_j; at t = 0 the initial
  /// state). Throws std::out_of_range when t lies beyond the recorded prefix.
  StateIndex state_at(double t) const;

  /// y_sigma(t): reward accumulated along this path until time t in `model`,
  /// including the impulse rewards of all transitions taken strictly before
  /// t (Definition 3.3). Throws std::out_of_range when t lies beyond the
  /// recorded prefix and std::invalid_argument when a step is not a
  /// transition of `model`.
  double accumulated_reward(const Mrm& model, double t) const;

  /// True iff the path ends in a step with infinite residence time.
  bool is_finite_path() const;

  const std::vector<PathStep>& steps() const { return steps_; }

 private:
  std::vector<PathStep> steps_;
};

/// Convenience: positive infinity for "stays forever" final steps.
inline constexpr double kInfiniteResidence = std::numeric_limits<double>::infinity();

}  // namespace csrlmrm::core

#include "core/transform.hpp"

#include <stdexcept>

namespace csrlmrm::core {

Mrm make_absorbing(const Mrm& model, const std::vector<bool>& absorb) {
  const std::size_t n = model.num_states();
  if (absorb.size() != n) {
    throw std::invalid_argument("make_absorbing: mask size mismatch");
  }

  RateMatrixBuilder rates(n);
  ImpulseRewardsBuilder impulses(n);
  std::vector<double> rewards(n, 0.0);
  for (StateIndex s = 0; s < n; ++s) {
    if (absorb[s]) continue;  // rho'(s) = 0, R'(s,.) = 0, iota'(s,.) = 0
    rewards[s] = model.state_reward(s);
    for (const auto& e : model.rates().transitions(s)) rates.add(s, e.col, e.value);
    for (const auto& e : model.impulse_rewards().row(s)) impulses.add(s, e.col, e.value);
  }

  // The labeling is unchanged by Definition 4.1 (only dynamics and rewards
  // change); copy it verbatim.
  return Mrm(Ctmc(rates.build(), model.labels()), std::move(rewards), impulses.build());
}

const Mrm& TransformCache::absorbing(const Mrm& model, const std::vector<bool>& absorb) {
  const auto found = entries_.find(absorb);
  if (found != entries_.end()) {
    ++hits_;
    return found->second;
  }
  return entries_.emplace(absorb, make_absorbing(model, absorb)).first->second;
}

}  // namespace csrlmrm::core

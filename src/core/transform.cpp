#include "core/transform.hpp"

#include <stdexcept>
#include <utility>

#include "obs/stats.hpp"

namespace csrlmrm::core {

Mrm make_absorbing(const Mrm& model, const std::vector<bool>& absorb) {
  const std::size_t n = model.num_states();
  if (absorb.size() != n) {
    throw std::invalid_argument("make_absorbing: mask size mismatch");
  }

  RateMatrixBuilder rates(n);
  ImpulseRewardsBuilder impulses(n);
  std::vector<double> rewards(n, 0.0);
  for (StateIndex s = 0; s < n; ++s) {
    if (absorb[s]) continue;  // rho'(s) = 0, R'(s,.) = 0, iota'(s,.) = 0
    rewards[s] = model.state_reward(s);
    for (const auto& e : model.rates().transitions(s)) rates.add(s, e.col, e.value);
    for (const auto& e : model.impulse_rewards().row(s)) impulses.add(s, e.col, e.value);
  }

  // The labeling is unchanged by Definition 4.1 (only dynamics and rewards
  // change); copy it verbatim.
  return Mrm(Ctmc(rates.build(), model.labels()), std::move(rewards), impulses.build());
}

TransformCache::TransformCache(std::size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const Mrm> TransformCache::absorbing(const Mrm& model,
                                                     const std::vector<bool>& absorb) {
  // Build OUTSIDE the lock would double-build under a concurrent miss on the
  // same mask; holding the lock across make_absorbing keeps the cache
  // single-build per mask instead. Transform builds are cheap (one pass over
  // the rate matrix) relative to the solves behind them, so serializing them
  // is the right trade.
  const std::lock_guard<std::mutex> lock(mutex_);
  ++tick_;
  const auto found = entries_.find(absorb);
  if (found != entries_.end()) {
    ++hits_;
    found->second.last_use = tick_;
    obs::counter_add("transform.cache_hits");
    return found->second.model;
  }
  if (capacity_ > 0 && entries_.size() >= capacity_) {
    auto victim = entries_.begin();
    for (auto cand = entries_.begin(); cand != entries_.end(); ++cand) {
      if (cand->second.last_use < victim->second.last_use) victim = cand;
    }
    entries_.erase(victim);
    obs::counter_add("transform.cache_evictions");
  }
  auto built = std::make_shared<const Mrm>(make_absorbing(model, absorb));
  entries_.emplace(absorb, Entry{built, tick_});
  obs::gauge_max("transform.cache_occupancy", static_cast<double>(entries_.size()));
  return built;
}

std::size_t TransformCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t TransformCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

}  // namespace csrlmrm::core

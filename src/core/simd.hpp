// Portable fixed-width SIMD layer for the numeric kernels.
//
// DoubleVec wraps a small compile-time-width vector of doubles. On GCC/Clang
// it compiles to the vector-extension type (four lanes, i.e. two SSE2 /
// one AVX register worth); everywhere else — or when CSRLMRM_SIMD_SCALAR is
// defined — it degrades to a one-lane scalar so every kernel keeps a single
// source of truth.
//
// Confinement contract (enforced by csrlmrm-lint's `simd-hygiene` rule):
// this header is the only file in the tree allowed to spell raw vector
// machinery — `vector_size` attributes, `<immintrin.h>` intrinsics,
// `#pragma omp simd`. Kernels elsewhere use DoubleVec and the helpers below,
// so a platform without the extensions falls back to bit-identical scalar
// code without touching any call site.
//
// Bitwise contract: every operation is elementwise (+, -, *, /) — no
// horizontal reductions and no fused multiply-add contraction on the SSE2
// baseline — so a vectorized loop produces bit-identical results to its
// scalar remainder, lane for lane. tests/test_simd_kernels.cpp property-
// tests this against the scalar spellings over random inputs, and the
// engine-level determinism checks (1/2/8 threads, dfpg-vs-classdp
// agreement) run on top of these kernels.
//
// lint:allow-file(reserved-identifier) -- the vector_size attribute and the
// feature-test macros below necessarily use double-underscore names.
#pragma once

#include <cstddef>
#include <cstring>

namespace csrlmrm::core::simd {

#if (defined(__GNUC__) || defined(__clang__)) && !defined(CSRLMRM_SIMD_SCALAR)
#define CSRLMRM_SIMD_VECTORIZED 1
#else
#define CSRLMRM_SIMD_VECTORIZED 0
#endif

/// Fixed-width vector of doubles with elementwise arithmetic and unaligned
/// load/store. Width is a compile-time constant (kLanes); callers write one
/// vector loop plus a scalar remainder loop over the same expression.
class DoubleVec {
 public:
#if CSRLMRM_SIMD_VECTORIZED
  static constexpr std::size_t kLanes = 4;

 private:
  typedef double Native __attribute__((vector_size(kLanes * sizeof(double))));
#else
  static constexpr std::size_t kLanes = 1;

 private:
  typedef double Native;
#endif

 public:
  DoubleVec() = default;

  /// All lanes set to `x`.
  static DoubleVec broadcast(double x) {
    DoubleVec v;
    double lanes[kLanes];
    for (std::size_t i = 0; i < kLanes; ++i) lanes[i] = x;
    std::memcpy(&v.v_, lanes, sizeof v.v_);
    return v;
  }

  /// Unaligned load of kLanes doubles starting at `p`.
  static DoubleVec load(const double* p) {
    DoubleVec v;
    std::memcpy(&v.v_, p, sizeof v.v_);
    return v;
  }

  /// Unaligned store of kLanes doubles starting at `p`.
  void store(double* p) const { std::memcpy(p, &v_, sizeof v_); }

  friend DoubleVec operator+(DoubleVec a, DoubleVec b) {
    a.v_ = a.v_ + b.v_;
    return a;
  }
  friend DoubleVec operator-(DoubleVec a, DoubleVec b) {
    a.v_ = a.v_ - b.v_;
    return a;
  }
  friend DoubleVec operator*(DoubleVec a, DoubleVec b) {
    a.v_ = a.v_ * b.v_;
    return a;
  }
  friend DoubleVec operator/(DoubleVec a, DoubleVec b) {
    a.v_ = a.v_ / b.v_;
    return a;
  }

 private:
  Native v_;
};

/// dst[i] += a * src[i] for i in [0, count). Bit-identical to the scalar
/// loop: one multiply and one add per element, no reassociation.
inline void axpy(double* dst, const double* src, std::size_t count, double a) {
  const DoubleVec va = DoubleVec::broadcast(a);
  std::size_t i = 0;
  for (; i + DoubleVec::kLanes <= count; i += DoubleVec::kLanes) {
    (DoubleVec::load(dst + i) + va * DoubleVec::load(src + i)).store(dst + i);
  }
  for (; i < count; ++i) dst[i] += a * src[i];
}

/// dst[i] = a * src[i] for i in [0, count). Safe for dst == src.
inline void scale(double* dst, const double* src, std::size_t count, double a) {
  const DoubleVec va = DoubleVec::broadcast(a);
  std::size_t i = 0;
  for (; i + DoubleVec::kLanes <= count; i += DoubleVec::kLanes) {
    (va * DoubleVec::load(src + i)).store(dst + i);
  }
  for (; i < count; ++i) dst[i] = a * src[i];
}

/// dst[i] = static_cast<double>(first + i) * scale + offset — the affine
/// index fill used by the Poisson log-pmf tables. Matches the scalar
/// expression `dn * scale + offset` with dn = double(first + i) exactly.
inline void fill_affine(double* dst, std::size_t count, std::size_t first, double scale,
                        double offset) {
  const DoubleVec vs = DoubleVec::broadcast(scale);
  const DoubleVec vo = DoubleVec::broadcast(offset);
  std::size_t i = 0;
  double lanes[DoubleVec::kLanes];
  for (; i + DoubleVec::kLanes <= count; i += DoubleVec::kLanes) {
    for (std::size_t lane = 0; lane < DoubleVec::kLanes; ++lane) {
      lanes[lane] = static_cast<double>(first + i + lane);
    }
    (DoubleVec::load(lanes) * vs + vo).store(dst + i);
  }
  for (; i < count; ++i) dst[i] = static_cast<double>(first + i) * scale + offset;
}

}  // namespace csrlmrm::core::simd

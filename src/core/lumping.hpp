// Ordinary lumpability for Markov reward models.
//
// Two states may share a block only if they agree on (a) label set, (b)
// state reward, and (c) for every block B, the multiset of (aggregate rate
// into B, impulse value) pairs of their transitions — refined iteratively to
// the coarsest fixed point. The (c) condition groups each state's
// transitions into a block by impulse value: this is stronger than plain
// CTMC lumpability but is exactly what preserves the joint distribution of
// (state process, accumulated reward) — and hence every CSRL formula — under
// the quotient: the uniformized path signatures (k, j) of section 4.4.2 are
// in measure-preserving bijection.
//
// The quotient MRM merges each block into one state; because the refinement
// keeps (target block, impulse) pairs separated per source state, a source
// block has at most ... note: a quotient *pair* (B, B') may carry several
// distinct impulse values from different grouped transitions; since the Mrm
// representation admits one impulse per ordered state pair, blocks whose
// outgoing transitions into one target block mix impulse values are split
// further (see refine_multi_impulse in the implementation), so the quotient
// is always representable. The result is a possibly-finer-than-optimal but
// always sound partition.
#pragma once

#include <cstddef>
#include <vector>

#include "core/mrm.hpp"

namespace csrlmrm::core {

/// Result of a lumping computation.
struct Lumping {
  /// block_of[s] is the block (quotient-state) index of original state s.
  std::vector<std::size_t> block_of;
  /// Number of blocks = number of quotient states.
  std::size_t num_blocks = 0;
  /// One representative original state per block (the smallest member).
  std::vector<StateIndex> representative;
};

/// Computes a sound lumping partition of `model` as described above.
Lumping compute_lumping(const Mrm& model);

/// Builds the quotient MRM induced by `lumping` (labels, state reward and
/// outgoing (rate, impulse) structure taken from each block representative;
/// rates into a target block are aggregated). `lumping` must come from
/// compute_lumping on the same model.
Mrm build_quotient(const Mrm& model, const Lumping& lumping);

/// Convenience: compute_lumping + build_quotient.
Mrm lump(const Mrm& model);

}  // namespace csrlmrm::core

#include "core/lumping.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>
#include <tuple>

namespace csrlmrm::core {

namespace {

/// One grouped outgoing entry: (target block, impulse value, summed rate).
using SignatureEntry = std::tuple<std::size_t, double, double>;
using Signature = std::vector<SignatureEntry>;

Signature outgoing_signature(const Mrm& model, StateIndex s,
                             const std::vector<std::size_t>& block_of) {
  std::map<std::pair<std::size_t, double>, double> grouped;
  for (const auto& e : model.rates().transitions(s)) {
    grouped[{block_of[e.col], model.impulse_reward(s, e.col)}] += e.value;
  }
  Signature signature;
  signature.reserve(grouped.size());
  for (const auto& [key, rate] : grouped) {
    signature.emplace_back(key.first, key.second, rate);
  }
  return signature;
}

/// Reassigns contiguous block ids given per-state keys; returns block count.
template <typename Key>
std::size_t assign_blocks(const std::vector<Key>& keys, std::vector<std::size_t>& block_of) {
  std::map<Key, std::size_t> ids;
  for (std::size_t s = 0; s < keys.size(); ++s) {
    const auto [it, inserted] = ids.try_emplace(keys[s], ids.size());
    block_of[s] = it->second;
  }
  return ids.size();
}

}  // namespace

Lumping compute_lumping(const Mrm& model) {
  const std::size_t n = model.num_states();
  Lumping lumping;
  lumping.block_of.assign(n, 0);

  // Initial partition: identical label sets and state rewards.
  {
    std::vector<std::pair<std::vector<std::string>, double>> keys(n);
    for (StateIndex s = 0; s < n; ++s) {
      keys[s] = {model.labels().labels_of(s), model.state_reward(s)};
    }
    lumping.num_blocks = assign_blocks(keys, lumping.block_of);
  }

  // Refinement to the coarsest partition stable under outgoing
  // (target-block, impulse, aggregate-rate) signatures, with the extra
  // representability constraint that no merged state keeps an
  // impulse-carrying edge inside its own block (such an edge would have to
  // become a self-loop with a positive impulse in the quotient, which
  // Definition 3.1 forbids and which would change the reward semantics).
  while (true) {
    // Signature refinement.
    std::vector<std::pair<std::size_t, Signature>> keys(n);
    for (StateIndex s = 0; s < n; ++s) {
      keys[s] = {lumping.block_of[s], outgoing_signature(model, s, lumping.block_of)};
    }
    assign_blocks(keys, lumping.block_of);

    // Incoming-impulse refinement: if some source state reaches one target
    // block through edges with *different* impulse values, no single-impulse
    // quotient edge can represent the mixture and the accumulated-reward
    // distribution would change — split that block by the impulse each
    // member receives from the offending source.
    {
      std::vector<std::vector<std::pair<std::size_t, double>>> incoming_keys(n);
      for (StateIndex s = 0; s < n; ++s) {
        std::map<std::size_t, double> first_impulse;
        std::map<std::size_t, bool> mixed;
        for (const auto& e : model.rates().transitions(s)) {
          const std::size_t block = lumping.block_of[e.col];
          const double impulse = model.impulse_reward(s, e.col);
          const auto [it, inserted] = first_impulse.try_emplace(block, impulse);
          if (!inserted && it->second != impulse) mixed[block] = true;
        }
        if (mixed.empty()) continue;
        for (const auto& e : model.rates().transitions(s)) {
          const std::size_t block = lumping.block_of[e.col];
          if (mixed.count(block)) {
            incoming_keys[e.col].emplace_back(s, model.impulse_reward(s, e.col));
          }
        }
      }
      std::vector<std::pair<std::size_t, std::vector<std::pair<std::size_t, double>>>> keys2(n);
      for (StateIndex s = 0; s < n; ++s) {
        std::sort(incoming_keys[s].begin(), incoming_keys[s].end());
        keys2[s] = {lumping.block_of[s], std::move(incoming_keys[s])};
      }
      assign_blocks(keys2, lumping.block_of);
    }

    // Representability: singletonize states with intra-block impulse edges
    // (key s+1 is unique per state and never collides with the 0 of
    // unaffected states).
    std::vector<std::pair<std::size_t, std::size_t>> single_keys(n);
    for (StateIndex s = 0; s < n; ++s) {
      bool intra_block_impulse = false;
      for (const auto& e : model.impulse_rewards().row(s)) {
        if (e.value > 0.0 && lumping.block_of[e.col] == lumping.block_of[s] && e.col != s) {
          intra_block_impulse = true;
          break;
        }
      }
      single_keys[s] = {lumping.block_of[s], intra_block_impulse ? s + 1 : 0};
    }
    const std::size_t final_count = assign_blocks(single_keys, lumping.block_of);

    // Both steps only ever split blocks, so an unchanged count means the
    // partition is stable.
    if (final_count == lumping.num_blocks) break;
    lumping.num_blocks = final_count;
  }

  lumping.representative.assign(lumping.num_blocks, n);
  for (StateIndex s = 0; s < n; ++s) {
    StateIndex& representative = lumping.representative[lumping.block_of[s]];
    if (representative == n || s < representative) representative = s;
  }
  return lumping;
}

Mrm build_quotient(const Mrm& model, const Lumping& lumping) {
  if (lumping.block_of.size() != model.num_states()) {
    throw std::invalid_argument("build_quotient: lumping does not match the model");
  }
  const std::size_t blocks = lumping.num_blocks;

  RateMatrixBuilder rates(blocks);
  ImpulseRewardsBuilder impulses(blocks);
  Labeling labels(blocks);
  std::vector<double> rewards(blocks, 0.0);

  for (std::size_t block = 0; block < blocks; ++block) {
    const StateIndex representative = lumping.representative[block];
    rewards[block] = model.state_reward(representative);
    for (const auto& ap : model.labels().labels_of(representative)) labels.add(block, ap);

    // Aggregate the representative's transitions per target block; the
    // refinement guarantees one impulse value per (block, target block).
    std::map<std::size_t, double> rate_into;
    std::map<std::size_t, double> impulse_into;
    for (const auto& e : model.rates().transitions(representative)) {
      const std::size_t target = lumping.block_of[e.col];
      rate_into[target] += e.value;
      const double impulse = model.impulse_reward(representative, e.col);
      const auto [it, inserted] = impulse_into.try_emplace(target, impulse);
      if (!inserted && it->second != impulse) {
        throw std::logic_error(
            "build_quotient: mixed impulse values into one target block (partition not a "
            "valid lumping)");
      }
    }
    for (const auto& [target, rate] : rate_into) {
      rates.add(block, target, rate);
      const double impulse = impulse_into.at(target);
      if (impulse > 0.0) impulses.add(block, target, impulse);
    }
  }
  return Mrm(Ctmc(rates.build(), std::move(labels)), std::move(rewards), impulses.build());
}

Mrm lump(const Mrm& model) { return build_quotient(model, compute_lumping(model)); }

}  // namespace csrlmrm::core

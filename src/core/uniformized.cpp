#include "core/uniformized.hpp"

#include <stdexcept>

namespace csrlmrm::core {

UniformizedMrm::UniformizedMrm(const Mrm& model, double uniformization_factor)
    : model_(&model) {
  if (!(uniformization_factor >= 1.0)) {
    throw std::invalid_argument(
        "UniformizedMrm: uniformization factor must be >= 1 so Lambda >= max E(s)");
  }
  const double max_exit = model.rates().max_exit_rate();
  lambda_ = max_exit > 0.0 ? uniformization_factor * max_exit : 1.0;

  const std::size_t n = model.num_states();
  linalg::CsrBuilder builder(n, n);
  for (StateIndex s = 0; s < n; ++s) {
    double off_diagonal = 0.0;
    for (const auto& e : model.rates().transitions(s)) {
      if (e.col == s) continue;  // folded into the self-loop term below
      const double p = e.value / lambda_;
      builder.add(s, e.col, p);
      off_diagonal += p;
    }
    // Self loop: own rate R(s,s)/Lambda plus the uniformization remainder
    // 1 - E(s)/Lambda. Written as 1 - off_diagonal to keep rows stochastic
    // to machine precision.
    const double self_loop = 1.0 - off_diagonal;
    if (self_loop > 0.0) builder.add(s, s, self_loop);
  }
  probabilities_ = builder.build();
}

}  // namespace csrlmrm::core

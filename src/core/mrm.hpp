// Markov reward model M = ((S, R, Label), rho, iota) (Definition 3.1).
//
// rho : S -> R>=0 is the state reward structure (reward accrues at rate
// rho(s) while residing in s); iota : S x S -> R>=0 is the impulse reward
// structure (reward iota(s,s') is gained instantaneously when the transition
// s -> s' fires). The thesis requires iota(s,s) = 0 whenever R(s,s) > 0;
// impulses on transitions with zero rate are meaningless and rejected.
#pragma once

#include <cstddef>
#include <vector>

#include "core/ctmc.hpp"
#include "linalg/csr_matrix.hpp"

namespace csrlmrm::core {

/// Builder for the impulse reward structure; mirrors RateMatrixBuilder.
class ImpulseRewardsBuilder {
 public:
  explicit ImpulseRewardsBuilder(std::size_t num_states);

  /// Sets iota(from, to) += reward. Throws std::invalid_argument for negative
  /// or non-finite rewards.
  void add(StateIndex from, StateIndex to, double reward);

  /// Pre-allocates room for `entries` impulses (see CsrBuilder::reserve).
  void reserve(std::size_t entries) { builder_.reserve(entries); }

  linalg::CsrMatrix build() const { return builder_.build(); }

 private:
  linalg::CsrBuilder builder_;
};

/// An immutable Markov reward model.
class Mrm {
 public:
  /// Validates (throws std::invalid_argument):
  ///  * state_rewards has exactly num_states entries, all finite and >= 0;
  ///  * impulse matrix is num_states x num_states with entries >= 0;
  ///  * every positive impulse sits on a transition with positive rate;
  ///  * iota(s,s) = 0 wherever R(s,s) > 0.
  Mrm(Ctmc ctmc, std::vector<double> state_rewards, linalg::CsrMatrix impulse_rewards);

  /// Convenience constructor for models without impulse rewards.
  Mrm(Ctmc ctmc, std::vector<double> state_rewards);

  std::size_t num_states() const { return ctmc_.num_states(); }
  const Ctmc& ctmc() const { return ctmc_; }
  const RateMatrix& rates() const { return ctmc_.rates(); }
  const Labeling& labels() const { return ctmc_.labels(); }

  /// rho(s).
  double state_reward(StateIndex s) const { return state_rewards_.at(s); }
  const std::vector<double>& state_rewards() const { return state_rewards_; }

  /// iota(s, s'); 0 when no impulse is attached.
  double impulse_reward(StateIndex from, StateIndex to) const {
    return impulse_rewards_.at(from, to);
  }
  const linalg::CsrMatrix& impulse_rewards() const { return impulse_rewards_; }

  /// True iff every impulse reward is zero (the pure rate-reward case of
  /// [Bai00]/[Hav02], which several algorithms specialize on).
  bool has_impulse_rewards() const { return impulse_rewards_.non_zeros() > 0; }

 private:
  void validate() const;

  Ctmc ctmc_;
  std::vector<double> state_rewards_;
  linalg::CsrMatrix impulse_rewards_;
};

}  // namespace csrlmrm::core

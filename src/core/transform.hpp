// The M[Phi] model transformation (Definition 4.1): make every state in a
// given set absorbing and equip it with zero rewards.
//
// Used by the until checker (Theorems 4.1-4.3): for Phi U^[0,t]_[0,r] Psi the
// set made absorbing is Sat(!Phi) union Sat(Psi), after which
// P(s, Phi U_[0,r]^[0,t] Psi) = Pr{ Y(t) <= r, X(t) |= Psi } in the
// transformed model.
//
// Note the asymmetry the thesis relies on: *outgoing* rates, the state
// reward, and *outgoing* impulse rewards of an absorbed state are zeroed, but
// impulses on transitions *into* an absorbed state are kept — the jump that
// first reaches the absorbing set still pays its impulse cost.
#pragma once

#include <vector>

#include "core/mrm.hpp"

namespace csrlmrm::core {

/// Returns M[absorb]: the same state space with every state s for which
/// absorb[s] holds made absorbing with zero rewards. Throws
/// std::invalid_argument when the mask size differs from the model size.
Mrm make_absorbing(const Mrm& model, const std::vector<bool>& absorb);

}  // namespace csrlmrm::core

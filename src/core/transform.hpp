// The M[Phi] model transformation (Definition 4.1): make every state in a
// given set absorbing and equip it with zero rewards.
//
// Used by the until checker (Theorems 4.1-4.3): for Phi U^[0,t]_[0,r] Psi the
// set made absorbing is Sat(!Phi) union Sat(Psi), after which
// P(s, Phi U_[0,r]^[0,t] Psi) = Pr{ Y(t) <= r, X(t) |= Psi } in the
// transformed model.
//
// Note the asymmetry the thesis relies on: *outgoing* rates, the state
// reward, and *outgoing* impulse rewards of an absorbed state are zeroed, but
// impulses on transitions *into* an absorbed state are kept — the jump that
// first reaches the absorbing set still pays its impulse cost.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/mrm.hpp"

namespace csrlmrm::core {

/// Returns M[absorb]: the same state space with every state s for which
/// absorb[s] holds made absorbing with zero rewards. Throws
/// std::invalid_argument when the mask size differs from the model size.
Mrm make_absorbing(const Mrm& model, const std::vector<bool>& absorb);

/// Memoizes make_absorbing results by absorbing mask, so a batch of until
/// queries that share one transformed model (the plan compiler's hoisting
/// pass, the two mask runs of an operator with UNKNOWN operand states, or
/// the per-model resident cache of mrmcheckd) builds it once.
/// make_absorbing is a deterministic pure function of (model, mask), so
/// returning the cached Mrm is bitwise-identical to rebuilding it.
///
/// One cache instance serves ONE base model (the key is the mask alone);
/// callers bind a cache to a model and must not mix models. Thread-safe and
/// capacity-bounded: a daemon keeps one cache alive per resident model for
/// the process lifetime and serves concurrent same-model queries from it, so
/// lookups lock internally and occupancy is bounded LRU — eviction only
/// drops the cache's reference, handed-out shared_ptrs stay valid.
/// Observability: "transform.cache_hits" / "transform.cache_evictions"
/// counters and the "transform.cache_occupancy" gauge.
class TransformCache {
 public:
  /// Distinct masks retained. Generous for one model's formula batches
  /// (three transform shapes per until class), tight enough that a daemon
  /// fed adversarial mask-churning queries stays bounded.
  static constexpr std::size_t kDefaultCapacity = 64;

  explicit TransformCache(std::size_t capacity = kDefaultCapacity);

  /// M[absorb] for the bound base model, built on first request.
  std::shared_ptr<const Mrm> absorbing(const Mrm& model, const std::vector<bool>& absorb);

  std::size_t size() const;
  std::size_t hits() const;

 private:
  struct Entry {
    std::shared_ptr<const Mrm> model;
    std::uint64_t last_use = 0;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::uint64_t tick_ = 0;  // lint:guarded_by(mutex_)
  std::size_t hits_ = 0;    // lint:guarded_by(mutex_)
  std::map<std::vector<bool>, Entry> entries_;  // lint:guarded_by(mutex_)
};

}  // namespace csrlmrm::core

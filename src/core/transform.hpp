// The M[Phi] model transformation (Definition 4.1): make every state in a
// given set absorbing and equip it with zero rewards.
//
// Used by the until checker (Theorems 4.1-4.3): for Phi U^[0,t]_[0,r] Psi the
// set made absorbing is Sat(!Phi) union Sat(Psi), after which
// P(s, Phi U_[0,r]^[0,t] Psi) = Pr{ Y(t) <= r, X(t) |= Psi } in the
// transformed model.
//
// Note the asymmetry the thesis relies on: *outgoing* rates, the state
// reward, and *outgoing* impulse rewards of an absorbed state are zeroed, but
// impulses on transitions *into* an absorbed state are kept — the jump that
// first reaches the absorbing set still pays its impulse cost.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "core/mrm.hpp"

namespace csrlmrm::core {

/// Returns M[absorb]: the same state space with every state s for which
/// absorb[s] holds made absorbing with zero rewards. Throws
/// std::invalid_argument when the mask size differs from the model size.
Mrm make_absorbing(const Mrm& model, const std::vector<bool>& absorb);

/// Memoizes make_absorbing results by absorbing mask, so a batch of until
/// queries that share one transformed model (the plan compiler's hoisting
/// pass, or the two mask runs of an operator with UNKNOWN operand states)
/// builds it once. make_absorbing is a deterministic pure function of
/// (model, mask), so returning the cached Mrm is bitwise-identical to
/// rebuilding it.
///
/// One cache instance serves ONE base model (the key is the mask alone);
/// callers bind a cache to a model and must not mix models. Not thread-safe:
/// the until checker consults it only from its serial prologue, before the
/// per-state fan-out.
class TransformCache {
 public:
  /// M[absorb] for the bound base model, built on first request. The
  /// reference stays valid for the cache's lifetime (node-based map).
  const Mrm& absorbing(const Mrm& model, const std::vector<bool>& absorb);

  std::size_t size() const { return entries_.size(); }
  std::size_t hits() const { return hits_; }

 private:
  std::map<std::vector<bool>, Mrm> entries_;
  std::size_t hits_ = 0;
};

}  // namespace csrlmrm::core

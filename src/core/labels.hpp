// State labeling with atomic propositions (section 2.5 of the thesis).
//
// A Labeling is the interpretation function Label : S -> 2^AP. Propositions
// are interned strings; membership queries by name return state masks that
// plug directly into the model-checking set algebra.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace csrlmrm::core {

/// State index type used across the library.
using StateIndex = std::size_t;

/// Assigns each state a set of atomic propositions.
class Labeling {
 public:
  /// A labeling for `num_states` states, all initially unlabeled.
  explicit Labeling(std::size_t num_states);

  std::size_t num_states() const { return states_.size(); }

  /// Declares `ap` as a known proposition without attaching it to any state.
  /// Idempotent. Useful for mirroring the #DECLARATION section of .lab files.
  void declare(const std::string& ap);

  /// Attaches proposition `ap` to `state` (declaring `ap` if new).
  /// Throws std::out_of_range for an invalid state.
  void add(StateIndex state, const std::string& ap);

  /// True iff `ap` is declared and attached to `state`.
  bool has(StateIndex state, const std::string& ap) const;

  /// True iff `ap` has been declared (even if attached to no state).
  bool is_declared(const std::string& ap) const;

  /// Mask of the states labeled with `ap`; all-false when `ap` is unknown
  /// (an undeclared proposition holds nowhere, matching the CSRL semantics
  /// a |= only via Label(s)).
  std::vector<bool> states_with(const std::string& ap) const;

  /// The propositions attached to one state, in declaration order.
  std::vector<std::string> labels_of(StateIndex state) const;

  /// All declared propositions in declaration order.
  const std::vector<std::string>& propositions() const { return names_; }

 private:
  std::vector<std::vector<std::size_t>> states_;  // per state: sorted ap ids
  std::vector<std::string> names_;                // ap id -> name
  std::unordered_map<std::string, std::size_t> ids_;
};

}  // namespace csrlmrm::core

#include "core/labels.hpp"

#include <algorithm>
#include <stdexcept>

namespace csrlmrm::core {

Labeling::Labeling(std::size_t num_states) : states_(num_states) {}

void Labeling::declare(const std::string& ap) {
  if (ids_.contains(ap)) return;
  ids_.emplace(ap, names_.size());
  names_.push_back(ap);
}

void Labeling::add(StateIndex state, const std::string& ap) {
  if (state >= states_.size()) {
    throw std::out_of_range("Labeling::add: state " + std::to_string(state) + " out of range");
  }
  declare(ap);
  const std::size_t id = ids_.at(ap);
  auto& set = states_[state];
  const auto it = std::lower_bound(set.begin(), set.end(), id);
  if (it == set.end() || *it != id) set.insert(it, id);
}

bool Labeling::has(StateIndex state, const std::string& ap) const {
  if (state >= states_.size()) {
    throw std::out_of_range("Labeling::has: state " + std::to_string(state) + " out of range");
  }
  const auto it = ids_.find(ap);
  if (it == ids_.end()) return false;
  const auto& set = states_[state];
  return std::binary_search(set.begin(), set.end(), it->second);
}

bool Labeling::is_declared(const std::string& ap) const { return ids_.contains(ap); }

std::vector<bool> Labeling::states_with(const std::string& ap) const {
  std::vector<bool> mask(states_.size(), false);
  const auto it = ids_.find(ap);
  if (it == ids_.end()) return mask;
  for (StateIndex s = 0; s < states_.size(); ++s) {
    mask[s] = std::binary_search(states_[s].begin(), states_[s].end(), it->second);
  }
  return mask;
}

std::vector<std::string> Labeling::labels_of(StateIndex state) const {
  if (state >= states_.size()) {
    throw std::out_of_range("Labeling::labels_of: state out of range");
  }
  std::vector<std::string> out;
  out.reserve(states_[state].size());
  for (std::size_t id : states_[state]) out.push_back(names_[id]);
  return out;
}

}  // namespace csrlmrm::core

// Approved floating-point comparison helpers.
//
// csrlmrm-lint's float-equality rule bans raw ==/!= on floating-point values
// everywhere outside this file: a naked comparison does not say whether the
// author wanted a tolerance (use approx_eq/approx_zero) or a deliberate
// bit-exact test (use exactly_zero/exactly_equal). The exact variants compile
// to the same instruction as ==; their value is making "this is exact ON
// PURPOSE" machine-checkable. Typical exact uses in this codebase: sparsity
// skips (a stored 0.0 stays 0.0), absorbing-state tests (exit rate is only
// 0.0 when never assigned), and sentinel bounds (intervals use literal 0.0 /
// infinity as "unset").
//
// The lint rule recognizes these helpers by name prefix (approx_*, exactly_*)
// — new comparison helpers belong here under the same prefixes.
#pragma once

#include <algorithm>
#include <cmath>

namespace csrlmrm::core {

/// Tolerance comparison: |a - b| <= abs_tol, or relatively within rel_tol of
/// the larger magnitude. Both bounds are checked so the helper behaves for
/// values near zero (absolute) and for large magnitudes (relative) alike.
inline bool approx_eq(double a, double b, double abs_tol = 1e-12, double rel_tol = 1e-9) {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

/// Tolerance test against zero.
inline bool approx_zero(double x, double tol = 1e-12) { return std::fabs(x) <= tol; }

/// Deliberate exact test against literal zero. Correct only when the value is
/// either never touched (default-initialized rate/reward) or assigned exactly
/// 0.0 — not when it is the result of arithmetic.
inline bool exactly_zero(double x) { return x == 0.0; }

/// Deliberate bit-exact equality (sentinel values, copied-through data).
inline bool exactly_equal(double a, double b) { return a == b; }

}  // namespace csrlmrm::core

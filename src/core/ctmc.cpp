#include "core/ctmc.hpp"

#include <stdexcept>

namespace csrlmrm::core {

Ctmc::Ctmc(RateMatrix rates, Labeling labels)
    : rates_(std::move(rates)), labels_(std::move(labels)) {
  if (rates_.num_states() != labels_.num_states()) {
    throw std::invalid_argument("Ctmc: rate matrix has " + std::to_string(rates_.num_states()) +
                                " states but labeling has " +
                                std::to_string(labels_.num_states()));
  }
}

}  // namespace csrlmrm::core

#include "core/mrm.hpp"

#include <cmath>
#include <stdexcept>
#include "core/approx.hpp"

namespace csrlmrm::core {

ImpulseRewardsBuilder::ImpulseRewardsBuilder(std::size_t num_states)
    : builder_(num_states, num_states) {}

void ImpulseRewardsBuilder::add(StateIndex from, StateIndex to, double reward) {
  if (!std::isfinite(reward) || reward < 0.0) {
    throw std::invalid_argument("ImpulseRewardsBuilder::add: reward must be finite and >= 0");
  }
  builder_.add(from, to, reward);
}

Mrm::Mrm(Ctmc ctmc, std::vector<double> state_rewards, linalg::CsrMatrix impulse_rewards)
    : ctmc_(std::move(ctmc)),
      state_rewards_(std::move(state_rewards)),
      impulse_rewards_(std::move(impulse_rewards)) {
  validate();
}

Mrm::Mrm(Ctmc ctmc, std::vector<double> state_rewards)
    : ctmc_(std::move(ctmc)),
      state_rewards_(std::move(state_rewards)),
      // Members initialize in declaration order, so ctmc_ is valid here.
      impulse_rewards_(linalg::CsrBuilder(ctmc_.num_states(), ctmc_.num_states()).build()) {
  validate();
}

void Mrm::validate() const {
  const std::size_t n = ctmc_.num_states();
  if (state_rewards_.size() != n) {
    throw std::invalid_argument("Mrm: expected " + std::to_string(n) + " state rewards, got " +
                                std::to_string(state_rewards_.size()));
  }
  for (StateIndex s = 0; s < n; ++s) {
    if (!std::isfinite(state_rewards_[s]) || state_rewards_[s] < 0.0) {
      throw std::invalid_argument("Mrm: state reward of state " + std::to_string(s) +
                                  " must be finite and >= 0");
    }
  }
  if (impulse_rewards_.rows() != n || impulse_rewards_.cols() != n) {
    throw std::invalid_argument("Mrm: impulse reward matrix shape mismatch");
  }
  for (StateIndex s = 0; s < n; ++s) {
    for (const auto& e : impulse_rewards_.row(s)) {
      if (e.value < 0.0) {
        throw std::invalid_argument("Mrm: negative impulse reward on (" + std::to_string(s) +
                                    "," + std::to_string(e.col) + ")");
      }
      if (e.value > 0.0 && exactly_zero(rates().rate(s, e.col))) {
        throw std::invalid_argument("Mrm: impulse reward on non-existent transition (" +
                                    std::to_string(s) + "," + std::to_string(e.col) + ")");
      }
      if (e.value > 0.0 && s == e.col) {
        throw std::invalid_argument("Mrm: iota(s,s) must be 0 for self-loop at state " +
                                    std::to_string(s));
      }
    }
  }
}

}  // namespace csrlmrm::core

// The rate matrix R : S x S -> R>=0 of a CTMC (Definition 2.1).
//
// Wraps a sparse CSR matrix and caches the total exit rates
// E(s) = sum_s' R(s,s'). Also exposes the embedded (jump-chain) transition
// probabilities P(s,s') = R(s,s') / E(s) used throughout chapter 3/4, and the
// infinitesimal generator Q = R - Diag(E) needed by steady-state analysis.
//
// Following the thesis (2.5), self-loops R(s,s) > 0 are allowed.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/labels.hpp"
#include "linalg/csr_matrix.hpp"
#include "core/approx.hpp"

namespace csrlmrm::core {

class RateMatrix;

/// Builder for RateMatrix; rates for the same transition accumulate.
class RateMatrixBuilder {
 public:
  explicit RateMatrixBuilder(std::size_t num_states);

  /// Adds `rate` to transition `from -> to`. Throws std::invalid_argument for
  /// negative or non-finite rates, std::out_of_range for bad states.
  void add(StateIndex from, StateIndex to, double rate);

  /// Pre-allocates room for `transitions` entries (see CsrBuilder::reserve).
  void reserve(std::size_t transitions) { builder_.reserve(transitions); }

  std::size_t num_states() const { return builder_.rows(); }

  RateMatrix build() const;

 private:
  linalg::CsrBuilder builder_;
};

/// Immutable rate matrix with cached exit rates.
class RateMatrix {
 public:
  /// Wraps an existing sparse matrix; must be square with non-negative
  /// entries (validated, throws std::invalid_argument otherwise).
  explicit RateMatrix(linalg::CsrMatrix rates);

  std::size_t num_states() const { return rates_.rows(); }

  /// R(s,s'); 0 when there is no transition.
  double rate(StateIndex from, StateIndex to) const { return rates_.at(from, to); }

  /// Total exit rate E(s).
  double exit_rate(StateIndex s) const { return exit_rates_.at(s); }

  /// Largest exit rate over all states (0 for an all-absorbing chain).
  double max_exit_rate() const { return max_exit_rate_; }

  /// True iff E(s) = 0, i.e. the state is absorbing (Definition 3.2).
  bool is_absorbing(StateIndex s) const { return exactly_zero(exit_rates_.at(s)); }

  /// Outgoing transitions of s as (target, rate) entries, ascending target.
  std::span<const linalg::Entry> transitions(StateIndex s) const { return rates_.row(s); }

  /// Embedded-DTMC probability P(s,s') = R(s,s')/E(s); 0 from absorbing
  /// states (no transition ever fires there).
  double jump_probability(StateIndex from, StateIndex to) const;

  /// The underlying sparse matrix (for graph algorithms and solvers).
  const linalg::CsrMatrix& matrix() const { return rates_; }

  /// Infinitesimal generator Q = R - Diag(E) as a sparse matrix.
  linalg::CsrMatrix generator() const;

  /// Embedded-DTMC transition matrix (rows of absorbing states are empty).
  linalg::CsrMatrix embedded_dtmc() const;

 private:
  linalg::CsrMatrix rates_;
  std::vector<double> exit_rates_;
  double max_exit_rate_ = 0.0;
};

}  // namespace csrlmrm::core

// Labeled continuous-time Markov chain C = (S, R, Label) (Definition 2.1).
#pragma once

#include <utility>

#include "core/labels.hpp"
#include "core/rate_matrix.hpp"

namespace csrlmrm::core {

/// A labeled CTMC: a rate matrix together with a labeling over the same state
/// space. Immutable after construction.
class Ctmc {
 public:
  /// Throws std::invalid_argument when the labeling and rate matrix disagree
  /// on the number of states.
  Ctmc(RateMatrix rates, Labeling labels);

  std::size_t num_states() const { return rates_.num_states(); }
  const RateMatrix& rates() const { return rates_; }
  const Labeling& labels() const { return labels_; }

 private:
  RateMatrix rates_;
  Labeling labels_;
};

}  // namespace csrlmrm::core

// Uniformized MRM M^u = (S, P, Lambda, Label, rho, iota) (Definition 4.2).
//
// P = I + Q / Lambda where Q = R - Diag(E) and Lambda >= max_s E(s). Each
// state of the uniformized DTMC is observed at the epochs of a Poisson
// process with rate Lambda; self-loop probabilities 1 - E(s)/Lambda model
// "remaining in s for another Poisson epoch". Rewards carry over unchanged.
#pragma once

#include <vector>

#include "core/mrm.hpp"
#include "linalg/csr_matrix.hpp"

namespace csrlmrm::core {

/// A uniformized MRM. Holds its own copy of the transition matrix; rewards
/// and labels reference the originating Mrm, which must outlive this object.
class UniformizedMrm {
 public:
  /// Uniformizes `model` with rate Lambda = uniformization_factor *
  /// max_s E(s). The factor must be >= 1 (Lambda must dominate every exit
  /// rate); for an all-absorbing model (max E = 0) Lambda falls back to 1 so
  /// the Poisson process is well defined — the chain then never leaves its
  /// state, which is the correct semantics. The referenced model must
  /// outlive the uniformized view.
  explicit UniformizedMrm(const Mrm& model, double uniformization_factor = 1.0);

  std::size_t num_states() const { return model_->num_states(); }

  /// The uniformization rate Lambda of the associated Poisson process.
  double lambda() const { return lambda_; }

  /// 1-step transition probabilities of the uniformized DTMC (row-stochastic,
  /// including self loops).
  const linalg::CsrMatrix& transition_matrix() const { return probabilities_; }

  /// P(s, s') including the uniformization self loop.
  double probability(StateIndex from, StateIndex to) const {
    return probabilities_.at(from, to);
  }

  /// The MRM this view uniformizes (rewards and labels are read through it).
  const Mrm& model() const { return *model_; }

 private:
  const Mrm* model_;
  double lambda_ = 1.0;
  linalg::CsrMatrix probabilities_;
};

}  // namespace csrlmrm::core

#include "core/rate_matrix.hpp"

#include <cmath>
#include <stdexcept>
#include "core/approx.hpp"

namespace csrlmrm::core {

RateMatrixBuilder::RateMatrixBuilder(std::size_t num_states)
    : builder_(num_states, num_states) {}

void RateMatrixBuilder::add(StateIndex from, StateIndex to, double rate) {
  if (!std::isfinite(rate) || rate < 0.0) {
    throw std::invalid_argument("RateMatrixBuilder::add: rate must be finite and >= 0");
  }
  builder_.add(from, to, rate);
}

RateMatrix RateMatrixBuilder::build() const { return RateMatrix(builder_.build()); }

RateMatrix::RateMatrix(linalg::CsrMatrix rates) : rates_(std::move(rates)) {
  if (rates_.rows() != rates_.cols()) {
    throw std::invalid_argument("RateMatrix: matrix not square");
  }
  exit_rates_.assign(rates_.rows(), 0.0);
  for (StateIndex s = 0; s < rates_.rows(); ++s) {
    double total = 0.0;
    for (const auto& e : rates_.row(s)) {
      if (e.value < 0.0) {
        throw std::invalid_argument("RateMatrix: negative rate at (" + std::to_string(s) +
                                    "," + std::to_string(e.col) + ")");
      }
      total += e.value;
    }
    exit_rates_[s] = total;
    max_exit_rate_ = std::max(max_exit_rate_, total);
  }
}

double RateMatrix::jump_probability(StateIndex from, StateIndex to) const {
  const double e = exit_rate(from);
  if (exactly_zero(e)) return 0.0;
  return rate(from, to) / e;
}

linalg::CsrMatrix RateMatrix::generator() const {
  linalg::CsrBuilder builder(num_states(), num_states());
  for (StateIndex s = 0; s < num_states(); ++s) {
    for (const auto& e : rates_.row(s)) builder.add(s, e.col, e.value);
    builder.add(s, s, -exit_rates_[s]);
  }
  return builder.build();
}

linalg::CsrMatrix RateMatrix::embedded_dtmc() const {
  linalg::CsrBuilder builder(num_states(), num_states());
  for (StateIndex s = 0; s < num_states(); ++s) {
    const double e = exit_rates_[s];
    if (exactly_zero(e)) continue;
    for (const auto& entry : rates_.row(s)) builder.add(s, entry.col, entry.value / e);
  }
  return builder.build();
}

}  // namespace csrlmrm::core

#include "core/path.hpp"

#include <cmath>
#include <stdexcept>
#include "core/approx.hpp"

namespace csrlmrm::core {

TimedPath::TimedPath(std::vector<PathStep> steps) : steps_(std::move(steps)) {
  if (steps_.empty()) throw std::invalid_argument("TimedPath: empty step list");
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const double t = steps_[i].residence_time;
    if (std::isnan(t) || t <= 0.0) {
      throw std::invalid_argument("TimedPath: residence time of step " + std::to_string(i) +
                                  " must be positive");
    }
    if (std::isinf(t) && i + 1 != steps_.size()) {
      throw std::invalid_argument("TimedPath: only the final step may have infinite residence");
    }
  }
}

StateIndex TimedPath::state(std::size_t i) const {
  if (i >= steps_.size()) throw std::out_of_range("TimedPath::state: index out of range");
  return steps_[i].state;
}

double TimedPath::residence_time(std::size_t i) const {
  if (i >= steps_.size()) {
    throw std::out_of_range("TimedPath::residence_time: index out of range");
  }
  return steps_[i].residence_time;
}

StateIndex TimedPath::state_at(double t) const {
  if (t < 0.0) throw std::out_of_range("TimedPath::state_at: negative time");
  double cumulative = 0.0;
  for (const PathStep& step : steps_) {
    cumulative += step.residence_time;
    if (t <= cumulative) return step.state;
  }
  throw std::out_of_range("TimedPath::state_at: time beyond recorded prefix");
}

double TimedPath::accumulated_reward(const Mrm& model, double t) const {
  if (t < 0.0) throw std::out_of_range("TimedPath::accumulated_reward: negative time");
  double cumulative = 0.0;
  double reward = 0.0;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const PathStep& step = steps_[i];
    if (i + 1 < steps_.size() && exactly_zero(model.rates().rate(step.state, steps_[i + 1].state))) {
      throw std::invalid_argument("TimedPath::accumulated_reward: step " + std::to_string(i) +
                                  " is not a transition of the model");
    }
    if (t <= cumulative + step.residence_time) {
      // Occupying sigma[i] at time t: partial residence reward only.
      reward += model.state_reward(step.state) * (t - cumulative);
      return reward;
    }
    reward += model.state_reward(step.state) * step.residence_time;
    cumulative += step.residence_time;
    if (i + 1 < steps_.size()) {
      reward += model.impulse_reward(step.state, steps_[i + 1].state);
    }
  }
  throw std::out_of_range("TimedPath::accumulated_reward: time beyond recorded prefix");
}

bool TimedPath::is_finite_path() const {
  return std::isinf(steps_.back().residence_time);
}

}  // namespace csrlmrm::core

#include "lang/parser.hpp"

#include <cctype>
#include <utility>

namespace csrlmrm::lang {

namespace {

// --- Lexer ------------------------------------------------------------------

enum class TokKind {
  kIdent,
  kNumber,
  kString,   // "..."
  kSymbol,   // one of the operator/punctuation spellings below
  kEnd,
};

struct Tok {
  TokKind kind = TokKind::kEnd;
  std::string text;
  double number = 0.0;
  std::size_t line = 1;
};

[[noreturn]] void fail(const std::string& message, std::size_t line) {
  throw SpecError(message + " (line " + std::to_string(line) + ")");
}

std::vector<Tok> lex(const std::string& text) {
  std::vector<Tok> tokens;
  std::size_t i = 0;
  std::size_t line = 1;
  const std::size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments: //
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) || text[i] == '_')) {
        ++i;
      }
      tokens.push_back({TokKind::kIdent, text.substr(start, i - start), 0.0, line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      std::size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.')) {
        // ".." is the range operator, not part of a number.
        if (text[i] == '.' && i + 1 < n && text[i + 1] == '.') break;
        ++i;
      }
      if (i < n && (text[i] == 'e' || text[i] == 'E')) {
        std::size_t exponent = i + 1;
        if (exponent < n && (text[exponent] == '+' || text[exponent] == '-')) ++exponent;
        if (exponent < n && std::isdigit(static_cast<unsigned char>(text[exponent]))) {
          i = exponent;
          while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
        }
      }
      const std::string spelling = text.substr(start, i - start);
      try {
        tokens.push_back({TokKind::kNumber, spelling, std::stod(spelling), line});
      } catch (const std::exception&) {
        fail("malformed number '" + spelling + "'", line);
      }
      continue;
    }
    if (c == '"') {
      std::size_t start = ++i;
      while (i < n && text[i] != '"' && text[i] != '\n') ++i;
      if (i == n || text[i] != '"') fail("unterminated string literal", line);
      tokens.push_back({TokKind::kString, text.substr(start, i - start), 0.0, line});
      ++i;
      continue;
    }
    // Multi-character symbols first.
    const auto try_symbol = [&](const char* symbol) {
      const std::size_t length = std::string(symbol).size();
      if (text.compare(i, length, symbol) == 0) {
        tokens.push_back({TokKind::kSymbol, symbol, 0.0, line});
        i += length;
        return true;
      }
      return false;
    };
    if (try_symbol("->") || try_symbol("..") || try_symbol("&&") || try_symbol("||") ||
        try_symbol("<=") || try_symbol(">=") || try_symbol("!=")) {
      continue;
    }
    static const char kSingles[] = "[](){};:'=<>!+-*/&?,";
    if (std::string(kSingles).find(c) != std::string::npos) {
      tokens.push_back({TokKind::kSymbol, std::string(1, c), 0.0, line});
      ++i;
      continue;
    }
    fail(std::string("unexpected character '") + c + "'", line);
  }
  tokens.push_back({TokKind::kEnd, "", 0.0, line});
  return tokens;
}

// --- Parser -----------------------------------------------------------------

ExprPtr make_expr(Expr node) { return std::make_shared<Expr>(std::move(node)); }

class Parser {
 public:
  explicit Parser(std::vector<Tok> tokens) : tokens_(std::move(tokens)) {}

  ModelSpec parse_spec() {
    ModelSpec spec;
    while (peek().kind != TokKind::kEnd) {
      if (is_word("const")) {
        parse_constant(spec);
      } else if (is_word("module")) {
        parse_module(spec);
      } else if (is_word("rewards")) {
        parse_rewards(spec);
      } else if (is_word("label")) {
        parse_label(spec);
      } else {
        fail("expected 'const', 'module', 'rewards' or 'label', found '" + peek().text + "'",
             peek().line);
      }
    }
    if (spec.variables.empty()) {
      throw SpecError("specification declares no module variables");
    }
    return spec;
  }

  ExprPtr parse_full_expression() {
    ExprPtr expr = expression();
    if (peek().kind != TokKind::kEnd) {
      fail("trailing input after expression: '" + peek().text + "'", peek().line);
    }
    return expr;
  }

 private:
  const Tok& peek(std::size_t ahead = 0) const {
    return tokens_[std::min(position_ + ahead, tokens_.size() - 1)];
  }
  const Tok& advance() { return tokens_[std::min(position_++, tokens_.size() - 1)]; }
  bool is_word(const char* word, std::size_t ahead = 0) const {
    return peek(ahead).kind == TokKind::kIdent && peek(ahead).text == word;
  }
  bool is_symbol(const char* symbol, std::size_t ahead = 0) const {
    return peek(ahead).kind == TokKind::kSymbol && peek(ahead).text == symbol;
  }
  void expect_symbol(const char* symbol) {
    if (!is_symbol(symbol)) {
      fail(std::string("expected '") + symbol + "', found '" + peek().text + "'",
           peek().line);
    }
    advance();
  }
  void expect_word(const char* word) {
    if (!is_word(word)) {
      fail(std::string("expected '") + word + "', found '" + peek().text + "'", peek().line);
    }
    advance();
  }
  std::string expect_identifier(const char* what) {
    if (peek().kind != TokKind::kIdent) {
      fail(std::string("expected ") + what + ", found '" + peek().text + "'", peek().line);
    }
    return advance().text;
  }

  void parse_constant(ModelSpec& spec) {
    expect_word("const");
    ConstantDecl constant;
    if (is_word("int")) {
      advance();
      constant.is_integer = true;
    } else if (is_word("double")) {
      advance();
    }
    constant.name = expect_identifier("a constant name");
    expect_symbol("=");
    constant.value = expression();
    expect_symbol(";");
    spec.constants.push_back(std::move(constant));
  }

  void parse_module(ModelSpec& spec) {
    expect_word("module");
    spec.module_name = expect_identifier("a module name");
    // Variable declarations: IDENT ':' '[' expr '..' expr ']' [init expr] ';'
    while (peek().kind == TokKind::kIdent && is_symbol(":", 1)) {
      VariableDecl variable;
      variable.name = expect_identifier("a variable name");
      expect_symbol(":");
      expect_symbol("[");
      variable.lower = expression();
      expect_symbol("..");
      variable.upper = expression();
      expect_symbol("]");
      if (is_word("init")) {
        advance();
        variable.init = expression();
      }
      expect_symbol(";");
      spec.variables.push_back(std::move(variable));
    }
    // Commands: '[' ']' guard '->' rate ':' updates [impulse expr] ';'
    while (is_symbol("[")) {
      advance();
      expect_symbol("]");
      Command command;
      command.guard = expression();
      expect_symbol("->");
      command.rate = expression();
      expect_symbol(":");
      command.updates.push_back(parse_update());
      while (is_symbol("&")) {
        advance();
        command.updates.push_back(parse_update());
      }
      if (is_word("impulse")) {
        advance();
        command.impulse = expression();
      }
      expect_symbol(";");
      spec.commands.push_back(std::move(command));
    }
    expect_word("endmodule");
  }

  Update parse_update() {
    expect_symbol("(");
    Update update;
    update.variable = expect_identifier("a variable name in an update");
    expect_symbol("'");
    expect_symbol("=");
    update.value = expression();
    expect_symbol(")");
    return update;
  }

  void parse_rewards(ModelSpec& spec) {
    expect_word("rewards");
    while (!is_word("endrewards")) {
      RewardClause clause;
      clause.guard = expression();
      expect_symbol(":");
      clause.rate = expression();
      expect_symbol(";");
      spec.state_rewards.push_back(std::move(clause));
    }
    expect_word("endrewards");
  }

  void parse_label(ModelSpec& spec) {
    expect_word("label");
    if (peek().kind != TokKind::kString) {
      fail("expected a quoted label name, found '" + peek().text + "'", peek().line);
    }
    LabelDecl label;
    label.name = advance().text;
    if (label.name.empty()) fail("label name must not be empty", peek().line);
    expect_symbol("=");
    label.condition = expression();
    expect_symbol(";");
    spec.labels.push_back(std::move(label));
  }

  // Precedence: ?: < || < && < (= !=) < (< <= > >=) < (+ -) < (* /) < unary.
  ExprPtr expression() { return conditional(); }

  ExprPtr conditional() {
    ExprPtr condition = logical_or();
    if (!is_symbol("?")) return condition;
    advance();
    ExprPtr then_branch = conditional();
    expect_symbol(":");
    ExprPtr else_branch = conditional();
    Expr node;
    node.kind = ExprKind::kConditional;
    node.a = std::move(condition);
    node.b = std::move(then_branch);
    node.c = std::move(else_branch);
    return make_expr(std::move(node));
  }

  ExprPtr logical_or() {
    ExprPtr lhs = logical_and();
    while (is_symbol("||")) {
      advance();
      lhs = binary(Op::kOr, std::move(lhs), logical_and());
    }
    return lhs;
  }

  ExprPtr logical_and() {
    ExprPtr lhs = equality();
    while (is_symbol("&&")) {
      advance();
      lhs = binary(Op::kAnd, std::move(lhs), equality());
    }
    return lhs;
  }

  ExprPtr equality() {
    ExprPtr lhs = relational();
    while (is_symbol("=") || is_symbol("!=")) {
      const Op op = is_symbol("=") ? Op::kEq : Op::kNeq;
      advance();
      lhs = binary(op, std::move(lhs), relational());
    }
    return lhs;
  }

  ExprPtr relational() {
    ExprPtr lhs = additive();
    while (is_symbol("<") || is_symbol("<=") || is_symbol(">") || is_symbol(">=")) {
      Op op = Op::kLt;
      if (is_symbol("<=")) op = Op::kLe;
      if (is_symbol(">")) op = Op::kGt;
      if (is_symbol(">=")) op = Op::kGe;
      advance();
      lhs = binary(op, std::move(lhs), additive());
    }
    return lhs;
  }

  ExprPtr additive() {
    ExprPtr lhs = multiplicative();
    while (is_symbol("+") || is_symbol("-")) {
      const Op op = is_symbol("+") ? Op::kAdd : Op::kSub;
      advance();
      lhs = binary(op, std::move(lhs), multiplicative());
    }
    return lhs;
  }

  ExprPtr multiplicative() {
    ExprPtr lhs = unary();
    while (is_symbol("*") || is_symbol("/")) {
      const Op op = is_symbol("*") ? Op::kMul : Op::kDiv;
      advance();
      lhs = binary(op, std::move(lhs), unary());
    }
    return lhs;
  }

  ExprPtr unary() {
    if (is_symbol("!")) {
      advance();
      Expr node;
      node.kind = ExprKind::kUnary;
      node.op = Op::kNot;
      node.a = unary();
      return make_expr(std::move(node));
    }
    if (is_symbol("-")) {
      advance();
      Expr node;
      node.kind = ExprKind::kUnary;
      node.op = Op::kNegate;
      node.a = unary();
      return make_expr(std::move(node));
    }
    return primary();
  }

  ExprPtr primary() {
    if (is_symbol("(")) {
      advance();
      ExprPtr inner = expression();
      expect_symbol(")");
      return inner;
    }
    if (peek().kind == TokKind::kNumber) {
      Expr node;
      node.kind = ExprKind::kNumber;
      node.number = advance().number;
      return make_expr(std::move(node));
    }
    if (is_word("true") || is_word("false")) {
      Expr node;
      node.kind = ExprKind::kBool;
      node.boolean = advance().text == "true";
      return make_expr(std::move(node));
    }
    if (peek().kind == TokKind::kIdent) {
      Expr node;
      node.kind = ExprKind::kIdentifier;
      node.identifier = advance().text;
      return make_expr(std::move(node));
    }
    fail("expected an expression, found '" + peek().text + "'", peek().line);
  }

  ExprPtr binary(Op op, ExprPtr lhs, ExprPtr rhs) {
    Expr node;
    node.kind = ExprKind::kBinary;
    node.op = op;
    node.a = std::move(lhs);
    node.b = std::move(rhs);
    return make_expr(std::move(node));
  }

  std::vector<Tok> tokens_;
  std::size_t position_ = 0;
};

}  // namespace

ModelSpec parse_spec(const std::string& text) { return Parser(lex(text)).parse_spec(); }

ExprPtr parse_expression(const std::string& text) {
  return Parser(lex(text)).parse_full_expression();
}

}  // namespace csrlmrm::lang

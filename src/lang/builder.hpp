// State-space builder: explores a ModelSpec's reachable valuations
// breadth-first from the initial state and emits a core::Mrm plus the
// mapping between states and variable valuations.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/mrm.hpp"
#include "lang/spec.hpp"

namespace csrlmrm::lang {

/// Limits for the exploration.
struct BuildOptions {
  /// Abort (SpecError) when more reachable states than this exist.
  std::size_t max_states = 1u << 20;
};

/// The built model plus its state/valuation mapping.
struct BuiltModel {
  /// One entry per state: the variable values, aligned with variable_names.
  std::vector<std::vector<long>> valuations;
  std::vector<std::string> variable_names;
  /// Index of the initial state (always 0 by construction).
  core::StateIndex initial_state = 0;

  /// The constructed MRM. Held by optional so BuiltModel stays
  /// default-constructible while Mrm (deliberately) is not.
  std::optional<core::Mrm> model;

  /// The state index of a valuation, or num_states() when unreachable.
  core::StateIndex state_of(const std::vector<long>& valuation) const;
};

/// Explores and builds. Raises SpecError for: unknown identifiers, type
/// errors, non-integral variable bounds/updates, updates leaving a
/// variable's range, negative rates, impulse rewards on self-loops,
/// commands assigning the same variable twice, conflicting impulse values
/// on one transition, or state-space overflow.
BuiltModel build_model(const ModelSpec& spec, const BuildOptions& options = {});

/// Convenience: parse + build.
BuiltModel build_model_from_text(const std::string& text, const BuildOptions& options = {});

}  // namespace csrlmrm::lang

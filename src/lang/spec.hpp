// The MRM specification language: a compact guarded-command modeling
// front end (in the spirit of the PRISM language that the thesis-era tools
// paired with), so models are written as declarations instead of explicit
// .tra matrices:
//
//   const int K = 8;
//   const double lambda = 0.8;
//   module queue
//     jobs : [0 .. K] init 0;
//     [] jobs < K -> lambda : (jobs' = jobs + 1) impulse (jobs = 0 ? 2 : 0);
//     [] jobs > 0 -> 1.0    : (jobs' = jobs - 1);
//   endmodule
//   rewards
//     jobs = 0 : 1;
//     jobs > 0 : 5;
//   endrewards
//   label "full" = jobs = K;
//
// (The `impulse` clause attaches an impulse reward to every transition the
// command generates; a conditional expression keeps it state-dependent.)
// This header defines the expression and specification ASTs shared by the
// parser (lang/parser.hpp) and the state-space builder (lang/builder.hpp).
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace csrlmrm::lang {

// --- Expressions -----------------------------------------------------------

/// Runtime value of an expression: boolean or numeric (doubles; integer
/// variables hold integral numeric values).
struct Value {
  enum class Type { kBool, kNumber };
  Type type = Type::kNumber;
  bool boolean = false;
  double number = 0.0;

  static Value make_bool(bool b) { return {Type::kBool, b, 0.0}; }
  static Value make_number(double n) { return {Type::kNumber, false, n}; }
};

/// Expression node kinds.
enum class ExprKind {
  kNumber,      // literal
  kBool,        // true / false
  kIdentifier,  // variable or constant
  kUnary,       // ! or unary -
  kBinary,      // || && == != < <= > >= + - * /
  kConditional, // cond ? a : b
};

/// Binary/unary operator spellings.
enum class Op {
  kOr,
  kAnd,
  kEq,
  kNeq,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kNot,
  kNegate,
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// An immutable expression tree node.
struct Expr {
  ExprKind kind;
  double number = 0.0;          // kNumber
  bool boolean = false;         // kBool
  std::string identifier;       // kIdentifier
  Op op = Op::kAdd;             // kUnary / kBinary
  ExprPtr a;                    // operand / lhs / condition
  ExprPtr b;                    // rhs / then
  ExprPtr c;                    // else
};

/// Environment callback: resolves an identifier to its current value.
/// Throws std::out_of_range for unknown names.
class Environment {
 public:
  virtual ~Environment() = default;
  virtual Value lookup(const std::string& name) const = 0;
};

/// Evaluates `expr` under `env`. Type errors (e.g. `1 && 2`, `true + 1`)
/// raise SpecError with a message naming the offending construct.
Value evaluate(const ExprPtr& expr, const Environment& env);

/// Convenience: evaluate and coerce, raising SpecError on type mismatch.
bool evaluate_bool(const ExprPtr& expr, const Environment& env);
double evaluate_number(const ExprPtr& expr, const Environment& env);

// --- Specification AST ------------------------------------------------------

/// Raised for any syntactic or semantic error in a specification; the
/// message carries a line number where available.
class SpecError : public std::runtime_error {
 public:
  explicit SpecError(const std::string& message) : std::runtime_error(message) {}
};

/// const [int|double] name = expr;
struct ConstantDecl {
  std::string name;
  ExprPtr value;
  bool is_integer = false;
};

/// name : [lo .. hi] init expr;
struct VariableDecl {
  std::string name;
  ExprPtr lower;
  ExprPtr upper;
  ExprPtr init;  // null: defaults to the lower bound
};

/// One update conjunct (name' = expr).
struct Update {
  std::string variable;
  ExprPtr value;
};

/// [] guard -> rate : updates [impulse expr];
struct Command {
  ExprPtr guard;
  ExprPtr rate;
  std::vector<Update> updates;
  ExprPtr impulse;  // null: no impulse reward
};

/// guard : reward-rate; inside a rewards block.
struct RewardClause {
  ExprPtr guard;
  ExprPtr rate;
};

/// label "name" = expr;
struct LabelDecl {
  std::string name;
  ExprPtr condition;
};

/// A parsed specification.
struct ModelSpec {
  std::string module_name;
  std::vector<ConstantDecl> constants;
  std::vector<VariableDecl> variables;
  std::vector<Command> commands;
  std::vector<RewardClause> state_rewards;
  std::vector<LabelDecl> labels;
};

}  // namespace csrlmrm::lang

// Parser for the MRM specification language (see lang/spec.hpp for the
// grammar by example). Produces a ModelSpec; all errors raise SpecError
// with a 1-based line number.
#pragma once

#include <string>

#include "lang/spec.hpp"

namespace csrlmrm::lang {

/// Parses a full specification text.
ModelSpec parse_spec(const std::string& text);

/// Parses a single expression (exposed for tests and for tools that accept
/// expression snippets, e.g. reward queries over a loaded spec).
ExprPtr parse_expression(const std::string& text);

}  // namespace csrlmrm::lang

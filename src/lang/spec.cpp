#include "lang/spec.hpp"

#include <cmath>
#include "core/approx.hpp"

namespace csrlmrm::lang {

namespace {

[[noreturn]] void type_error(const std::string& what) {
  throw SpecError("type error: " + what);
}

bool as_bool(const Value& value, const char* context) {
  if (value.type != Value::Type::kBool) {
    type_error(std::string(context) + " must be boolean");
  }
  return value.boolean;
}

double as_number(const Value& value, const char* context) {
  if (value.type != Value::Type::kNumber) {
    type_error(std::string(context) + " must be numeric");
  }
  return value.number;
}

}  // namespace

Value evaluate(const ExprPtr& expr, const Environment& env) {
  if (!expr) throw SpecError("evaluate: null expression");
  switch (expr->kind) {
    case ExprKind::kNumber:
      return Value::make_number(expr->number);
    case ExprKind::kBool:
      return Value::make_bool(expr->boolean);
    case ExprKind::kIdentifier:
      return env.lookup(expr->identifier);
    case ExprKind::kUnary: {
      const Value operand = evaluate(expr->a, env);
      if (expr->op == Op::kNot) return Value::make_bool(!as_bool(operand, "operand of !"));
      return Value::make_number(-as_number(operand, "operand of unary -"));
    }
    case ExprKind::kConditional: {
      return as_bool(evaluate(expr->a, env), "condition of ?:") ? evaluate(expr->b, env)
                                                                : evaluate(expr->c, env);
    }
    case ExprKind::kBinary: {
      // Short-circuit the boolean connectives.
      if (expr->op == Op::kOr) {
        if (as_bool(evaluate(expr->a, env), "operand of ||")) return Value::make_bool(true);
        return Value::make_bool(as_bool(evaluate(expr->b, env), "operand of ||"));
      }
      if (expr->op == Op::kAnd) {
        if (!as_bool(evaluate(expr->a, env), "operand of &&")) return Value::make_bool(false);
        return Value::make_bool(as_bool(evaluate(expr->b, env), "operand of &&"));
      }
      const Value lhs = evaluate(expr->a, env);
      const Value rhs = evaluate(expr->b, env);
      switch (expr->op) {
        case Op::kEq:
          if (lhs.type != rhs.type) type_error("mismatched operands of =");
          return Value::make_bool(lhs.type == Value::Type::kBool
                                      ? lhs.boolean == rhs.boolean
                                      : lhs.number == rhs.number);
        case Op::kNeq:
          if (lhs.type != rhs.type) type_error("mismatched operands of !=");
          return Value::make_bool(lhs.type == Value::Type::kBool
                                      ? lhs.boolean != rhs.boolean
                                      : lhs.number != rhs.number);
        case Op::kLt:
          return Value::make_bool(as_number(lhs, "operand of <") <
                                  as_number(rhs, "operand of <"));
        case Op::kLe:
          return Value::make_bool(as_number(lhs, "operand of <=") <=
                                  as_number(rhs, "operand of <="));
        case Op::kGt:
          return Value::make_bool(as_number(lhs, "operand of >") >
                                  as_number(rhs, "operand of >"));
        case Op::kGe:
          return Value::make_bool(as_number(lhs, "operand of >=") >=
                                  as_number(rhs, "operand of >="));
        case Op::kAdd:
          return Value::make_number(as_number(lhs, "operand of +") +
                                    as_number(rhs, "operand of +"));
        case Op::kSub:
          return Value::make_number(as_number(lhs, "operand of -") -
                                    as_number(rhs, "operand of -"));
        case Op::kMul:
          return Value::make_number(as_number(lhs, "operand of *") *
                                    as_number(rhs, "operand of *"));
        case Op::kDiv: {
          const double denominator = as_number(rhs, "operand of /");
          if (core::exactly_zero(denominator)) throw SpecError("division by zero");
          return Value::make_number(as_number(lhs, "operand of /") / denominator);
        }
        default:
          break;
      }
      throw SpecError("evaluate: invalid binary operator");
    }
  }
  throw SpecError("evaluate: invalid expression kind");
}

bool evaluate_bool(const ExprPtr& expr, const Environment& env) {
  return as_bool(evaluate(expr, env), "expression");
}

double evaluate_number(const ExprPtr& expr, const Environment& env) {
  return as_number(evaluate(expr, env), "expression");
}

}  // namespace csrlmrm::lang

#include "lang/builder.hpp"

#include <cmath>
#include <map>
#include <unordered_map>

#include "lang/parser.hpp"
#include "core/approx.hpp"

namespace csrlmrm::lang {

namespace {

/// Environment over resolved constants plus one variable valuation.
class StateEnvironment final : public Environment {
 public:
  StateEnvironment(const std::map<std::string, Value>& constants,
                   const std::vector<std::string>& variable_names)
      : constants_(&constants), variable_names_(&variable_names) {}

  void bind(const std::vector<long>* valuation) { valuation_ = valuation; }

  Value lookup(const std::string& name) const override {
    for (std::size_t i = 0; i < variable_names_->size(); ++i) {
      if ((*variable_names_)[i] == name) {
        return Value::make_number(static_cast<double>((*valuation_)[i]));
      }
    }
    const auto it = constants_->find(name);
    if (it != constants_->end()) return it->second;
    throw SpecError("unknown identifier '" + name + "'");
  }

 private:
  const std::map<std::string, Value>* constants_;
  const std::vector<std::string>* variable_names_;
  const std::vector<long>* valuation_ = nullptr;
};

long require_integral(double value, const std::string& context) {
  const double rounded = std::round(value);
  if (std::abs(value - rounded) > 1e-9 || !std::isfinite(value)) {
    throw SpecError(context + " must be an integer, got " + std::to_string(value));
  }
  return static_cast<long>(rounded);
}

struct ValuationHash {
  std::size_t operator()(const std::vector<long>& v) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (long x : v) {
      h ^= static_cast<std::size_t>(x) + 0x9e3779b97f4a7c15ull;
      h *= 1099511628211ull;
    }
    return h;
  }
};

const std::vector<std::string> kNoVariables;

}  // namespace

core::StateIndex BuiltModel::state_of(const std::vector<long>& valuation) const {
  for (std::size_t s = 0; s < valuations.size(); ++s) {
    if (valuations[s] == valuation) return s;
  }
  return valuations.size();
}

BuiltModel build_model(const ModelSpec& spec, const BuildOptions& options) {
  // Resolve constants in declaration order (later ones may use earlier ones).
  std::map<std::string, Value> constants;
  {
    StateEnvironment env(constants, kNoVariables);
    env.bind(nullptr);
    for (const auto& constant : spec.constants) {
      Value value = evaluate(constant.value, env);
      if (constant.is_integer) {
        value = Value::make_number(static_cast<double>(
            require_integral(value.number, "constant '" + constant.name + "'")));
      }
      if (constants.count(constant.name)) {
        throw SpecError("constant '" + constant.name + "' declared twice");
      }
      constants.emplace(constant.name, value);
    }
  }

  BuiltModel built;
  for (const auto& variable : spec.variables) built.variable_names.push_back(variable.name);

  // Variable ranges and the initial valuation.
  std::vector<long> lower(spec.variables.size(), 0);
  std::vector<long> upper(spec.variables.size(), 0);
  std::vector<long> initial(spec.variables.size(), 0);
  {
    StateEnvironment env(constants, kNoVariables);
    env.bind(nullptr);
    for (std::size_t i = 0; i < spec.variables.size(); ++i) {
      const auto& variable = spec.variables[i];
      lower[i] = require_integral(evaluate_number(variable.lower, env),
                                  "lower bound of '" + variable.name + "'");
      upper[i] = require_integral(evaluate_number(variable.upper, env),
                                  "upper bound of '" + variable.name + "'");
      if (lower[i] > upper[i]) {
        throw SpecError("empty range for variable '" + variable.name + "'");
      }
      initial[i] = variable.init ? require_integral(evaluate_number(variable.init, env),
                                                    "init of '" + variable.name + "'")
                                 : lower[i];
      if (initial[i] < lower[i] || initial[i] > upper[i]) {
        throw SpecError("init of '" + variable.name + "' outside its range");
      }
    }
  }

  // Breadth-first exploration of the reachable valuations.
  StateEnvironment env(constants, built.variable_names);
  std::unordered_map<std::vector<long>, core::StateIndex, ValuationHash> index_of;
  struct Transition {
    core::StateIndex from;
    core::StateIndex to;
    double rate;
    double impulse;
  };
  std::vector<Transition> transitions;

  const auto intern = [&](const std::vector<long>& valuation) {
    const auto [it, inserted] = index_of.try_emplace(valuation, built.valuations.size());
    if (inserted) {
      built.valuations.push_back(valuation);
      if (built.valuations.size() > options.max_states) {
        throw SpecError("state space exceeds the limit of " +
                        std::to_string(options.max_states) + " states");
      }
    }
    return it->second;
  };
  intern(initial);

  for (core::StateIndex s = 0; s < built.valuations.size(); ++s) {
    // NB: built.valuations grows inside the loop (BFS worklist).
    for (const auto& command : spec.commands) {
      const std::vector<long> current = built.valuations[s];  // copy: vector may reallocate
      env.bind(&current);
      if (!evaluate_bool(command.guard, env)) continue;
      const double rate = evaluate_number(command.rate, env);
      if (rate < 0.0) throw SpecError("negative rate in a command");
      if (core::exactly_zero(rate)) continue;

      std::vector<long> next = current;
      std::vector<bool> assigned(next.size(), false);
      for (const auto& update : command.updates) {
        std::size_t variable_index = next.size();
        for (std::size_t i = 0; i < built.variable_names.size(); ++i) {
          if (built.variable_names[i] == update.variable) variable_index = i;
        }
        if (variable_index == next.size()) {
          throw SpecError("update assigns unknown variable '" + update.variable + "'");
        }
        if (assigned[variable_index]) {
          throw SpecError("command assigns variable '" + update.variable + "' twice");
        }
        assigned[variable_index] = true;
        const long value = require_integral(evaluate_number(update.value, env),
                                            "update of '" + update.variable + "'");
        if (value < lower[variable_index] || value > upper[variable_index]) {
          throw SpecError("update drives '" + update.variable + "' to " +
                          std::to_string(value) + ", outside its declared range");
        }
        next[variable_index] = value;
      }

      const double impulse = command.impulse ? evaluate_number(command.impulse, env) : 0.0;
      if (impulse < 0.0) throw SpecError("negative impulse reward in a command");
      const core::StateIndex target = intern(next);
      if (impulse > 0.0 && target == s) {
        throw SpecError(
            "impulse reward on a self-loop (Definition 3.1 requires iota(s,s) = 0)");
      }
      transitions.push_back({s, target, rate, impulse});
    }
  }

  const std::size_t n = built.valuations.size();

  // Aggregate transitions per ordered pair; impulses must be consistent.
  std::map<std::pair<core::StateIndex, core::StateIndex>, std::pair<double, double>> merged;
  for (const auto& transition : transitions) {
    auto [it, inserted] = merged.try_emplace(
        std::pair{transition.from, transition.to},
        std::pair{transition.rate, transition.impulse});
    if (!inserted) {
      if (it->second.second != transition.impulse) {
        throw SpecError(
            "two commands generate the same transition with different impulse rewards");
      }
      it->second.first += transition.rate;
    }
  }

  core::RateMatrixBuilder rates(n);
  core::ImpulseRewardsBuilder impulses(n);
  for (const auto& [pair, rate_impulse] : merged) {
    rates.add(pair.first, pair.second, rate_impulse.first);
    if (rate_impulse.second > 0.0) {
      impulses.add(pair.first, pair.second, rate_impulse.second);
    }
  }

  // State rewards: sum of the rates of all clauses whose guard holds.
  std::vector<double> rewards(n, 0.0);
  for (core::StateIndex s = 0; s < n; ++s) {
    env.bind(&built.valuations[s]);
    for (const auto& clause : spec.state_rewards) {
      if (evaluate_bool(clause.guard, env)) {
        const double rate = evaluate_number(clause.rate, env);
        if (rate < 0.0) throw SpecError("negative state reward");
        rewards[s] += rate;
      }
    }
  }

  // Labels.
  core::Labeling labels(n);
  for (const auto& label : spec.labels) labels.declare(label.name);
  for (core::StateIndex s = 0; s < n; ++s) {
    env.bind(&built.valuations[s]);
    for (const auto& label : spec.labels) {
      if (evaluate_bool(label.condition, env)) labels.add(s, label.name);
    }
  }

  built.model.emplace(core::Ctmc(rates.build(), std::move(labels)), std::move(rewards),
                      impulses.build());
  built.initial_state = 0;
  return built;
}

BuiltModel build_model_from_text(const std::string& text, const BuildOptions& options) {
  return build_model(parse_spec(text), options);
}

}  // namespace csrlmrm::lang

#include "linalg/gauss_seidel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/vector_ops.hpp"
#include "obs/stats.hpp"
#include "core/approx.hpp"

namespace csrlmrm::linalg {

IterativeResult gauss_seidel_solve(const CsrMatrix& A, const std::vector<double>& b,
                                   std::vector<double>& x, const IterativeOptions& options) {
  obs::ScopedTimer timer("solver.gauss_seidel");
  obs::counter_add("solver.gauss_seidel.calls");
  const std::size_t n = A.rows();
  if (A.cols() != n) throw std::invalid_argument("gauss_seidel_solve: matrix not square");
  if (b.size() != n || x.size() != n) {
    throw std::invalid_argument("gauss_seidel_solve: vector size mismatch");
  }

  IterativeResult result;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double off = 0.0;
      double diag = 0.0;
      for (const Entry& e : A.row(i)) {
        if (e.col == i) {
          diag = e.value;
        } else {
          off += e.value * x[e.col];
        }
      }
      if (core::exactly_zero(diag)) {
        throw std::invalid_argument("gauss_seidel_solve: zero diagonal at row " +
                                    std::to_string(i));
      }
      const double next = (b[i] - off) / diag;
      delta = std::max(delta, std::abs(next - x[i]));
      x[i] = next;
    }
    result.iterations = iter + 1;
    result.final_delta = delta;
    if (delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  obs::counter_add("solver.gauss_seidel.iterations", result.iterations);
  return result;
}

std::vector<double> steady_state_gauss_seidel(const CsrMatrix& Q, const IterativeOptions& options,
                                              IterativeResult* result_out) {
  obs::ScopedTimer timer("solver.steady_state_gauss_seidel");
  obs::counter_add("solver.steady_state_gauss_seidel.calls");
  const std::size_t n = Q.rows();
  if (Q.cols() != n) throw std::invalid_argument("steady_state_gauss_seidel: Q not square");
  if (n == 0) throw std::invalid_argument("steady_state_gauss_seidel: empty generator");

  if (n == 1) {
    if (result_out) *result_out = {true, 0, 0.0};
    return {1.0};
  }

  // Work on Q^T: the i-th steady-state balance equation reads
  //   E(i) * pi_i = sum_{j != i} R(j,i) * pi_j.
  const CsrMatrix Qt = Q.transposed();
  std::vector<double> exit_rate(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    exit_rate[i] = -Q.at(i, i);
    if (!(exit_rate[i] > 0.0)) {
      throw std::invalid_argument("steady_state_gauss_seidel: state " + std::to_string(i) +
                                  " has zero exit rate; generator is not irreducible");
    }
  }

  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  IterativeResult result;
  // Phase 1 runs plain Gauss-Seidel sweeps; for (nearly) periodic chains —
  // e.g. a BSCC that is one directed cycle — the undamped iteration can
  // oscillate forever, so phase 2 retries with a damped update
  // pi_i <- (1-omega) pi_i + omega * inflow_i / E(i), which breaks the
  // periodicity while keeping the same fixed point.
  const std::size_t phase1 = std::min<std::size_t>(1000, options.max_iterations / 2);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    const double omega = iter < phase1 ? 1.0 : 0.5;
    std::vector<double> prev = pi;
    for (std::size_t i = 0; i < n; ++i) {
      double inflow = 0.0;
      for (const Entry& e : Qt.row(i)) {
        if (e.col != i) inflow += e.value * pi[e.col];
      }
      pi[i] = (1.0 - omega) * pi[i] + omega * inflow / exit_rate[i];
    }
    normalize_to_distribution(pi);
    result.iterations = iter + 1;
    result.final_delta = linf_distance(prev, pi);
    if (result.final_delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  obs::counter_add("solver.steady_state_gauss_seidel.iterations", result.iterations);
  if (result_out) *result_out = result;
  return pi;
}

}  // namespace csrlmrm::linalg

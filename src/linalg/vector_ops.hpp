// Small dense-vector helpers shared by the iterative solvers and the
// numerical engines. All functions operate on std::vector<double> and are
// deliberately allocation-free unless stated otherwise.
#pragma once

#include <cstddef>
#include <vector>

namespace csrlmrm::linalg {

/// Dot product of two equally sized vectors. Throws std::invalid_argument on
/// size mismatch.
double dot(const std::vector<double>& a, const std::vector<double>& b);

/// y += alpha * x (in place). Throws std::invalid_argument on size mismatch.
void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

/// Maximum absolute entry (L-infinity norm); 0 for an empty vector.
double linf_norm(const std::vector<double>& v);

/// Maximum absolute difference between two equally sized vectors.
double linf_distance(const std::vector<double>& a, const std::vector<double>& b);

/// Sum of all entries.
double sum(const std::vector<double>& v);

/// Scales v so its entries sum to 1. Throws std::domain_error if the sum is
/// not positive (an all-zero vector cannot be normalized to a distribution).
void normalize_to_distribution(std::vector<double>& v);

/// True iff every entry is within `tolerance` of being a probability
/// (in [0,1]) and the entries sum to 1 within `tolerance`.
bool is_distribution(const std::vector<double>& v, double tolerance = 1e-9);

}  // namespace csrlmrm::linalg

// Jacobi iterative solver: same interface as gauss_seidel_solve but with
// simultaneous (out-of-place) updates. Kept as the ablation baseline the
// design document calls out; Gauss-Seidel is the default everywhere.
#pragma once

#include <vector>

#include "linalg/csr_matrix.hpp"
#include "linalg/solver_types.hpp"

namespace csrlmrm::linalg {

/// Solves A x = b in place with Jacobi sweeps. Same contract as
/// gauss_seidel_solve.
IterativeResult jacobi_solve(const CsrMatrix& A, const std::vector<double>& b,
                             std::vector<double>& x, const IterativeOptions& options = {});

}  // namespace csrlmrm::linalg

#include "linalg/blocked_csr.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "obs/stats.hpp"
#include "parallel/thread_pool.hpp"

namespace csrlmrm::linalg {

BlockedCsrMatrix::BlockedCsrMatrix(const CsrMatrix& matrix)
    : rows_(matrix.rows()), cols_(matrix.cols()), non_zeros_(matrix.non_zeros()) {
  if (cols_ > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("BlockedCsrMatrix: " + std::to_string(cols_) +
                                " columns exceed the 32-bit index range");
  }
  const std::size_t chunks = (rows_ + kChunkRows - 1) / kChunkRows;
  chunk_ptr_.assign(chunks + 1, 0);

  // Pass 1: chunk widths (the widest row of each chunk) fix the layout.
  std::size_t total_slots = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    std::size_t width = 0;
    const std::size_t row_end = std::min(rows_, (c + 1) * kChunkRows);
    for (std::size_t r = c * kChunkRows; r < row_end; ++r) {
      width = std::max(width, matrix.row(r).size());
    }
    total_slots += width * kChunkRows;
    chunk_ptr_[c + 1] = total_slots;
  }

  // Pass 2: scatter entries slot-major. Padding slots keep value 0.0 and
  // column 0 — a no-op term for any finite x (see the header rationale).
  values_.assign(total_slots, 0.0);
  columns_.assign(total_slots, 0);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t base = chunk_ptr_[c];
    const std::size_t row_end = std::min(rows_, (c + 1) * kChunkRows);
    for (std::size_t r = c * kChunkRows; r < row_end; ++r) {
      const std::size_t lane = r - c * kChunkRows;
      const auto row = matrix.row(r);
      for (std::size_t j = 0; j < row.size(); ++j) {
        const std::size_t slot = base + j * kChunkRows + lane;
        values_[slot] = row[j].value;
        columns_[slot] = static_cast<std::uint32_t>(row[j].col);
      }
    }
  }
  obs::counter_add("spmv.blocked_builds");
  obs::counter_add("spmv.blocked_padding", total_slots - non_zeros_);
}

void BlockedCsrMatrix::multiply_into(const std::vector<double>& x, std::vector<double>& y,
                                     unsigned threads) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("BlockedCsrMatrix::multiply_into: size mismatch");
  }
  if (y.size() != rows_) {
    throw std::invalid_argument("BlockedCsrMatrix::multiply_into: output size mismatch");
  }
  if (&x == &y) {
    throw std::invalid_argument("BlockedCsrMatrix::multiply_into: x and y must not alias");
  }
  obs::counter_add("spmv.blocked_calls");
  obs::counter_add("spmv.blocked_rows", rows_);
  const std::size_t chunks = chunk_ptr_.size() - 1;
  const unsigned effective = parallel::choose_thread_count(threads, non_zeros_);
  // Chunks are disjoint row slices, so the parallel_for chunking can never
  // change which accumulation produces a given y[r].
  parallel::parallel_for(chunks, effective, [&](std::size_t begin, std::size_t end) {
    double gathered[kChunkRows];
    double lanes[kChunkRows];
    for (std::size_t c = begin; c < end; ++c) {
      const std::size_t base = chunk_ptr_[c];
      const std::size_t width = (chunk_ptr_[c + 1] - base) / kChunkRows;
      core::simd::DoubleVec acc = core::simd::DoubleVec::broadcast(0.0);
      for (std::size_t j = 0; j < width; ++j) {
        const std::size_t slot = base + j * kChunkRows;
        for (std::size_t lane = 0; lane < kChunkRows; ++lane) {
          gathered[lane] = x[columns_[slot + lane]];
        }
        acc = acc + core::simd::DoubleVec::load(values_.data() + slot) *
                        core::simd::DoubleVec::load(gathered);
      }
      acc.store(lanes);
      const std::size_t row0 = c * kChunkRows;
      const std::size_t live = std::min(kChunkRows, rows_ - row0);
      for (std::size_t lane = 0; lane < live; ++lane) y[row0 + lane] = lanes[lane];
    }
  });
}

}  // namespace csrlmrm::linalg

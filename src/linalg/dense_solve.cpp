#include "linalg/dense_solve.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/stats.hpp"
#include "core/approx.hpp"

namespace csrlmrm::linalg {

std::vector<double> dense_solve(std::vector<std::vector<double>> A, std::vector<double> b) {
  obs::ScopedTimer timer("solver.dense_solve");
  obs::counter_add("solver.dense_solve.calls");
  const std::size_t n = A.size();
  if (b.size() != n) throw std::invalid_argument("dense_solve: rhs size mismatch");
  for (const auto& row : A) {
    if (row.size() != n) throw std::invalid_argument("dense_solve: matrix not square");
  }

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: bring the largest remaining |entry| of column k up.
    std::size_t pivot = k;
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::abs(A[i][k]) > std::abs(A[pivot][k])) pivot = i;
    }
    if (std::abs(A[pivot][k]) < 1e-300) {
      throw std::domain_error("dense_solve: singular matrix at column " + std::to_string(k));
    }
    std::swap(A[k], A[pivot]);
    std::swap(b[k], b[pivot]);

    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = A[i][k] / A[k][k];
      if (core::exactly_zero(factor)) continue;
      for (std::size_t j = k; j < n; ++j) A[i][j] -= factor * A[k][j];
      b[i] -= factor * b[k];
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= A[ii][j] * x[j];
    x[ii] = acc / A[ii][ii];
  }
  return x;
}

std::vector<double> dense_solve(const CsrMatrix& A, const std::vector<double>& b) {
  return dense_solve(A.to_dense(), b);
}

}  // namespace csrlmrm::linalg

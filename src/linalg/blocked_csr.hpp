// Cache-blocked layout of a CsrMatrix for repeated matrix-vector products.
//
// The uniformization series performs hundreds of y = A*x gathers over the
// same matrix. The plain CSR walk pays 16 bytes per stored entry (8-byte
// column + 8-byte value in Entry) and processes one row at a time, so on
// million-state models the kernel is purely memory-bound. This layout packs
// the matrix into fixed-height row chunks (SELL-C style, C = the SIMD lane
// count of core::simd::DoubleVec):
//
//   * rows are grouped into chunks of kChunkRows consecutive rows;
//   * within a chunk, entries are stored slot-major — slot j holds the j-th
//     stored entry of each of the C rows side by side — padded with explicit
//     (value 0.0, column 0) entries up to the widest row of the chunk;
//   * column indices are 32-bit, cutting index bandwidth in half.
//
// multiply_into is bitwise identical to CsrMatrix::multiply_into at every
// thread count for finite x: each lane accumulates exactly its row's entries
// in ascending column order with one multiply and one add per entry (the
// DoubleVec operations are elementwise, no FMA contraction, no horizontal
// reduction), and the padding terms add literal +0.0 products which cannot
// change any finite accumulation (the accumulator starts at +0.0 and a sum
// only produces -0.0 when both addends are -0.0, so adding a signed zero is
// always a bitwise no-op). tests/test_blocked_spmv.cpp property-tests the
// identity over random MRMs at 1/2/8 threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/simd.hpp"
#include "linalg/csr_matrix.hpp"

namespace csrlmrm::linalg {

/// Immutable blocked (SELL-C) copy of a CsrMatrix, specialized for repeated
/// right multiplications y = A * x.
class BlockedCsrMatrix {
 public:
  /// Rows per chunk: the SIMD lane count, so one DoubleVec accumulates one
  /// chunk (4 vectorized, 1 in the scalar fallback build).
  static constexpr std::size_t kChunkRows = core::simd::DoubleVec::kLanes;

  /// Empty 0x0 matrix.
  BlockedCsrMatrix() = default;

  /// Repacks `matrix`. Throws std::invalid_argument when the column count
  /// exceeds the 32-bit index range (4.29e9 states is beyond the design
  /// target of 10^7).
  explicit BlockedCsrMatrix(const CsrMatrix& matrix);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  /// Stored entries of the source matrix (padding excluded).
  std::size_t non_zeros() const { return non_zeros_; }
  /// Stored slots including padding; padded/non_zeros - 1 is the overhead
  /// the chunk layout pays for row-length variance.
  std::size_t padded_entries() const { return values_.size(); }

  /// y = A * x into a caller-owned buffer; bitwise identical to
  /// CsrMatrix::multiply_into on the source matrix at every thread count.
  /// Requires finite x (guaranteed by CsrBuilder-built inputs and probability
  /// vectors); `y` must not alias `x`. Sizes are checked.
  void multiply_into(const std::vector<double>& x, std::vector<double>& y,
                     unsigned threads = 1) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t non_zeros_ = 0;
  /// chunk_ptr_[c] is the index (into values_/columns_) of chunk c's first
  /// slot; chunk widths are (chunk_ptr_[c+1] - chunk_ptr_[c]) / kChunkRows.
  std::vector<std::size_t> chunk_ptr_{0};
  std::vector<double> values_;
  std::vector<std::uint32_t> columns_;
};

}  // namespace csrlmrm::linalg

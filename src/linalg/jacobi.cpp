#include "linalg/jacobi.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/stats.hpp"
#include "core/approx.hpp"

namespace csrlmrm::linalg {

IterativeResult jacobi_solve(const CsrMatrix& A, const std::vector<double>& b,
                             std::vector<double>& x, const IterativeOptions& options) {
  obs::ScopedTimer timer("solver.jacobi");
  obs::counter_add("solver.jacobi.calls");
  const std::size_t n = A.rows();
  if (A.cols() != n) throw std::invalid_argument("jacobi_solve: matrix not square");
  if (b.size() != n || x.size() != n) {
    throw std::invalid_argument("jacobi_solve: vector size mismatch");
  }

  IterativeResult result;
  std::vector<double> next(n, 0.0);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double off = 0.0;
      double diag = 0.0;
      for (const Entry& e : A.row(i)) {
        if (e.col == i) {
          diag = e.value;
        } else {
          off += e.value * x[e.col];
        }
      }
      if (core::exactly_zero(diag)) {
        throw std::invalid_argument("jacobi_solve: zero diagonal at row " + std::to_string(i));
      }
      next[i] = (b[i] - off) / diag;
      delta = std::max(delta, std::abs(next[i] - x[i]));
    }
    x.swap(next);
    result.iterations = iter + 1;
    result.final_delta = delta;
    if (delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  obs::counter_add("solver.jacobi.iterations", result.iterations);
  return result;
}

}  // namespace csrlmrm::linalg

#include "linalg/vector_ops.hpp"

#include <cmath>
#include <stdexcept>

namespace csrlmrm::linalg {

namespace {
void require_same_size(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("vector size mismatch: " + std::to_string(a.size()) +
                                " vs " + std::to_string(b.size()));
  }
}
}  // namespace

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  require_same_size(a, b);
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  require_same_size(x, y);
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double linf_norm(const std::vector<double>& v) {
  double m = 0.0;
  for (double e : v) m = std::max(m, std::abs(e));
  return m;
}

double linf_distance(const std::vector<double>& a, const std::vector<double>& b) {
  require_same_size(a, b);
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

double sum(const std::vector<double>& v) {
  double acc = 0.0;
  for (double e : v) acc += e;
  return acc;
}

void normalize_to_distribution(std::vector<double>& v) {
  const double s = sum(v);
  if (!(s > 0.0)) {
    throw std::domain_error("cannot normalize vector with non-positive sum");
  }
  for (double& e : v) e /= s;
}

bool is_distribution(const std::vector<double>& v, double tolerance) {
  for (double e : v) {
    if (e < -tolerance || e > 1.0 + tolerance) return false;
  }
  return std::abs(sum(v) - 1.0) <= tolerance;
}

}  // namespace csrlmrm::linalg

#include "linalg/csr_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/stats.hpp"
#include "parallel/thread_pool.hpp"
#include "core/approx.hpp"

namespace csrlmrm::linalg {

CsrBuilder::CsrBuilder(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

void CsrBuilder::add(std::size_t row, std::size_t col, double value) {
  if (row >= rows_ || col >= cols_) {
    throw std::out_of_range("CsrBuilder::add: index (" + std::to_string(row) + "," +
                            std::to_string(col) + ") outside " + std::to_string(rows_) +
                            "x" + std::to_string(cols_));
  }
  if (!std::isfinite(value)) {
    throw std::invalid_argument("CsrBuilder::add: non-finite value");
  }
  if (core::exactly_zero(value)) return;
  triplets_.push_back({row, col, value});
}

void CsrBuilder::reserve(std::size_t entries) { triplets_.reserve(entries); }

CsrMatrix CsrBuilder::build() const {
  const auto row_major = [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  };
  // Streamed producers (BFS generators, the model-file readers) append
  // triplets in row-major order already; detecting that skips both the
  // O(nnz log nnz) sort and its full working copy, making the common
  // large-model build a single pass over the input.
  const bool presorted = std::is_sorted(triplets_.begin(), triplets_.end(), row_major);
  std::vector<Triplet> copy;
  if (!presorted) {
    copy = triplets_;
    std::sort(copy.begin(), copy.end(), row_major);
  }
  const std::vector<Triplet>& sorted = presorted ? triplets_ : copy;

  std::vector<std::size_t> row_ptr(rows_ + 1, 0);
  std::vector<Entry> entries;
  entries.reserve(sorted.size());
  std::size_t i = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    while (i < sorted.size() && sorted[i].row == r) {
      double v = sorted[i].value;
      const std::size_t c = sorted[i].col;
      ++i;
      while (i < sorted.size() && sorted[i].row == r && sorted[i].col == c) {
        v += sorted[i].value;
        ++i;
      }
      if (!core::exactly_zero(v)) entries.push_back({c, v});
    }
    row_ptr[r + 1] = entries.size();
  }
  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(entries));
}

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols, std::vector<std::size_t> row_ptr,
                     std::vector<Entry> entries)
    : rows_(rows), cols_(cols), row_ptr_(std::move(row_ptr)), entries_(std::move(entries)) {
  if (row_ptr_.size() != rows_ + 1 || row_ptr_.front() != 0 ||
      row_ptr_.back() != entries_.size()) {
    throw std::invalid_argument("CsrMatrix: inconsistent row_ptr");
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    if (row_ptr_[r] > row_ptr_[r + 1]) {
      throw std::invalid_argument("CsrMatrix: row_ptr not monotone");
    }
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (entries_[k].col >= cols_) throw std::invalid_argument("CsrMatrix: column out of range");
      if (k > row_ptr_[r] && entries_[k - 1].col >= entries_[k].col) {
        throw std::invalid_argument("CsrMatrix: row columns not strictly ascending");
      }
    }
  }
}

std::span<const Entry> CsrMatrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("CsrMatrix::row: " + std::to_string(r));
  return {entries_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  const auto entries = row(r);
  const auto it = std::lower_bound(entries.begin(), entries.end(), c,
                                   [](const Entry& e, std::size_t col) { return e.col < col; });
  return (it != entries.end() && it->col == c) ? it->value : 0.0;
}

std::vector<double> CsrMatrix::multiply(const std::vector<double>& x) const {
  if (x.size() != cols_) throw std::invalid_argument("CsrMatrix::multiply: size mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (const Entry& e : row(r)) acc += e.value * x[e.col];
    y[r] = acc;
  }
  return y;
}

std::vector<double> CsrMatrix::left_multiply(const std::vector<double>& x) const {
  if (x.size() != rows_) throw std::invalid_argument("CsrMatrix::left_multiply: size mismatch");
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (core::exactly_zero(xr)) continue;
    for (const Entry& e : row(r)) y[e.col] += xr * e.value;
  }
  return y;
}

void CsrMatrix::multiply_into(const std::vector<double>& x, std::vector<double>& y,
                              unsigned threads) const {
  if (x.size() != cols_) throw std::invalid_argument("CsrMatrix::multiply_into: size mismatch");
  if (y.size() != rows_) throw std::invalid_argument("CsrMatrix::multiply_into: output size mismatch");
  if (&x == &y) throw std::invalid_argument("CsrMatrix::multiply_into: x and y must not alias");
  obs::counter_add("spmv.calls");
  obs::counter_add("spmv.rows", rows_);
  const unsigned effective = parallel::choose_thread_count(threads, non_zeros());
  parallel::parallel_for(rows_, effective, [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      const Entry* entry = entries_.data() + row_ptr_[r];
      const Entry* stop = entries_.data() + row_ptr_[r + 1];
      double acc = 0.0;
      for (; entry != stop; ++entry) acc += entry->value * x[entry->col];
      y[r] = acc;
    }
  });
}

void CsrMatrix::left_multiply_into(const std::vector<double>& x, std::vector<double>& y) const {
  if (x.size() != rows_) throw std::invalid_argument("CsrMatrix::left_multiply_into: size mismatch");
  if (y.size() != cols_) throw std::invalid_argument("CsrMatrix::left_multiply_into: output size mismatch");
  if (&x == &y) throw std::invalid_argument("CsrMatrix::left_multiply_into: x and y must not alias");
  obs::counter_add("spmv.calls");
  obs::counter_add("spmv.rows", rows_);
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (core::exactly_zero(xr)) continue;
    for (const Entry& e : row(r)) y[e.col] += xr * e.value;
  }
}

double CsrMatrix::row_sum(std::size_t r) const {
  double acc = 0.0;
  for (const Entry& e : row(r)) acc += e.value;
  return acc;
}

CsrMatrix CsrMatrix::transposed() const {
  CsrBuilder builder(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (const Entry& e : row(r)) builder.add(e.col, r, e.value);
  }
  return builder.build();
}

std::vector<std::vector<double>> CsrMatrix::to_dense() const {
  std::vector<std::vector<double>> dense(rows_, std::vector<double>(cols_, 0.0));
  for (std::size_t r = 0; r < rows_; ++r) {
    for (const Entry& e : row(r)) dense[r][e.col] = e.value;
  }
  return dense;
}

}  // namespace csrlmrm::linalg

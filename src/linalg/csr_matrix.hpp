// Compressed sparse row (CSR) matrix of doubles.
//
// This is the storage format for rate matrices and uniformized transition
// matrices throughout the library. Matrices are built through CsrBuilder
// (which accepts triplets in any order, merging duplicates by addition) and
// are immutable afterwards, so algorithms can hold references without
// worrying about invalidation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace csrlmrm::linalg {

/// One explicitly stored entry of a sparse matrix row: column index + value.
struct Entry {
  std::size_t col = 0;
  double value = 0.0;
  friend bool operator==(const Entry&, const Entry&) = default;
};

class CsrMatrix;

/// Incremental builder for CsrMatrix. Triplets may be added in any order;
/// duplicates (same row and column) are summed. Explicit zeros are dropped.
class CsrBuilder {
 public:
  /// Creates a builder for a rows x cols matrix.
  CsrBuilder(std::size_t rows, std::size_t cols);

  /// Adds `value` to entry (row, col). Throws std::out_of_range for indices
  /// beyond the declared shape and std::invalid_argument for non-finite
  /// values.
  void add(std::size_t row, std::size_t col, double value);

  /// Pre-allocates room for `entries` triplets. Streamed producers that know
  /// the transition count up front (model-file headers, generator hints) call
  /// this once so a million-entry build performs one allocation instead of a
  /// doubling cascade.
  void reserve(std::size_t entries);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Finalizes into an immutable CSR matrix. The builder stays usable (its
  /// accumulated triplets are preserved), which makes incremental model
  /// construction in tests convenient.
  CsrMatrix build() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  struct Triplet {
    std::size_t row;
    std::size_t col;
    double value;
  };
  std::vector<Triplet> triplets_;
};

/// Immutable sparse matrix in CSR layout.
class CsrMatrix {
 public:
  /// Empty 0x0 matrix.
  CsrMatrix() = default;

  /// Builds from raw CSR arrays. `row_ptr` must have rows+1 entries ending in
  /// cols_and_values size; used by CsrBuilder and by tests constructing
  /// matrices directly.
  CsrMatrix(std::size_t rows, std::size_t cols, std::vector<std::size_t> row_ptr,
            std::vector<Entry> entries);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  /// Number of explicitly stored (non-zero) entries.
  std::size_t non_zeros() const { return entries_.size(); }

  /// The stored entries of one row, ordered by ascending column index.
  std::span<const Entry> row(std::size_t r) const;

  /// Value at (r, c); 0.0 when the entry is not stored. O(log nnz(row)).
  double at(std::size_t r, std::size_t c) const;

  /// y = A * x (matrix times column vector). Sizes are checked.
  std::vector<double> multiply(const std::vector<double>& x) const;

  /// y = x^T * A (row vector times matrix). Sizes are checked.
  std::vector<double> left_multiply(const std::vector<double>& x) const;

  /// y = A * x written into a caller-owned buffer (no allocation). Each
  /// output row is a gather over one CSR row, so with `threads` > 1 the rows
  /// fan out over the shared pool; every y[r] is still produced by exactly
  /// one accumulation in stored-entry order, so the result is identical at
  /// every thread count. `y` must not alias `x`. Sizes are checked.
  void multiply_into(const std::vector<double>& x, std::vector<double>& y,
                     unsigned threads = 1) const;

  /// y = x^T * A written into a caller-owned buffer (no allocation) —
  /// the scatter form used by the uniformization series, which ping-pongs
  /// two buffers instead of allocating a fresh vector per Poisson term.
  /// Inherently serial (rows scatter into shared columns); for a
  /// row-parallel product use `transposed().multiply_into(...)`, which
  /// accumulates every column in the same (ascending source row) order and
  /// therefore matches this function bitwise. `y` must not alias `x`.
  void left_multiply_into(const std::vector<double>& x, std::vector<double>& y) const;

  /// Sum of the entries of row r.
  double row_sum(std::size_t r) const;

  /// The transposed matrix (stored entries re-bucketed by column).
  CsrMatrix transposed() const;

  /// Returns a dense rows x cols copy (row-major); intended for small
  /// matrices in tests and the dense solver.
  std::vector<std::vector<double>> to_dense() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<Entry> entries_;
};

}  // namespace csrlmrm::linalg

// Gauss-Seidel iterative solver.
//
// Two entry points:
//  * gauss_seidel_solve: general A x = b for a matrix with non-zero diagonal
//    (used for reachability probabilities and unbounded-until equations, where
//    A = I - P restricted to transient states is strictly diagonally dominant
//    in the relevant sense and the iteration converges).
//  * steady_state_gauss_seidel: the CTMC steady-state system pi Q = 0 with
//    sum(pi) = 1 for an irreducible generator Q, solved in its transposed form
//    with renormalization each sweep (the method the thesis names in 4.2/5.1).
#pragma once

#include <vector>

#include "linalg/csr_matrix.hpp"
#include "linalg/solver_types.hpp"

namespace csrlmrm::linalg {

/// Solves A x = b in place (x holds the initial guess on entry and the
/// solution on exit) with forward Gauss-Seidel sweeps.
/// Throws std::invalid_argument on shape mismatch or a (numerically) zero
/// diagonal entry.
IterativeResult gauss_seidel_solve(const CsrMatrix& A, const std::vector<double>& b,
                                   std::vector<double>& x,
                                   const IterativeOptions& options = {});

/// Steady-state distribution of an irreducible CTMC with generator Q
/// (Q(i,i) = -E(i), off-diagonals are rates). Returns pi with pi Q = 0 and
/// sum(pi) = 1. Throws std::invalid_argument if Q is not square or has a
/// state with zero exit rate (an absorbing state cannot belong to an
/// irreducible CTMC with more than one state).
std::vector<double> steady_state_gauss_seidel(const CsrMatrix& Q,
                                              const IterativeOptions& options = {},
                                              IterativeResult* result = nullptr);

}  // namespace csrlmrm::linalg

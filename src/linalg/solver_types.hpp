// Shared option/result types for the iterative linear solvers.
#pragma once

#include <cstddef>

namespace csrlmrm::linalg {

/// Convergence controls for Gauss-Seidel / Jacobi iterations.
struct IterativeOptions {
  /// Stop when the L-infinity distance between successive iterates drops
  /// below this threshold.
  double tolerance = 1e-12;
  /// Hard cap on sweeps; exceeded caps are reported via converged = false.
  std::size_t max_iterations = 100000;
};

/// Outcome of an iterative solve.
struct IterativeResult {
  bool converged = false;
  std::size_t iterations = 0;
  /// L-infinity distance between the final two iterates.
  double final_delta = 0.0;
};

}  // namespace csrlmrm::linalg

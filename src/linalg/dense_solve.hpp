// Dense Gaussian elimination with partial pivoting.
//
// The thesis mentions direct methods ("standard means such as Gaussian
// elimination", 3.8.2) as an alternative to Gauss-Seidel; we provide one for
// small systems, for cross-checking the iterative solvers in tests, and as
// the fallback when an iterative method stalls.
#pragma once

#include <vector>

#include "linalg/csr_matrix.hpp"

namespace csrlmrm::linalg {

/// Solves the dense system A x = b by Gaussian elimination with partial
/// pivoting. A is row-major, square. Throws std::invalid_argument on shape
/// mismatch and std::domain_error when A is (numerically) singular.
std::vector<double> dense_solve(std::vector<std::vector<double>> A, std::vector<double> b);

/// Convenience overload converting a sparse matrix to dense first. Intended
/// for small systems only.
std::vector<double> dense_solve(const CsrMatrix& A, const std::vector<double>& b);

}  // namespace csrlmrm::linalg

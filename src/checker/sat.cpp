#include "checker/sat.hpp"

#include <stdexcept>

#include "checker/operator_eval.hpp"
#include "obs/stats.hpp"

namespace csrlmrm::checker {

ModelChecker::ModelChecker(const core::Mrm& model, CheckerOptions options)
    : model_(&model), options_(std::move(options)) {}

const std::vector<bool>& ModelChecker::satisfaction_set(const logic::FormulaPtr& formula) {
  if (!formula) throw std::invalid_argument("ModelChecker: null formula");
  return evaluate(formula).sat;
}

const std::vector<bool>& ModelChecker::unknown_set(const logic::FormulaPtr& formula) {
  if (!formula) throw std::invalid_argument("ModelChecker: null formula");
  return evaluate(formula).unknown;
}

std::vector<Verdict> ModelChecker::verdicts(const logic::FormulaPtr& formula) {
  const SatResult& result = evaluate(formula);
  std::vector<Verdict> out(result.sat.size(), Verdict::kUnsat);
  for (std::size_t s = 0; s < result.sat.size(); ++s) {
    if (result.sat[s]) {
      out[s] = Verdict::kSat;
    } else if (result.unknown[s]) {
      out[s] = Verdict::kUnknown;
    }
  }
  return out;
}

bool ModelChecker::satisfies(core::StateIndex state, const logic::FormulaPtr& formula) {
  if (state >= model_->num_states()) {
    throw std::out_of_range("ModelChecker::satisfies: state out of range");
  }
  return satisfaction_set(formula)[state];
}

std::vector<UntilValue> ModelChecker::path_probabilities(const logic::FormulaPtr& formula) {
  if (!formula) throw std::invalid_argument("ModelChecker: null formula");
  switch (formula->kind) {
    case logic::FormulaKind::kProbNext: {
      const auto& node = static_cast<const logic::ProbNextFormula&>(*formula);
      const auto probabilities = next_probabilities(*model_, evaluate(node.operand).sat,
                                                    node.time_bound, node.reward_bound,
                                                    options_.threads);
      std::vector<UntilValue> values(probabilities.size());
      for (std::size_t s = 0; s < probabilities.size(); ++s) {
        values[s] = exact_until_value(probabilities[s]);
      }
      return values;
    }
    case logic::FormulaKind::kProbUntil: {
      const auto& node = static_cast<const logic::ProbUntilFormula&>(*formula);
      // Copy the first Sat set: evaluating the second operand can rehash the
      // memoization table and would invalidate a reference into it.
      const std::vector<bool> sat_lhs = evaluate(node.lhs).sat;
      const std::vector<bool>& sat_rhs = evaluate(node.rhs).sat;
      return until_probabilities(*model_, sat_lhs, sat_rhs, node.time_bound, node.reward_bound,
                                 options_);
    }
    default:
      throw std::invalid_argument(
          "ModelChecker::path_probabilities: formula is not a P-operator node");
  }
}

std::vector<ProbabilityBound> ModelChecker::value_bounds(const logic::FormulaPtr& formula) {
  if (!formula) throw std::invalid_argument("ModelChecker: null formula");
  switch (formula->kind) {
    case logic::FormulaKind::kSteady:
    case logic::FormulaKind::kProbNext:
    case logic::FormulaKind::kProbUntil:
    case logic::FormulaKind::kExpectedReward:
      return operator_bounds(formula);
    default:
      throw std::invalid_argument(
          "ModelChecker::value_bounds: formula is not an S/P/R-operator node");
  }
}

std::vector<double> ModelChecker::steady_probabilities(const logic::FormulaPtr& formula) {
  if (!formula) throw std::invalid_argument("ModelChecker: null formula");
  if (formula->kind != logic::FormulaKind::kSteady) {
    throw std::invalid_argument(
        "ModelChecker::steady_probabilities: formula is not an S-operator node");
  }
  const auto& node = static_cast<const logic::SteadyFormula&>(*formula);
  return steady_state_probability_of_set(*model_, evaluate(node.operand).sat, options_.solver);
}

std::vector<double> ModelChecker::expected_rewards(const logic::FormulaPtr& formula) {
  if (!formula) throw std::invalid_argument("ModelChecker: null formula");
  if (formula->kind != logic::FormulaKind::kExpectedReward) {
    throw std::invalid_argument(
        "ModelChecker::expected_rewards: formula is not an R-operator node");
  }
  const auto& node = static_cast<const logic::ExpectedRewardFormula&>(*formula);
  if (node.query == logic::RewardQuery::kReachability) {
    const SatResult operand = evaluate(node.operand);  // copy: see path_probabilities
    return expected_reward_values(*model_, node, &operand, options_);
  }
  return expected_reward_values(*model_, node, nullptr, options_);
}

const std::vector<ProbabilityBound>& ModelChecker::operator_bounds(
    const logic::FormulaPtr& formula) {
  const auto cached = bounds_cache_.find(formula.get());
  if (cached != bounds_cache_.end()) return cached->second;

  std::vector<ProbabilityBound> bounds;
  switch (formula->kind) {
    case logic::FormulaKind::kSteady: {
      const auto& node = static_cast<const logic::SteadyFormula&>(*formula);
      const SatResult operand = evaluate(node.operand);  // copy: runs re-enter evaluate
      bounds = evaluate_steady_operator(*model_, operand, options_).bounds;
      break;
    }
    case logic::FormulaKind::kProbNext: {
      const auto& node = static_cast<const logic::ProbNextFormula&>(*formula);
      const SatResult operand = evaluate(node.operand);
      bounds = evaluate_next_operator(*model_, operand, node.time_bound, node.reward_bound,
                                      options_)
                   .bounds;
      break;
    }
    case logic::FormulaKind::kProbUntil: {
      const auto& node = static_cast<const logic::ProbUntilFormula&>(*formula);
      const SatResult lhs = evaluate(node.lhs);
      const SatResult rhs = evaluate(node.rhs);
      bounds = evaluate_until_operator(*model_, lhs, rhs, node.time_bound, node.reward_bound,
                                       options_)
                   .bounds;
      break;
    }
    case logic::FormulaKind::kExpectedReward: {
      const auto& node = static_cast<const logic::ExpectedRewardFormula&>(*formula);
      if (node.query == logic::RewardQuery::kReachability) {
        const SatResult operand = evaluate(node.operand);
        bounds = evaluate_reward_operator(*model_, node, &operand, options_).bounds;
      } else {
        bounds = evaluate_reward_operator(*model_, node, nullptr, options_).bounds;
      }
      break;
    }
    default:
      throw std::invalid_argument("operator_bounds: formula is not an operator node");
  }
  retained_.push_back(formula);
  return bounds_cache_.emplace(formula.get(), std::move(bounds)).first->second;
}

const ModelChecker::SatResult& ModelChecker::evaluate(const logic::FormulaPtr& formula) {
  const auto cached = cache_.find(formula.get());
  if (cached != cache_.end()) return cached->second;

  obs::ScopedTimer timer("checker.evaluate");
  obs::counter_add("checker.evaluate.subformulas");
  const std::size_t n = model_->num_states();
  SatResult result;
  result.sat.assign(n, false);
  result.unknown.assign(n, false);
  switch (formula->kind) {
    case logic::FormulaKind::kTrue:
      result.sat.assign(n, true);
      break;
    case logic::FormulaKind::kFalse:
      break;
    case logic::FormulaKind::kAtomic:
      result.sat =
          model_->labels().states_with(static_cast<const logic::AtomicFormula&>(*formula).name);
      break;
    case logic::FormulaKind::kNot: {
      const SatResult inner = evaluate(static_cast<const logic::NotFormula&>(*formula).operand);
      result = kleene_not(inner);
      break;
    }
    case logic::FormulaKind::kOr: {
      const auto& node = static_cast<const logic::OrFormula&>(*formula);
      const SatResult lhs = evaluate(node.lhs);  // copy: rhs evaluation may rehash cache_
      const SatResult& rhs = evaluate(node.rhs);
      result = kleene_or(lhs, rhs);
      break;
    }
    case logic::FormulaKind::kAnd: {
      const auto& node = static_cast<const logic::AndFormula&>(*formula);
      const SatResult lhs = evaluate(node.lhs);
      const SatResult& rhs = evaluate(node.rhs);
      result = kleene_and(lhs, rhs);
      break;
    }
    case logic::FormulaKind::kSteady:
    case logic::FormulaKind::kProbNext:
    case logic::FormulaKind::kProbUntil:
    case logic::FormulaKind::kExpectedReward: {
      const auto& bounds = operator_bounds(formula);
      logic::Comparison op;
      double threshold;
      switch (formula->kind) {
        case logic::FormulaKind::kSteady: {
          const auto& node = static_cast<const logic::SteadyFormula&>(*formula);
          op = node.op;
          threshold = node.bound;
          break;
        }
        case logic::FormulaKind::kProbNext: {
          const auto& node = static_cast<const logic::ProbNextFormula&>(*formula);
          op = node.op;
          threshold = node.bound;
          break;
        }
        case logic::FormulaKind::kProbUntil: {
          const auto& node = static_cast<const logic::ProbUntilFormula&>(*formula);
          op = node.op;
          threshold = node.bound;
          break;
        }
        default: {
          const auto& node = static_cast<const logic::ExpectedRewardFormula&>(*formula);
          op = node.op;
          threshold = node.bound;
          break;
        }
      }
      result = compare_operator_bounds(bounds, op, threshold);
      break;
    }
  }
  retained_.push_back(formula);
  return cache_.emplace(formula.get(), std::move(result)).first->second;
}

}  // namespace csrlmrm::checker

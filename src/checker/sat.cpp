#include "checker/sat.hpp"

#include <algorithm>
#include <stdexcept>

#include "checker/absorption.hpp"
#include "checker/performability.hpp"
#include "obs/stats.hpp"
#include "parallel/thread_pool.hpp"

namespace csrlmrm::checker {

namespace {

bool any_set(const std::vector<bool>& mask) {
  return std::find(mask.begin(), mask.end(), true) != mask.end();
}

/// The optimistic operand set: UNKNOWN counts as satisfied.
std::vector<bool> optimistic(const std::vector<bool>& sat, const std::vector<bool>& unknown) {
  std::vector<bool> mask(sat);
  for (std::size_t s = 0; s < mask.size(); ++s) mask[s] = mask[s] || unknown[s];
  return mask;
}

}  // namespace

ModelChecker::ModelChecker(const core::Mrm& model, CheckerOptions options)
    : model_(&model), options_(std::move(options)) {}

const std::vector<bool>& ModelChecker::satisfaction_set(const logic::FormulaPtr& formula) {
  if (!formula) throw std::invalid_argument("ModelChecker: null formula");
  return evaluate(formula).sat;
}

const std::vector<bool>& ModelChecker::unknown_set(const logic::FormulaPtr& formula) {
  if (!formula) throw std::invalid_argument("ModelChecker: null formula");
  return evaluate(formula).unknown;
}

std::vector<Verdict> ModelChecker::verdicts(const logic::FormulaPtr& formula) {
  const SatResult& result = evaluate(formula);
  std::vector<Verdict> out(result.sat.size(), Verdict::kUnsat);
  for (std::size_t s = 0; s < result.sat.size(); ++s) {
    if (result.sat[s]) {
      out[s] = Verdict::kSat;
    } else if (result.unknown[s]) {
      out[s] = Verdict::kUnknown;
    }
  }
  return out;
}

bool ModelChecker::satisfies(core::StateIndex state, const logic::FormulaPtr& formula) {
  if (state >= model_->num_states()) {
    throw std::out_of_range("ModelChecker::satisfies: state out of range");
  }
  return satisfaction_set(formula)[state];
}

std::vector<UntilValue> ModelChecker::path_probabilities(const logic::FormulaPtr& formula) {
  if (!formula) throw std::invalid_argument("ModelChecker: null formula");
  switch (formula->kind) {
    case logic::FormulaKind::kProbNext: {
      const auto& node = static_cast<const logic::ProbNextFormula&>(*formula);
      const auto probabilities = next_probabilities(*model_, evaluate(node.operand).sat,
                                                    node.time_bound, node.reward_bound,
                                                    options_.threads);
      std::vector<UntilValue> values(probabilities.size());
      for (std::size_t s = 0; s < probabilities.size(); ++s) {
        values[s] = exact_until_value(probabilities[s]);
      }
      return values;
    }
    case logic::FormulaKind::kProbUntil: {
      const auto& node = static_cast<const logic::ProbUntilFormula&>(*formula);
      // Copy the first Sat set: evaluating the second operand can rehash the
      // memoization table and would invalidate a reference into it.
      const std::vector<bool> sat_lhs = evaluate(node.lhs).sat;
      const std::vector<bool>& sat_rhs = evaluate(node.rhs).sat;
      return until_probabilities(*model_, sat_lhs, sat_rhs, node.time_bound, node.reward_bound,
                                 options_);
    }
    default:
      throw std::invalid_argument(
          "ModelChecker::path_probabilities: formula is not a P-operator node");
  }
}

std::vector<ProbabilityBound> ModelChecker::value_bounds(const logic::FormulaPtr& formula) {
  if (!formula) throw std::invalid_argument("ModelChecker: null formula");
  switch (formula->kind) {
    case logic::FormulaKind::kSteady:
    case logic::FormulaKind::kProbNext:
    case logic::FormulaKind::kProbUntil:
    case logic::FormulaKind::kExpectedReward:
      return operator_bounds(formula);
    default:
      throw std::invalid_argument(
          "ModelChecker::value_bounds: formula is not an S/P/R-operator node");
  }
}

std::vector<double> ModelChecker::steady_probabilities(const logic::FormulaPtr& formula) {
  if (!formula) throw std::invalid_argument("ModelChecker: null formula");
  if (formula->kind != logic::FormulaKind::kSteady) {
    throw std::invalid_argument(
        "ModelChecker::steady_probabilities: formula is not an S-operator node");
  }
  const auto& node = static_cast<const logic::SteadyFormula&>(*formula);
  return steady_state_probability_of_set(*model_, evaluate(node.operand).sat, options_.solver);
}

std::vector<double> ModelChecker::expected_rewards(const logic::FormulaPtr& formula) {
  if (!formula) throw std::invalid_argument("ModelChecker: null formula");
  if (formula->kind != logic::FormulaKind::kExpectedReward) {
    throw std::invalid_argument(
        "ModelChecker::expected_rewards: formula is not an R-operator node");
  }
  const auto& node = static_cast<const logic::ExpectedRewardFormula&>(*formula);
  const std::size_t n = model_->num_states();
  switch (node.query) {
    case logic::RewardQuery::kCumulative: {
      // One occupation-time series per start state, all independent: fan
      // out over the pool (inner series run serial when nested).
      std::vector<double> values(n, 0.0);
      const unsigned threads = parallel::resolve_thread_count(options_.threads);
      parallel::parallel_for(n, threads, [&](std::size_t begin, std::size_t end) {
        for (core::StateIndex s = begin; s < end; ++s) {
          values[s] = expected_accumulated_reward(*model_, s, node.time_horizon,
                                                  options_.transient);
        }
      });
      return values;
    }
    case logic::RewardQuery::kReachability:
      return expected_reward_to_hit(*model_, evaluate(node.operand).sat, options_.solver);
    case logic::RewardQuery::kLongRun:
      return long_run_reward_rate(*model_, options_.solver);
  }
  throw std::logic_error("expected_rewards: unknown reward query");
}

std::vector<ProbabilityBound> ModelChecker::steady_bounds(const logic::FormulaPtr& formula) {
  const auto& node = static_cast<const logic::SteadyFormula&>(*formula);
  const SatResult inner = evaluate(node.operand);  // copy: runs below re-enter evaluate
  // The steady-state probability of a target set is monotone in the set
  // (a sum over more states), so the pessimistic/optimistic runs bracket
  // the truth for UNKNOWN operand states. The iterative solves themselves
  // converge to solver.tolerance (1e-12 default) and are treated as exact,
  // like in the thesis.
  const auto lower_run =
      steady_state_probability_of_set(*model_, inner.sat, options_.solver);
  std::vector<ProbabilityBound> bounds(lower_run.size());
  if (!any_set(inner.unknown)) {
    for (std::size_t s = 0; s < bounds.size(); ++s) {
      bounds[s] = ProbabilityBound::point(lower_run[s]);
    }
    return bounds;
  }
  const auto upper_run = steady_state_probability_of_set(
      *model_, optimistic(inner.sat, inner.unknown), options_.solver);
  for (std::size_t s = 0; s < bounds.size(); ++s) {
    bounds[s] = ProbabilityBound{lower_run[s], upper_run[s]};
  }
  return bounds;
}

std::vector<ProbabilityBound> ModelChecker::next_bounds(const logic::FormulaPtr& formula) {
  const auto& node = static_cast<const logic::ProbNextFormula&>(*formula);
  const SatResult inner = evaluate(node.operand);
  // Closed-form per transition (eq. 3.4): exact up to rounding, and monotone
  // in the operand set.
  const auto lower_run = next_probabilities(*model_, inner.sat, node.time_bound,
                                            node.reward_bound, options_.threads);
  std::vector<ProbabilityBound> bounds(lower_run.size());
  if (!any_set(inner.unknown)) {
    for (std::size_t s = 0; s < bounds.size(); ++s) {
      bounds[s] = ProbabilityBound::point(lower_run[s]);
    }
    return bounds;
  }
  const auto upper_run =
      next_probabilities(*model_, optimistic(inner.sat, inner.unknown), node.time_bound,
                         node.reward_bound, options_.threads);
  for (std::size_t s = 0; s < bounds.size(); ++s) {
    bounds[s] = ProbabilityBound{lower_run[s], upper_run[s]};
  }
  return bounds;
}

std::vector<ProbabilityBound> ModelChecker::until_bounds(const logic::FormulaPtr& formula) {
  const auto& node = static_cast<const logic::ProbUntilFormula&>(*formula);
  const SatResult lhs = evaluate(node.lhs);  // copies: see path_probabilities
  const SatResult rhs = evaluate(node.rhs);
  const auto lower_run = until_probabilities(*model_, lhs.sat, rhs.sat, node.time_bound,
                                             node.reward_bound, options_);
  std::vector<ProbabilityBound> bounds(lower_run.size());
  if (!any_set(lhs.unknown) && !any_set(rhs.unknown)) {
    for (std::size_t s = 0; s < bounds.size(); ++s) bounds[s] = lower_run[s].bound;
    return bounds;
  }
  // The until probability is monotone nondecreasing in both operand sets
  // (every satisfying path stays satisfying when Sat(Phi) or Sat(Psi)
  // grows), so the pessimistic run's lower end and the optimistic run's
  // upper end enclose the truth.
  const auto upper_run = until_probabilities(
      *model_, optimistic(lhs.sat, lhs.unknown), optimistic(rhs.sat, rhs.unknown),
      node.time_bound, node.reward_bound, options_);
  for (std::size_t s = 0; s < bounds.size(); ++s) {
    bounds[s] = ProbabilityBound{lower_run[s].bound.lower, upper_run[s].bound.upper};
  }
  return bounds;
}

std::vector<ProbabilityBound> ModelChecker::reward_bounds(const logic::FormulaPtr& formula) {
  const auto& node = static_cast<const logic::ExpectedRewardFormula&>(*formula);
  const std::size_t n = model_->num_states();
  std::vector<ProbabilityBound> bounds(n);
  switch (node.query) {
    case logic::RewardQuery::kCumulative: {
      // The occupation-time series truncates the Poisson sum, losing at most
      // epsilon * t of residence mass; each lost unit earns at most the
      // largest gain rate, so the truth lies in [v, v + eps * t * max gain].
      const auto values = expected_rewards(formula);
      const auto gain = per_state_gain_rates(*model_);
      const double max_gain =
          gain.empty() ? 0.0 : *std::max_element(gain.begin(), gain.end());
      const double slack = options_.transient.epsilon * node.time_horizon * max_gain;
      for (std::size_t s = 0; s < n; ++s) {
        bounds[s] = ProbabilityBound{values[s], values[s] + slack};
      }
      return bounds;
    }
    case logic::RewardQuery::kReachability: {
      const SatResult inner = evaluate(node.operand);
      // Antitone in the target set: reaching a *larger* set takes less time
      // and therefore less reward, so the optimistic run gives the lower
      // values and the pessimistic run the upper ones.
      const auto pessimistic_run =
          expected_reward_to_hit(*model_, inner.sat, options_.solver);
      if (!any_set(inner.unknown)) {
        for (std::size_t s = 0; s < n; ++s) {
          bounds[s] = ProbabilityBound::point(pessimistic_run[s]);
        }
        return bounds;
      }
      const auto optimistic_run = expected_reward_to_hit(
          *model_, optimistic(inner.sat, inner.unknown), options_.solver);
      for (std::size_t s = 0; s < n; ++s) {
        bounds[s] = ProbabilityBound{optimistic_run[s], pessimistic_run[s]};
      }
      return bounds;
    }
    case logic::RewardQuery::kLongRun: {
      const auto values = expected_rewards(formula);
      for (std::size_t s = 0; s < n; ++s) bounds[s] = ProbabilityBound::point(values[s]);
      return bounds;
    }
  }
  throw std::logic_error("reward_bounds: unknown reward query");
}

const std::vector<ProbabilityBound>& ModelChecker::operator_bounds(
    const logic::FormulaPtr& formula) {
  const auto cached = bounds_cache_.find(formula.get());
  if (cached != bounds_cache_.end()) return cached->second;

  std::vector<ProbabilityBound> bounds;
  switch (formula->kind) {
    case logic::FormulaKind::kSteady:
      bounds = steady_bounds(formula);
      break;
    case logic::FormulaKind::kProbNext:
      bounds = next_bounds(formula);
      break;
    case logic::FormulaKind::kProbUntil:
      bounds = until_bounds(formula);
      break;
    case logic::FormulaKind::kExpectedReward:
      bounds = reward_bounds(formula);
      break;
    default:
      throw std::invalid_argument("operator_bounds: formula is not an operator node");
  }
  retained_.push_back(formula);
  return bounds_cache_.emplace(formula.get(), std::move(bounds)).first->second;
}

const ModelChecker::SatResult& ModelChecker::evaluate(const logic::FormulaPtr& formula) {
  const auto cached = cache_.find(formula.get());
  if (cached != cache_.end()) return cached->second;

  obs::ScopedTimer timer("checker.evaluate");
  obs::counter_add("checker.evaluate.subformulas");
  const std::size_t n = model_->num_states();
  SatResult result;
  result.sat.assign(n, false);
  result.unknown.assign(n, false);
  switch (formula->kind) {
    case logic::FormulaKind::kTrue:
      result.sat.assign(n, true);
      break;
    case logic::FormulaKind::kFalse:
      break;
    case logic::FormulaKind::kAtomic:
      result.sat =
          model_->labels().states_with(static_cast<const logic::AtomicFormula&>(*formula).name);
      break;
    case logic::FormulaKind::kNot: {
      // Kleene: !T = F, !F = T, !U = U.
      const SatResult inner = evaluate(static_cast<const logic::NotFormula&>(*formula).operand);
      for (core::StateIndex s = 0; s < n; ++s) {
        result.sat[s] = !inner.sat[s] && !inner.unknown[s];
      }
      result.unknown = inner.unknown;
      break;
    }
    case logic::FormulaKind::kOr: {
      // Kleene: T || x = T, F || U = U.
      const auto& node = static_cast<const logic::OrFormula&>(*formula);
      const SatResult lhs = evaluate(node.lhs);  // copy: rhs evaluation may rehash cache_
      const SatResult& rhs = evaluate(node.rhs);
      for (core::StateIndex s = 0; s < n; ++s) {
        result.sat[s] = lhs.sat[s] || rhs.sat[s];
        result.unknown[s] = !result.sat[s] && (lhs.unknown[s] || rhs.unknown[s]);
      }
      break;
    }
    case logic::FormulaKind::kAnd: {
      // Kleene: F && x = F, T && U = U.
      const auto& node = static_cast<const logic::AndFormula&>(*formula);
      const SatResult lhs = evaluate(node.lhs);
      const SatResult& rhs = evaluate(node.rhs);
      for (core::StateIndex s = 0; s < n; ++s) {
        result.sat[s] = lhs.sat[s] && rhs.sat[s];
        const bool lhs_false = !lhs.sat[s] && !lhs.unknown[s];
        const bool rhs_false = !rhs.sat[s] && !rhs.unknown[s];
        result.unknown[s] =
            !lhs_false && !rhs_false && (lhs.unknown[s] || rhs.unknown[s]);
      }
      break;
    }
    case logic::FormulaKind::kSteady:
    case logic::FormulaKind::kProbNext:
    case logic::FormulaKind::kProbUntil:
    case logic::FormulaKind::kExpectedReward: {
      const auto& bounds = operator_bounds(formula);
      logic::Comparison op;
      double threshold;
      switch (formula->kind) {
        case logic::FormulaKind::kSteady: {
          const auto& node = static_cast<const logic::SteadyFormula&>(*formula);
          op = node.op;
          threshold = node.bound;
          break;
        }
        case logic::FormulaKind::kProbNext: {
          const auto& node = static_cast<const logic::ProbNextFormula&>(*formula);
          op = node.op;
          threshold = node.bound;
          break;
        }
        case logic::FormulaKind::kProbUntil: {
          const auto& node = static_cast<const logic::ProbUntilFormula&>(*formula);
          op = node.op;
          threshold = node.bound;
          break;
        }
        default: {
          const auto& node = static_cast<const logic::ExpectedRewardFormula&>(*formula);
          op = node.op;
          threshold = node.bound;
          break;
        }
      }
      for (core::StateIndex s = 0; s < n; ++s) {
        switch (compare_bound(bounds[s], op, threshold)) {
          case Verdict::kSat:
            result.sat[s] = true;
            break;
          case Verdict::kUnknown:
            result.unknown[s] = true;
            obs::counter_add("checker.verdicts.unknown");
            break;
          case Verdict::kUnsat:
            break;
        }
      }
      break;
    }
  }
  retained_.push_back(formula);
  return cache_.emplace(formula.get(), std::move(result)).first->second;
}

}  // namespace csrlmrm::checker

#include "checker/sat.hpp"

#include <stdexcept>

#include "checker/absorption.hpp"
#include "checker/performability.hpp"
#include "obs/stats.hpp"
#include "parallel/thread_pool.hpp"

namespace csrlmrm::checker {

ModelChecker::ModelChecker(const core::Mrm& model, CheckerOptions options)
    : model_(&model), options_(std::move(options)) {}

const std::vector<bool>& ModelChecker::satisfaction_set(const logic::FormulaPtr& formula) {
  if (!formula) throw std::invalid_argument("ModelChecker: null formula");
  return evaluate(formula);
}

bool ModelChecker::satisfies(core::StateIndex state, const logic::FormulaPtr& formula) {
  if (state >= model_->num_states()) {
    throw std::out_of_range("ModelChecker::satisfies: state out of range");
  }
  return satisfaction_set(formula)[state];
}

std::vector<UntilValue> ModelChecker::path_probabilities(const logic::FormulaPtr& formula) {
  if (!formula) throw std::invalid_argument("ModelChecker: null formula");
  switch (formula->kind) {
    case logic::FormulaKind::kProbNext: {
      const auto& node = static_cast<const logic::ProbNextFormula&>(*formula);
      const auto probabilities = next_probabilities(*model_, evaluate(node.operand),
                                                    node.time_bound, node.reward_bound,
                                                    options_.threads);
      std::vector<UntilValue> values(probabilities.size());
      for (std::size_t s = 0; s < probabilities.size(); ++s) values[s] = {probabilities[s], 0.0};
      return values;
    }
    case logic::FormulaKind::kProbUntil: {
      const auto& node = static_cast<const logic::ProbUntilFormula&>(*formula);
      // Copy the first Sat set: evaluating the second operand can rehash the
      // memoization table and would invalidate a reference into it.
      const std::vector<bool> sat_lhs = evaluate(node.lhs);
      const std::vector<bool>& sat_rhs = evaluate(node.rhs);
      return until_probabilities(*model_, sat_lhs, sat_rhs, node.time_bound, node.reward_bound,
                                 options_);
    }
    default:
      throw std::invalid_argument(
          "ModelChecker::path_probabilities: formula is not a P-operator node");
  }
}

std::vector<double> ModelChecker::steady_probabilities(const logic::FormulaPtr& formula) {
  if (!formula) throw std::invalid_argument("ModelChecker: null formula");
  if (formula->kind != logic::FormulaKind::kSteady) {
    throw std::invalid_argument(
        "ModelChecker::steady_probabilities: formula is not an S-operator node");
  }
  const auto& node = static_cast<const logic::SteadyFormula&>(*formula);
  return steady_state_probability_of_set(*model_, evaluate(node.operand), options_.solver);
}

std::vector<double> ModelChecker::expected_rewards(const logic::FormulaPtr& formula) {
  if (!formula) throw std::invalid_argument("ModelChecker: null formula");
  if (formula->kind != logic::FormulaKind::kExpectedReward) {
    throw std::invalid_argument(
        "ModelChecker::expected_rewards: formula is not an R-operator node");
  }
  const auto& node = static_cast<const logic::ExpectedRewardFormula&>(*formula);
  const std::size_t n = model_->num_states();
  switch (node.query) {
    case logic::RewardQuery::kCumulative: {
      // One occupation-time series per start state, all independent: fan
      // out over the pool (inner series run serial when nested).
      std::vector<double> values(n, 0.0);
      const unsigned threads = parallel::resolve_thread_count(options_.threads);
      parallel::parallel_for(n, threads, [&](std::size_t begin, std::size_t end) {
        for (core::StateIndex s = begin; s < end; ++s) {
          values[s] = expected_accumulated_reward(*model_, s, node.time_horizon,
                                                  options_.transient);
        }
      });
      return values;
    }
    case logic::RewardQuery::kReachability:
      return expected_reward_to_hit(*model_, evaluate(node.operand), options_.solver);
    case logic::RewardQuery::kLongRun:
      return long_run_reward_rate(*model_, options_.solver);
  }
  throw std::logic_error("expected_rewards: unknown reward query");
}

const std::vector<bool>& ModelChecker::evaluate(const logic::FormulaPtr& formula) {
  const auto cached = cache_.find(formula.get());
  if (cached != cache_.end()) return cached->second;

  obs::ScopedTimer timer("checker.evaluate");
  obs::counter_add("checker.evaluate.subformulas");
  const std::size_t n = model_->num_states();
  std::vector<bool> sat(n, false);
  switch (formula->kind) {
    case logic::FormulaKind::kTrue:
      sat.assign(n, true);
      break;
    case logic::FormulaKind::kFalse:
      break;
    case logic::FormulaKind::kAtomic:
      sat = model_->labels().states_with(static_cast<const logic::AtomicFormula&>(*formula).name);
      break;
    case logic::FormulaKind::kNot: {
      const auto& inner = evaluate(static_cast<const logic::NotFormula&>(*formula).operand);
      for (core::StateIndex s = 0; s < n; ++s) sat[s] = !inner[s];
      break;
    }
    case logic::FormulaKind::kOr: {
      const auto& node = static_cast<const logic::OrFormula&>(*formula);
      const auto lhs = evaluate(node.lhs);  // copy: rhs evaluation may rehash cache_
      const auto& rhs = evaluate(node.rhs);
      for (core::StateIndex s = 0; s < n; ++s) sat[s] = lhs[s] || rhs[s];
      break;
    }
    case logic::FormulaKind::kAnd: {
      const auto& node = static_cast<const logic::AndFormula&>(*formula);
      const auto lhs = evaluate(node.lhs);
      const auto& rhs = evaluate(node.rhs);
      for (core::StateIndex s = 0; s < n; ++s) sat[s] = lhs[s] && rhs[s];
      break;
    }
    case logic::FormulaKind::kSteady: {
      const auto& node = static_cast<const logic::SteadyFormula&>(*formula);
      const auto probabilities = steady_probabilities(formula);
      for (core::StateIndex s = 0; s < n; ++s) {
        sat[s] = logic::compare(probabilities[s], node.op, node.bound);
      }
      break;
    }
    case logic::FormulaKind::kProbNext: {
      const auto& node = static_cast<const logic::ProbNextFormula&>(*formula);
      const auto values = path_probabilities(formula);
      for (core::StateIndex s = 0; s < n; ++s) {
        sat[s] = logic::compare(values[s].probability, node.op, node.bound);
      }
      break;
    }
    case logic::FormulaKind::kProbUntil: {
      const auto& node = static_cast<const logic::ProbUntilFormula&>(*formula);
      const auto values = path_probabilities(formula);
      for (core::StateIndex s = 0; s < n; ++s) {
        sat[s] = logic::compare(values[s].probability, node.op, node.bound);
      }
      break;
    }
    case logic::FormulaKind::kExpectedReward: {
      const auto& node = static_cast<const logic::ExpectedRewardFormula&>(*formula);
      const auto values = expected_rewards(formula);
      for (core::StateIndex s = 0; s < n; ++s) {
        sat[s] = logic::compare(values[s], node.op, node.bound);
      }
      break;
    }
  }
  retained_.push_back(formula);
  return cache_.emplace(formula.get(), std::move(sat)).first->second;
}

}  // namespace csrlmrm::checker

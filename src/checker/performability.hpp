// Performability measures (section 3.5, Definition 3.4) as first-class API.
//
// Perf(<= r) = Pr{ Y(t) <= r } is exactly what the until engines compute
// when nothing is made absorbing and every state counts as a target
// (Theorem 4.3 with Psi = tt on the untransformed model), so both numerical
// methods are reusable verbatim. Expected-value measures come from
// uniformization occupation times:
//
//   E[Y(t)] = sum_s E[L_s(t)] * ( rho(s) + sum_s' R(s,s') iota(s,s') )
//
// (each unit of expected residence in s earns rho(s) directly and triggers
// transitions s -> s' at rate R(s,s'), each paying its impulse), and the
// long-run reward rate substitutes the steady-state distribution for the
// occupation-time profile.
#pragma once

#include <vector>

#include "checker/options.hpp"
#include "checker/verdict.hpp"
#include "core/mrm.hpp"

namespace csrlmrm::checker {

/// A performability value with the error bound of the engine that produced
/// it (DFPG truncation mass, or the derived O(d) discretization band) and
/// the rigorous interval containing the true value.
struct PerformabilityValue {
  double probability = 0.0;
  double error_bound = 0.0;
  ProbabilityBound bound = ProbabilityBound::point(0.0);
};

/// Perf(<= r) = Pr{ Y(t) <= r } from `start` over the utilization interval
/// [0, t]. Uses the engine selected in `options` (uniformization by
/// default). Requires t, r finite and >= 0.
PerformabilityValue performability(const core::Mrm& model, core::StateIndex start, double t,
                                   double r, const CheckerOptions& options = {});

/// The distribution function r -> Pr{ Y(t) <= r } evaluated at each bound in
/// `reward_bounds` (one engine pass per entry; the uniformization engine
/// shares its path exploration across entries only through signature reuse,
/// so prefer modest sweep sizes).
std::vector<PerformabilityValue> performability_cdf(const core::Mrm& model,
                                                    core::StateIndex start, double t,
                                                    const std::vector<double>& reward_bounds,
                                                    const CheckerOptions& options = {});

/// E[Y(t)]: expected reward accumulated during [0, t] from `start`,
/// including impulse rewards.
double expected_accumulated_reward(const core::Mrm& model, core::StateIndex start, double t,
                                   const numeric::TransientOptions& options = {});

/// The long-run reward rate lim_{t->inf} E[Y(t)] / t for every starting
/// state (steady-state weighted gain rate; rates differ across states only
/// when the chain has multiple BSCCs).
std::vector<double> long_run_reward_rate(const core::Mrm& model,
                                         const linalg::IterativeOptions& solver = {});

/// Per-state gain rate rho(s) + sum_s' R(s,s') iota(s,s') — the expected
/// reward earned per unit of residence in s. Exposed so the checker can
/// bound the cumulative-reward error (lost occupation mass times the
/// largest gain rate).
std::vector<double> per_state_gain_rates(const core::Mrm& model);

}  // namespace csrlmrm::checker

#include "checker/verdict.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace csrlmrm::checker {

ProbabilityBound ProbabilityBound::from_point_error(double p, double below, double above) {
  return {std::max(0.0, p - below), std::min(1.0, p + above)};
}

ProbabilityBound ProbabilityBound::hull(const ProbabilityBound& other) const {
  return {std::min(lower, other.lower), std::max(upper, other.upper)};
}

std::string ProbabilityBound::to_string() const {
  std::ostringstream out;
  out.precision(12);
  out << '[' << lower << ", " << upper << ']';
  return out.str();
}

std::string to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kSat:
      return "SAT";
    case Verdict::kUnsat:
      return "UNSAT";
    case Verdict::kUnknown:
      return "UNKNOWN";
  }
  throw std::logic_error("to_string: invalid verdict");
}

Verdict compare_bound(const ProbabilityBound& value, logic::Comparison op, double bound) {
  const bool lower_sat = logic::compare(value.lower, op, bound);
  const bool upper_sat = logic::compare(value.upper, op, bound);
  // The satisfying set of every comparison operator is a half-line, so the
  // interval lies fully inside it iff both endpoints do.
  if (lower_sat && upper_sat) return Verdict::kSat;
  if (!lower_sat && !upper_sat) return Verdict::kUnsat;
  return Verdict::kUnknown;
}

}  // namespace csrlmrm::checker

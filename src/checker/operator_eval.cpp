#include "checker/operator_eval.hpp"

#include <algorithm>
#include <stdexcept>

#include "checker/absorption.hpp"
#include "checker/next.hpp"
#include "checker/performability.hpp"
#include "checker/steady.hpp"
#include "obs/stats.hpp"
#include "parallel/thread_pool.hpp"

namespace csrlmrm::checker {

bool any_state(const std::vector<bool>& mask) {
  return std::find(mask.begin(), mask.end(), true) != mask.end();
}

std::vector<bool> optimistic_mask(const SatSets& operand) {
  std::vector<bool> mask(operand.sat);
  for (std::size_t s = 0; s < mask.size(); ++s) mask[s] = mask[s] || operand.unknown[s];
  return mask;
}

SatSets kleene_not(const SatSets& operand) {
  const std::size_t n = operand.sat.size();
  SatSets result;
  result.sat.assign(n, false);
  for (std::size_t s = 0; s < n; ++s) {
    result.sat[s] = !operand.sat[s] && !operand.unknown[s];
  }
  result.unknown = operand.unknown;
  return result;
}

SatSets kleene_or(const SatSets& lhs, const SatSets& rhs) {
  const std::size_t n = lhs.sat.size();
  SatSets result;
  result.sat.assign(n, false);
  result.unknown.assign(n, false);
  for (std::size_t s = 0; s < n; ++s) {
    result.sat[s] = lhs.sat[s] || rhs.sat[s];
    result.unknown[s] = !result.sat[s] && (lhs.unknown[s] || rhs.unknown[s]);
  }
  return result;
}

SatSets kleene_and(const SatSets& lhs, const SatSets& rhs) {
  const std::size_t n = lhs.sat.size();
  SatSets result;
  result.sat.assign(n, false);
  result.unknown.assign(n, false);
  for (std::size_t s = 0; s < n; ++s) {
    result.sat[s] = lhs.sat[s] && rhs.sat[s];
    const bool lhs_false = !lhs.sat[s] && !lhs.unknown[s];
    const bool rhs_false = !rhs.sat[s] && !rhs.unknown[s];
    result.unknown[s] = !lhs_false && !rhs_false && (lhs.unknown[s] || rhs.unknown[s]);
  }
  return result;
}

SteadyEvaluation evaluate_steady_operator(const core::Mrm& model, const SatSets& operand,
                                          const CheckerOptions& options) {
  // The steady-state probability of a target set is monotone in the set
  // (a sum over more states), so the pessimistic/optimistic runs bracket
  // the truth for UNKNOWN operand states. The iterative solves themselves
  // converge to solver.tolerance (1e-12 default) and are treated as exact,
  // like in the thesis.
  SteadyEvaluation result;
  result.values = steady_state_probability_of_set(model, operand.sat, options.solver);
  result.bounds.resize(result.values.size());
  if (!any_state(operand.unknown)) {
    for (std::size_t s = 0; s < result.bounds.size(); ++s) {
      result.bounds[s] = ProbabilityBound::point(result.values[s]);
    }
    return result;
  }
  const auto upper_run =
      steady_state_probability_of_set(model, optimistic_mask(operand), options.solver);
  for (std::size_t s = 0; s < result.bounds.size(); ++s) {
    result.bounds[s] = ProbabilityBound{result.values[s], upper_run[s]};
  }
  return result;
}

NextEvaluation evaluate_next_operator(const core::Mrm& model, const SatSets& operand,
                                      const logic::Interval& time_bound,
                                      const logic::Interval& reward_bound,
                                      const CheckerOptions& options) {
  // Closed-form per transition (eq. 3.4): exact up to rounding, and monotone
  // in the operand set.
  NextEvaluation result;
  result.probabilities =
      next_probabilities(model, operand.sat, time_bound, reward_bound, options.threads);
  result.bounds.resize(result.probabilities.size());
  if (!any_state(operand.unknown)) {
    for (std::size_t s = 0; s < result.bounds.size(); ++s) {
      result.bounds[s] = ProbabilityBound::point(result.probabilities[s]);
    }
    return result;
  }
  const auto upper_run = next_probabilities(model, optimistic_mask(operand), time_bound,
                                            reward_bound, options.threads);
  for (std::size_t s = 0; s < result.bounds.size(); ++s) {
    result.bounds[s] = ProbabilityBound{result.probabilities[s], upper_run[s]};
  }
  return result;
}

UntilEvaluation evaluate_until_operator(const core::Mrm& model, const SatSets& lhs,
                                        const SatSets& rhs, const logic::Interval& time_bound,
                                        const logic::Interval& reward_bound,
                                        const CheckerOptions& options,
                                        core::TransformCache* transforms) {
  UntilEvaluation result;
  result.values = until_probabilities(model, lhs.sat, rhs.sat, time_bound, reward_bound,
                                      options, transforms);
  result.bounds.resize(result.values.size());
  if (!any_state(lhs.unknown) && !any_state(rhs.unknown)) {
    for (std::size_t s = 0; s < result.bounds.size(); ++s) {
      result.bounds[s] = result.values[s].bound;
    }
    return result;
  }
  // The until probability is monotone nondecreasing in both operand sets
  // (every satisfying path stays satisfying when Sat(Phi) or Sat(Psi)
  // grows), so the pessimistic run's lower end and the optimistic run's
  // upper end enclose the truth.
  SatSets lhs_opt;
  lhs_opt.sat = optimistic_mask(lhs);
  SatSets rhs_opt;
  rhs_opt.sat = optimistic_mask(rhs);
  const auto upper_run = until_probabilities(model, lhs_opt.sat, rhs_opt.sat, time_bound,
                                             reward_bound, options, transforms);
  for (std::size_t s = 0; s < result.bounds.size(); ++s) {
    result.bounds[s] =
        ProbabilityBound{result.values[s].bound.lower, upper_run[s].bound.upper};
  }
  return result;
}

std::vector<double> expected_reward_values(const core::Mrm& model,
                                           const logic::ExpectedRewardFormula& node,
                                           const SatSets* operand,
                                           const CheckerOptions& options) {
  const std::size_t n = model.num_states();
  switch (node.query) {
    case logic::RewardQuery::kCumulative: {
      // One occupation-time series per start state, all independent: fan
      // out over the pool (inner series run serial when nested).
      std::vector<double> values(n, 0.0);
      const unsigned threads = parallel::resolve_thread_count(options.threads);
      parallel::parallel_for(n, threads, [&](std::size_t begin, std::size_t end) {
        for (core::StateIndex s = begin; s < end; ++s) {
          values[s] =
              expected_accumulated_reward(model, s, node.time_horizon, options.transient);
        }
      });
      return values;
    }
    case logic::RewardQuery::kReachability:
      if (operand == nullptr) {
        throw std::invalid_argument("expected_reward_values: reachability needs operand sets");
      }
      return expected_reward_to_hit(model, operand->sat, options.solver);
    case logic::RewardQuery::kLongRun:
      return long_run_reward_rate(model, options.solver);
  }
  throw std::logic_error("expected_reward_values: unknown reward query");
}

RewardEvaluation evaluate_reward_operator(const core::Mrm& model,
                                          const logic::ExpectedRewardFormula& node,
                                          const SatSets* operand,
                                          const CheckerOptions& options) {
  const std::size_t n = model.num_states();
  RewardEvaluation result;
  result.bounds.resize(n);
  switch (node.query) {
    case logic::RewardQuery::kCumulative: {
      // The occupation-time series truncates the Poisson sum, losing at most
      // epsilon * t of residence mass; each lost unit earns at most the
      // largest gain rate, so the truth lies in [v, v + eps * t * max gain].
      result.values = expected_reward_values(model, node, operand, options);
      const auto gain = per_state_gain_rates(model);
      const double max_gain = gain.empty() ? 0.0 : *std::max_element(gain.begin(), gain.end());
      const double slack = options.transient.epsilon * node.time_horizon * max_gain;
      for (std::size_t s = 0; s < n; ++s) {
        result.bounds[s] = ProbabilityBound{result.values[s], result.values[s] + slack};
      }
      return result;
    }
    case logic::RewardQuery::kReachability: {
      if (operand == nullptr) {
        throw std::invalid_argument("evaluate_reward_operator: reachability needs operand sets");
      }
      // Antitone in the target set: reaching a *larger* set takes less time
      // and therefore less reward, so the optimistic run gives the lower
      // values and the pessimistic run the upper ones.
      result.values = expected_reward_to_hit(model, operand->sat, options.solver);
      if (!any_state(operand->unknown)) {
        for (std::size_t s = 0; s < n; ++s) {
          result.bounds[s] = ProbabilityBound::point(result.values[s]);
        }
        return result;
      }
      const auto optimistic_run =
          expected_reward_to_hit(model, optimistic_mask(*operand), options.solver);
      for (std::size_t s = 0; s < n; ++s) {
        result.bounds[s] = ProbabilityBound{optimistic_run[s], result.values[s]};
      }
      return result;
    }
    case logic::RewardQuery::kLongRun: {
      result.values = expected_reward_values(model, node, operand, options);
      for (std::size_t s = 0; s < n; ++s) {
        result.bounds[s] = ProbabilityBound::point(result.values[s]);
      }
      return result;
    }
  }
  throw std::logic_error("evaluate_reward_operator: unknown reward query");
}

SatSets compare_operator_bounds(const std::vector<ProbabilityBound>& bounds,
                                logic::Comparison op, double threshold) {
  const std::size_t n = bounds.size();
  SatSets result;
  result.sat.assign(n, false);
  result.unknown.assign(n, false);
  for (std::size_t s = 0; s < n; ++s) {
    switch (compare_bound(bounds[s], op, threshold)) {
      case Verdict::kSat:
        result.sat[s] = true;
        break;
      case Verdict::kUnknown:
        result.unknown[s] = true;
        obs::counter_add("checker.verdicts.unknown");
        break;
      case Verdict::kUnsat:
        break;
    }
  }
  return result;
}

}  // namespace csrlmrm::checker

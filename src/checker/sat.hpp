// The model-checking front end: SatisfyStateFormula (Algorithm 4.1),
// error-aware.
//
// A ModelChecker evaluates CSRL state formulas bottom-up over one MRM,
// memoizing per formula node a *three-valued* satisfaction result: each
// state is SAT, UNSAT, or UNKNOWN. Numeric operators (S, P, R) produce a
// rigorous value interval per state (see checker/verdict.hpp for the error
// sources) and compare it against their threshold three-valued; the boolean
// connectives propagate UNKNOWN by Kleene's strong three-valued logic
// (T || U = T, F && U = F, otherwise U). When a sub-formula is UNKNOWN at
// some states, the numeric operator above it is evaluated twice — once with
// the pessimistic operand set (UNKNOWN counts as false) and once with the
// optimistic one (UNKNOWN counts as true); since every operator's value is
// monotone in its operand sets, the hull of the two runs encloses the truth.
//
// Besides the boolean Sat sets the checker exposes the underlying numeric
// values (probabilities per state, with their intervals), which is what the
// benchmark harness and the examples report.
#pragma once

#include <unordered_map>
#include <vector>

#include "checker/next.hpp"
#include "checker/operator_eval.hpp"
#include "checker/options.hpp"
#include "checker/steady.hpp"
#include "checker/until.hpp"
#include "checker/verdict.hpp"
#include "core/mrm.hpp"
#include "logic/ast.hpp"

namespace csrlmrm::checker {

/// CSRL model checker over one MRM. The model must outlive the checker.
class ModelChecker {
 public:
  explicit ModelChecker(const core::Mrm& model, CheckerOptions options = {});

  /// Sat(Phi): the states *provably* satisfying the formula (Algorithm 4.1).
  /// UNKNOWN states are not included — check unknown_set / verdicts when the
  /// distinction matters. Results are memoized per formula node identity.
  const std::vector<bool>& satisfaction_set(const logic::FormulaPtr& formula);

  /// The states where the configured accuracy (truncation probability w,
  /// transient epsilon, discretization step d) cannot decide the formula:
  /// some threshold comparison's value interval straddles its bound.
  const std::vector<bool>& unknown_set(const logic::FormulaPtr& formula);

  /// Per-state three-valued verdicts (combines the two sets above).
  std::vector<Verdict> verdicts(const logic::FormulaPtr& formula);

  /// Convenience: does one state provably satisfy the formula?
  bool satisfies(core::StateIndex state, const logic::FormulaPtr& formula);

  /// The per-state probabilities behind a P-operator node (next or until),
  /// i.e. P(s, phi) before comparison with the bound, with each value's
  /// rigorous interval. Computed against the provable operand Sat sets
  /// (operand UNKNOWN states count as false); evaluate()/verdicts() widen
  /// for operand uncertainty, these raw values do not.
  std::vector<UntilValue> path_probabilities(const logic::FormulaPtr& formula);

  /// The per-state value intervals behind the outermost S/P/R operator node,
  /// *including* the widening for UNKNOWN operand states. These are the
  /// intervals the three-valued verdicts compare against the threshold.
  /// Throws std::invalid_argument for non-operator nodes.
  std::vector<ProbabilityBound> value_bounds(const logic::FormulaPtr& formula);

  /// The per-state steady-state probabilities behind an S-operator node.
  std::vector<double> steady_probabilities(const logic::FormulaPtr& formula);

  /// The per-state expected-reward values behind an R-operator node
  /// (cumulative, reachability — possibly +infinity —, or long-run rate).
  std::vector<double> expected_rewards(const logic::FormulaPtr& formula);

  const core::Mrm& model() const { return *model_; }
  const CheckerOptions& options() const { return options_; }

 private:
  /// Three-valued satisfaction per state; the per-operator math lives in
  /// checker/operator_eval.hpp, shared with the plan executor.
  using SatResult = SatSets;

  const SatResult& evaluate(const logic::FormulaPtr& formula);

  /// Value intervals of one numeric operator node, widened over the operand
  /// uncertainty (two monotone mask runs when the operand has UNKNOWN
  /// states). Caches into bounds_cache_.
  const std::vector<ProbabilityBound>& operator_bounds(const logic::FormulaPtr& formula);

  const core::Mrm* model_;
  CheckerOptions options_;
  std::unordered_map<const logic::Formula*, SatResult> cache_;
  std::unordered_map<const logic::Formula*, std::vector<ProbabilityBound>> bounds_cache_;
  // Keeps every formula we evaluated alive so cache keys stay valid even if
  // the caller drops its FormulaPtr.
  std::vector<logic::FormulaPtr> retained_;
};

}  // namespace csrlmrm::checker

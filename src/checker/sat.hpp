// The model-checking front end: SatisfyStateFormula (Algorithm 4.1).
//
// A ModelChecker evaluates CSRL state formulas bottom-up over one MRM,
// memoizing satisfaction sets per formula node (sub-formula sharing through
// FormulaPtr therefore pays off). Besides the boolean Sat sets it exposes the
// underlying numeric values (probabilities per state), which is what the
// benchmark harness and the examples report.
#pragma once

#include <unordered_map>
#include <vector>

#include "checker/next.hpp"
#include "checker/options.hpp"
#include "checker/steady.hpp"
#include "checker/until.hpp"
#include "core/mrm.hpp"
#include "logic/ast.hpp"

namespace csrlmrm::checker {

/// CSRL model checker over one MRM. The model must outlive the checker.
class ModelChecker {
 public:
  explicit ModelChecker(const core::Mrm& model, CheckerOptions options = {});

  /// Sat(Phi): the states satisfying the formula (Algorithm 4.1). Results are
  /// memoized per formula node identity.
  const std::vector<bool>& satisfaction_set(const logic::FormulaPtr& formula);

  /// Convenience: does one state satisfy the formula?
  bool satisfies(core::StateIndex state, const logic::FormulaPtr& formula);

  /// The per-state probabilities behind a P-operator node (next or until),
  /// i.e. P(s, phi) before comparison with the bound. Until values carry the
  /// truncation error bound of the configured engine.
  std::vector<UntilValue> path_probabilities(const logic::FormulaPtr& formula);

  /// The per-state steady-state probabilities behind an S-operator node.
  std::vector<double> steady_probabilities(const logic::FormulaPtr& formula);

  /// The per-state expected-reward values behind an R-operator node
  /// (cumulative, reachability — possibly +infinity —, or long-run rate).
  std::vector<double> expected_rewards(const logic::FormulaPtr& formula);

  const core::Mrm& model() const { return *model_; }
  const CheckerOptions& options() const { return options_; }

 private:
  const std::vector<bool>& evaluate(const logic::FormulaPtr& formula);

  const core::Mrm* model_;
  CheckerOptions options_;
  std::unordered_map<const logic::Formula*, std::vector<bool>> cache_;
  // Keeps every formula we evaluated alive so cache_ keys stay valid even if
  // the caller drops its FormulaPtr.
  std::vector<logic::FormulaPtr> retained_;
};

}  // namespace csrlmrm::checker

#include "checker/absorption.hpp"

#include <limits>
#include <stdexcept>

#include "graph/reachability.hpp"
#include "linalg/gauss_seidel.hpp"

namespace csrlmrm::checker {

namespace {

/// Shared first-step solve: per-state one-step cost `immediate(s)` plus
/// per-transition cost `edge(s, s')`, zero on targets, infinity where the
/// hitting probability is below 1 (determined exactly by graph analysis:
/// P(s, Diamond target) = 1 iff s cannot reach any state from which the
/// target is unreachable).
template <typename ImmediateCost, typename EdgeCost>
std::vector<double> expected_cost_to_hit(const core::Mrm& model,
                                         const std::vector<bool>& target,
                                         const linalg::IterativeOptions& solver,
                                         ImmediateCost immediate, EdgeCost edge) {
  const std::size_t n = model.num_states();
  if (target.size() != n) {
    throw std::invalid_argument("expected_cost_to_hit: target mask size mismatch");
  }
  bool any_target = false;
  for (bool b : target) any_target = any_target || b;
  if (!any_target) {
    throw std::invalid_argument("expected_cost_to_hit: empty target set");
  }

  const auto& adjacency = model.rates().matrix();
  const std::vector<bool> can_reach = graph::backward_reachable(adjacency, target);
  std::vector<bool> doomed(n, false);  // cannot reach the target at all
  for (core::StateIndex s = 0; s < n; ++s) doomed[s] = !can_reach[s];
  // States with hitting probability < 1: those that can reach a doomed state.
  const std::vector<bool> sub_one = graph::backward_reachable(adjacency, doomed);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> result(n, kInf);
  std::vector<core::StateIndex> unknown;
  std::vector<std::size_t> unknown_index(n, n);
  for (core::StateIndex s = 0; s < n; ++s) {
    if (target[s]) {
      result[s] = 0.0;
    } else if (!sub_one[s]) {
      unknown_index[s] = unknown.size();
      unknown.push_back(s);
    }
  }
  if (unknown.empty()) return result;

  // (I - P_UU) x = b over the almost-surely-hitting states.
  linalg::CsrBuilder builder(unknown.size(), unknown.size());
  std::vector<double> rhs(unknown.size(), 0.0);
  for (std::size_t i = 0; i < unknown.size(); ++i) {
    const core::StateIndex s = unknown[i];
    const double exit = model.rates().exit_rate(s);
    // Almost-sure hitting from a non-target state implies a way out.
    builder.add(i, i, 1.0);
    rhs[i] = immediate(s);
    for (const auto& e : model.rates().transitions(s)) {
      const double p = e.value / exit;
      rhs[i] += p * edge(s, e.col);
      if (!target[e.col]) {
        // sub_one successors are impossible here (P = 1 is closed under
        // successors), so e.col is another unknown.
        builder.add(i, unknown_index[e.col], -p);
      }
    }
  }
  std::vector<double> x(unknown.size(), 0.0);
  const auto outcome = linalg::gauss_seidel_solve(builder.build(), rhs, x, solver);
  if (!outcome.converged) {
    throw std::runtime_error("expected_cost_to_hit: Gauss-Seidel did not converge");
  }
  for (std::size_t i = 0; i < unknown.size(); ++i) result[unknown[i]] = x[i];
  return result;
}

}  // namespace

std::vector<double> expected_time_to_hit(const core::Mrm& model,
                                         const std::vector<bool>& target,
                                         const linalg::IterativeOptions& solver) {
  return expected_cost_to_hit(
      model, target, solver,
      [&](core::StateIndex s) { return 1.0 / model.rates().exit_rate(s); },
      [](core::StateIndex, core::StateIndex) { return 0.0; });
}

std::vector<double> expected_reward_to_hit(const core::Mrm& model,
                                           const std::vector<bool>& target,
                                           const linalg::IterativeOptions& solver) {
  return expected_cost_to_hit(
      model, target, solver,
      [&](core::StateIndex s) {
        return model.state_reward(s) / model.rates().exit_rate(s);
      },
      [&](core::StateIndex s, core::StateIndex s2) { return model.impulse_reward(s, s2); });
}

}  // namespace csrlmrm::checker

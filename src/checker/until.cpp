#include "checker/until.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "core/transform.hpp"
#include "graph/reachability.hpp"
#include "linalg/gauss_seidel.hpp"
#include "numeric/class_explorer.hpp"
#include "numeric/discretization.hpp"
#include "numeric/path_explorer.hpp"
#include "numeric/poisson.hpp"
#include "numeric/transient.hpp"
#include "obs/stats.hpp"
#include "parallel/thread_pool.hpp"
#include "core/approx.hpp"

namespace csrlmrm::checker {

namespace {

/// Model size from which the P1 class switches from the per-start forward
/// fan-out to one backward column series (numeric::transient_hit_probabilities).
/// The backward sum associates the same series differently, so results differ
/// in the last ulps; the threshold keeps every small-model expectation (and
/// all cross-engine pinned tests) on the historical forward path.
constexpr std::size_t kBackwardUntilMinStates = 4096;

void require_masks(const core::Mrm& model, const std::vector<bool>& sat_phi,
                   const std::vector<bool>& sat_psi) {
  if (sat_phi.size() != model.num_states() || sat_psi.size() != model.num_states()) {
    throw std::invalid_argument("until: satisfaction mask size mismatch");
  }
}

/// M[absorb] through the caller's transform cache when one was supplied
/// (batched plan execution), else a fresh build. Both paths run
/// core::make_absorbing — a pure function of (model, absorb) — so the
/// returned model is bitwise-identical either way. The shared_ptr keeps the
/// model alive across cache eviction while this solve uses it.
std::shared_ptr<const core::Mrm> absorbing_model(const core::Mrm& model,
                                                 const std::vector<bool>& absorb,
                                                 core::TransformCache* transforms) {
  if (transforms != nullptr) return transforms->absorbing(model, absorb);
  return std::make_shared<const core::Mrm>(core::make_absorbing(model, absorb));
}

}  // namespace

std::vector<double> unbounded_until_probabilities(const core::Mrm& model,
                                                  const std::vector<bool>& sat_phi,
                                                  const std::vector<bool>& sat_psi,
                                                  const linalg::IterativeOptions& solver) {
  obs::ScopedTimer timer("checker.until.unbounded");
  obs::counter_add("checker.until.unbounded.calls");
  require_masks(model, sat_phi, sat_psi);
  const std::size_t n = model.num_states();

  // Graph precomputation: P > 0 exactly for states that can reach a Psi-state
  // through Phi-states. Everything else is pinned to 0 (this also realizes
  // the "least solution" requirement of eq. 3.8: zero wherever possible).
  const std::vector<bool> positive =
      graph::backward_reachable_via(model.rates().matrix(), sat_phi, sat_psi);

  std::vector<double> result(n, 0.0);
  std::vector<core::StateIndex> unknown;  // Phi && !Psi states with positive prob
  std::vector<std::size_t> unknown_index(n, n);
  for (core::StateIndex s = 0; s < n; ++s) {
    if (sat_psi[s]) {
      result[s] = 1.0;
    } else if (sat_phi[s] && positive[s]) {
      unknown_index[s] = unknown.size();
      unknown.push_back(s);
    }
  }
  if (unknown.empty()) return result;

  // Solve (I - P_UU) x = P_U,Psi * 1 over the unknown states, with P the
  // embedded DTMC.
  linalg::CsrBuilder builder(unknown.size(), unknown.size());
  std::vector<double> rhs(unknown.size(), 0.0);
  for (std::size_t i = 0; i < unknown.size(); ++i) {
    const core::StateIndex s = unknown[i];
    const double exit = model.rates().exit_rate(s);
    builder.add(i, i, 1.0);
    for (const auto& e : model.rates().transitions(s)) {
      const double p = e.value / exit;
      if (sat_psi[e.col]) {
        rhs[i] += p;
      } else if (unknown_index[e.col] != n) {
        builder.add(i, unknown_index[e.col], -p);
      }
      // transitions into probability-0 states contribute nothing
    }
  }
  std::vector<double> x(unknown.size(), 0.0);
  const auto outcome = linalg::gauss_seidel_solve(builder.build(), rhs, x, solver);
  if (!outcome.converged) {
    throw std::runtime_error("unbounded_until_probabilities: Gauss-Seidel did not converge in " +
                             std::to_string(outcome.iterations) + " iterations");
  }
  for (std::size_t i = 0; i < unknown.size(); ++i) {
    result[unknown[i]] = std::min(1.0, std::max(0.0, x[i]));
  }
  return result;
}

AutoEngineChoice choose_until_engine(const core::Mrm& transformed, double t,
                                     const CheckerOptions& options) {
  AutoEngineChoice choice;
  const std::size_t n = transformed.num_states();
  std::size_t live = 0;
  for (core::StateIndex s = 0; s < n; ++s) {
    if (transformed.rates().exit_rate(s) > 0.0) ++live;
  }
  const double mean = transformed.rates().max_exit_rate() * t;
  // Pr{N > levels} <= w: no uniformization engine looks past this epoch, and
  // even a perfectly merging frontier processes at least one class per live
  // state per level, so live * levels lower-bounds any engine's node count.
  const std::size_t levels =
      mean > 0.0 ? numeric::poisson_truncation_point(
                       mean, options.uniformization.truncation_probability)
                 : 0;
  if (options.on_budget_exhausted != BudgetPolicy::kThrow &&
      !transformed.has_impulse_rewards() &&
      static_cast<double>(live) * static_cast<double>(levels) >
          static_cast<double>(options.uniformization.max_nodes)) {
    // Uniformization is provably over budget before exploring anything, and
    // without impulse rewards a valid discretization step always exists —
    // skip straight to the engine the BudgetPolicy chain would end up in.
    // (Under kThrow every degradation is disabled, so auto must not switch
    // methods behind the user's back either: run uniformization and fail
    // loudly.)
    choice.method = UntilMethod::kDiscretization;
    return choice;
  }
  if (!options.uniformization.aggregate_signatures) {
    // The per-path Omega-evaluation ablation only the DFS engine implements.
    choice.engine = UntilEngine::kDfpg;
    return choice;
  }
  choice.engine = UntilEngine::kClassDp;
  choice.adaptive_hybrid = true;
  return choice;
}

namespace {

/// Discretization options usable as an automatic *fallback* for a query the
/// path explorer abandoned: the configured step is adapted so it satisfies
/// d * E_max < 1 and divides t (explicit discretization runs keep the user's
/// step untouched and fail loudly instead).
numeric::DiscretizationOptions adapted_discretization_options(
    const core::Mrm& transformed, double t, numeric::DiscretizationOptions base) {
  const double max_exit = transformed.rates().max_exit_rate();
  double target = base.step;
  if (max_exit > 0.0 && target * max_exit >= 1.0) target = 0.5 / max_exit;
  const double steps = std::ceil(t / target - 1e-9);
  if (steps >= 1.0) base.step = t / steps;
  return base;
}

/// One uniformization query with the configured degradation policy applied
/// on node-budget exhaustion (see BudgetPolicy). Runs inside the per-state
/// fan-out, so a budget-exhausting start state degrades alone while the
/// cheap ones keep their DFPG answer.
UntilValue uniformization_value_with_degradation(
    const numeric::UniformizationUntilEngine& engine, const core::Mrm& transformed,
    const std::vector<bool>& sat_psi, core::StateIndex s, double t, double r,
    const CheckerOptions& options) {
  try {
    const auto result = engine.compute(s, t, r, options.uniformization);
    return truncated_until_value(result.probability, result.error_bound);
  } catch (const numeric::NodeBudgetError& budget_error) {
    if (options.on_budget_exhausted == BudgetPolicy::kThrow) throw;
    if (options.on_budget_exhausted == BudgetPolicy::kWidenW) {
      numeric::PathExplorerOptions widened = options.uniformization;
      double w = widened.truncation_probability;
      while (w < 1e-2) {
        w = std::min(w * 1e3, 1e-2);
        widened.truncation_probability = w;
        try {
          const auto result = engine.compute(s, t, r, widened);
          obs::counter_add("uniformization.widenings");
          return truncated_until_value(result.probability, result.error_bound);
        } catch (const numeric::NodeBudgetError&) {
          // still too large; widen further, or fall through to discretization
        }
      }
    }
    const auto fallback =
        adapted_discretization_options(transformed, t, options.discretization);
    try {
      const auto result =
          numeric::until_probability_discretization(transformed, sat_psi, s, t, r, fallback);
      obs::counter_add("uniformization.fallbacks");
      return two_sided_until_value(result.probability, result.error_bound);
    } catch (const std::invalid_argument& fallback_error) {
      // The degradation path is itself infeasible (e.g. impulse rewards not
      // commensurable with any reasonable step). Re-raise the budget error
      // with both diagnoses so the user can pick a remedy.
      throw numeric::NodeBudgetError(std::string(budget_error.what()) +
                                     "; fallback to discretization also failed: " +
                                     fallback_error.what() +
                                     " (raise max_nodes, widen w, or adjust rewards)");
    }
  }
}

/// Shared P2 evaluation: Pr{ Y(t) <= r, X(t) |= Psi } on `transformed` for
/// every state, by the configured engine. `dead` marks !Phi && !Psi states.
/// When `psi_absorbed` is set (the [0,t] reduction, where Psi-states were
/// made absorbing with zero rewards), Psi starting states score exactly 1 —
/// case 1 of eq. (3.6) — without burning engine time on them.
std::vector<UntilValue> bounded_time_reward(const core::Mrm& transformed,
                                            const std::vector<bool>& sat_psi,
                                            const std::vector<bool>& dead, double t, double r,
                                            const CheckerOptions& caller_options,
                                            bool psi_absorbed) {
  CheckerOptions options = caller_options;
  if (options.until_method == UntilMethod::kUniformization &&
      options.until_engine == UntilEngine::kAuto) {
    const AutoEngineChoice choice = choose_until_engine(transformed, t, options);
    options.until_method = choice.method;
    options.until_engine = choice.engine;
    if (choice.adaptive_hybrid) options.uniformization.adaptive_hybrid = true;
    if (choice.method == UntilMethod::kDiscretization) {
      // The auto path adapts the step like the budget-exhaustion fallback
      // does; only an *explicit* d=step run keeps the user's step untouched.
      options.discretization =
          adapted_discretization_options(transformed, t, options.discretization);
      obs::counter_add("engine.auto_choice.discretization");
    } else if (choice.engine == UntilEngine::kClassDp) {
      obs::counter_add("engine.auto_choice.classdp");
    } else {
      obs::counter_add("engine.auto_choice.dfpg");
    }
  }
  obs::ScopedTimer timer(options.until_method == UntilMethod::kUniformization
                             ? "checker.until.bounded.uniformization"
                             : "checker.until.bounded.discretization");
  const std::size_t n = transformed.num_states();
  std::vector<UntilValue> values(n);
  // Every start state is an independent engine query on the one shared
  // transformed MRM (and, for uniformization, the one shared engine — its
  // compute() is const and touches only per-call state), so the start states
  // fan out over the thread pool. When the fan-out runs parallel, nested
  // engine-level regions stay inline; when it runs serial (threads == 1),
  // the engines are free to use their own thread options.
  const unsigned threads = parallel::resolve_thread_count(options.threads);
  if (options.until_method == UntilMethod::kUniformization &&
      options.until_engine == UntilEngine::kClassDp) {
    // Signature-class DP: every non-trivial start state rides one batched
    // frontier sweep (one engine run, one conditional-probability evaluation
    // per signature class for the whole fan-out). Trivial starts are scored
    // directly: absorbed Psi-states exactly 1 (case 1 of eq. 3.6), dead
    // states exactly 0 — matching what the DFPG per-state loop produces.
    std::vector<core::StateIndex> starts;
    for (core::StateIndex s = 0; s < n; ++s) {
      if (psi_absorbed && sat_psi[s]) {
        values[s] = exact_until_value(1.0);
      } else if (dead[s]) {
        values[s] = truncated_until_value(0.0, 0.0);
      } else {
        starts.push_back(s);
      }
    }
    if (starts.empty()) return values;
    const numeric::SignatureClassUntilEngine engine(transformed, sat_psi, dead);
    try {
      const auto batch = engine.compute_batch(starts, t, r, options.uniformization);
      for (std::size_t i = 0; i < starts.size(); ++i) {
        values[starts[i]] =
            truncated_until_value(batch[i].probability, batch[i].error_bound);
      }
      return values;
    } catch (const numeric::NodeBudgetError&) {
      if (options.on_budget_exhausted == BudgetPolicy::kThrow) throw;
      // The whole-batch class budget is exhausted: degrade to the per-state
      // DFPG fan-out below, whose own degradation chain (widening /
      // discretization, see BudgetPolicy) handles each start individually.
      obs::counter_add("classdp.fallbacks");
    }
  }
  if (options.until_method == UntilMethod::kUniformization) {
    const numeric::UniformizationUntilEngine engine(transformed, sat_psi, dead);
    parallel::parallel_for(n, threads, [&](std::size_t begin, std::size_t end) {
      for (core::StateIndex s = begin; s < end; ++s) {
        if (psi_absorbed && sat_psi[s]) {
          values[s] = exact_until_value(1.0);
          continue;
        }
        values[s] = uniformization_value_with_degradation(engine, transformed, sat_psi, s, t,
                                                          r, options);
      }
    });
  } else {
    parallel::parallel_for(n, threads, [&](std::size_t begin, std::size_t end) {
      for (core::StateIndex s = begin; s < end; ++s) {
        if (psi_absorbed && sat_psi[s]) {
          values[s] = exact_until_value(1.0);
          continue;
        }
        const auto result = numeric::until_probability_discretization(
            transformed, sat_psi, s, t, r, options.discretization);
        values[s] = two_sided_until_value(result.probability, result.error_bound);
      }
    });
  }
  return values;
}

}  // namespace

std::vector<UntilValue> until_probabilities(const core::Mrm& model,
                                            const std::vector<bool>& sat_phi,
                                            const std::vector<bool>& sat_psi,
                                            const logic::Interval& time_bound,
                                            const logic::Interval& reward_bound,
                                            const CheckerOptions& caller_options,
                                            core::TransformCache* transforms) {
  obs::ScopedTimer timer("checker.until");
  obs::counter_add("checker.until.calls");
  require_masks(model, sat_phi, sat_psi);
  const std::size_t n = model.num_states();
  // Engine-level thread counts left at 0 inherit the checker-level knob.
  const CheckerOptions options = with_inherited_threads(caller_options);

  const bool time_trivial = time_bound.is_trivial();
  const bool reward_trivial = reward_bound.is_trivial();

  // Reward bounds must be of the form [0,r] (or trivial); the point-interval
  // time variant is handled below.
  if (!reward_trivial &&
      (!core::exactly_zero(reward_bound.lower()) || reward_bound.is_upper_unbounded())) {
    throw UnsupportedFormulaError(
        "until: reward bounds must have the form [0,r] (thesis section 4.6: general reward "
        "intervals are future work)");
  }

  // P0: Phi U Psi. Graph precomputation pins exact zeros/ones; the linear
  // solve converges to solver.tolerance (treated as exact, like the thesis).
  if (time_trivial && reward_trivial) {
    const auto probabilities =
        unbounded_until_probabilities(model, sat_phi, sat_psi, options.solver);
    std::vector<UntilValue> values(n);
    for (core::StateIndex s = 0; s < n; ++s) values[s] = exact_until_value(probabilities[s]);
    return values;
  }

  // P1': general time interval [t1,t2] with t1 > 0 and no reward bound —
  // the two-phase reduction of [Bai03]: run the chain in M[!Phi] until t1
  // (any visit to a !Phi state is fatal; Psi-states without Phi are
  // absorbed there as well, and they contribute nothing because the
  // witness time cannot lie before t1), then solve the residual
  // Phi U^[0,t2-t1] Psi problem from every Phi-state reached.
  if (reward_trivial && time_bound.lower() > 0.0 && !time_bound.is_upper_unbounded()) {
    const double t1 = time_bound.lower();
    const double t2 = time_bound.upper();

    std::vector<bool> not_phi(n, false);
    for (core::StateIndex s = 0; s < n; ++s) not_phi[s] = !sat_phi[s];
    const auto phase_one_ptr = absorbing_model(model, not_phi, transforms);
    const core::Mrm& phase_one = *phase_one_ptr;

    const auto residual = until_probabilities(model, sat_phi, sat_psi,
                                              logic::Interval(0.0, t2 - t1),
                                              logic::Interval{}, options, transforms);

    // Phase-one distributions for every Phi-state at once: the uniformized
    // matrix and Fox-Glynn window are built once, the start states fan out
    // over the thread pool.
    std::vector<core::StateIndex> phi_states;
    for (core::StateIndex s = 0; s < n; ++s) {
      if (sat_phi[s]) phi_states.push_back(s);
    }
    const auto at_t1_rows = numeric::transient_distributions_from_states(
        phase_one.rates(), phi_states, t1, options.transient);

    std::vector<UntilValue> values(n);
    for (std::size_t i = 0; i < phi_states.size(); ++i) {
      const auto& at_t1 = at_t1_rows[i];
      double probability = 0.0;
      double error = options.transient.epsilon;
      // Interval arithmetic over the convex combination: the phase-one
      // weights underestimate by at most epsilon of total mass (Fox-Glynn
      // truncation only loses terms), and each residual contributes its own
      // enclosure, so [sum w * lo, sum w * hi + epsilon] contains the truth.
      double lower = 0.0;
      double upper = options.transient.epsilon;
      for (core::StateIndex mid = 0; mid < n; ++mid) {
        if (!sat_phi[mid] || core::exactly_zero(at_t1[mid])) continue;
        probability += at_t1[mid] * residual[mid].probability;
        error += at_t1[mid] * residual[mid].error_bound;
        lower += at_t1[mid] * residual[mid].bound.lower;
        upper += at_t1[mid] * residual[mid].bound.upper;
      }
      values[phi_states[i]] = {probability, error,
                               ProbabilityBound{std::max(0.0, lower), std::min(1.0, upper)}};
    }
    return values;
  }

  // Remaining cases need a bounded time interval of the form [0,t] or [t,t].
  const bool time_zero_based = core::exactly_zero(time_bound.lower()) && !time_bound.is_upper_unbounded();
  const bool time_point = time_bound.is_point() && !time_bound.is_upper_unbounded();
  if (!time_zero_based && !time_point) {
    throw UnsupportedFormulaError(
        "until: time bounds must have the form [0,t], [t1,t2] (reward-unbounded), or [t,t] "
        "(thesis sections 4.3.2/4.6 and [Bai03])");
  }

  // Reward-unbounded cases with a time interval [0,~] were handled as P0; a
  // reward bound with unbounded time is outside the thesis's algorithms.
  if (reward_trivial && time_zero_based) {
    // P1: Phi U^[0,t] Psi = transient analysis of M[!Phi v Psi] (Thm 4.1).
    std::vector<bool> absorb(n, false);
    for (core::StateIndex s = 0; s < n; ++s) absorb[s] = !sat_phi[s] || sat_psi[s];
    const auto transformed_ptr = absorbing_model(model, absorb, transforms);
    const core::Mrm& transformed = *transformed_ptr;
    std::vector<UntilValue> values(n);
    std::vector<core::StateIndex> starts;
    for (core::StateIndex s = 0; s < n; ++s) {
      if (sat_psi[s]) {
        values[s] = exact_until_value(1.0);  // absorbed Psi start: case 1 of eq. (3.6)
      } else {
        starts.push_back(s);
      }
    }
    if (n >= kBackwardUntilMinStates) {
      // One backward column series u_{k+1} = P u_k answers every start state
      // at once in O(nnz * terms), where the per-start fan-out below costs a
      // full series per start — quadratic at a million states. Since Psi is
      // absorbing in M[!Phi v Psi], the hit probability at t equals the
      // until probability. The backward sum is a numerically different
      // (equally valid) association of the same series, so it only engages
      // above a size where no pinned small-model expectation can change.
      const auto hit = numeric::transient_hit_probabilities(
          transformed.rates(), sat_psi, time_bound.upper(), options.transient);
      const double lost = options.transient.epsilon;  // one-sided Fox-Glynn loss
      const double steady = hit.steady_error;         // two-sided fold error
      for (const core::StateIndex s : starts) {
        const double p = hit.values[s];
        // True value lies in [p - steady, p + lost + steady]; with detection
        // off (steady == 0) this is the usual truncation enclosure.
        values[s] = {p, lost + steady,
                     ProbabilityBound::from_point_error(p, steady, lost + steady)};
      }
      return values;
    }
    const auto distributions = numeric::transient_distributions_from_states(
        transformed.rates(), starts, time_bound.upper(), options.transient);
    for (std::size_t i = 0; i < starts.size(); ++i) {
      double p = 0.0;
      for (core::StateIndex s2 = 0; s2 < n; ++s2) {
        if (sat_psi[s2]) p += distributions[i][s2];
      }
      // Fox-Glynn truncation only loses Poisson mass: the true value lies in
      // [p, p + epsilon].
      values[starts[i]] = truncated_until_value(p, options.transient.epsilon);
    }
    return values;
  }
  // Reward-trivial cases are fully covered above ([0,t] by P1, [t1,t2] and
  // [t,t] with t > 0 by the two-phase P1' reduction).

  const double t = time_bound.upper();
  const double r = reward_bound.upper();

  std::vector<bool> dead(n, false);
  for (core::StateIndex s = 0; s < n; ++s) dead[s] = !sat_phi[s] && !sat_psi[s];

  if (time_point && time_bound.lower() > 0.0) {
    // Theorem 4.2 requires Psi => Phi; only !Phi && !Psi states become
    // absorbing, Psi-states stay live.
    for (core::StateIndex s = 0; s < n; ++s) {
      if (sat_psi[s] && !sat_phi[s]) {
        throw UnsupportedFormulaError(
            "until with point time interval [t,t] requires Psi => Phi (Theorem 4.2)");
      }
    }
    const auto transformed_ptr = absorbing_model(model, dead, transforms);
    return bounded_time_reward(*transformed_ptr, sat_psi, dead, t, r, options,
                               /*psi_absorbed=*/false);
  }

  // P2: Phi U^[0,t]_[0,r] Psi on M[!Phi v Psi] (Theorems 4.1 + 4.3).
  std::vector<bool> absorb(n, false);
  for (core::StateIndex s = 0; s < n; ++s) absorb[s] = !sat_phi[s] || sat_psi[s];
  const auto transformed_ptr = absorbing_model(model, absorb, transforms);
  return bounded_time_reward(*transformed_ptr, sat_psi, dead, t, r, options,
                             /*psi_absorbed=*/true);
}

}  // namespace csrlmrm::checker

#include "checker/options.hpp"

// Currently header-only; this translation unit anchors the vtable-free types
// and keeps the build layout uniform (one .cpp per public header).

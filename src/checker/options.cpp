#include "checker/options.hpp"

namespace csrlmrm::checker {

CheckerOptions with_inherited_threads(CheckerOptions options) {
  if (options.threads > 0) {
    if (options.uniformization.threads == 0) options.uniformization.threads = options.threads;
    if (options.discretization.threads == 0) options.discretization.threads = options.threads;
    if (options.transient.threads == 0) options.transient.threads = options.threads;
  }
  return options;
}

}  // namespace csrlmrm::checker

#include "checker/performability.hpp"

#include <stdexcept>

#include "checker/steady.hpp"
#include "numeric/discretization.hpp"
#include "numeric/path_explorer.hpp"
#include "numeric/transient.hpp"
#include "obs/stats.hpp"

namespace csrlmrm::checker {

std::vector<double> per_state_gain_rates(const core::Mrm& model) {
  std::vector<double> gain(model.num_states(), 0.0);
  for (core::StateIndex s = 0; s < model.num_states(); ++s) {
    gain[s] = model.state_reward(s);
    for (const auto& e : model.impulse_rewards().row(s)) {
      gain[s] += model.rates().rate(s, e.col) * e.value;
    }
  }
  return gain;
}

PerformabilityValue performability(const core::Mrm& model, core::StateIndex start, double t,
                                   double r, const CheckerOptions& options) {
  obs::ScopedTimer timer("checker.performability");
  obs::counter_add("checker.performability.calls");
  const std::vector<bool> everything(model.num_states(), true);
  const std::vector<bool> nothing(model.num_states(), false);
  if (options.until_method == UntilMethod::kUniformization) {
    numeric::UniformizationUntilEngine engine(model, everything, nothing);
    const auto result = engine.compute(start, t, r, options.uniformization);
    // Truncation only loses mass: the truth lies in [p, p + error].
    return {result.probability, result.error_bound,
            ProbabilityBound::from_point_error(result.probability, 0.0, result.error_bound)};
  }
  const auto result = numeric::until_probability_discretization(model, everything, start, t, r,
                                                                options.discretization);
  return {result.probability, result.error_bound,
          ProbabilityBound::from_point_error(result.probability, result.error_bound,
                                             result.error_bound)};
}

std::vector<PerformabilityValue> performability_cdf(const core::Mrm& model,
                                                    core::StateIndex start, double t,
                                                    const std::vector<double>& reward_bounds,
                                                    const CheckerOptions& options) {
  std::vector<PerformabilityValue> values;
  values.reserve(reward_bounds.size());
  if (options.until_method == UntilMethod::kUniformization) {
    // Build the engine once; each bound re-walks the (truncated) path set
    // but shares the uniformization preprocessing.
    const std::vector<bool> everything(model.num_states(), true);
    const std::vector<bool> nothing(model.num_states(), false);
    numeric::UniformizationUntilEngine engine(model, everything, nothing);
    for (const double r : reward_bounds) {
      const auto result = engine.compute(start, t, r, options.uniformization);
      values.push_back(
          {result.probability, result.error_bound,
           ProbabilityBound::from_point_error(result.probability, 0.0, result.error_bound)});
    }
    return values;
  }
  for (const double r : reward_bounds) values.push_back(performability(model, start, t, r, options));
  return values;
}

double expected_accumulated_reward(const core::Mrm& model, core::StateIndex start, double t,
                                   const numeric::TransientOptions& options) {
  obs::ScopedTimer timer("checker.expected_reward");
  obs::counter_add("checker.expected_reward.calls");
  if (start >= model.num_states()) {
    throw std::invalid_argument("expected_accumulated_reward: start state out of range");
  }
  std::vector<double> initial(model.num_states(), 0.0);
  initial[start] = 1.0;
  const auto occupation =
      numeric::expected_occupation_times(model.rates(), initial, t, options);
  const auto gain = per_state_gain_rates(model);
  double expected = 0.0;
  for (core::StateIndex s = 0; s < model.num_states(); ++s) {
    expected += occupation[s] * gain[s];
  }
  return expected;
}

std::vector<double> long_run_reward_rate(const core::Mrm& model,
                                         const linalg::IterativeOptions& solver) {
  const auto gain = per_state_gain_rates(model);
  std::vector<double> rates(model.num_states(), 0.0);
  for (core::StateIndex start = 0; start < model.num_states(); ++start) {
    const auto pi = steady_state_distribution(model, start, solver);
    double rate = 0.0;
    for (core::StateIndex s = 0; s < model.num_states(); ++s) rate += pi[s] * gain[s];
    rates[start] = rate;
  }
  return rates;
}

}  // namespace csrlmrm::checker

// Error-aware results: rigorous value intervals and three-valued verdicts.
//
// Every numerical method behind the S/P/R operators is approximate in a
// *quantified* way — Fox-Glynn truncation loses at most epsilon of the
// Poisson mass (eq. 3.5), the DFPG explorer loses at most the accumulated
// truncated-path mass (eq. 4.6), and the discretization scheme converges
// with rate O(d) (section 4.5). Collapsing such a value to a bare double
// and comparing it against the threshold of P(>= p)[...] silently flips
// verdicts between engines (or w/d settings) whenever the true probability
// sits within the error band of p. The fix, following the robust-checking
// literature (Termine et al., Hahn & Hartmanns), is to propagate the value
// as an interval [lower, upper] guaranteed to contain the true value and to
// answer threshold comparisons three-valued:
//
//   kSat      every value in the interval satisfies the comparison
//   kUnsat    no value in the interval satisfies it
//   kUnknown  the interval straddles the threshold — the configured
//             accuracy cannot decide the formula
//
// ModelChecker propagates kUnknown through the boolean connectives by
// Kleene's strong three-valued logic, and mrmcheck surfaces UNKNOWN states
// (exit status 3 under --strict).
#pragma once

#include <string>

#include "logic/ast.hpp"

namespace csrlmrm::checker {

/// A closed interval [lower, upper] guaranteed to contain the true value of
/// a probability or expected-reward query. For probabilities the factories
/// clamp to [0, 1]; reward-valued intervals use the raw constructor.
struct ProbabilityBound {
  double lower = 0.0;
  double upper = 0.0;

  /// The exact value v as the degenerate interval [v, v].
  static ProbabilityBound point(double value) { return {value, value}; }

  /// A probability computed as `p` with up to `below` mass possibly missing
  /// underneath and `above` possibly missing on top, clamped to [0, 1].
  /// Truncating engines (Fox-Glynn, DFPG) only *lose* mass, so they pass
  /// below = 0; two-sided schemes (discretization) pass both.
  static ProbabilityBound from_point_error(double p, double below, double above);

  double width() const { return upper - lower; }
  bool contains(double value) const { return lower <= value && value <= upper; }
  bool overlaps(const ProbabilityBound& other) const {
    return lower <= other.upper && other.lower <= upper;
  }
  /// The smallest interval containing both (used when combining the runs of
  /// a two-sided mask evaluation).
  ProbabilityBound hull(const ProbabilityBound& other) const;

  /// "[lo, hi]" with enough digits to read the width.
  std::string to_string() const;

  friend bool operator==(const ProbabilityBound&, const ProbabilityBound&) = default;
};

/// Three-valued answer of one threshold comparison.
enum class Verdict { kUnsat, kSat, kUnknown };

/// Printable form ("SAT", "UNSAT", "UNKNOWN").
std::string to_string(Verdict verdict);

/// Compares a value interval against `op bound` three-valued: kSat/kUnsat
/// when every/no value in the interval satisfies the comparison, kUnknown
/// when the interval straddles the threshold.
Verdict compare_bound(const ProbabilityBound& value, logic::Comparison op, double bound);

}  // namespace csrlmrm::checker

#include "checker/next.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/stats.hpp"
#include "parallel/thread_pool.hpp"
#include "core/approx.hpp"

namespace csrlmrm::checker {

std::optional<logic::Interval> next_time_window(const core::Mrm& model, core::StateIndex from,
                                                core::StateIndex to,
                                                const logic::Interval& time_bound,
                                                const logic::Interval& reward_bound) {
  const double rho = model.state_reward(from);
  const double iota = model.impulse_reward(from, to);

  double lower = time_bound.lower();
  double upper = time_bound.upper();
  if (rho > 0.0) {
    // rho x + iota in [J.lo, J.hi]  <=>  x in [(J.lo - iota)/rho, (J.hi - iota)/rho]
    lower = std::max(lower, (reward_bound.lower() - iota) / rho);
    if (!reward_bound.is_upper_unbounded()) {
      upper = std::min(upper, (reward_bound.upper() - iota) / rho);
    }
  } else {
    // Zero state reward: the accumulated reward at the jump equals iota.
    if (!reward_bound.contains(iota)) return std::nullopt;
  }
  lower = std::max(lower, 0.0);
  if (lower > upper) return std::nullopt;
  return logic::Interval(lower, upper);
}

std::vector<double> next_probabilities(const core::Mrm& model, const std::vector<bool>& sat_phi,
                                       const logic::Interval& time_bound,
                                       const logic::Interval& reward_bound, unsigned threads) {
  obs::ScopedTimer timer("checker.next");
  obs::counter_add("checker.next.calls");
  const std::size_t n = model.num_states();
  if (sat_phi.size() != n) {
    throw std::invalid_argument("next_probabilities: mask size mismatch");
  }

  std::vector<double> result(n, 0.0);
  // ~3 exp/div per outgoing transition; only sizeable models leave serial.
  const unsigned effective = parallel::choose_thread_count(
      threads, model.rates().matrix().non_zeros() * 64);
  parallel::parallel_for(n, effective, [&](std::size_t begin, std::size_t end) {
    for (core::StateIndex s = begin; s < end; ++s) {
      const double exit = model.rates().exit_rate(s);
      if (core::exactly_zero(exit)) continue;  // absorbing: no next state ever
      double probability = 0.0;
      for (const auto& e : model.rates().transitions(s)) {
        if (!sat_phi[e.col]) continue;
        const auto window = next_time_window(model, s, e.col, time_bound, reward_bound);
        if (!window) continue;
        const double survive_to_lower = std::exp(-exit * window->lower());
        const double survive_to_upper =
            window->is_upper_unbounded() ? 0.0 : std::exp(-exit * window->upper());
        probability += (e.value / exit) * (survive_to_lower - survive_to_upper);
      }
      result[s] = probability;
    }
  });
  return result;
}

}  // namespace csrlmrm::checker

// The per-operator evaluation core shared by the AST-walking ModelChecker
// (checker/sat.hpp) and the plan executor (plan/executor.hpp).
//
// Every CSRL operator evaluation — the Kleene three-valued boolean
// connectives, the widened two-mask runs of the numeric operators (S, P, R),
// and the three-valued threshold comparison — lives here as a free function
// of (model, operand sets, options). Both front ends call exactly these
// functions, so a compiled plan's verdicts and value intervals are
// bitwise-identical to the direct checker's by construction, not by
// coincidence: there is one implementation to agree with.
//
// The numeric operator evaluations return the pessimistic-run raw values
// next to the widened per-state enclosures. The two are computed in one
// engine run (the raw values ARE the lower run), which is what lets the plan
// executor serve both the printed probabilities and the verdicts from a
// single solve where the direct CLI path pays for two.
#pragma once

#include <vector>

#include "checker/options.hpp"
#include "checker/until.hpp"
#include "checker/verdict.hpp"
#include "core/mrm.hpp"
#include "core/transform.hpp"
#include "logic/ast.hpp"

namespace csrlmrm::checker {

/// Three-valued satisfaction masks of one formula over one model's states:
/// sat[s] = provably true, unknown[s] = undecidable at the configured
/// accuracy; both false = provably false.
struct SatSets {
  std::vector<bool> sat;
  std::vector<bool> unknown;
};

/// True iff any state is set.
bool any_state(const std::vector<bool>& mask);

/// The optimistic operand set: UNKNOWN counts as satisfied.
std::vector<bool> optimistic_mask(const SatSets& operand);

// --- Kleene strong three-valued boolean connectives -----------------------

/// !T = F, !F = T, !U = U.
SatSets kleene_not(const SatSets& operand);

/// T || x = T, F || U = U.
SatSets kleene_or(const SatSets& lhs, const SatSets& rhs);

/// F && x = F, T && U = U.
SatSets kleene_and(const SatSets& lhs, const SatSets& rhs);

// --- Numeric operator evaluations (pessimistic values + widened bounds) ---

/// S-operator core: steady-state probability of the operand set per start
/// state, with the enclosure widened over operand UNKNOWN states (second
/// optimistic-mask solve only when one exists).
struct SteadyEvaluation {
  std::vector<double> values;             // pessimistic run
  std::vector<ProbabilityBound> bounds;   // widened enclosure
};
SteadyEvaluation evaluate_steady_operator(const core::Mrm& model, const SatSets& operand,
                                          const CheckerOptions& options);

/// X-operator core (closed-form per transition, eq. 3.4).
struct NextEvaluation {
  std::vector<double> probabilities;
  std::vector<ProbabilityBound> bounds;
};
NextEvaluation evaluate_next_operator(const core::Mrm& model, const SatSets& operand,
                                      const logic::Interval& time_bound,
                                      const logic::Interval& reward_bound,
                                      const CheckerOptions& options);

/// U-operator core: until_probabilities on the pessimistic operand masks
/// (these are the raw values the CLI prints), plus the optimistic-mask run
/// when an operand has UNKNOWN states. `transforms` is forwarded to
/// until_probabilities (see there; nullptr means no sharing).
struct UntilEvaluation {
  std::vector<UntilValue> values;
  std::vector<ProbabilityBound> bounds;
};
UntilEvaluation evaluate_until_operator(const core::Mrm& model, const SatSets& lhs,
                                        const SatSets& rhs, const logic::Interval& time_bound,
                                        const logic::Interval& reward_bound,
                                        const CheckerOptions& options,
                                        core::TransformCache* transforms = nullptr);

/// R-operator core. `operand` carries the F-target sets for kReachability
/// and may be null for the operand-free queries (kCumulative, kLongRun).
struct RewardEvaluation {
  std::vector<double> values;
  std::vector<ProbabilityBound> bounds;
};
RewardEvaluation evaluate_reward_operator(const core::Mrm& model,
                                          const logic::ExpectedRewardFormula& node,
                                          const SatSets* operand,
                                          const CheckerOptions& options);

/// Raw R-operator values only (what ModelChecker::expected_rewards reports):
/// expected cumulative reward by the horizon, expected reward to hit the
/// operand set, or the long-run rate.
std::vector<double> expected_reward_values(const core::Mrm& model,
                                           const logic::ExpectedRewardFormula& node,
                                           const SatSets* operand,
                                           const CheckerOptions& options);

// --- Threshold comparison -------------------------------------------------

/// Three-valued comparison of widened per-state enclosures against an
/// operator's threshold: SAT when the whole interval passes, UNSAT when none
/// of it does, UNKNOWN when it straddles the bound (counted into
/// "checker.verdicts.unknown").
SatSets compare_operator_bounds(const std::vector<ProbabilityBound>& bounds,
                                logic::Comparison op, double threshold);

}  // namespace csrlmrm::checker

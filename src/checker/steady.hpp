// Steady-state operator (sections 3.7 and 4.2).
//
// pi(s, A) — the long-run probability of being in a state of A when started
// in s — is computed by the BSCC decomposition of Algorithm 4.2: each bottom
// strongly connected component B is an irreducible CTMC with steady-state
// vector pi^B (Gauss-Seidel); the probability of ever entering B from s is an
// unbounded-until query (eq. 3.8); and eq. (3.2) combines them:
//
//   pi(s, A) = sum_B P(s, Diamond B) * sum_{s' in B ∩ A} pi^B(s').
#pragma once

#include <vector>

#include "checker/options.hpp"
#include "core/mrm.hpp"

namespace csrlmrm::checker {

/// pi(s, target) for every starting state s. `target` must have one entry
/// per state.
std::vector<double> steady_state_probability_of_set(const core::Mrm& model,
                                                    const std::vector<bool>& target,
                                                    const linalg::IterativeOptions& solver = {});

/// The full long-run distribution started from `start`:
/// result[s'] = pi(start, {s'}).
std::vector<double> steady_state_distribution(const core::Mrm& model, core::StateIndex start,
                                              const linalg::IterativeOptions& solver = {});

}  // namespace csrlmrm::checker

// Expected hitting times and expected accumulated cost until hitting —
// classic dependability companions to the CSRL measures (MTTF, mean cost to
// failure). First-step analysis over the embedded chain:
//
//   E_s[T_hit]  = 1/E(s) + sum_s' P(s,s') E_s'[T_hit]           (s not target)
//   E_s[Y_hit]  = rho(s)/E(s)
//              + sum_s' P(s,s') ( iota(s,s') + E_s'[Y_hit] )    (s not target)
//
// with value 0 on target states. Both are finite exactly for states that
// reach the target with probability 1; everywhere else they are +infinity
// (a positive-probability escape makes the conditional expectation
// ill-defined, and the unconditional one diverges).
#pragma once

#include <vector>

#include "core/mrm.hpp"
#include "linalg/solver_types.hpp"

namespace csrlmrm::checker {

/// E[ time until first hitting `target` ] per starting state; +infinity for
/// states whose hitting probability is below 1 (including states from which
/// the target is unreachable). Throws std::invalid_argument on mask size
/// mismatch or an empty target set.
std::vector<double> expected_time_to_hit(const core::Mrm& model,
                                         const std::vector<bool>& target,
                                         const linalg::IterativeOptions& solver = {});

/// E[ reward accumulated until first hitting `target` ], counting state
/// rewards over the sojourn and impulse rewards of every transition taken
/// (including the final one into the target). Same infinity semantics as
/// expected_time_to_hit.
std::vector<double> expected_reward_to_hit(const core::Mrm& model,
                                           const std::vector<bool>& target,
                                           const linalg::IterativeOptions& solver = {});

}  // namespace csrlmrm::checker

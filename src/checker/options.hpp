// Shared configuration and error type for the model checker.
#pragma once

#include <stdexcept>
#include <string>

#include "linalg/solver_types.hpp"
#include "numeric/discretization.hpp"
#include "numeric/path_explorer.hpp"
#include "numeric/transient.hpp"

namespace csrlmrm::checker {

/// Numerical method used for time- and reward-bounded until formulas (P2).
enum class UntilMethod {
  /// Uniformization with depth-first path generation (section 4.6) — the
  /// default, matching the tool described in the appendix.
  kUniformization,
  /// Discretization (section 4.5). Requires (scalable-to-)integer state
  /// rewards and impulse rewards divisible by the step.
  kDiscretization,
};

/// Which uniformization engine evaluates a P2-class until formula (only
/// consulted when until_method == kUniformization).
enum class UntilEngine {
  /// Cost-model choice per query (the default): an up-front structural pass
  /// over the transformed model picks kClassDp (with the adaptive hybrid
  /// coarsen/hand-off escalation enabled), kDfpg, or — when uniformization
  /// is provably over its node budget and the model has no impulse rewards —
  /// the discretization method. The resolved choice is recorded in the
  /// `engine.auto_choice.*` stats counters; see checker::choose_until_engine
  /// for the exact rules.
  kAuto,
  /// Signature-class dynamic programming with multi-start batching
  /// (class_explorer.hpp): one frontier sweep answers every queried start
  /// state and each conditional probability is evaluated once per signature
  /// class. Falls back to kDfpg per BudgetPolicy when its class budget is
  /// exhausted.
  kClassDp,
  /// Depth-first path generation (Algorithm 4.7, path_explorer.hpp), one
  /// exploration per start state — the engine described in the thesis
  /// appendix; kept as the reference implementation and ablation baseline.
  kDfpg,
};

/// What the checker does when the DFPG explorer exhausts its node budget
/// (PathExplorerOptions::max_nodes): uniformization is only practical for
/// small Lambda*t, and a production checker must degrade gracefully instead
/// of dying mid-formula.
enum class BudgetPolicy {
  /// Propagate numeric::NodeBudgetError to the caller (the pre-existing
  /// behavior).
  kThrow,
  /// Re-evaluate the affected start states with the discretization engine
  /// (recorded in the `uniformization.fallbacks` stats counter); the
  /// returned interval is the discretization one.
  kFallbackToDiscretization,
  /// Retry with the truncation probability w widened by 1000x (up to 1e-2,
  /// recorded in `uniformization.widenings`), trading accuracy — visible in
  /// the returned interval — for a smaller search tree; falls back to
  /// discretization if even the widest w exhausts the budget.
  kWidenW,
};

/// All knobs of the checker, with the defaults of the thesis's tool
/// (uniformization with truncation probability w = 1e-8).
struct CheckerOptions {
  UntilMethod until_method = UntilMethod::kUniformization;
  /// Uniformization engine variant (see UntilEngine).
  UntilEngine until_engine = UntilEngine::kAuto;
  /// Degradation policy on node-budget exhaustion (see BudgetPolicy).
  BudgetPolicy on_budget_exhausted = BudgetPolicy::kFallbackToDiscretization;
  /// Options for the uniformization path explorer (w lives here).
  numeric::PathExplorerOptions uniformization;
  /// Options for the discretization engine (the step d lives here).
  numeric::DiscretizationOptions discretization;
  /// Linear solver controls (steady state, unbounded until).
  linalg::IterativeOptions solver;
  /// Transient-analysis controls (time-bounded until without reward bound).
  numeric::TransientOptions transient;
  /// Worker threads for per-state fan-out (Until/Next/R-operator evaluation
  /// over all start states) and, through the engine options above, for the
  /// numeric kernels; 0 = the process default (CSRLMRM_THREADS or hardware
  /// concurrency). Engine-level `threads` fields that are 0 inherit this
  /// value, so setting it once configures the whole checker.
  unsigned threads = 0;
};

/// The engine options with an unset (0) `threads` field inheriting the
/// checker-level count; returns `options` with the inheritance applied.
CheckerOptions with_inherited_threads(CheckerOptions options);

/// Raised when a formula uses bounds outside the algorithms' scope (the
/// thesis supports time/reward intervals of the forms [0,b], [b,b] with
/// Psi => Phi, and [0,~]; see sections 4.5/4.6 and the appendix).
class UnsupportedFormulaError : public std::runtime_error {
 public:
  explicit UnsupportedFormulaError(const std::string& message)
      : std::runtime_error(message) {}
};

}  // namespace csrlmrm::checker

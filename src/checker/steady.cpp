#include "checker/steady.hpp"

#include <stdexcept>

#include "checker/until.hpp"
#include "graph/scc.hpp"
#include "linalg/dense_solve.hpp"
#include "linalg/gauss_seidel.hpp"
#include "obs/stats.hpp"
#include "core/approx.hpp"

namespace csrlmrm::checker {

namespace {

/// The BSCC decomposition with, per component, its internal steady-state
/// vector and the per-state probabilities of ever entering it.
struct SteadyAnalysis {
  std::vector<std::vector<core::StateIndex>> bsccs;
  std::vector<std::vector<double>> steady_within;    // aligned with bsccs[i]
  std::vector<std::vector<double>> reach_probability;  // [i][s] = P(s, Diamond B_i)
};

SteadyAnalysis analyze(const core::Mrm& model, const linalg::IterativeOptions& solver) {
  obs::ScopedTimer timer("checker.steady");
  obs::counter_add("checker.steady.calls");
  SteadyAnalysis analysis;
  analysis.bsccs = graph::bottom_sccs(model.rates().matrix());
  obs::counter_add("checker.steady.bsccs", analysis.bsccs.size());
  const std::size_t n = model.num_states();

  const std::vector<bool> everywhere(n, true);
  for (const auto& component : analysis.bsccs) {
    // Steady state within the component: restrict the generator to B (legal
    // because no transition leaves a bottom component).
    linalg::CsrBuilder builder(component.size(), component.size());
    std::vector<std::size_t> local(n, n);
    for (std::size_t i = 0; i < component.size(); ++i) local[component[i]] = i;
    for (std::size_t i = 0; i < component.size(); ++i) {
      const core::StateIndex s = component[i];
      double exit = 0.0;
      for (const auto& e : model.rates().transitions(s)) {
        if (local[e.col] == n) {
          throw std::logic_error("steady: transition leaving a bottom component");
        }
        builder.add(i, local[e.col], e.value);
        exit += e.value;
      }
      builder.add(i, i, -exit);
    }
    linalg::IterativeResult outcome;
    const linalg::CsrMatrix generator = builder.build();
    analysis.steady_within.push_back(
        linalg::steady_state_gauss_seidel(generator, solver, &outcome));
    if (component.size() > 1 && !outcome.converged) {
      if (component.size() > 4096) {
        throw std::runtime_error("steady: Gauss-Seidel on a BSCC did not converge");
      }
      // Robust fallback for stubborn (e.g. stiff) components: solve the
      // normalized dense system Q^T pi = 0, sum(pi) = 1 directly.
      auto dense = generator.transposed().to_dense();
      std::vector<double> rhs(component.size(), 0.0);
      for (std::size_t c = 0; c < component.size(); ++c) dense.back()[c] = 1.0;
      rhs.back() = 1.0;
      analysis.steady_within.back() = linalg::dense_solve(std::move(dense), std::move(rhs));
    }

    // P(s, Diamond B) = P(s, tt U atB) (eq. 3.8, via the extra-proposition
    // trick of section 4.2).
    std::vector<bool> in_component(n, false);
    for (const core::StateIndex s : component) in_component[s] = true;
    analysis.reach_probability.push_back(
        unbounded_until_probabilities(model, everywhere, in_component, solver));
  }
  return analysis;
}

}  // namespace

std::vector<double> steady_state_probability_of_set(const core::Mrm& model,
                                                    const std::vector<bool>& target,
                                                    const linalg::IterativeOptions& solver) {
  if (target.size() != model.num_states()) {
    throw std::invalid_argument("steady_state_probability_of_set: mask size mismatch");
  }
  const SteadyAnalysis analysis = analyze(model, solver);
  const std::size_t n = model.num_states();

  std::vector<double> result(n, 0.0);
  for (std::size_t b = 0; b < analysis.bsccs.size(); ++b) {
    double mass_in_target = 0.0;
    for (std::size_t i = 0; i < analysis.bsccs[b].size(); ++i) {
      if (target[analysis.bsccs[b][i]]) mass_in_target += analysis.steady_within[b][i];
    }
    if (core::exactly_zero(mass_in_target)) continue;
    for (core::StateIndex s = 0; s < n; ++s) {
      result[s] += analysis.reach_probability[b][s] * mass_in_target;
    }
  }
  return result;
}

std::vector<double> steady_state_distribution(const core::Mrm& model, core::StateIndex start,
                                              const linalg::IterativeOptions& solver) {
  if (start >= model.num_states()) {
    throw std::invalid_argument("steady_state_distribution: start out of range");
  }
  const SteadyAnalysis analysis = analyze(model, solver);
  std::vector<double> result(model.num_states(), 0.0);
  for (std::size_t b = 0; b < analysis.bsccs.size(); ++b) {
    const double reach = analysis.reach_probability[b][start];
    if (core::exactly_zero(reach)) continue;
    for (std::size_t i = 0; i < analysis.bsccs[b].size(); ++i) {
      result[analysis.bsccs[b][i]] += reach * analysis.steady_within[b][i];
    }
  }
  return result;
}

}  // namespace csrlmrm::checker

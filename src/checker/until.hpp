// Until-formula evaluation (sections 3.8.2, 4.3.2, 4.5, 4.6).
//
// Dispatches on the bound shapes the thesis distinguishes:
//   P0: Phi U Psi                — least solution of a linear system (3.8)
//   P1: Phi U^[0,t] Psi          — transient analysis of M[!Phi v Psi]
//                                  (Theorem 4.1 + standard uniformization)
//   P1': Phi U^[t1,t2] Psi       — the two-phase reduction of [Bai03]
//                                  (transient analysis of M[!Phi] to t1,
//                                  then the [0, t2-t1] problem from every
//                                  Phi-state); reward bound must be trivial
//   P2: Phi U^[0,t]_[0,r] Psi    — uniformization/DFPG or discretization on
//                                  M[!Phi v Psi] (Theorems 4.1 + 4.3)
//   point-interval variant Phi U^[t,t]_[0,r] Psi with Psi => Phi
//                                — same engines on M[!Phi && !Psi]
//                                  (Theorems 4.2 + 4.3)
// Other bound shapes raise UnsupportedFormulaError.
#pragma once

#include <vector>

#include "checker/options.hpp"
#include "checker/verdict.hpp"
#include "core/mrm.hpp"
#include "core/transform.hpp"
#include "logic/interval.hpp"

namespace csrlmrm::checker {

/// Probability (and, for approximate methods, error bound) of one until
/// query, with a rigorous interval enclosing the true probability.
struct UntilValue {
  double probability = 0.0;
  /// A-priori bound on the one-sided error: for the truncating engines
  /// (Fox-Glynn transient, DFPG uniformization) the probability mass lost
  /// below the reported value; for discretization the half-width of the
  /// derived O(d) error band. 0 for exact graph/linear-algebra methods.
  double error_bound = 0.0;
  /// Rigorous enclosure of the true probability. Truncating engines yield
  /// [p, p + error_bound]; discretization yields [p - e, p + e] with the
  /// derived step-error e; exact methods the point [p, p].
  ProbabilityBound bound = ProbabilityBound::point(0.0);
};

/// An exactly computed probability (graph/linear-algebra path).
inline UntilValue exact_until_value(double p) {
  return {p, 0.0, ProbabilityBound::point(p)};
}

/// A probability computed by a truncating engine: up to `lost` mass was cut
/// and would only have *increased* the value.
inline UntilValue truncated_until_value(double p, double lost) {
  return {p, lost, ProbabilityBound::from_point_error(p, 0.0, lost)};
}

/// A probability with a symmetric error band (discretization).
inline UntilValue two_sided_until_value(double p, double half_width) {
  return {p, half_width, ProbabilityBound::from_point_error(p, half_width, half_width)};
}

/// Resolution of UntilEngine::kAuto for one P2-class query: the method and
/// engine the up-front cost model picked, and whether the class-DP adaptive
/// hybrid escalation (PathExplorerOptions::adaptive_hybrid) is switched on.
struct AutoEngineChoice {
  /// kDiscretization only when uniformization is provably over budget (see
  /// choose_until_engine); kUniformization otherwise.
  UntilMethod method = UntilMethod::kUniformization;
  /// kClassDp or kDfpg — never kAuto; not consulted when method is
  /// kDiscretization.
  UntilEngine engine = UntilEngine::kClassDp;
  /// True iff engine == kClassDp: auto always arms the hybrid escalation so
  /// merge-hostile instances hand off mid-query instead of losing to DFPG.
  bool adaptive_hybrid = false;
};

/// The up-front cost model behind --until-engine=auto, resolved per P2 query
/// on the *transformed* model M[!Phi v Psi] with time bound t:
///   1. discretization — when even a perfectly merging frontier is over the
///      node budget (live states x Poisson levels > max_nodes, a lower bound
///      on any uniformization engine's work), the model has no impulse
///      rewards (so a discretization step always exists), and the budget
///      policy is not kThrow (which forbids degrading behind the user's
///      back — there auto runs uniformization and fails loudly);
///   2. dfpg — when aggregate_signatures is off: that ablation knob requests
///      per-path Omega evaluation, which only the DFS engine implements;
///   3. classdp with adaptive_hybrid otherwise (the common case): batched
///      merging where it pays, coarsening/DFS hand-off where it does not.
/// Deterministic, O(states), and exported so benchmarks can record the
/// choice the checker would make. The decision lands in the
/// `engine.auto_choice.{classdp,dfpg,discretization}` counters when the
/// checker applies it.
AutoEngineChoice choose_until_engine(const core::Mrm& transformed, double t,
                                     const CheckerOptions& options);

/// P(s, Phi U Psi) for every state s: the unbounded-until probabilities of
/// eq. (3.8), computed by graph precomputation (states that cannot reach Psi
/// through Phi get exactly 0) plus a Gauss-Seidel solve on the embedded DTMC.
std::vector<double> unbounded_until_probabilities(const core::Mrm& model,
                                                  const std::vector<bool>& sat_phi,
                                                  const std::vector<bool>& sat_psi,
                                                  const linalg::IterativeOptions& solver = {});

/// P(s, Phi U_J^I Psi) for every state s, dispatching as described above.
/// Masks must have one entry per state.
///
/// `transforms`, when non-null, memoizes the absorbing transforms this query
/// builds (M[!Phi v Psi], M[!Phi], M[!Phi && !Psi]) keyed by mask, so a batch
/// of queries over the same model shares them — the plan executor passes the
/// cache its compile step prewarmed. The cache must be bound to `model` (a
/// TransformCache keys by mask only) and the call does not touch it inside
/// the per-state fan-out, so a serial caller needs no locking. Passing
/// nullptr rebuilds every transform, bitwise-identically.
std::vector<UntilValue> until_probabilities(const core::Mrm& model,
                                            const std::vector<bool>& sat_phi,
                                            const std::vector<bool>& sat_psi,
                                            const logic::Interval& time_bound,
                                            const logic::Interval& reward_bound,
                                            const CheckerOptions& options = {},
                                            core::TransformCache* transforms = nullptr);

}  // namespace csrlmrm::checker

// Next-operator evaluation (sections 3.8.1 and 4.3.1).
//
// P(s, X_J^I Phi) = sum_{s' |= Phi} P(s,s') *
//                   ( e^{-E(s) inf K(s,s')} - e^{-E(s) sup K(s,s')} )
// with K(s,s') = { x in I | rho(s) x + iota(s,s') in J }: the times in I at
// which jumping to s' lands the accumulated reward inside J. General closed
// intervals I and J are supported (eq. 3.4).
#pragma once

#include <optional>
#include <vector>

#include "core/mrm.hpp"
#include "logic/interval.hpp"

namespace csrlmrm::checker {

/// K(s,s') as a closed interval, or nullopt when empty. Exposed for tests.
std::optional<logic::Interval> next_time_window(const core::Mrm& model, core::StateIndex from,
                                                core::StateIndex to,
                                                const logic::Interval& time_bound,
                                                const logic::Interval& reward_bound);

/// P(s, X_J^I Phi) for every state s. `sat_phi` must have one entry per
/// state. Absorbing states yield probability 0 (no next transition exists).
/// Each state's probability is independent of the others, so the states fan
/// out over the thread pool (`threads`; 0 = the process default, and small
/// models stay serial).
std::vector<double> next_probabilities(const core::Mrm& model, const std::vector<bool>& sat_phi,
                                       const logic::Interval& time_bound,
                                       const logic::Interval& reward_bound,
                                       unsigned threads = 0);

}  // namespace csrlmrm::checker

// Readers and writers for the model file formats of the thesis appendix:
//
//   .tra  — "STATES n" / "TRANSITIONS m" / lines "state1 state2 rate"
//   .lab  — "#DECLARATION" ap... "#END" then lines "state ap[,ap]*"
//   .rewr — lines "state reward"            (state reward structure rho)
//   .rewi — "TRANSITIONS n" then lines "state1 state2 reward"  (iota)
//
// States are 1-based in the files (as in the appendix examples) and 0-based
// in memory. Lines starting with '%' or '#' (outside the .lab declaration
// block) and blank lines are ignored. Malformed input raises ModelFileError
// with the offending line number.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "core/mrm.hpp"

namespace csrlmrm::io {

/// Raised on malformed model files; message includes the 1-based line.
class ModelFileError : public std::runtime_error {
 public:
  ModelFileError(const std::string& message, std::size_t line);
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Parses a .tra stream into a rate matrix.
core::RateMatrix read_tra(std::istream& in);

/// Parses a .lab stream into a labeling for `num_states` states.
core::Labeling read_lab(std::istream& in, std::size_t num_states);

/// Parses a .rewr stream into a state reward vector (unlisted states get 0).
std::vector<double> read_rewr(std::istream& in, std::size_t num_states);

/// Parses a .rewi stream into an impulse reward matrix.
linalg::CsrMatrix read_rewi(std::istream& in, std::size_t num_states);

/// Loads a complete MRM from the four files. `rewi_path` may be empty for a
/// model without impulse rewards. Throws ModelFileError / std::runtime_error
/// on unreadable files.
core::Mrm load_mrm(const std::string& tra_path, const std::string& lab_path,
                   const std::string& rewr_path, const std::string& rewi_path);

/// Writers producing files the readers accept (round-trip tested).
void write_tra(std::ostream& out, const core::RateMatrix& rates);
void write_lab(std::ostream& out, const core::Labeling& labels);
void write_rewr(std::ostream& out, const std::vector<double>& rewards);
void write_rewi(std::ostream& out, const linalg::CsrMatrix& impulses);

/// Writes all four files with the given path prefix (prefix + ".tra" etc.).
void save_mrm(const core::Mrm& model, const std::string& path_prefix);

}  // namespace csrlmrm::io

#include "io/model_files.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include "core/approx.hpp"

namespace csrlmrm::io {

namespace {

/// Line-oriented reader skipping blanks and '%' comments, tracking line
/// numbers for error messages.
class LineReader {
 public:
  explicit LineReader(std::istream& in) : in_(&in) {}

  /// Next content line, or nullopt at end of stream.
  bool next(std::string& line) {
    while (std::getline(*in_, line)) {
      ++line_number_;
      const auto first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos) continue;
      if (line[first] == '%') continue;
      return true;
    }
    return false;
  }

  std::size_t line_number() const { return line_number_; }

 private:
  std::istream* in_;
  std::size_t line_number_ = 0;
};

core::StateIndex parse_state(long value, std::size_t num_states, std::size_t line) {
  if (value < 1 || static_cast<std::size_t>(value) > num_states) {
    throw ModelFileError("state index " + std::to_string(value) + " outside 1.." +
                             std::to_string(num_states),
                         line);
  }
  return static_cast<core::StateIndex>(value - 1);  // files are 1-based
}

/// Rejects extra tokens after a line's expected fields ("1 2 0.5 oops" must
/// not parse as "1 2 0.5"). A trailing '%...' comment is fine.
void require_line_consumed(std::istringstream& parse, std::size_t line) {
  std::string extra;
  if ((parse >> extra) && extra[0] != '%') {
    throw ModelFileError("unexpected trailing token '" + extra + "'", line);
  }
}

/// Single-pass field scanner over one content line: strtol/strtod advance a
/// cursor directly over the line buffer, so the million-line body of a large
/// .tra/.rewi file is tokenized exactly once. (The previous istringstream
/// path built a stream per line and re-tokenized it a second time for the
/// trailing-token check.) Errors still carry the 1-based line number.
class FieldScanner {
 public:
  explicit FieldScanner(const std::string& line) : cursor_(line.c_str()) {}

  /// Parses the next base-10 integer field; false when none is present.
  bool next_long(long& value) {
    char* end = nullptr;
    value = std::strtol(cursor_, &end, 10);
    if (end == cursor_) return false;
    cursor_ = end;
    return true;
  }

  /// Parses the next floating-point field; false when none is present.
  bool next_double(double& value) {
    char* end = nullptr;
    value = std::strtod(cursor_, &end);
    if (end == cursor_) return false;
    cursor_ = end;
    return true;
  }

  /// Rejects extra tokens after the expected fields ("1 2 0.5 oops" must not
  /// parse as "1 2 0.5"); a trailing '%...' comment is fine.
  void require_consumed(std::size_t line) const {
    const char* p = cursor_;
    while (*p != '\0' && std::isspace(static_cast<unsigned char>(*p))) ++p;
    if (*p == '\0' || *p == '%') return;
    const char* start = p;
    while (*p != '\0' && !std::isspace(static_cast<unsigned char>(*p))) ++p;
    throw ModelFileError("unexpected trailing token '" + std::string(start, p) + "'", line);
  }

 private:
  const char* cursor_;
};

/// Does the line's first whitespace-separated token equal `expected`?
/// (Header keywords like '#END' must stand alone — an atomic proposition
/// merely *containing* the keyword must not terminate a section.)
bool first_token_is(const std::string& line, const char* expected) {
  std::istringstream parse(line);
  std::string token;
  return (parse >> token) && token == expected;
}

}  // namespace

ModelFileError::ModelFileError(const std::string& message, std::size_t line)
    : std::runtime_error(message + " (line " + std::to_string(line) + ")"), line_(line) {}

core::RateMatrix read_tra(std::istream& in) {
  LineReader reader(in);
  std::string line;

  if (!reader.next(line)) throw ModelFileError("missing STATES header", reader.line_number());
  std::size_t num_states = 0;
  {
    std::istringstream parse(line);
    std::string keyword;
    if (!(parse >> keyword >> num_states) || keyword != "STATES") {
      throw ModelFileError("expected 'STATES n'", reader.line_number());
    }
    require_line_consumed(parse, reader.line_number());
  }
  if (!reader.next(line)) {
    throw ModelFileError("missing TRANSITIONS header", reader.line_number());
  }
  std::size_t num_transitions = 0;
  {
    std::istringstream parse(line);
    std::string keyword;
    if (!(parse >> keyword >> num_transitions) || keyword != "TRANSITIONS") {
      throw ModelFileError("expected 'TRANSITIONS m'", reader.line_number());
    }
    require_line_consumed(parse, reader.line_number());
  }

  core::RateMatrixBuilder builder(num_states);
  // One allocation for the announced count; capped so a corrupt header
  // cannot drive a huge speculative allocation before any line is parsed.
  builder.reserve(std::min(num_transitions, std::size_t{1} << 24));
  std::size_t seen = 0;
  while (reader.next(line)) {
    FieldScanner scan(line);
    long from = 0;
    long to = 0;
    double rate = 0.0;
    if (!scan.next_long(from) || !scan.next_long(to) || !scan.next_double(rate)) {
      throw ModelFileError("expected 'state1 state2 rate'", reader.line_number());
    }
    scan.require_consumed(reader.line_number());
    if (!std::isfinite(rate) || rate <= 0.0) {
      throw ModelFileError("transition rate must be a positive finite number, got " +
                               std::to_string(rate),
                           reader.line_number());
    }
    builder.add(parse_state(from, num_states, reader.line_number()),
                parse_state(to, num_states, reader.line_number()), rate);
    ++seen;
  }
  if (seen != num_transitions) {
    throw ModelFileError("TRANSITIONS announced " + std::to_string(num_transitions) +
                             " entries but " + std::to_string(seen) + " were read",
                         reader.line_number());
  }
  return builder.build();
}

core::Labeling read_lab(std::istream& in, std::size_t num_states) {
  LineReader reader(in);
  core::Labeling labels(num_states);
  std::string line;

  if (!reader.next(line) || !first_token_is(line, "#DECLARATION")) {
    throw ModelFileError("expected '#DECLARATION'", reader.line_number());
  }
  bool declaration_closed = false;
  while (reader.next(line)) {
    if (first_token_is(line, "#END")) {
      declaration_closed = true;
      break;
    }
    std::istringstream parse(line);
    std::string ap;
    while (parse >> ap) labels.declare(ap);
  }
  if (!declaration_closed) {
    throw ModelFileError("missing '#END' after declarations", reader.line_number());
  }

  while (reader.next(line)) {
    // "state ap[,ap]*" — commas and whitespace both separate propositions.
    for (char& c : line) {
      if (c == ',') c = ' ';
    }
    std::istringstream parse(line);
    long state = 0;
    if (!(parse >> state)) {
      throw ModelFileError("expected 'state ap[,ap]*'", reader.line_number());
    }
    const core::StateIndex s = parse_state(state, num_states, reader.line_number());
    std::string ap;
    while (parse >> ap) {
      if (!labels.is_declared(ap)) {
        throw ModelFileError("undeclared atomic proposition '" + ap + "'",
                             reader.line_number());
      }
      labels.add(s, ap);
    }
  }
  return labels;
}

std::vector<double> read_rewr(std::istream& in, std::size_t num_states) {
  LineReader reader(in);
  std::vector<double> rewards(num_states, 0.0);
  std::string line;
  while (reader.next(line)) {
    FieldScanner scan(line);
    long state = 0;
    double reward = 0.0;
    if (!scan.next_long(state) || !scan.next_double(reward)) {
      throw ModelFileError("expected 'state reward'", reader.line_number());
    }
    scan.require_consumed(reader.line_number());
    if (!std::isfinite(reward) || reward < 0.0) {
      throw ModelFileError("state reward must be a finite non-negative number, got " +
                               std::to_string(reward),
                           reader.line_number());
    }
    rewards[parse_state(state, num_states, reader.line_number())] = reward;
  }
  return rewards;
}

linalg::CsrMatrix read_rewi(std::istream& in, std::size_t num_states) {
  LineReader reader(in);
  std::string line;
  if (!reader.next(line)) {
    throw ModelFileError("missing TRANSITIONS header", reader.line_number());
  }
  std::size_t announced = 0;
  {
    std::istringstream parse(line);
    std::string keyword;
    if (!(parse >> keyword >> announced) || keyword != "TRANSITIONS") {
      throw ModelFileError("expected 'TRANSITIONS n'", reader.line_number());
    }
    require_line_consumed(parse, reader.line_number());
  }
  core::ImpulseRewardsBuilder builder(num_states);
  builder.reserve(std::min(announced, std::size_t{1} << 24));  // capped, see read_tra
  std::size_t seen = 0;
  while (reader.next(line)) {
    FieldScanner scan(line);
    long from = 0;
    long to = 0;
    double reward = 0.0;
    if (!scan.next_long(from) || !scan.next_long(to) || !scan.next_double(reward)) {
      throw ModelFileError("expected 'state1 state2 reward'", reader.line_number());
    }
    scan.require_consumed(reader.line_number());
    if (!std::isfinite(reward) || reward < 0.0) {
      throw ModelFileError("impulse reward must be a finite non-negative number, got " +
                               std::to_string(reward),
                           reader.line_number());
    }
    builder.add(parse_state(from, num_states, reader.line_number()),
                parse_state(to, num_states, reader.line_number()), reward);
    ++seen;
  }
  if (seen != announced) {
    throw ModelFileError("TRANSITIONS announced " + std::to_string(announced) +
                             " entries but " + std::to_string(seen) + " were read",
                         reader.line_number());
  }
  return builder.build();
}

namespace {
std::ifstream open_or_throw(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  return in;
}
}  // namespace

core::Mrm load_mrm(const std::string& tra_path, const std::string& lab_path,
                   const std::string& rewr_path, const std::string& rewi_path) {
  auto tra = open_or_throw(tra_path);
  core::RateMatrix rates = read_tra(tra);
  const std::size_t n = rates.num_states();

  auto lab = open_or_throw(lab_path);
  core::Labeling labels = read_lab(lab, n);

  auto rewr = open_or_throw(rewr_path);
  std::vector<double> state_rewards = read_rewr(rewr, n);

  if (rewi_path.empty()) {
    return core::Mrm(core::Ctmc(std::move(rates), std::move(labels)), std::move(state_rewards));
  }
  auto rewi = open_or_throw(rewi_path);
  linalg::CsrMatrix impulses = read_rewi(rewi, n);
  return core::Mrm(core::Ctmc(std::move(rates), std::move(labels)), std::move(state_rewards),
                   std::move(impulses));
}

void write_tra(std::ostream& out, const core::RateMatrix& rates) {
  out << "STATES " << rates.num_states() << '\n';
  out << "TRANSITIONS " << rates.matrix().non_zeros() << '\n';
  out << std::setprecision(17);
  for (core::StateIndex s = 0; s < rates.num_states(); ++s) {
    for (const auto& e : rates.transitions(s)) {
      out << (s + 1) << ' ' << (e.col + 1) << ' ' << e.value << '\n';
    }
  }
}

void write_lab(std::ostream& out, const core::Labeling& labels) {
  out << "#DECLARATION\n";
  for (const auto& ap : labels.propositions()) out << ap << '\n';
  out << "#END\n";
  for (core::StateIndex s = 0; s < labels.num_states(); ++s) {
    const auto aps = labels.labels_of(s);
    if (aps.empty()) continue;
    out << (s + 1) << ' ';
    for (std::size_t i = 0; i < aps.size(); ++i) {
      if (i) out << ',';
      out << aps[i];
    }
    out << '\n';
  }
}

void write_rewr(std::ostream& out, const std::vector<double>& rewards) {
  out << std::setprecision(17);
  for (std::size_t s = 0; s < rewards.size(); ++s) {
    if (!core::exactly_zero(rewards[s])) out << (s + 1) << ' ' << rewards[s] << '\n';
  }
}

void write_rewi(std::ostream& out, const linalg::CsrMatrix& impulses) {
  out << "TRANSITIONS " << impulses.non_zeros() << '\n';
  out << std::setprecision(17);
  for (std::size_t s = 0; s < impulses.rows(); ++s) {
    for (const auto& e : impulses.row(s)) {
      out << (s + 1) << ' ' << (e.col + 1) << ' ' << e.value << '\n';
    }
  }
}

void save_mrm(const core::Mrm& model, const std::string& path_prefix) {
  const auto open = [](const std::string& path) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot write '" + path + "'");
    return out;
  };
  auto tra = open(path_prefix + ".tra");
  write_tra(tra, model.rates());
  auto lab = open(path_prefix + ".lab");
  write_lab(lab, model.labels());
  auto rewr = open(path_prefix + ".rewr");
  write_rewr(rewr, model.state_rewards());
  auto rewi = open(path_prefix + ".rewi");
  write_rewi(rewi, model.impulse_rewards());
}

}  // namespace csrlmrm::io

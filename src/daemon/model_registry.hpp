// Resident-model registry of mrmcheckd: load a model once, check it many
// times. Each resident entry pairs the immutable Mrm with the caches that
// make repeat queries cheap — a per-model TransformCache that stays warm
// across requests (every plan compiled for the model reuses it via
// plan::PlanOptions::shared_transforms), identified by a content fingerprint
// so the same model loaded under two names (or re-loaded after a daemon-side
// eviction) deduplicates to one resident copy.
//
// The registry is a bounded LRU keyed by fingerprint with an optional
// name alias per entry: capacity bounds daemon memory (models plus their
// transform caches are the dominant resident state), eviction only drops the
// registry's reference — in-flight checks hold shared_ptrs and finish
// against the evicted copy safely.
//
// Observability: "daemon.model_loads" / "daemon.model_cache_hits" /
// "daemon.models_evicted" counters and the "daemon.models_resident" gauge.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/mrm.hpp"
#include "core/transform.hpp"

namespace csrlmrm::daemon {

/// FNV-1a over the model's canonical .tra/.lab/.rewr/.rewi serialization,
/// as 16 lowercase hex digits. Two models fingerprint equal exactly when
/// io::save_mrm would write identical files.
std::string fingerprint_mrm(const core::Mrm& model);

/// One loaded model plus its cross-request caches. Immutable after
/// registration except for the (internally synchronized) TransformCache.
struct ResidentModel {
  std::string fingerprint;
  std::shared_ptr<const core::Mrm> model;
  std::shared_ptr<core::TransformCache> transforms;
};

class ModelRegistry {
 public:
  /// Resident models retained. Each entry owns the full model plus its
  /// transform cache, so the bound is deliberately small; raise it for
  /// daemons fronting many models.
  static constexpr std::size_t kDefaultCapacity = 8;

  explicit ModelRegistry(std::size_t capacity = kDefaultCapacity);

  /// Registers `model` under its content fingerprint, with `name` as an
  /// optional alias. A model already resident (same fingerprint) is NOT
  /// replaced — its warm caches survive and the alias is refreshed — so
  /// clients may re-send "load" idempotently.
  std::shared_ptr<const ResidentModel> add(core::Mrm model, const std::string& name = "");

  /// The resident model whose name or fingerprint equals `key`; nullptr when
  /// absent. A hit refreshes LRU recency.
  std::shared_ptr<const ResidentModel> find(const std::string& key);

  std::size_t size() const;

 private:
  struct Slot {
    std::shared_ptr<const ResidentModel> resident;
    std::string name;
    std::uint64_t last_use = 0;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::uint64_t tick_ = 0;   // lint:guarded_by(mutex_)
  std::vector<Slot> slots_;  // lint:guarded_by(mutex_)
};

}  // namespace csrlmrm::daemon

#include "daemon/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "daemon/protocol.hpp"

namespace csrlmrm::daemon {

Client::Client(const std::string& socket_path) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("cannot create socket");
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(address.sun_path)) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("socket path too long: " + socket_path);
  }
  std::memcpy(address.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("cannot connect to '" + socket_path + "'");
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

obs::JsonValue Client::roundtrip(const obs::JsonValue& request) {
  const std::string line = frame(request);
  std::size_t written = 0;
  while (written < line.size()) {
    // MSG_NOSIGNAL: a daemon that hung up turns into an exception, not SIGPIPE.
    const ssize_t sent =
        ::send(fd_, line.data() + written, line.size() - written, MSG_NOSIGNAL);
    if (sent <= 0) throw std::runtime_error("connection lost while sending");
    written += static_cast<std::size_t>(sent);
  }
  return obs::parse_json(read_line());
}

std::string Client::read_line() {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
    if (got < 0 && errno == EINTR) continue;  // interrupted, not closed: retry
    if (got <= 0) throw std::runtime_error("connection closed by daemon");
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

}  // namespace csrlmrm::daemon

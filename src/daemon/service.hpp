// The checking core of mrmcheckd: a bounded request queue in front of one
// dispatcher thread that batches same-model requests into shared plan
// executions.
//
// Why batching preserves correctness: plan execution is differential-tested
// bitwise-identical to a direct per-formula ModelChecker run regardless of
// batch composition (tests/test_plan_differential.cpp), and every numeric
// engine underneath is deterministic at any thread count. So combining N
// clients' formulas into one compiled plan — deduplicating shared solves and
// absorbing transforms across *clients*, not just within one request —
// returns exactly the answers each client would have gotten alone.
//
// Admission control, in order:
//   1. Queue bound: submit() on a full queue resolves the future immediately
//      with a degraded reply (all states '?', enclosure [0,1]) instead of
//      blocking the connection thread — overload sheds load as honest
//      UNKNOWNs, it never stalls.
//   2. Deadline: a request whose deadline_ms elapsed while queued is
//      answered degraded at dispatch time, before any numeric work.
//   3. Node budget: per-request max_nodes/w overrides ride the existing
//      checker::BudgetPolicy degradation (widen-w / discretize fallback), so
//      a too-expensive query inside its deadline still returns a widened
//      enclosure rather than running unbounded.
//
// Execution is serial across batches on the dispatcher thread (the numeric
// work inside parallelizes through the process thread pool); stats recorded
// while a batch runs are attached to each of its requests as a snapshot
// delta (obs::StatsSnapshot), not process-lifetime totals.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <thread>

#include "checker/options.hpp"
#include "daemon/model_registry.hpp"
#include "daemon/protocol.hpp"
#include "plan/compiler.hpp"

namespace csrlmrm::daemon {

struct ServiceOptions {
  /// Pending requests admitted before submit() answers degraded.
  std::size_t max_queue = 64;
  /// Base CheckerOptions; per-request overrides apply on top.
  checker::CheckerOptions checker;
  /// Base plan passes (shared_transforms is set per model internally).
  plan::PlanOptions plan;
};

class CheckService {
 public:
  explicit CheckService(ModelRegistry& registry, ServiceOptions options = {});
  /// Drains the queue (every admitted request is answered) and joins the
  /// dispatcher.
  ~CheckService();

  CheckService(const CheckService&) = delete;
  CheckService& operator=(const CheckService&) = delete;

  /// Admits one request. The future always resolves: with results, with a
  /// degraded reply (overload/deadline), or with a request-level error
  /// (unknown model, invalid options). Never throws on overload.
  std::future<CheckReply> submit(CheckRequest request);

  /// Blocks until every currently admitted request has been answered.
  void drain();

 private:
  struct Pending {
    CheckRequest request;
    std::promise<CheckReply> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void run();
  /// All-'?' reply sized to the request's model (state count 0 when the
  /// model is not resident — the verdict string is then empty but the reply
  /// still carries ok/degraded and the reason).
  CheckReply degraded_reply(const CheckRequest& request, const std::string& reason);
  void serve_group(std::vector<Pending>& group);

  ModelRegistry& registry_;
  ServiceOptions options_;

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<Pending> queue_;      // lint:guarded_by(mutex_)
  std::size_t in_flight_ = 0;      // lint:guarded_by(mutex_)
  bool stopping_ = false;          // lint:guarded_by(mutex_)
  std::thread dispatcher_;
};

}  // namespace csrlmrm::daemon

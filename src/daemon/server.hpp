// The unix-domain-socket front of mrmcheckd: an accept loop handing each
// connection to its own thread, which reads newline-delimited JSON requests
// (see daemon/protocol.hpp) and writes one reply line per request.
//
// Connection threads block in submit(...).get() while the dispatcher serves
// their request — which is exactly what makes cross-client batching emerge:
// requests arriving while a batch runs queue up and are grouped into the
// next one. Load/stats/ping are answered inline (they are cheap and take no
// numeric locks).
//
// handle_line() is the transport-free core — tests drive the full protocol
// through it without a socket; the socket layer only does framing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "daemon/model_registry.hpp"
#include "daemon/service.hpp"

namespace csrlmrm::daemon {

struct ServerOptions {
  /// Filesystem path of the listening socket; unlinked on stop. Must fit
  /// sockaddr_un (~100 bytes).
  std::string socket_path;
  std::size_t registry_capacity = ModelRegistry::kDefaultCapacity;
  ServiceOptions service;
};

class DaemonServer {
 public:
  explicit DaemonServer(ServerOptions options);
  ~DaemonServer();

  DaemonServer(const DaemonServer&) = delete;
  DaemonServer& operator=(const DaemonServer&) = delete;

  /// Binds the socket and spawns the accept loop. Throws std::runtime_error
  /// when the path cannot be bound.
  void start();

  /// Blocks until a client sends {"op":"shutdown"} (or stop() is called).
  void wait_for_shutdown();

  /// Closes the listener, joins every connection thread, unlinks the socket.
  /// Idempotent.
  void stop();

  /// Handles one request line and returns the reply line (newline-
  /// terminated). Never throws: protocol errors become {"ok":false,...}.
  std::string handle_line(const std::string& line);

  ModelRegistry& registry() { return registry_; }
  CheckService& service() { return service_; }
  const std::string& socket_path() const { return options_.socket_path; }

 private:
  void accept_loop();
  void serve_connection(int fd);

  ServerOptions options_;
  ModelRegistry registry_;
  CheckService service_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::thread> connections_;  // lint:guarded_by(connections_mutex_)
  /// Open connection fds, so stop() can shutdown() blocked readers before
  /// joining. A thread removes its fd (under the mutex) before closing it.
  std::vector<int> connection_fds_;  // lint:guarded_by(connections_mutex_)
  std::atomic<bool> running_{false};

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_requested_;
  bool shutdown_ = false;  // lint:guarded_by(shutdown_mutex_)
};

}  // namespace csrlmrm::daemon

// Minimal blocking client for the mrmcheckd protocol: connect to the unix
// socket, send one JSON line, read one JSON reply line. Used by mrmcheckc,
// the daemon tests, and bench_daemon's concurrent-client lanes.
#pragma once

#include <string>

#include "obs/json.hpp"

namespace csrlmrm::daemon {

class Client {
 public:
  /// Connects immediately; throws std::runtime_error when the socket cannot
  /// be reached.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends `request` as one frame and blocks for the reply line. Requests on
  /// one Client must not interleave across threads (one in flight at a
  /// time); use one Client per thread for concurrency.
  obs::JsonValue roundtrip(const obs::JsonValue& request);

 private:
  /// Reads up to the next newline (buffering any overshoot).
  std::string read_line();

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace csrlmrm::daemon

#include "daemon/model_registry.hpp"

#include <cstdio>
#include <sstream>
#include <utility>

#include "io/model_files.hpp"
#include "obs/stats.hpp"

namespace csrlmrm::daemon {

std::string fingerprint_mrm(const core::Mrm& model) {
  // Canonical bytes: exactly what io::save_mrm would write, which the io
  // round-trip tests already pin as a stable function of the model.
  std::ostringstream bytes;
  io::write_tra(bytes, model.rates());
  io::write_lab(bytes, model.labels());
  io::write_rewr(bytes, model.state_rewards());
  io::write_rewi(bytes, model.impulse_rewards());
  const std::string text = bytes.str();

  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a 64-bit offset basis
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV-1a 64-bit prime
  }
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buffer);
}

ModelRegistry::ModelRegistry(std::size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const ResidentModel> ModelRegistry::add(core::Mrm model,
                                                        const std::string& name) {
  const std::string fingerprint = fingerprint_mrm(model);
  const std::lock_guard<std::mutex> lock(mutex_);
  ++tick_;
  for (Slot& slot : slots_) {
    if (slot.resident->fingerprint != fingerprint) continue;
    // Same content already resident: keep the warm caches, refresh alias.
    slot.last_use = tick_;
    if (!name.empty()) slot.name = name;
    obs::counter_add("daemon.model_cache_hits");
    return slot.resident;
  }
  if (capacity_ > 0 && slots_.size() >= capacity_) {
    std::size_t victim = 0;
    for (std::size_t i = 1; i < slots_.size(); ++i) {
      if (slots_[i].last_use < slots_[victim].last_use) victim = i;
    }
    slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(victim));
    obs::counter_add("daemon.models_evicted");
  }
  auto resident = std::make_shared<ResidentModel>();
  resident->fingerprint = fingerprint;
  resident->model = std::make_shared<const core::Mrm>(std::move(model));
  resident->transforms = std::make_shared<core::TransformCache>();
  slots_.push_back(Slot{resident, name, tick_});
  obs::counter_add("daemon.model_loads");
  obs::gauge_max("daemon.models_resident", static_cast<double>(slots_.size()));
  return resident;
}

std::shared_ptr<const ResidentModel> ModelRegistry::find(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++tick_;
  for (Slot& slot : slots_) {
    if (slot.resident->fingerprint != key && slot.name != key) continue;
    slot.last_use = tick_;
    obs::counter_add("daemon.model_cache_hits");
    return slot.resident;
  }
  return nullptr;
}

std::size_t ModelRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

}  // namespace csrlmrm::daemon

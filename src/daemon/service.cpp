#include "daemon/service.hpp"

#include <exception>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "checker/verdict.hpp"
#include "logic/parser.hpp"
#include "logic/printer.hpp"
#include "obs/stats.hpp"
#include "plan/executor.hpp"

namespace csrlmrm::daemon {

namespace {

char verdict_char(checker::Verdict verdict) {
  switch (verdict) {
    case checker::Verdict::kSat: return 'Y';
    case checker::Verdict::kUnsat: return 'N';
    case checker::Verdict::kUnknown: return '?';
  }
  return '?';
}

/// A parsed formula's reply from its plan execution result.
FormulaReply formula_reply(const logic::FormulaPtr& formula,
                           const plan::FormulaResult& result) {
  FormulaReply reply;
  reply.ok = true;
  reply.formula = logic::to_string(formula);
  reply.verdicts.reserve(result.verdicts.size());
  for (const checker::Verdict verdict : result.verdicts) {
    reply.verdicts.push_back(verdict_char(verdict));
  }
  if (result.has_probabilities) {
    reply.has_probabilities = true;
    reply.probabilities.reserve(result.probabilities.size());
    for (const auto& value : result.probabilities) {
      reply.probabilities.push_back(value.probability);
    }
  }
  if (result.has_values) {
    reply.has_values = true;
    reply.values = result.values;
  }
  if (result.has_bounds) {
    reply.has_bounds = true;
    reply.bound_lower.reserve(result.bounds.size());
    reply.bound_upper.reserve(result.bounds.size());
    for (const auto& bound : result.bounds) {
      reply.bound_lower.push_back(bound.lower);
      reply.bound_upper.push_back(bound.upper);
    }
  }
  return reply;
}

FormulaReply error_reply(const std::string& text, const std::string& error) {
  FormulaReply reply;
  reply.ok = false;
  reply.formula = text;
  reply.error = error;
  return reply;
}

}  // namespace

CheckService::CheckService(ModelRegistry& registry, ServiceOptions options)
    : registry_(registry), options_(std::move(options)) {
  dispatcher_ = std::thread([this] { run(); });
}

CheckService::~CheckService() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  dispatcher_.join();
}

CheckReply CheckService::degraded_reply(const CheckRequest& request,
                                        const std::string& reason) {
  const auto resident = registry_.find(request.model);
  const std::size_t n = resident ? resident->model->num_states() : 0;
  CheckReply reply;
  reply.ok = true;
  reply.degraded = true;
  reply.error = reason;
  for (const std::string& text : request.formulas) {
    FormulaReply formula;
    formula.ok = true;
    formula.formula = text;
    formula.verdicts.assign(n, '?');
    formula.has_bounds = n > 0;
    formula.bound_lower.assign(n, 0.0);
    formula.bound_upper.assign(n, 1.0);
    reply.formulas.push_back(std::move(formula));
  }
  obs::counter_add("daemon.requests_degraded");
  return reply;
}

std::future<CheckReply> CheckService::submit(CheckRequest request) {
  obs::counter_add("daemon.requests");
  std::promise<CheckReply> promise;
  std::future<CheckReply> future = promise.get_future();
  bool shed = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      CheckReply reply;
      reply.ok = false;
      reply.error = "service is shutting down";
      promise.set_value(std::move(reply));
      return future;
    }
    if (queue_.size() >= options_.max_queue) {
      shed = true;
    } else {
      queue_.push_back(
          Pending{std::move(request), std::move(promise), std::chrono::steady_clock::now()});
    }
  }
  if (shed) {
    // Answer on the caller's thread, outside the lock: degraded_reply takes
    // the registry lock and records stats.
    obs::counter_add("daemon.requests_shed");
    promise.set_value(degraded_reply(request, "request queue full"));
    return future;
  }
  work_available_.notify_one();
  return future;
}

void CheckService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void CheckService::run() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty() && stopping_) return;
      while (!queue_.empty()) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_ += batch.size();
    }

    // Group by (model, numeric overrides): each group compiles one plan.
    // std::map iteration keeps group order deterministic.
    std::map<std::string, std::vector<Pending>> groups;
    for (Pending& pending : batch) {
      groups[batch_key(pending.request)].push_back(std::move(pending));
    }
    for (auto& [key, group] : groups) serve_group(group);

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      in_flight_ -= batch.size();
    }
    idle_.notify_all();
  }
}

void CheckService::serve_group(std::vector<Pending>& group) {
  obs::counter_add("daemon.batches");
  obs::gauge_max("daemon.batch_size", static_cast<double>(group.size()));

  // Deadline admission: a request that waited past its budget is answered
  // degraded before any numeric work starts.
  std::vector<Pending> live;
  const auto now = std::chrono::steady_clock::now();
  for (Pending& pending : group) {
    const auto& deadline = pending.request.options.deadline_ms;
    const double waited_ms =
        std::chrono::duration<double, std::milli>(now - pending.enqueued).count();
    if (deadline && waited_ms > *deadline) {
      obs::counter_add("daemon.deadlines_expired");
      pending.promise.set_value(degraded_reply(pending.request, "deadline expired"));
    } else {
      live.push_back(std::move(pending));
    }
  }
  if (live.empty()) return;

  const auto fail_all = [&](const std::string& message) {
    for (Pending& pending : live) {
      CheckReply reply;
      reply.ok = false;
      reply.error = message;
      pending.promise.set_value(std::move(reply));
    }
  };

  const auto resident = registry_.find(live.front().request.model);
  if (!resident) {
    fail_all("model '" + live.front().request.model + "' is not resident; load it first");
    return;
  }

  checker::CheckerOptions options;
  try {
    options = apply_overrides(options_.checker, live.front().request.options);
  } catch (const std::exception& error) {
    fail_all(error.what());
    return;
  }

  const obs::StatsSnapshot base = obs::StatsRegistry::global().snapshot();
  std::string batch_error;

  // Unique formula texts across the whole group, in first-appearance order:
  // N clients asking the same formula share one root (and the plan compiler
  // dedups shared subformulas and solves beyond that).
  std::vector<std::string> texts;
  std::map<std::string, std::size_t> text_index;
  for (const Pending& pending : live) {
    for (const std::string& text : pending.request.formulas) {
      if (text_index.emplace(text, texts.size()).second) texts.push_back(text);
    }
  }

  // Per-formula error isolation: a malformed formula fails alone.
  std::vector<FormulaReply> replies(texts.size());
  std::vector<logic::FormulaPtr> parsed(texts.size());
  std::vector<std::size_t> runnable;  // indices into texts with parsed[i] set
  for (std::size_t i = 0; i < texts.size(); ++i) {
    try {
      parsed[i] = logic::parse_formula(texts[i]);
      runnable.push_back(i);
    } catch (const std::exception& error) {
      replies[i] = error_reply(texts[i], error.what());
      obs::counter_add("daemon.formula_errors");
    }
  }

  if (!runnable.empty()) {
    plan::PlanOptions plan_options = options_.plan;
    plan_options.shared_transforms = resident->transforms;
    std::vector<logic::FormulaPtr> formulas;
    formulas.reserve(runnable.size());
    for (const std::size_t i : runnable) formulas.push_back(parsed[i]);
    try {
      const plan::Plan compiled = plan::compile(*resident->model, formulas, options, plan_options);
      const plan::PlanResult results = plan::execute(compiled, *resident->model);
      for (std::size_t k = 0; k < runnable.size(); ++k) {
        replies[runnable[k]] = formula_reply(formulas[k], results.formulas[k]);
      }
    } catch (const std::exception& batch_failure) {
      // One formula poisoned the shared execution (e.g. an unsupported bound
      // shape surfacing at solve time). Re-run each alone so only the
      // offender fails; per-formula results are bitwise-identical to the
      // batched run (plan executions are differential-tested against direct
      // checks at every batch composition). The batch-level error is not
      // swallowed: it is counted and attached to every reply of the group as
      // batch_error so the isolation rerun is observable.
      obs::counter_add("daemon.batch_poisoned");
      batch_error = batch_failure.what();
      for (const std::size_t i : runnable) {
        try {
          const plan::Plan single =
              plan::compile(*resident->model, {parsed[i]}, options, plan_options);
          const plan::PlanResult result = plan::execute(single, *resident->model);
          replies[i] = formula_reply(parsed[i], result.formulas[0]);
        } catch (const std::exception& error) {
          replies[i] = error_reply(texts[i], error.what());
          obs::counter_add("daemon.formula_errors");
        }
      }
    }
  }

  const obs::StatsSnapshot delta = obs::StatsRegistry::global().delta_since(base);

  for (Pending& pending : live) {
    CheckReply reply;
    reply.ok = true;
    reply.batch_requests = live.size();
    reply.batch_error = batch_error;
    reply.stats_delta = delta;
    for (const std::string& text : pending.request.formulas) {
      reply.formulas.push_back(replies[text_index[text]]);
    }
    obs::counter_add("daemon.requests_served");
    pending.promise.set_value(std::move(reply));
  }
}

}  // namespace csrlmrm::daemon

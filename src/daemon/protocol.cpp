#include "daemon/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace csrlmrm::daemon {

namespace {

using obs::JsonValue;

JsonValue doubles_to_json(const std::vector<double>& values) {
  JsonValue array = JsonValue::array();
  for (const double v : values) array.push_back(JsonValue(v));
  return array;
}

std::vector<double> doubles_from_json(const JsonValue& value) {
  std::vector<double> out;
  out.reserve(value.items().size());
  for (const JsonValue& item : value.items()) out.push_back(item.as_number());
  return out;
}

/// Reads an optional member with a type check; absent or null means unset.
const JsonValue* optional_member(const JsonValue& object, std::string_view key) {
  const JsonValue* member = object.find(key);
  if (member == nullptr || member->is_null()) return nullptr;
  return member;
}

std::size_t as_size(const JsonValue& value, const char* what) {
  const double n = value.as_number();
  if (!(n >= 1.0) || !std::isfinite(n)) {
    throw std::invalid_argument(std::string(what) + " must be a positive integer");
  }
  return static_cast<std::size_t>(n);
}

}  // namespace

checker::CheckerOptions apply_overrides(checker::CheckerOptions base,
                                        const CheckOverrides& overrides) {
  if (overrides.w) {
    if (!(*overrides.w > 0.0) || !std::isfinite(*overrides.w)) {
      throw std::invalid_argument("check option 'w' must be a positive number");
    }
    base.until_method = checker::UntilMethod::kUniformization;
    base.uniformization.truncation_probability = *overrides.w;
  }
  if (overrides.max_nodes) {
    if (*overrides.max_nodes == 0) {
      throw std::invalid_argument("check option 'max_nodes' must be positive");
    }
    base.uniformization.max_nodes = *overrides.max_nodes;
  }
  if (overrides.until_engine) {
    const std::string& engine = *overrides.until_engine;
    if (engine == "auto") {
      base.until_engine = checker::UntilEngine::kAuto;
    } else if (engine == "classdp") {
      base.until_engine = checker::UntilEngine::kClassDp;
    } else if (engine == "dfpg") {
      base.until_engine = checker::UntilEngine::kDfpg;
    } else {
      throw std::invalid_argument("unknown until_engine '" + engine + "'");
    }
  }
  if (overrides.fallback) {
    const std::string& policy = *overrides.fallback;
    if (policy == "throw") {
      base.on_budget_exhausted = checker::BudgetPolicy::kThrow;
    } else if (policy == "discretize") {
      base.on_budget_exhausted = checker::BudgetPolicy::kFallbackToDiscretization;
    } else if (policy == "widen-w") {
      base.on_budget_exhausted = checker::BudgetPolicy::kWidenW;
    } else {
      throw std::invalid_argument("unknown fallback '" + policy + "'");
    }
  }
  return base;
}

std::string batch_key(const CheckRequest& request) {
  std::string key = request.model;
  key += '\x1f';
  if (request.options.w) {
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "w=%.17g", *request.options.w);
    key += buffer;
  }
  key += '\x1f';
  if (request.options.max_nodes) key += "n=" + std::to_string(*request.options.max_nodes);
  key += '\x1f';
  if (request.options.until_engine) key += *request.options.until_engine;
  key += '\x1f';
  if (request.options.fallback) key += *request.options.fallback;
  return key;
}

JsonValue check_request_to_json(const CheckRequest& request) {
  JsonValue object = JsonValue::object();
  object.set("op", JsonValue(std::string("check")));
  object.set("model", JsonValue(request.model));
  JsonValue formulas = JsonValue::array();
  for (const std::string& text : request.formulas) formulas.push_back(JsonValue(text));
  object.set("formulas", std::move(formulas));
  JsonValue options = JsonValue::object();
  if (request.options.w) options.set("w", JsonValue(*request.options.w));
  if (request.options.max_nodes) {
    options.set("max_nodes", JsonValue(static_cast<double>(*request.options.max_nodes)));
  }
  if (request.options.deadline_ms) {
    options.set("deadline_ms", JsonValue(*request.options.deadline_ms));
  }
  if (request.options.until_engine) {
    options.set("until_engine", JsonValue(*request.options.until_engine));
  }
  if (request.options.fallback) options.set("fallback", JsonValue(*request.options.fallback));
  if (!options.members().empty()) object.set("options", std::move(options));
  return object;
}

CheckRequest check_request_from_json(const JsonValue& value) {
  if (!value.is_object()) throw std::invalid_argument("check request must be an object");
  CheckRequest request;
  const JsonValue* model = optional_member(value, "model");
  if (model == nullptr) throw std::invalid_argument("check request needs a 'model' key");
  request.model = model->as_string();
  const JsonValue* formulas = optional_member(value, "formulas");
  if (formulas == nullptr || !formulas->is_array() || formulas->items().empty()) {
    throw std::invalid_argument("check request needs a non-empty 'formulas' array");
  }
  for (const JsonValue& item : formulas->items()) request.formulas.push_back(item.as_string());
  if (const JsonValue* options = optional_member(value, "options")) {
    if (!options->is_object()) throw std::invalid_argument("'options' must be an object");
    if (const JsonValue* w = optional_member(*options, "w")) request.options.w = w->as_number();
    if (const JsonValue* nodes = optional_member(*options, "max_nodes")) {
      request.options.max_nodes = as_size(*nodes, "max_nodes");
    }
    if (const JsonValue* deadline = optional_member(*options, "deadline_ms")) {
      request.options.deadline_ms = deadline->as_number();
    }
    if (const JsonValue* engine = optional_member(*options, "until_engine")) {
      request.options.until_engine = engine->as_string();
    }
    if (const JsonValue* fallback = optional_member(*options, "fallback")) {
      request.options.fallback = fallback->as_string();
    }
  }
  return request;
}

JsonValue check_reply_to_json(const CheckReply& reply) {
  JsonValue object = JsonValue::object();
  object.set("ok", JsonValue(reply.ok));
  if (!reply.error.empty()) object.set("error", JsonValue(reply.error));
  object.set("degraded", JsonValue(reply.degraded));
  object.set("batch_requests", JsonValue(static_cast<double>(reply.batch_requests)));
  if (!reply.batch_error.empty()) {
    object.set("batch_error", JsonValue(reply.batch_error));
  }
  JsonValue formulas = JsonValue::array();
  for (const FormulaReply& formula : reply.formulas) {
    JsonValue entry = JsonValue::object();
    entry.set("ok", JsonValue(formula.ok));
    entry.set("formula", JsonValue(formula.formula));
    if (!formula.error.empty()) entry.set("error", JsonValue(formula.error));
    if (!formula.verdicts.empty()) entry.set("verdicts", JsonValue(formula.verdicts));
    if (formula.has_probabilities) {
      entry.set("probabilities", doubles_to_json(formula.probabilities));
    }
    if (formula.has_values) entry.set("values", doubles_to_json(formula.values));
    if (formula.has_bounds) {
      entry.set("bound_lower", doubles_to_json(formula.bound_lower));
      entry.set("bound_upper", doubles_to_json(formula.bound_upper));
    }
    formulas.push_back(std::move(entry));
  }
  object.set("formulas", std::move(formulas));
  object.set("stats", obs::snapshot_to_json(reply.stats_delta));
  return object;
}

CheckReply check_reply_from_json(const JsonValue& value) {
  CheckReply reply;
  reply.ok = value.at("ok").as_bool();
  if (const JsonValue* error = optional_member(value, "error")) reply.error = error->as_string();
  if (const JsonValue* degraded = optional_member(value, "degraded")) {
    reply.degraded = degraded->as_bool();
  }
  if (const JsonValue* batch = optional_member(value, "batch_requests")) {
    reply.batch_requests = static_cast<std::size_t>(batch->as_number());
  }
  if (const JsonValue* batch_error = optional_member(value, "batch_error")) {
    reply.batch_error = batch_error->as_string();
  }
  if (const JsonValue* formulas = optional_member(value, "formulas")) {
    for (const JsonValue& entry : formulas->items()) {
      FormulaReply formula;
      formula.ok = entry.at("ok").as_bool();
      formula.formula = entry.at("formula").as_string();
      if (const JsonValue* error = optional_member(entry, "error")) {
        formula.error = error->as_string();
      }
      if (const JsonValue* verdicts = optional_member(entry, "verdicts")) {
        formula.verdicts = verdicts->as_string();
      }
      if (const JsonValue* probabilities = optional_member(entry, "probabilities")) {
        formula.has_probabilities = true;
        formula.probabilities = doubles_from_json(*probabilities);
      }
      if (const JsonValue* values = optional_member(entry, "values")) {
        formula.has_values = true;
        formula.values = doubles_from_json(*values);
      }
      if (const JsonValue* lower = optional_member(entry, "bound_lower")) {
        formula.has_bounds = true;
        formula.bound_lower = doubles_from_json(*lower);
        formula.bound_upper = doubles_from_json(entry.at("bound_upper"));
      }
      reply.formulas.push_back(std::move(formula));
    }
  }
  if (const JsonValue* stats = optional_member(value, "stats")) {
    if (const JsonValue* counters = optional_member(*stats, "counters")) {
      for (const auto& [name, counter] : counters->members()) {
        reply.stats_delta.counters.emplace(
            name, static_cast<std::uint64_t>(counter.as_number()));
      }
    }
    if (const JsonValue* gauges = optional_member(*stats, "gauges")) {
      for (const auto& [name, gauge] : gauges->members()) {
        reply.stats_delta.gauges.emplace(name, gauge.as_number());
      }
    }
  }
  return reply;
}

std::string frame(const JsonValue& value) {
  std::string line = obs::write_json_compact(value);
  line += '\n';
  return line;
}

}  // namespace csrlmrm::daemon

#include "daemon/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "io/model_files.hpp"
#include "lang/builder.hpp"
#include "obs/json.hpp"
#include "obs/stats.hpp"

namespace csrlmrm::daemon {

namespace {

using obs::JsonValue;

JsonValue error_json(const std::string& message) {
  JsonValue reply = JsonValue::object();
  reply.set("ok", JsonValue(false));
  reply.set("error", JsonValue(message));
  return reply;
}

std::string required_string(const JsonValue& request, const char* key) {
  const JsonValue* member = request.find(key);
  if (member == nullptr || !member->is_string()) {
    throw std::invalid_argument(std::string("'") + key + "' must be a string");
  }
  return member->as_string();
}

core::Mrm load_requested_model(const JsonValue& request) {
  if (const JsonValue* spec = request.find("spec")) {
    std::ifstream in(spec->as_string());
    if (!in) throw std::runtime_error("cannot open '" + spec->as_string() + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto built = lang::build_model_from_text(buffer.str());
    return std::move(*built.model);
  }
  const std::string tra = required_string(request, "tra");
  const std::string lab = required_string(request, "lab");
  const std::string rewr = required_string(request, "rewr");
  const JsonValue* rewi = request.find("rewi");
  return io::load_mrm(tra, lab, rewr, rewi != nullptr ? rewi->as_string() : "");
}

}  // namespace

DaemonServer::DaemonServer(ServerOptions options)
    : options_(std::move(options)),
      registry_(options_.registry_capacity),
      service_(registry_, options_.service) {}

DaemonServer::~DaemonServer() { stop(); }

std::string DaemonServer::handle_line(const std::string& line) {
  JsonValue reply;
  JsonValue id;  // echoed when the request carried one
  try {
    const JsonValue request = obs::parse_json(line);
    if (const JsonValue* requested_id = request.find("id")) id = *requested_id;
    const std::string op = required_string(request, "op");
    if (op == "ping") {
      reply = JsonValue::object();
      reply.set("ok", JsonValue(true));
    } else if (op == "load") {
      const JsonValue* name = request.find("name");
      const auto resident = registry_.add(load_requested_model(request),
                                          name != nullptr ? name->as_string() : "");
      reply = JsonValue::object();
      reply.set("ok", JsonValue(true));
      reply.set("model", JsonValue(resident->fingerprint));
      reply.set("states", JsonValue(static_cast<double>(resident->model->num_states())));
      reply.set("resident", JsonValue(static_cast<double>(registry_.size())));
    } else if (op == "check") {
      const CheckReply checked = service_.submit(check_request_from_json(request)).get();
      reply = check_reply_to_json(checked);
    } else if (op == "stats") {
      reply = JsonValue::object();
      reply.set("ok", JsonValue(true));
      reply.set("stats", obs::snapshot_to_json(obs::StatsRegistry::global().snapshot()));
    } else if (op == "shutdown") {
      {
        const std::lock_guard<std::mutex> lock(shutdown_mutex_);
        shutdown_ = true;
      }
      shutdown_requested_.notify_all();
      reply = JsonValue::object();
      reply.set("ok", JsonValue(true));
    } else {
      reply = error_json("unknown op '" + op + "'");
    }
  } catch (const std::exception& error) {
    reply = error_json(error.what());
  }
  if (!id.is_null()) reply.set("id", id);
  return frame(reply);
}

void DaemonServer::start() {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("mrmcheckd: cannot create socket");

  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(address.sun_path)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("mrmcheckd: socket path too long: " + options_.socket_path);
  }
  std::memcpy(address.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("mrmcheckd: cannot bind '" + options_.socket_path + "'");
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void DaemonServer::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) return;
      if (errno == EINTR) continue;  // interrupted by a signal: retry
      continue;  // other transient accept failure
    }
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connection_fds_.push_back(fd);
    connections_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void DaemonServer::serve_connection(int fd) {
  obs::counter_add("daemon.connections");
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got < 0 && errno == EINTR) continue;  // interrupted, not hung up: retry
    if (got <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(got));
    std::size_t newline;
    while (open && (newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;
      const std::string reply = handle_line(line);
      std::size_t written = 0;
      while (written < reply.size()) {
        // MSG_NOSIGNAL: a client that hung up (or a stop() racing a shutdown
        // reply) must surface as a failed send, not a SIGPIPE that kills the
        // whole daemon mid-teardown with the socket file still on disk.
        const ssize_t sent =
            ::send(fd, reply.data() + written, reply.size() - written, MSG_NOSIGNAL);
        if (sent <= 0) {
          open = false;
          break;
        }
        written += static_cast<std::size_t>(sent);
      }
    }
  }
  {
    // Deregister before closing so stop() never shutdown()s a recycled fd.
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    for (std::size_t i = 0; i < connection_fds_.size(); ++i) {
      if (connection_fds_[i] == fd) {
        connection_fds_.erase(connection_fds_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }
  ::close(fd);
}

void DaemonServer::wait_for_shutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_requested_.wait(lock, [this] { return shutdown_; });
}

void DaemonServer::stop() {
  if (!running_.exchange(false)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // Wake the blocking accept(); shutdown() makes it return immediately.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::thread> connections;
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    // SHUT_RD only: the blocking read() returns 0 and the thread winds down,
    // but an in-flight reply — the shutdown ack in particular — can still be
    // written before the thread closes its own fd.
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RD);
    connections.swap(connections_);
  }
  for (std::thread& connection : connections) connection.join();
  ::unlink(options_.socket_path.c_str());
  {
    const std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_ = true;
  }
  shutdown_requested_.notify_all();
}

}  // namespace csrlmrm::daemon

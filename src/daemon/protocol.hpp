// Wire protocol of mrmcheckd: newline-delimited JSON over a unix domain
// socket. Every request is one JSON object on one line; every reply is one
// JSON object on one line. The request's "id" member (any string) is echoed
// back verbatim so clients can pipeline.
//
// Operations ("op" member):
//
//   {"op":"ping"}                            -> {"ok":true}
//   {"op":"load","name":"tmr","tra":...,
//    "lab":...,"rewr":...,"rewi":...}        -> {"ok":true,"model":"<fp>",
//   {"op":"load","name":"q","spec":...}          "states":N,"resident":K}
//   {"op":"check","model":"<fp-or-name>",
//    "formulas":["...",...],"options":{...}} -> CheckReply (below)
//   {"op":"stats"}                           -> {"ok":true,"stats":{...}}
//   {"op":"shutdown"}                        -> {"ok":true} then server exit
//
// Check options override the daemon's base CheckerOptions per request:
// "w" (uniformization truncation probability), "max_nodes" (node budget),
// "deadline_ms" (admission deadline: a request still queued when it expires
// is answered degraded instead of checked), "until_engine"
// ("auto"|"classdp"|"dfpg") and "fallback" ("throw"|"discretize"|"widen-w").
//
// A CheckReply carries per-formula results (verdict string with one
// 'Y'/'N'/'?' per state, plus the numeric values the CLI would print), the
// stats *delta* attributable to the batch that served the request (see
// obs::StatsSnapshot), how many requests shared that batch, and a
// "degraded" marker: a degraded reply answers every state '?' with the
// trivial enclosure [0,1] — the honest UNKNOWN-with-interval answer the
// three-valued semantics already defines for "not computed".
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "checker/options.hpp"
#include "obs/json.hpp"
#include "obs/stats.hpp"

namespace csrlmrm::daemon {

/// Per-request overrides of the daemon's base CheckerOptions. Unset fields
/// inherit the base. deadline_ms is admission control, not a numeric knob —
/// it never affects results, only whether the request is answered degraded.
struct CheckOverrides {
  std::optional<double> w;
  std::optional<std::size_t> max_nodes;
  std::optional<double> deadline_ms;
  std::optional<std::string> until_engine;
  std::optional<std::string> fallback;
};

struct CheckRequest {
  /// Registry key: a load-time name or a content fingerprint.
  std::string model;
  std::vector<std::string> formulas;
  CheckOverrides options;
};

/// One formula's outcome. A malformed or unsupported formula fails alone
/// (ok=false with the parse/check error); the rest of the batch still runs.
struct FormulaReply {
  bool ok = false;
  std::string formula;
  std::string error;
  /// One char per state, 1-based order: 'Y' sat, 'N' unsat, '?' unknown.
  std::string verdicts;
  bool has_probabilities = false;
  std::vector<double> probabilities;
  bool has_values = false;
  std::vector<double> values;
  bool has_bounds = false;
  std::vector<double> bound_lower;
  std::vector<double> bound_upper;
};

struct CheckReply {
  bool ok = false;
  /// True when admission control answered without checking (queue overflow
  /// or expired deadline): every formula reads all-'?' with bounds [0,1].
  bool degraded = false;
  std::string error;
  /// How many requests the serving batch combined (>= 1).
  std::size_t batch_requests = 1;
  /// Non-empty when the shared batched execution failed and the group was
  /// re-run formula-by-formula: the batch-level error, kept so clients (and
  /// operators) can see why the slower isolation path ran. Per-formula
  /// results are still authoritative — only the offender carries an error.
  std::string batch_error;
  std::vector<FormulaReply> formulas;
  /// Stats recorded while the serving batch ran (shared across its
  /// requests, since the solves themselves are shared).
  obs::StatsSnapshot stats_delta;
};

/// `base` with the request's overrides applied. Throws std::invalid_argument
/// on an unknown until_engine/fallback name or a non-positive w/max_nodes.
checker::CheckerOptions apply_overrides(checker::CheckerOptions base,
                                        const CheckOverrides& overrides);

/// Groups requests that may share one compiled plan: same model key and
/// numerically relevant overrides (deadline_ms excluded — it never changes
/// results).
std::string batch_key(const CheckRequest& request);

obs::JsonValue check_request_to_json(const CheckRequest& request);
/// Throws std::invalid_argument on a structurally invalid request object.
CheckRequest check_request_from_json(const obs::JsonValue& value);

obs::JsonValue check_reply_to_json(const CheckReply& reply);
CheckReply check_reply_from_json(const obs::JsonValue& value);

/// One protocol line: compact JSON plus the terminating newline.
std::string frame(const obs::JsonValue& value);

}  // namespace csrlmrm::daemon

// Fox-Glynn Poisson weights (Fox & Glynn, CACM 1988) — the standard way
// production model checkers compute the Poisson terms of a uniformization
// sum: a left/right truncation window [L, R] capturing mass >= 1 - epsilon
// and unnormalized weights computed by the *backward/forward* recurrence
// from the mode, scaled so that under/overflow cannot occur, plus their
// exact total for normalization.
//
// Compared to evaluating each pmf through lgamma (numeric/poisson.hpp) this
// computes the whole window in O(R - L) multiplications; the two agree to
// ~1e-13 relative, which the tests pin down.
#pragma once

#include <cstddef>
#include <vector>

namespace csrlmrm::numeric {

/// The Fox-Glynn window and weights for one Poisson mean.
struct FoxGlynnWeights {
  /// Left and right truncation points: sum_{k in [left, right]} pmf(k)
  /// >= 1 - epsilon.
  std::size_t left = 0;
  std::size_t right = 0;
  /// Unnormalized weights, weights[i] ~ pmf(left + i) * scale.
  std::vector<double> weights;
  /// The scale: sum of weights; pmf(left+i) ~= weights[i] / total_weight.
  double total_weight = 0.0;

  /// The normalized Poisson probability of left + i.
  double probability(std::size_t i) const { return weights.at(i) / total_weight; }
};

/// Computes the window and weights for Poisson(mean) with truncation error
/// epsilon in (0,1). mean must be finite and >= 0; a zero mean yields the
/// point mass at 0. Throws std::invalid_argument otherwise.
FoxGlynnWeights fox_glynn(double mean, double epsilon);

}  // namespace csrlmrm::numeric

#include "numeric/signature_model.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace csrlmrm::numeric {

namespace {

/// Sorts descending and drops exact duplicates in place. The engines' class
/// indices are found by binary search over this vector, so strict descending
/// order is load-bearing. (A std::set<double> did this job before; the
/// sort+unique form avoids one red-black-tree node allocation per inserted
/// value — the engine constructor runs once per checker fan-out and showed up
/// in the per-state profile.)
void sort_distinct_descending(std::vector<double>& values) {
  std::sort(values.begin(), values.end(), std::greater<>());
  values.erase(std::unique(values.begin(), values.end()), values.end());
}

std::size_t class_index_descending(const std::vector<double>& descending, double value) {
  // descending is strictly decreasing and contains value.
  const auto it = std::lower_bound(descending.begin(), descending.end(), value,
                                   [](double a, double b) { return a > b; });
  return static_cast<std::size_t>(it - descending.begin());
}

}  // namespace

SignatureModel::SignatureModel(core::Mrm transformed, std::vector<bool> psi_mask,
                               std::vector<bool> dead_mask)
    : model(std::move(transformed)),
      psi(std::move(psi_mask)),
      dead(std::move(dead_mask)),
      uniformized(model) {
  const std::size_t n = model.num_states();
  if (psi.size() != n || dead.size() != n) {
    throw std::invalid_argument("SignatureModel: mask size mismatch");
  }

  // Distinct state rewards r_1 > ... > r_{K+1} and their per-state classes.
  distinct_state_rewards.reserve(n);
  for (core::StateIndex s = 0; s < n; ++s) {
    distinct_state_rewards.push_back(model.state_reward(s));
  }
  sort_distinct_descending(distinct_state_rewards);
  reward_class.resize(n);
  for (core::StateIndex s = 0; s < n; ++s) {
    reward_class[s] = class_index_descending(distinct_state_rewards, model.state_reward(s));
  }

  // Distinct impulse rewards; 0 is always present because uniformization
  // introduces self-loops and iota(s,s) = 0 by Definition 3.1.
  distinct_impulse_rewards.push_back(0.0);
  for (core::StateIndex s = 0; s < n; ++s) {
    for (const auto& e : model.impulse_rewards().row(s)) {
      distinct_impulse_rewards.push_back(e.value);
    }
  }
  sort_distinct_descending(distinct_impulse_rewards);

  // Flatten the uniformized DTMC with per-transition impulse classes.
  adjacency.resize(n);
  for (core::StateIndex s = 0; s < n; ++s) {
    const auto row = uniformized.transition_matrix().row(s);
    adjacency[s].reserve(row.size());
    for (const auto& e : row) {
      const double impulse = (e.col == s) ? 0.0 : model.impulse_reward(s, e.col);
      adjacency[s].push_back({e.col, e.value, std::log(e.value),
                              class_index_descending(distinct_impulse_rewards, impulse)});
    }
  }
}

}  // namespace csrlmrm::numeric

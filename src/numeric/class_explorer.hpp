// Signature-class dynamic-programming engine for uniformization-based until
// checking — the layered alternative to the depth-first path generator of
// path_explorer.hpp.
//
// The DFS engine enumerates uniformized paths one by one and only merges
// their probabilities after harvesting, so its cost grows with the number of
// path prefixes. This engine advances a *frontier* of equivalence classes
//
//   (current state, reward signature (k, j))  ->  probability mass
//
// one uniformization step (= one Poisson epoch) per level. Two path prefixes
// that end in the same state with the same signature are indistinguishable
// for everything that follows — same continuations, same conditional
// probability Pr{ Y(t) <= r | n, k, j } — so their masses are summed the
// moment they collide instead of being explored twice. On models with heavy
// signature collisions (few distinct rewards, many interleavings) the
// frontier stays polynomial where the DFS tree is exponential.
//
// Error accounting matches the DFS engine's eq. (4.4)/(4.6) discipline,
// lifted to merged classes: alongside its mass every class tracks how many
// path prefixes it aggregates, and a class is cut at level n when
// PoissonPmf(n) * mass < w * count — i.e. when the *average* prefix weight
// falls below the truncation probability, the faithful aggregate of the
// per-path rule (4.4). (Pruning on the total mass alone would keep a class
// alive as long as thousands of individually-sub-w prefixes sum past w,
// exploring far more than the DFS does at equal w.) Cut mass contributes
// mass * Pr{ N >= n } to the error bound exactly as in eq. (4.6), so the
// returned probability p brackets the exact value as p <= p_exact <=
// p + error_bound and the two engines agree within the sum of their
// reported bounds.
//
// Multi-start batching: the checker's until fan-out queries the same formula
// from every Phi-state. Instead of one engine run per start, compute_batch
// carries one weight slot per queried start through a single frontier sweep;
// classes reached from several starts are stored once and each conditional
// probability is evaluated once for the whole batch. Slots are fully
// independent (pruning, error, harvest are per-slot), so a batch run is
// bitwise identical to the corresponding single-start runs.
//
// Parallelism: per-level frontier expansion is data-parallel (each class
// writes its successors into a precomputed disjoint slice), and merging
// sorts the successor array before folding adjacent equal keys, so results
// are bitwise identical at every thread count.
//
// Adaptive hybrid mode (PathExplorerOptions::adaptive_hybrid): merging is
// only worth the per-level sort when classes actually collide. The engine
// tracks the fold ratio per level and, after two consecutive large levels
// where folding kept >= 3/4 of the raw rows, escalates in two steps:
//   1. coarsen — replace the per-class impulse counts j by the 40-bit-snapped
//      impulse total sum_i i_i j_i (the conditional probability of eq. 4.9
//      depends on j only through that total via the threshold r'; snapping
//      is the same canonical_threshold representative used for evaluator
//      caching, so distinct j vectors with equal totals merge);
//   2. hand off — finish every remaining class with a depth-first
//      continuation (identical prune/budget/error/harvest semantics, no
//      further merge attempts), run once for the whole batch.
// Both escalations preserve thread-count determinism (the trigger sees
// thread-invariant row counts; the continuation is serial in deterministic
// order), but batch runs are no longer bitwise equal to per-start single
// runs, so the mode defaults to off and is enabled by the checker's
// --until-engine=auto path. Observability: "classdp.coarsenings",
// "classdp.hybrid_handoffs".
#pragma once

#include <cstddef>
#include <vector>

#include "core/mrm.hpp"
#include "numeric/path_explorer.hpp"
#include "numeric/poisson.hpp"
#include "numeric/signature_model.hpp"

namespace csrlmrm::numeric {

/// Layered signature-class DP engine for P2-class until formulas on one
/// transformed MRM. Construct once per formula; query per starting state
/// (or batch of starting states) and bound.
///
/// Result-field semantics differ slightly from the DFS engine because the
/// unit of work is a frontier class, not a path:
///   - probability / error_bound   per queried start (exact analogue);
///   - paths_stored                harvested (class, level) pairs;
///   - paths_truncated             per-slot pruning events;
///   - signature_classes           distinct harvested (k, canonical r')
///                                 groups (the Omega-evaluation granularity);
///   - nodes_expanded              frontier classes processed across levels;
///   - max_depth                   deepest level (epoch count) reached.
/// In a batch, the diagnostic counts are shared across all slots (every
/// returned element carries the same values); probability and error_bound
/// are per-slot.
class SignatureClassUntilEngine {
 public:
  /// Same contract as UniformizationUntilEngine: `transformed` is
  /// M[!Phi v Psi], `psi` marks Sat(Psi), `dead` the states satisfying
  /// neither Phi nor Psi. Masks must match the state count.
  SignatureClassUntilEngine(core::Mrm transformed, std::vector<bool> psi,
                            std::vector<bool> dead);

  SignatureClassUntilEngine(const SignatureClassUntilEngine&) = delete;
  SignatureClassUntilEngine& operator=(const SignatureClassUntilEngine&) = delete;

  /// Evaluates Pr{ Y(t) <= r, X(t) |= Psi } from `start`; equivalent to a
  /// one-element compute_batch. PathExplorerOptions::aggregate_signatures is
  /// ignored — the DP merges by signature inherently.
  UntilUniformizationResult compute(core::StateIndex start, double t, double r,
                                    const PathExplorerOptions& options = {}) const;

  /// Evaluates the formula from every element of `starts` in one frontier
  /// sweep. Duplicate starts are allowed (their slots share classes).
  /// Returns one result per element of `starts`, in order. max_nodes is a
  /// budget for the whole batch (frontier classes processed), so a batch may
  /// exhaust it where isolated runs would not.
  std::vector<UntilUniformizationResult> compute_batch(
      const std::vector<core::StateIndex>& starts, double t, double r,
      const PathExplorerOptions& options = {}) const;

  /// The distinct state rewards r_1 > ... > r_{K+1} of the transformed model.
  const std::vector<double>& distinct_state_rewards() const {
    return sig_.distinct_state_rewards;
  }
  /// The distinct impulse rewards i_1 > ... > i_J (always containing 0).
  const std::vector<double>& distinct_impulse_rewards() const {
    return sig_.distinct_impulse_rewards;
  }
  /// The uniformization rate Lambda.
  double lambda() const { return sig_.uniformized.lambda(); }

 private:
  SignatureModel sig_;
  /// sig_.adjacency with transitions into dead states dropped: the DFS cuts
  /// at dead states exactly (no error contribution), the DP never generates
  /// the class in the first place.
  std::vector<std::vector<SignatureTransition>> live_adjacency_;
};

}  // namespace csrlmrm::numeric

#include "numeric/path_explorer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "numeric/conditional.hpp"
#include "obs/stats.hpp"
#include "core/approx.hpp"

namespace csrlmrm::numeric {

namespace {

/// Hash for a concatenated (k, j) signature vector.
struct SignatureHash {
  std::size_t operator()(const std::vector<std::uint32_t>& v) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (std::uint32_t x : v) {
      h ^= x;
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace

UniformizationUntilEngine::UniformizationUntilEngine(core::Mrm transformed,
                                                     std::vector<bool> psi,
                                                     std::vector<bool> dead)
    : sig_(std::move(transformed), std::move(psi), std::move(dead)) {}

UntilUniformizationResult UniformizationUntilEngine::compute(
    core::StateIndex start, double t, double r, const PathExplorerOptions& options) const {
  obs::ScopedTimer timer("uniformization.until");
  obs::counter_add("uniformization.calls");
  const std::size_t n = sig_.model.num_states();
  if (start >= n) {
    throw std::invalid_argument("UniformizationUntilEngine::compute: start out of range");
  }
  if (!(t >= 0.0) || !std::isfinite(t)) {
    throw std::invalid_argument("UniformizationUntilEngine::compute: t must be finite, >= 0");
  }
  if (!(r >= 0.0) || !std::isfinite(r)) {
    throw std::invalid_argument("UniformizationUntilEngine::compute: r must be finite, >= 0");
  }
  if (!(options.truncation_probability > 0.0) || !(options.truncation_probability < 1.0)) {
    throw std::invalid_argument(
        "UniformizationUntilEngine::compute: truncation probability must be in (0,1)");
  }

  UntilUniformizationResult result;
  if (sig_.dead[start]) return result;
  if (core::exactly_zero(t)) {
    // inf(I) = inf(J) = 0: the formula holds immediately iff start |= Psi.
    result.probability = sig_.psi[start] ? 1.0 : 0.0;
    return result;
  }

  const double mean = sig_.uniformized.lambda() * t;
  const double log_mean = std::log(mean);
  const double log_w = std::log(options.truncation_probability);
  const auto poisson_tail =
      PoissonTailCache::global().table(
          mean, poisson_truncation_point(mean, options.truncation_probability) + 2);

  const std::size_t num_k = sig_.distinct_state_rewards.size();
  const std::size_t num_j = sig_.distinct_impulse_rewards.size();
  RewardStructureContext context(sig_.distinct_state_rewards, sig_.distinct_impulse_rewards);

  // signature = k ++ j, accumulated path probability P(sigma, t).
  std::unordered_map<std::vector<std::uint32_t>, double, SignatureHash> classes;
  std::vector<std::uint32_t> signature(num_k + num_j, 0);

  // log P(sigma, t) = log_poisson(n) + sum of log 1-step probabilities; we
  // carry the two addends separately so the error bound can recover
  // P(sigma) = exp(log_weight) without dividing tiny numbers.
  struct Frame {
    core::StateIndex state;
    std::size_t depth;        // n = number of transitions taken
    double log_poisson;       // log PoissonPmf(depth; mean)
    double log_weight;        // log prod of 1-step probabilities
  };

  std::size_t nodes = 0;
  std::size_t visited = 0;

  // Recursive lambda via explicit Y-combinator style to keep undo logic tight.
  auto explore = [&](auto&& self, const Frame& frame) -> void {
    ++visited;
    if (sig_.dead[frame.state]) return;  // (!Phi && !Psi): unsatisfiable, exact cut
    const double log_p = frame.log_poisson + frame.log_weight;
    const bool too_deep =
        options.depth_truncation != 0 && frame.depth > options.depth_truncation;
    if (log_p < log_w || too_deep) {
      // Truncated (below w, eq. 4.4, or beyond the depth bound N, eq. 4.3):
      // account the whole discarded sub-tree per eq. (4.6). The last state
      // satisfies Phi v Psi here (dead states returned above).
      ++result.paths_truncated;
      result.error_bound += std::exp(frame.log_weight) * poisson_tail->tail(frame.depth);
      return;
    }
    if (++nodes > options.max_nodes) {
      throw NodeBudgetError(
          "UniformizationUntilEngine: node budget exhausted; raise truncation probability w "
          "or use the discretization engine (Lambda*t too large for path enumeration)");
    }
    result.max_depth = std::max(result.max_depth, frame.depth);

    if (sig_.psi[frame.state]) {
      ++result.paths_stored;
      const double p = std::exp(log_p);
      if (options.aggregate_signatures) {
        classes[signature] += p;
      } else {
        const SpacingCounts k(signature.begin(), signature.begin() + num_k);
        const SpacingCounts j(signature.begin() + num_k, signature.end());
        result.probability += p * context.conditional_probability(k, j, t, r);
      }
    }

    const double log_next_poisson =
        frame.log_poisson + log_mean - std::log(static_cast<double>(frame.depth + 1));
    for (const SignatureTransition& edge : sig_.adjacency[frame.state]) {
      ++signature[sig_.reward_class[edge.target]];
      ++signature[num_k + edge.impulse_class];
      self(self, Frame{edge.target, frame.depth + 1, log_next_poisson,
                       frame.log_weight + edge.log_probability});
      --signature[sig_.reward_class[edge.target]];
      --signature[num_k + edge.impulse_class];
    }
  };

  // Initial path: n = 0, k = 1_[rho(start)], j = 0, p = e^{-mean}.
  ++signature[sig_.reward_class[start]];
  explore(explore, Frame{start, 0, -mean, 0.0});

  if (options.aggregate_signatures) {
    result.signature_classes = classes.size();
    // Drain the hash map into lexicographic signature order before folding:
    // accumulating in unordered_map iteration order made the rounding of
    // result.probability depend on the hash seed / load factor, so two runs
    // (or two stdlib versions) could disagree in the last ulps — enough to
    // flip a threshold verdict inside the error band.
    // lint:allow(unordered-iteration) — this drain is order-insensitive: the
    // fold below runs over `ordered` only after the sort.
    std::vector<std::pair<std::vector<std::uint32_t>, double>> ordered(classes.begin(),
                                                                       classes.end());  // lint:allow(unordered-iteration)
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [sig, p] : ordered) {
      const SpacingCounts k(sig.begin(), sig.begin() + num_k);
      const SpacingCounts j(sig.begin() + num_k, sig.end());
      result.probability += p * context.conditional_probability(k, j, t, r);
    }
  } else {
    result.signature_classes = result.paths_stored;
  }
  result.nodes_expanded = nodes;

  obs::counter_add("uniformization.paths_visited", visited);
  obs::counter_add("uniformization.nodes_expanded", result.nodes_expanded);
  obs::counter_add("uniformization.paths_stored", result.paths_stored);
  obs::counter_add("uniformization.paths_truncated", result.paths_truncated);
  obs::counter_add("uniformization.signature_classes", result.signature_classes);
  obs::gauge_max("uniformization.max_depth", static_cast<double>(result.max_depth));
  return result;
}

}  // namespace csrlmrm::numeric

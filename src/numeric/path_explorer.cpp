#include "numeric/path_explorer.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <unordered_map>

#include "numeric/conditional.hpp"
#include "numeric/poisson.hpp"
#include "obs/stats.hpp"
#include "core/approx.hpp"

namespace csrlmrm::numeric {

namespace {

/// Hash for a concatenated (k, j) signature vector.
struct SignatureHash {
  std::size_t operator()(const std::vector<std::uint32_t>& v) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (std::uint32_t x : v) {
      h ^= x;
      h *= 1099511628211ull;
    }
    return h;
  }
};

std::vector<double> sorted_distinct_descending(const std::set<double>& values) {
  std::vector<double> out(values.begin(), values.end());
  std::reverse(out.begin(), out.end());
  return out;
}

std::size_t class_index_descending(const std::vector<double>& descending, double value) {
  // descending is strictly decreasing and contains value.
  const auto it = std::lower_bound(descending.begin(), descending.end(), value,
                                   [](double a, double b) { return a > b; });
  return static_cast<std::size_t>(it - descending.begin());
}

}  // namespace

UniformizationUntilEngine::UniformizationUntilEngine(core::Mrm transformed,
                                                     std::vector<bool> psi,
                                                     std::vector<bool> dead)
    : model_(std::move(transformed)),
      psi_(std::move(psi)),
      dead_(std::move(dead)),
      uniformized_(model_) {
  const std::size_t n = model_.num_states();
  if (psi_.size() != n || dead_.size() != n) {
    throw std::invalid_argument("UniformizationUntilEngine: mask size mismatch");
  }

  // Distinct state rewards r_1 > ... > r_{K+1} and their per-state classes.
  std::set<double> reward_values;
  for (core::StateIndex s = 0; s < n; ++s) reward_values.insert(model_.state_reward(s));
  distinct_state_rewards_ = sorted_distinct_descending(reward_values);
  reward_class_.resize(n);
  for (core::StateIndex s = 0; s < n; ++s) {
    reward_class_[s] = class_index_descending(distinct_state_rewards_, model_.state_reward(s));
  }

  // Distinct impulse rewards; 0 is always present because uniformization
  // introduces self-loops and iota(s,s) = 0 by Definition 3.1.
  std::set<double> impulse_values{0.0};
  for (core::StateIndex s = 0; s < n; ++s) {
    for (const auto& e : model_.impulse_rewards().row(s)) impulse_values.insert(e.value);
  }
  distinct_impulse_rewards_ = sorted_distinct_descending(impulse_values);

  // Flatten the uniformized DTMC with per-transition impulse classes.
  adjacency_.resize(n);
  for (core::StateIndex s = 0; s < n; ++s) {
    for (const auto& e : uniformized_.transition_matrix().row(s)) {
      const double impulse = (e.col == s) ? 0.0 : model_.impulse_reward(s, e.col);
      adjacency_[s].push_back({e.col, std::log(e.value),
                               class_index_descending(distinct_impulse_rewards_, impulse)});
    }
  }
}

UntilUniformizationResult UniformizationUntilEngine::compute(
    core::StateIndex start, double t, double r, const PathExplorerOptions& options) const {
  obs::ScopedTimer timer("uniformization.until");
  obs::counter_add("uniformization.calls");
  const std::size_t n = model_.num_states();
  if (start >= n) {
    throw std::invalid_argument("UniformizationUntilEngine::compute: start out of range");
  }
  if (!(t >= 0.0) || !std::isfinite(t)) {
    throw std::invalid_argument("UniformizationUntilEngine::compute: t must be finite, >= 0");
  }
  if (!(r >= 0.0) || !std::isfinite(r)) {
    throw std::invalid_argument("UniformizationUntilEngine::compute: r must be finite, >= 0");
  }
  if (!(options.truncation_probability > 0.0) || !(options.truncation_probability < 1.0)) {
    throw std::invalid_argument(
        "UniformizationUntilEngine::compute: truncation probability must be in (0,1)");
  }

  UntilUniformizationResult result;
  if (dead_[start]) return result;
  if (core::exactly_zero(t)) {
    // inf(I) = inf(J) = 0: the formula holds immediately iff start |= Psi.
    result.probability = psi_[start] ? 1.0 : 0.0;
    return result;
  }

  const double mean = uniformized_.lambda() * t;
  const double log_mean = std::log(mean);
  const double log_w = std::log(options.truncation_probability);
  PoissonCdfTable poisson_tail(mean);

  const std::size_t num_k = distinct_state_rewards_.size();
  const std::size_t num_j = distinct_impulse_rewards_.size();
  RewardStructureContext context(distinct_state_rewards_, distinct_impulse_rewards_);

  // signature = k ++ j, accumulated path probability P(sigma, t).
  std::unordered_map<std::vector<std::uint32_t>, double, SignatureHash> classes;
  std::vector<std::uint32_t> signature(num_k + num_j, 0);

  // log P(sigma, t) = log_poisson(n) + sum of log 1-step probabilities; we
  // carry the two addends separately so the error bound can recover
  // P(sigma) = exp(log_weight) without dividing tiny numbers.
  struct Frame {
    core::StateIndex state;
    std::size_t depth;        // n = number of transitions taken
    double log_poisson;       // log PoissonPmf(depth; mean)
    double log_weight;        // log prod of 1-step probabilities
  };

  std::size_t nodes = 0;
  std::size_t visited = 0;

  // Recursive lambda via explicit Y-combinator style to keep undo logic tight.
  auto explore = [&](auto&& self, const Frame& frame) -> void {
    ++visited;
    if (dead_[frame.state]) return;  // (!Phi && !Psi): unsatisfiable, exact cut
    const double log_p = frame.log_poisson + frame.log_weight;
    const bool too_deep =
        options.depth_truncation != 0 && frame.depth > options.depth_truncation;
    if (log_p < log_w || too_deep) {
      // Truncated (below w, eq. 4.4, or beyond the depth bound N, eq. 4.3):
      // account the whole discarded sub-tree per eq. (4.6). The last state
      // satisfies Phi v Psi here (dead states returned above).
      ++result.paths_truncated;
      result.error_bound += std::exp(frame.log_weight) * poisson_tail.tail(frame.depth);
      return;
    }
    if (++nodes > options.max_nodes) {
      throw NodeBudgetError(
          "UniformizationUntilEngine: node budget exhausted; raise truncation probability w "
          "or use the discretization engine (Lambda*t too large for path enumeration)");
    }
    result.max_depth = std::max(result.max_depth, frame.depth);

    if (psi_[frame.state]) {
      ++result.paths_stored;
      const double p = std::exp(log_p);
      if (options.aggregate_signatures) {
        classes[signature] += p;
      } else {
        const SpacingCounts k(signature.begin(), signature.begin() + num_k);
        const SpacingCounts j(signature.begin() + num_k, signature.end());
        result.probability += p * context.conditional_probability(k, j, t, r);
      }
    }

    const double log_next_poisson =
        frame.log_poisson + log_mean - std::log(static_cast<double>(frame.depth + 1));
    for (const Transition& edge : adjacency_[frame.state]) {
      ++signature[reward_class_[edge.target]];
      ++signature[num_k + edge.impulse_class];
      self(self, Frame{edge.target, frame.depth + 1, log_next_poisson,
                       frame.log_weight + edge.log_probability});
      --signature[reward_class_[edge.target]];
      --signature[num_k + edge.impulse_class];
    }
  };

  // Initial path: n = 0, k = 1_[rho(start)], j = 0, p = e^{-mean}.
  ++signature[reward_class_[start]];
  explore(explore, Frame{start, 0, -mean, 0.0});

  if (options.aggregate_signatures) {
    result.signature_classes = classes.size();
    // Drain the hash map into lexicographic signature order before folding:
    // accumulating in unordered_map iteration order made the rounding of
    // result.probability depend on the hash seed / load factor, so two runs
    // (or two stdlib versions) could disagree in the last ulps — enough to
    // flip a threshold verdict inside the error band.
    // lint:allow(unordered-iteration) — this drain is order-insensitive: the
    // fold below runs over `ordered` only after the sort.
    std::vector<std::pair<std::vector<std::uint32_t>, double>> ordered(classes.begin(),
                                                                       classes.end());  // lint:allow(unordered-iteration)
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [sig, p] : ordered) {
      const SpacingCounts k(sig.begin(), sig.begin() + num_k);
      const SpacingCounts j(sig.begin() + num_k, sig.end());
      result.probability += p * context.conditional_probability(k, j, t, r);
    }
  } else {
    result.signature_classes = result.paths_stored;
  }
  result.nodes_expanded = nodes;

  obs::counter_add("uniformization.paths_visited", visited);
  obs::counter_add("uniformization.nodes_expanded", result.nodes_expanded);
  obs::counter_add("uniformization.paths_stored", result.paths_stored);
  obs::counter_add("uniformization.paths_truncated", result.paths_truncated);
  obs::counter_add("uniformization.signature_classes", result.signature_classes);
  obs::gauge_max("uniformization.max_depth", static_cast<double>(result.max_depth));
  return result;
}

}  // namespace csrlmrm::numeric

#include "numeric/omega.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "core/simd.hpp"
#include "obs/stats.hpp"

namespace csrlmrm::numeric {

OmegaEvaluator::OmegaEvaluator(std::vector<double> coefficients, double r)
    : c_(std::move(coefficients)), r_(r) {
  if (c_.empty()) throw std::invalid_argument("OmegaEvaluator: empty coefficient vector");
  for (double c : c_) {
    if (!std::isfinite(c)) throw std::invalid_argument("OmegaEvaluator: non-finite coefficient");
  }
  if (!std::isfinite(r_)) throw std::invalid_argument("OmegaEvaluator: non-finite threshold");
  std::vector<double> sorted = c_;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::invalid_argument("OmegaEvaluator: coefficients must be distinct");
  }
  greater_.resize(c_.size());
  for (std::size_t l = 0; l < c_.size(); ++l) greater_[l] = c_[l] > r_;
}

double OmegaEvaluator::evaluate(const SpacingCounts& counts) const {
  if (counts.size() != c_.size()) {
    throw std::invalid_argument("OmegaEvaluator::evaluate: counts size mismatch");
  }
  // Side totals. tg/tl are the lattice dimensions: state (g, l) of the
  // recursion has taken g of the tg greater-side decrements and l of the tl
  // lesser-side ones.
  std::uint64_t tg = 0;
  std::uint64_t tl = 0;
  for (std::size_t l = 0; l < c_.size(); ++l) {
    if (counts[l] == 0) continue;
    if (greater_[l]) {
      tg += counts[l];
    } else {
      tl += counts[l];
    }
  }
  if (tg == 0 && tl == 0) return r_ >= 0.0 ? 1.0 : 0.0;  // empty sum is identically 0
  if (tg == 0) return 1.0;                               // ||k_G|| = 0 base case
  if (tl == 0) return 0.0;                               // ||k_L|| = 0 base case

  // Pivot staircases. The recursion always decrements the FIRST nonzero
  // class on each side, so after g greater-side decrements the pivot c_i is
  // the class owning the (g+1)-th greater unit in class-index order:
  // cig[g]. The lesser staircase is stored reversed (cjl_rev[i] =
  // cjl[tl-1-i]) so that along an anti-diagonal d the per-cell pivot
  // cjl[d - g] reads as the contiguous slice cjl_rev[(tl-1-d) + g].
  std::vector<double> cig(static_cast<std::size_t>(tg));
  std::vector<double> cjl_rev(static_cast<std::size_t>(tl));
  {
    std::size_t gpos = 0;
    std::size_t lpos = static_cast<std::size_t>(tl);
    for (std::size_t l = 0; l < c_.size(); ++l) {
      for (std::uint32_t u = 0; u < counts[l]; ++u) {
        if (greater_[l]) {
          cig[gpos++] = c_[l];
        } else {
          cjl_rev[--lpos] = c_[l];
        }
      }
    }
  }

  // Anti-diagonal wavefront, in place: after processing diagonal d, w[g]
  // holds the cell value V(g, d - g). Boundary cells: V(tg, l) = 1 for every
  // l (the greater side emptied first — w[tg] is written once and never
  // touched again) and V(g, tl) = 0 for g < tg. Interior cells use the
  // recursion with without_lesser = V(g, l+1) = old w[g] and
  // without_greater = V(g+1, l) = w[g+1]; sweeping g upward reads w[g+1]
  // before it is overwritten.
  const std::size_t stg = static_cast<std::size_t>(tg);
  const std::size_t stl = static_cast<std::size_t>(tl);
  std::vector<double> w(stg + 1, 0.0);
  w[stg] = 1.0;
  std::uint64_t cells = 0;
  const core::simd::DoubleVec vr = core::simd::DoubleVec::broadcast(r_);
  for (std::size_t d = stg + stl; d-- > 0;) {
    const std::size_t gmin = d > stl ? d - stl : 0;
    std::size_t lo = gmin;
    if (d >= stl) {  // cell (d - tl, tl) sits on the exhausted-lesser edge
      if (gmin < stg) w[gmin] = 0.0;
      lo = gmin + 1;
    }
    const std::size_t hi = std::min(d, stg > 0 ? stg - 1 : 0) + 1;  // exclusive; g == tg stays 1
    if (lo >= hi) continue;
    cells += hi - lo;
    // cjl index for cell g on diagonal d is (tl-1-d) + g; signed because the
    // offset is negative for deep diagonals even though every accessed index
    // is in range.
    const std::ptrdiff_t cj_off =
        static_cast<std::ptrdiff_t>(stl) - 1 - static_cast<std::ptrdiff_t>(d);
    std::size_t g = lo;
    for (; g + core::simd::DoubleVec::kLanes <= hi; g += core::simd::DoubleVec::kLanes) {
      using core::simd::DoubleVec;
      const DoubleVec ci = DoubleVec::load(cig.data() + g);
      const DoubleVec cj =
          DoubleVec::load(cjl_rev.data() + (cj_off + static_cast<std::ptrdiff_t>(g)));
      const DoubleVec denom = ci - cj;
      const DoubleVec value = (ci - vr) / denom * DoubleVec::load(w.data() + g) +
                              (vr - cj) / denom * DoubleVec::load(w.data() + g + 1);
      value.store(w.data() + g);
    }
    for (; g < hi; ++g) {
      const double ci = cig[g];
      const double cj = cjl_rev[static_cast<std::size_t>(cj_off + static_cast<std::ptrdiff_t>(g))];
      const double denom = ci - cj;  // > 0 since ci > r >= cj
      w[g] = ((ci - r_) / denom) * w[g] + ((r_ - cj) / denom) * w[g + 1];
    }
  }
  obs::counter_add("omega.dp_cells", cells);
  return w[0];
}

double omega(double r, const std::vector<double>& coefficients, const SpacingCounts& counts) {
  OmegaEvaluator evaluator(coefficients, r);
  return evaluator.evaluate(counts);
}

}  // namespace csrlmrm::numeric

#include "numeric/omega.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace csrlmrm::numeric {

std::size_t OmegaEvaluator::CountsHash::operator()(const SpacingCounts& k) const noexcept {
  // FNV-1a over the raw counts; count vectors are short (one entry per
  // distinct reward), so a simple byte hash is plenty.
  std::size_t h = 1469598103934665603ull;
  for (std::uint32_t v : k) {
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (v >> shift) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

OmegaEvaluator::OmegaEvaluator(std::vector<double> coefficients, double r)
    : c_(std::move(coefficients)), r_(r) {
  if (c_.empty()) throw std::invalid_argument("OmegaEvaluator: empty coefficient vector");
  for (double c : c_) {
    if (!std::isfinite(c)) throw std::invalid_argument("OmegaEvaluator: non-finite coefficient");
  }
  if (!std::isfinite(r_)) throw std::invalid_argument("OmegaEvaluator: non-finite threshold");
  std::vector<double> sorted = c_;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::invalid_argument("OmegaEvaluator: coefficients must be distinct");
  }
  greater_.resize(c_.size());
  for (std::size_t l = 0; l < c_.size(); ++l) greater_[l] = c_[l] > r_;
}

double OmegaEvaluator::evaluate(const SpacingCounts& counts) {
  if (counts.size() != c_.size()) {
    throw std::invalid_argument("OmegaEvaluator::evaluate: counts size mismatch");
  }
  SpacingCounts mutable_counts = counts;
  const bool all_zero =
      std::all_of(mutable_counts.begin(), mutable_counts.end(), [](auto v) { return v == 0; });
  if (all_zero) return r_ >= 0.0 ? 1.0 : 0.0;  // empty sum is identically 0
  return evaluate_recursive(mutable_counts);
}

double OmegaEvaluator::evaluate_recursive(SpacingCounts& counts) {
  std::size_t total_greater = 0;
  std::size_t total_lesser = 0;
  std::size_t pick_greater = c_.size();
  std::size_t pick_lesser = c_.size();
  for (std::size_t l = 0; l < c_.size(); ++l) {
    if (counts[l] == 0) continue;
    if (greater_[l]) {
      total_greater += counts[l];
      if (pick_greater == c_.size()) pick_greater = l;
    } else {
      total_lesser += counts[l];
      if (pick_lesser == c_.size()) pick_lesser = l;
    }
  }
  if (total_greater == 0) return 1.0;
  if (total_lesser == 0) return 0.0;

  if (const auto it = memo_.find(counts); it != memo_.end()) return it->second;

  const double ci = c_[pick_greater];
  const double cj = c_[pick_lesser];
  const double denom = ci - cj;  // > 0 since ci > r >= cj

  --counts[pick_lesser];
  const double without_lesser = evaluate_recursive(counts);
  ++counts[pick_lesser];

  --counts[pick_greater];
  const double without_greater = evaluate_recursive(counts);
  ++counts[pick_greater];

  const double value =
      ((ci - r_) / denom) * without_lesser + ((r_ - cj) / denom) * without_greater;
  memo_.emplace(counts, value);
  return value;
}

double omega(double r, const std::vector<double>& coefficients, const SpacingCounts& counts) {
  OmegaEvaluator evaluator(coefficients, r);
  return evaluator.evaluate(counts);
}

}  // namespace csrlmrm::numeric

// Discretization engine (Algorithm 4.6): the Tijms-Veldman scheme [Tij02]
// extended with impulse rewards.
//
// Both time and accumulated reward are discretized with the same step d:
// time advances in steps of d; the reward axis is a grid of levels worth d
// reward units each, so one step of residence in state s advances the reward
// level by rho(s) (hence state rewards must be integers — rational rewards
// are scaled, together with the bound r, by the smallest integer factor that
// makes them integral), and a transition s' -> s advances it additionally by
// iota(s',s)/d levels (which must be integral; choose d to divide the
// impulse rewards).
//
//   F^{j+1}(s,k) = F^j(s, k - rho(s)) (1 - E(s) d)
//                + sum_{s'} F^j(s', k - rho(s') - iota(s',s)/d) R(s',s) d
//
// As with the uniformization engine, the input model must already be the
// absorbing-transformed M[!Phi v Psi], after which
// P(s, Phi U_[0,r]^[0,t] Psi) = sum_{s'|=Psi} sum_k F^{t/d}(s',k) d.
#pragma once

#include <cstddef>
#include <vector>

#include "core/labels.hpp"
#include "core/mrm.hpp"

namespace csrlmrm::numeric {

/// Parameters of the discretization run.
struct DiscretizationOptions {
  /// The step d (time units). Must satisfy d * max_s E(s) < 1 so the
  /// "no transition" factor stays a probability.
  double step = 1.0 / 64.0;
  /// Largest integer factor tried when scaling rational state rewards to
  /// integers.
  unsigned max_reward_scale = 1000;
  /// Worker threads for the per-state level sweep; 0 = the process default
  /// (CSRLMRM_THREADS or hardware concurrency). Each state's row of the
  /// level grid is written by exactly one task in the same order as the
  /// serial sweep, so the result is bitwise-identical at every thread count.
  unsigned threads = 0;
  /// Cap on the level grid size n * levels (two such buffers of doubles are
  /// allocated). A large reward bound r or a tiny step d would otherwise
  /// silently attempt a multi-gigabyte allocation and die with bad_alloc;
  /// instead the engine raises std::invalid_argument with the offending
  /// sizes and the remedies (coarser d, smaller r, or the uniformization
  /// engine). The default (64M cells = 512 MiB per buffer) is far above any
  /// practical configuration.
  std::size_t max_grid_cells = 64ull * 1024 * 1024;
};

/// Result of a discretization evaluation.
struct UntilDiscretizationResult {
  double probability = 0.0;
  /// Derived half-width of the O(d) error band (section 4.5: the scheme
  /// converges linearly in the step): per time step the scheme drops the
  /// multi-jump events, whose probability is at most (E_max d)^2 / 2, plus
  /// one step's worth of single-jump timing/reward quantization at the
  /// boundary, giving t E_max^2 d / 2 + E_max d overall (clamped to 1).
  double error_bound = 0.0;
  /// T = t / d time steps performed.
  std::size_t time_steps = 0;
  /// R = (scaled r) / d reward levels maintained per state.
  std::size_t reward_levels = 0;
  /// Integer factor applied to the reward structure (1 when rewards were
  /// already integral).
  unsigned reward_scale = 1;
};

/// Evaluates Pr{ Y(t) <= r, X(t) |= Psi } on the absorbing-transformed model
/// by discretization. Throws std::invalid_argument for an unusable step
/// (d * max E >= 1, non-integral impulse levels, t not a multiple of d) and
/// std::domain_error when no reward scale <= max_reward_scale makes the state
/// rewards integral.
UntilDiscretizationResult until_probability_discretization(const core::Mrm& transformed,
                                                           const std::vector<bool>& psi,
                                                           core::StateIndex start, double t,
                                                           double r,
                                                           const DiscretizationOptions& options);

/// Smallest integer factor f <= max_scale such that f * value is integral
/// (within 1e-9 relative tolerance) for every value; throws std::domain_error
/// when none exists. Exposed for tests.
unsigned find_integer_scale(const std::vector<double>& values, unsigned max_scale);

}  // namespace csrlmrm::numeric

// Poisson probabilities for uniformization.
//
// The thesis computes Poisson weights with the simple recursion
// P_0 = e^{-Lambda t}, P_i = (Lambda t / i) P_{i-1} (section 4.6.2). That
// recursion underflows for Lambda*t beyond ~700, so all entry points here
// evaluate each mass in the log domain (n ln m - m - lgamma(n+1)), which is
// stable for any mean, and tests pin the two forms against each other where
// both are representable.
#pragma once

#include <cstddef>
#include <vector>

namespace csrlmrm::numeric {

/// Pr{N = n} for N ~ Poisson(mean). mean must be >= 0 and finite (throws
/// std::invalid_argument otherwise); mean == 0 gives the point mass at 0.
double poisson_pmf(std::size_t n, double mean);

/// Pr{N <= n}.
double poisson_cdf(std::size_t n, double mean);

/// The masses Pr{N = 0} .. Pr{N = n_max} as a vector of length n_max + 1.
std::vector<double> poisson_pmf_sequence(std::size_t n_max, double mean);

/// Smallest N such that Pr{N > N} <= epsilon, i.e. the right truncation
/// point for a uniformization sum with error tolerance epsilon in (0,1).
std::size_t poisson_truncation_point(double mean, double epsilon);

/// Incrementally extensible Poisson CDF table for one fixed mean; the path
/// explorer uses it to evaluate tail probabilities 1 - Pr{N <= n-1} for the
/// truncated-path error bound (eq. 4.6) without recomputing prefixes.
class PoissonCdfTable {
 public:
  explicit PoissonCdfTable(double mean);

  double mean() const { return mean_; }

  /// Pr{N <= n}; extends the internal table on demand.
  double cdf(std::size_t n);

  /// Pr{N >= n} = 1 - Pr{N <= n-1}; tail(0) = 1.
  double tail(std::size_t n);

 private:
  double mean_;
  std::vector<double> cdf_;  // cdf_[i] = Pr{N <= i}
};

}  // namespace csrlmrm::numeric

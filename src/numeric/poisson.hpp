// Poisson probabilities for uniformization.
//
// The thesis computes Poisson weights with the simple recursion
// P_0 = e^{-Lambda t}, P_i = (Lambda t / i) P_{i-1} (section 4.6.2). That
// recursion underflows for Lambda*t beyond ~700, so all entry points here
// evaluate each mass in the log domain (n ln m - m - lgamma(n+1)), which is
// stable for any mean, and tests pin the two forms against each other where
// both are representable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace csrlmrm::numeric {

/// Pr{N = n} for N ~ Poisson(mean). mean must be >= 0 and finite (throws
/// std::invalid_argument otherwise); mean == 0 gives the point mass at 0.
double poisson_pmf(std::size_t n, double mean);

/// Pr{N <= n}.
double poisson_cdf(std::size_t n, double mean);

/// The masses Pr{N = 0} .. Pr{N = n_max} as a vector of length n_max + 1.
std::vector<double> poisson_pmf_sequence(std::size_t n_max, double mean);

/// Smallest N such that Pr{N > N} <= epsilon, i.e. the right truncation
/// point for a uniformization sum with error tolerance epsilon in (0,1).
std::size_t poisson_truncation_point(double mean, double epsilon);

/// Incrementally extensible Poisson CDF table for one fixed mean; the path
/// explorer uses it to evaluate tail probabilities 1 - Pr{N <= n-1} for the
/// truncated-path error bound (eq. 4.6) without recomputing prefixes.
class PoissonCdfTable {
 public:
  explicit PoissonCdfTable(double mean);

  double mean() const { return mean_; }

  /// Pr{N <= n}; extends the internal table on demand.
  double cdf(std::size_t n);

  /// Pr{N >= n} = 1 - Pr{N <= n-1}; tail(0) = 1.
  double tail(std::size_t n);

 private:
  double mean_;
  std::vector<double> cdf_;  // cdf_[i] = Pr{N <= i}
};

/// Immutable Poisson CDF/tail table for one fixed mean, safe to share across
/// threads without synchronization. Entries 0..n_max are precomputed with
/// exactly the accumulation PoissonCdfTable uses (so the two forms agree
/// bitwise on the covered range); queries beyond the table fall back to
/// direct summation without mutating any state.
class SharedPoissonTail {
 public:
  SharedPoissonTail(double mean, std::size_t n_max);

  double mean() const { return mean_; }
  std::size_t table_size() const { return cdf_.size(); }

  /// Pr{N <= n}.
  double cdf(std::size_t n) const;
  /// Pr{N >= n} = 1 - Pr{N <= n-1}; tail(0) = 1.
  double tail(std::size_t n) const;

 private:
  double mean_;
  std::vector<double> cdf_;  // cdf_[i] = Pr{N <= i}
};

/// Thread-safe per-mean cache of SharedPoissonTail tables. The checker's
/// per-state Until fan-out issues one engine query per start state with the
/// identical mean Lambda*t; before this cache each query rebuilt the same
/// CDF table from scratch. The first query for a mean builds the table under
/// an internal mutex, every later one shares the immutable snapshot. A
/// request with a larger n_max than the cached table replaces it with an
/// extended build (already-handed-out snapshots stay valid).
///
/// Tables are always built out to the distribution's hard truncation cap
/// (the same bound poisson_truncation_point uses), so tail() queries from
/// the explorers stay inside the precomputed range instead of hitting the
/// per-call summation fallback — profiling showed that fallback dominating
/// deep DFS runs. The cache itself is capacity-bounded LRU (kCapacity
/// distinct means) so a long checker fan-out over many time bounds cannot
/// grow it without limit; occupancy is reported via the
/// "poisson.tail_cache_occupancy" gauge and evictions via the
/// "poisson.tail_cache_evictions" counter.
class PoissonTailCache {
 public:
  /// Retained tables for distinct means; evicting the least-recently-used
  /// entry only drops the cache's reference, handed-out snapshots survive.
  static constexpr std::size_t kCapacity = 8;

  /// The process-wide cache both uniformization explorers draw from, so a
  /// long-lived service re-checking the same (model, t) keeps its Poisson
  /// tables warm across requests. Tables are pure functions of the mean
  /// (always built to the hard truncation cap), so sharing across solves is
  /// bitwise-identical to per-solve rebuilds.
  static PoissonTailCache& global();

  /// The table for `mean` covering at least [0, n_max].
  std::shared_ptr<const SharedPoissonTail> table(double mean, std::size_t n_max) const;

 private:
  struct Slot {
    std::shared_ptr<const SharedPoissonTail> table;
    std::uint64_t last_use = 0;
  };

  // Linear scan over exact means: one engine sees one or two distinct means
  // over its lifetime, so a map is not worth its allocations.
  mutable std::mutex mutex_;
  mutable std::uint64_t tick_ = 0;     // lint:guarded_by(mutex_)
  mutable std::vector<Slot> tables_;  // lint:guarded_by(mutex_)
};

}  // namespace csrlmrm::numeric

// Shared preprocessing of the two uniformization Until engines (the DFS
// path generator of path_explorer.hpp and the signature-class DP of
// class_explorer.hpp): distinct-reward bookkeeping and the flattened
// uniformized DTMC with per-transition impulse classes.
//
// Both engines classify uniformized paths by their reward signature (k, j) —
// k counts Poisson-epoch residences per distinct-state-reward class, j counts
// transitions per distinct-impulse class — so both need the same mapping from
// states/transitions to class indices. Factoring it here keeps the mapping
// in one place and makes the engines cross-checkable by construction.
#pragma once

#include <cstddef>
#include <vector>

#include "core/mrm.hpp"
#include "core/uniformized.hpp"

namespace csrlmrm::numeric {

/// One flattened uniformized transition with its impulse class.
struct SignatureTransition {
  core::StateIndex target = 0;
  /// 1-step probability of the uniformized DTMC (including self loops).
  double probability = 0.0;
  /// log(probability), carried separately so the DFS engine can accumulate
  /// path weights in the log domain without re-taking logs per node.
  double log_probability = 0.0;
  /// Index into distinct_impulse_rewards (self loops carry impulse 0).
  std::size_t impulse_class = 0;
};

/// The preprocessed model both Until engines run on. Owns its copy of the
/// transformed MRM (M[!Phi v Psi] or M[!Phi && !Psi]); `psi` marks Sat(Psi),
/// `dead` the states satisfying neither Phi nor Psi. Not movable: the
/// uniformized view holds a pointer into `model`.
struct SignatureModel {
  /// Masks must match the state count (std::invalid_argument otherwise).
  SignatureModel(core::Mrm transformed, std::vector<bool> psi_mask,
                 std::vector<bool> dead_mask);

  SignatureModel(const SignatureModel&) = delete;
  SignatureModel& operator=(const SignatureModel&) = delete;

  core::Mrm model;
  std::vector<bool> psi;
  std::vector<bool> dead;
  core::UniformizedMrm uniformized;
  std::vector<double> distinct_state_rewards;    // r_1 > ... > r_{K+1}
  std::vector<double> distinct_impulse_rewards;  // i_1 > ... > i_J, contains 0
  std::vector<std::size_t> reward_class;         // state -> index into distinct rewards
  std::vector<std::vector<SignatureTransition>> adjacency;
};

}  // namespace csrlmrm::numeric

// Depth-first path generation (Algorithm 4.7) and the uniformization-based
// evaluation of time- and reward-bounded until formulas (eq. 4.5) with the
// a-priori error bound for truncated paths (eq. 4.6).
//
// The engine works on an MRM that has *already* been transformed by
// make_absorbing(Sat(!Phi) u Sat(Psi)) (Theorems 4.1/4.3), so
//
//   P(s, Phi U_[0,r]^[0,t] Psi) = Pr{ Y(t) <= r, X(t) |= Psi }
//     ~  sum over truncated uniformized paths ending in a Psi-state of
//        P(sigma, t) * Pr{ Y(t) <= r | n, k, j }.
//
// Paths are classified by their reward signature: k counts Poisson-epoch
// residences per distinct-state-reward class, j counts transitions per
// distinct-impulse class. Probabilities of same-signature paths are summed
// before the conditional probability (an Omega evaluation) is applied — the
// recomputation-avoidance the thesis describes at the end of 4.4.2.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/labels.hpp"
#include "core/mrm.hpp"
#include "numeric/poisson.hpp"
#include "numeric/signature_model.hpp"

namespace csrlmrm::numeric {

/// Thrown when the DFS exceeds PathExplorerOptions::max_nodes. Typed so the
/// checker can distinguish "model too large for path enumeration" (and apply
/// its degradation policy, see checker::BudgetPolicy) from genuine input
/// errors.
class NodeBudgetError : public std::runtime_error {
 public:
  explicit NodeBudgetError(const std::string& message) : std::runtime_error(message) {}
};

/// Tuning knobs for the depth-first exploration.
struct PathExplorerOptions {
  /// Truncation probability w: branches whose P(sigma, t) drops below w are
  /// cut and accounted in the error bound. Must be in (0, 1).
  double truncation_probability = 1e-8;
  /// Depth truncation N (eq. 4.3): additionally cut every path after N
  /// transitions, accounting the discarded mass in the error bound. 0
  /// disables it (pure path truncation, eq. 4.4/4.5 — the thesis's
  /// preferred mode). Both truncations may be combined.
  std::size_t depth_truncation = 0;
  /// Sum probabilities per (k, j) signature before calling Omega (the
  /// paper's optimization). Off = one Omega evaluation per stored path;
  /// results are identical, only cost differs (ablation knob).
  bool aggregate_signatures = true;
  /// Safety valve: abort (std::runtime_error) after this many DFS node
  /// expansions (or, for the signature-class DP engine, frontier classes
  /// processed) — uniformization is only practical for small Lambda*t
  /// (thesis, ch. 6) and this keeps runaway instances diagnosable.
  std::size_t max_nodes = 500'000'000;
  /// Worker threads for the signature-class DP engine's per-level frontier
  /// expansion (see class_explorer.hpp); the DFS engine is inherently serial
  /// and ignores this. 0 = the process default (CSRLMRM_THREADS or hardware
  /// concurrency).
  unsigned threads = 0;
  /// Adaptive hybrid mode for the signature-class DP engine: watch the
  /// per-level merge effectiveness and, once folding stops paying for itself
  /// on a large frontier, first coarsen the impulse half of the signature
  /// (40-bit-snapped impulse totals instead of per-class counts, see
  /// canonical_threshold) and then hand the remaining frontier to a
  /// depth-first continuation that expands without further merge attempts.
  /// Results stay deterministic for a fixed start set and are bitwise
  /// identical across thread counts, but compute_batch is no longer
  /// guaranteed bitwise equal to per-start single runs (the trigger sees
  /// different frontier sizes). Off by default; the checker switches it on
  /// when --until-engine=auto selects the class DP engine.
  bool adaptive_hybrid = false;
};

/// Result of one until evaluation.
struct UntilUniformizationResult {
  /// The approximated probability P(s, Phi U_[0,r]^[0,t] Psi).
  double probability = 0.0;
  /// Error bound of eq. (4.6): total truncated-path mass that could still
  /// have satisfied the formula.
  double error_bound = 0.0;
  /// Number of stored path prefixes ending in a Psi-state.
  std::size_t paths_stored = 0;
  /// Number of DFS branches cut by the truncation probability w or the depth
  /// bound N (each contributes its discarded mass to error_bound).
  std::size_t paths_truncated = 0;
  /// Number of distinct (k, j) signatures among stored paths.
  std::size_t signature_classes = 0;
  /// DFS nodes expanded.
  std::size_t nodes_expanded = 0;
  /// Deepest path length (number of transitions) reached.
  std::size_t max_depth = 0;
};

/// Uniformization engine for P2-class until formulas on one transformed MRM.
/// Construct once per formula; query per starting state / bound.
class UniformizationUntilEngine {
 public:
  /// `transformed` is M[!Phi v Psi] (taken by value: the engine keeps its own
  /// copy so callers may discard theirs). `psi` marks Sat(Psi); `dead` marks
  /// the states satisfying neither Phi nor Psi, from which the formula is
  /// unsatisfiable (exploration cuts there without contributing error).
  /// Masks must match the state count.
  UniformizationUntilEngine(core::Mrm transformed, std::vector<bool> psi,
                            std::vector<bool> dead);

  UniformizationUntilEngine(const UniformizationUntilEngine&) = delete;
  UniformizationUntilEngine& operator=(const UniformizationUntilEngine&) = delete;

  /// Evaluates Pr{ Y(t) <= r, X(t) |= Psi } from `start`. Requires t >= 0
  /// finite and r >= 0 finite; t = 0 short-circuits to the indicator of
  /// start |= Psi.
  UntilUniformizationResult compute(core::StateIndex start, double t, double r,
                                    const PathExplorerOptions& options = {}) const;

  /// The distinct state rewards r_1 > ... > r_{K+1} of the transformed model.
  const std::vector<double>& distinct_state_rewards() const {
    return sig_.distinct_state_rewards;
  }
  /// The distinct impulse rewards i_1 > ... > i_J (always containing 0, the
  /// impulse of uniformization self-loops).
  const std::vector<double>& distinct_impulse_rewards() const {
    return sig_.distinct_impulse_rewards;
  }
  /// The uniformization rate Lambda.
  double lambda() const { return sig_.uniformized.lambda(); }

 private:
  SignatureModel sig_;
};

}  // namespace csrlmrm::numeric

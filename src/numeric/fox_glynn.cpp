#include "numeric/fox_glynn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "numeric/poisson.hpp"
#include "obs/stats.hpp"
#include "core/approx.hpp"

namespace csrlmrm::numeric {

FoxGlynnWeights fox_glynn(double mean, double epsilon) {
  obs::counter_add("fox_glynn.calls");
  if (!(mean >= 0.0) || !std::isfinite(mean)) {
    throw std::invalid_argument("fox_glynn: mean must be finite and >= 0");
  }
  if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
    throw std::invalid_argument("fox_glynn: epsilon must be in (0,1)");
  }

  FoxGlynnWeights result;
  if (core::exactly_zero(mean)) {
    result.left = 0;
    result.right = 0;
    result.weights = {1.0};
    result.total_weight = 1.0;
    obs::gauge_max("fox_glynn.left", 0.0);
    obs::gauge_max("fox_glynn.right", 0.0);
    return result;
  }

  // Window selection. For small means a direct scan with the stable pmf is
  // cheapest; for large means use Bernstein-type tail bounds
  //   P(X >= mean + x) <= exp(-x^2 / (2(mean + x/3))),
  //   P(X <= mean - x) <= exp(-x^2 / (2 mean)),
  // each budgeted epsilon/2 (conservative, so coverage is guaranteed).
  std::size_t left = 0;
  std::size_t right = 0;
  if (mean <= 32.0) {
    const double tail_budget = epsilon / 2.0;
    double cumulative = 0.0;
    std::size_t k = 0;
    // Left edge: last k whose preceding mass is still within budget.
    while (cumulative + poisson_pmf(k, mean) < tail_budget) {
      cumulative += poisson_pmf(k, mean);
      ++k;
    }
    left = k;
    right = std::max(left, poisson_truncation_point(mean, tail_budget));
  } else {
    const double log_budget = std::log(2.0 / epsilon);
    const double x_left = std::sqrt(2.0 * mean * log_budget);
    // Solve x^2 / (2(mean + x/3)) = log_budget for the right offset.
    const double b = log_budget / 3.0;
    const double x_right = b + std::sqrt(b * b + 2.0 * mean * log_budget);
    left = static_cast<std::size_t>(std::max(0.0, std::floor(mean - x_left - 1.0)));
    right = static_cast<std::size_t>(std::ceil(mean + x_right + 1.0));
  }

  // Weights by the mode-anchored recurrence w(k-1) = w(k) k / mean,
  // w(k+1) = w(k) mean / (k+1), scaled to w(mode) = 1 so all weights lie in
  // (0, 1] and no overflow can occur.
  const std::size_t mode =
      std::clamp(static_cast<std::size_t>(mean), left, right);
  std::vector<double> weights(right - left + 1, 0.0);
  weights[mode - left] = 1.0;
  // At extreme means (uniformization rates q*t in the 1e4..1e6 range) the
  // Bernstein window is generous enough that the far tails underflow into
  // denormals. Stop each recurrence at the last normal weight instead of
  // carrying it through denormal territory (slow, and flushed to zero under
  // FTZ): the untouched weights stay exactly 0.0, which only sharpens the
  // truncation, and the conserved window mass stays >= 1 - epsilon (pinned
  // by the extreme-mean regression tests).
  constexpr double kMinNormal = std::numeric_limits<double>::min();
  for (std::size_t k = mode; k > left; --k) {
    const double next = weights[k - left] * static_cast<double>(k) / mean;
    if (next < kMinNormal) break;
    weights[k - 1 - left] = next;
  }
  for (std::size_t k = mode; k < right; ++k) {
    const double next = weights[k - left] * mean / static_cast<double>(k + 1);
    if (next < kMinNormal) break;
    weights[k + 1 - left] = next;
  }

  // Sum small-to-large from both ends toward the mode for accuracy.
  double total = 0.0;
  const std::size_t mode_index = mode - left;
  for (std::size_t i = 0; i < mode_index; ++i) total += weights[i];
  for (std::size_t i = weights.size() - 1; i > mode_index; --i) total += weights[i];
  total += weights[mode_index];

  result.left = left;
  result.right = right;
  result.weights = std::move(weights);
  result.total_weight = total;
  // Max-merge keeps right >= left across threads: each thread's own pair
  // satisfies it, and max(right_i) >= max(left_i) follows.
  obs::gauge_max("fox_glynn.left", static_cast<double>(left));
  obs::gauge_max("fox_glynn.right", static_cast<double>(right));
  return result;
}

}  // namespace csrlmrm::numeric

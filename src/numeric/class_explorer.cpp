#include "numeric/class_explorer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "core/approx.hpp"
#include "numeric/conditional.hpp"
#include "obs/stats.hpp"
#include "parallel/thread_pool.hpp"

namespace csrlmrm::numeric {

namespace {

/// Prefix counts saturate here instead of overflowing to infinity at extreme
/// depths (an infinite count would truncate everything; saturating merely
/// keeps the truncation rule conservative).
constexpr double kMaxPrefixCount = 1e300;

/// Struct-of-arrays frontier storage. Row i is the class of every path
/// prefix that ends in states[i] with reward signature
/// sigs[i*sig_len .. (i+1)*sig_len) (k ++ j); its per-batch-slot summed
/// prefix probabilities (1-step products, Poisson factor applied lazily)
/// and merged prefix counts live in weights/counts[i*slots .. +slots).
/// Flat arrays instead of one heap-allocated entry per class: a level's
/// expansion writes a few hundred thousand children, and per-child vector
/// allocations dominated the engine's profile before this layout.
struct Frontier {
  std::vector<core::StateIndex> states;
  std::vector<std::uint32_t> sigs;
  std::vector<double> weights;
  std::vector<double> counts;

  std::size_t size() const { return states.size(); }
  bool empty() const { return states.empty(); }

  void resize(std::size_t n, std::size_t sig_len, std::size_t slots) {
    states.resize(n);
    sigs.resize(n * sig_len);
    weights.resize(n * slots);
    counts.resize(n * slots);
  }

  void clear() {
    states.clear();
    sigs.clear();
    weights.clear();
    counts.clear();
  }

  void swap(Frontier& other) {
    states.swap(other.states);
    sigs.swap(other.sigs);
    weights.swap(other.weights);
    counts.swap(other.counts);
  }

  /// Copies row `from` onto row `to` (prune compaction).
  void move_row(std::size_t to, std::size_t from, std::size_t sig_len, std::size_t slots) {
    states[to] = states[from];
    std::copy_n(sigs.begin() + static_cast<std::ptrdiff_t>(from * sig_len), sig_len,
                sigs.begin() + static_cast<std::ptrdiff_t>(to * sig_len));
    std::copy_n(weights.begin() + static_cast<std::ptrdiff_t>(from * slots), slots,
                weights.begin() + static_cast<std::ptrdiff_t>(to * slots));
    std::copy_n(counts.begin() + static_cast<std::ptrdiff_t>(from * slots), slots,
                counts.begin() + static_cast<std::ptrdiff_t>(to * slots));
  }
};

/// Sorts `raw` rows by (state, signature) and folds equal keys by slot-wise
/// weight/count addition into `merged`, in sorted order — deterministic
/// regardless of how `raw` was produced (the expansion's chunk layout in
/// particular). Returns the number of rows merged away.
std::size_t sort_and_fold(const Frontier& raw, Frontier& merged, std::size_t sig_len,
                          std::size_t slots, std::vector<std::uint32_t>& order) {
  const std::size_t n = raw.size();
  order.resize(n);
  std::iota(order.begin(), order.end(), 0u);
  const auto sig_row = [&](std::uint32_t row) {
    return raw.sigs.begin() + static_cast<std::ptrdiff_t>(row * sig_len);
  };
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (raw.states[a] != raw.states[b]) return raw.states[a] < raw.states[b];
    return std::lexicographical_compare(sig_row(a), sig_row(a) + sig_len, sig_row(b),
                                        sig_row(b) + sig_len);
  });
  const auto key_equal = [&](std::uint32_t a, std::uint32_t b) {
    return raw.states[a] == raw.states[b] && std::equal(sig_row(a), sig_row(a) + sig_len, sig_row(b));
  };

  merged.clear();
  merged.states.reserve(n);
  merged.sigs.reserve(n * sig_len);
  merged.weights.reserve(n * slots);
  merged.counts.reserve(n * slots);
  std::size_t out = 0;
  for (std::size_t i = 0; i < n; ++out) {
    const std::uint32_t lead = order[i];
    merged.states.push_back(raw.states[lead]);
    merged.sigs.insert(merged.sigs.end(), sig_row(lead), sig_row(lead) + sig_len);
    merged.weights.insert(merged.weights.end(),
                          raw.weights.begin() + static_cast<std::ptrdiff_t>(lead * slots),
                          raw.weights.begin() + static_cast<std::ptrdiff_t>((lead + 1) * slots));
    merged.counts.insert(merged.counts.end(),
                         raw.counts.begin() + static_cast<std::ptrdiff_t>(lead * slots),
                         raw.counts.begin() + static_cast<std::ptrdiff_t>((lead + 1) * slots));
    std::size_t j = i + 1;
    for (; j < n && key_equal(lead, order[j]); ++j) {
      const std::size_t other = order[j];
      for (std::size_t slot = 0; slot < slots; ++slot) {
        merged.weights[out * slots + slot] += raw.weights[other * slots + slot];
        merged.counts[out * slots + slot] = std::min(
            merged.counts[out * slots + slot] + raw.counts[other * slots + slot], kMaxPrefixCount);
      }
    }
    i = j;
  }
  return n - out;
}

}  // namespace

SignatureClassUntilEngine::SignatureClassUntilEngine(core::Mrm transformed,
                                                     std::vector<bool> psi,
                                                     std::vector<bool> dead)
    : sig_(std::move(transformed), std::move(psi), std::move(dead)) {
  const std::size_t n = sig_.model.num_states();
  live_adjacency_.resize(n);
  for (core::StateIndex s = 0; s < n; ++s) {
    live_adjacency_[s].reserve(sig_.adjacency[s].size());
    for (const SignatureTransition& edge : sig_.adjacency[s]) {
      if (!sig_.dead[edge.target]) live_adjacency_[s].push_back(edge);
    }
  }
}

UntilUniformizationResult SignatureClassUntilEngine::compute(
    core::StateIndex start, double t, double r, const PathExplorerOptions& options) const {
  return compute_batch({start}, t, r, options).front();
}

std::vector<UntilUniformizationResult> SignatureClassUntilEngine::compute_batch(
    const std::vector<core::StateIndex>& starts, double t, double r,
    const PathExplorerOptions& options) const {
  obs::ScopedTimer timer("classdp.until");
  obs::counter_add("classdp.calls");
  obs::counter_add("classdp.starts", starts.size());
  const std::size_t n = sig_.model.num_states();
  for (core::StateIndex start : starts) {
    if (start >= n) {
      throw std::invalid_argument("SignatureClassUntilEngine::compute: start out of range");
    }
  }
  if (!(t >= 0.0) || !std::isfinite(t)) {
    throw std::invalid_argument("SignatureClassUntilEngine::compute: t must be finite, >= 0");
  }
  if (!(r >= 0.0) || !std::isfinite(r)) {
    throw std::invalid_argument("SignatureClassUntilEngine::compute: r must be finite, >= 0");
  }
  if (!(options.truncation_probability > 0.0) || !(options.truncation_probability < 1.0)) {
    throw std::invalid_argument(
        "SignatureClassUntilEngine::compute: truncation probability must be in (0,1)");
  }

  const std::size_t slots = starts.size();
  std::vector<UntilUniformizationResult> results(slots);
  if (slots == 0) return results;

  if (core::exactly_zero(t)) {
    // inf(I) = inf(J) = 0: the formula holds immediately iff start |= Psi.
    for (std::size_t i = 0; i < slots; ++i) {
      if (!sig_.dead[starts[i]] && sig_.psi[starts[i]]) results[i].probability = 1.0;
    }
    return results;
  }

  const double mean = sig_.uniformized.lambda() * t;
  const double w = options.truncation_probability;
  const auto poisson_tail =
      poisson_tails_.table(mean, poisson_truncation_point(mean, w) + 2);

  const std::size_t num_k = sig_.distinct_state_rewards.size();
  const std::size_t num_j = sig_.distinct_impulse_rewards.size();
  const std::size_t sig_len = num_k + num_j;
  RewardStructureContext context(sig_.distinct_state_rewards, sig_.distinct_impulse_rewards);

  // Level-0 frontier: one class per live start (k = 1_[rho(start)], j = 0,
  // weight 1 in the owning slot). Duplicate starts merge in the fold.
  Frontier frontier;
  Frontier scratch_raw;
  Frontier scratch_merged;
  std::vector<std::uint32_t> order;
  {
    std::size_t live = 0;
    for (std::size_t i = 0; i < slots; ++i) {
      if (!sig_.dead[starts[i]]) ++live;
    }
    scratch_raw.resize(live, sig_len, slots);
    std::fill(scratch_raw.sigs.begin(), scratch_raw.sigs.end(), 0u);
    std::fill(scratch_raw.weights.begin(), scratch_raw.weights.end(), 0.0);
    std::fill(scratch_raw.counts.begin(), scratch_raw.counts.end(), 0.0);
    std::size_t row = 0;
    for (std::size_t i = 0; i < slots; ++i) {
      if (sig_.dead[starts[i]]) continue;
      scratch_raw.states[row] = starts[i];
      ++scratch_raw.sigs[row * sig_len + sig_.reward_class[starts[i]]];
      scratch_raw.weights[row * slots + i] = 1.0;
      scratch_raw.counts[row * slots + i] = 1.0;
      ++row;
    }
  }
  std::size_t classes_merged = sort_and_fold(scratch_raw, frontier, sig_len, slots, order);

  // Harvested Psi-mass: flat (signature row, per-slot level mass) pairs,
  // appended per level and folded once after the sweep. Appending beats a
  // per-level map insert by a wide margin on deep runs; the final fold sorts
  // stably by signature, so contributions for one signature are still summed
  // in ascending level order — bitwise the same sums as accumulating into a
  // map during the sweep.
  std::vector<std::uint32_t> harvest_sigs;
  std::vector<double> harvest_mass;

  std::size_t nodes = 0;
  std::size_t stored = 0;
  std::size_t truncated = 0;
  std::size_t levels = 0;
  std::size_t frontier_peak = 0;
  std::size_t max_depth = 0;

  std::vector<std::size_t> offsets;

  for (std::size_t level = 0; !frontier.empty(); ++level) {
    ++levels;
    frontier_peak = std::max(frontier_peak, frontier.size());

    // Prune per class and slot: a class aggregating c prefixes is cut for a
    // slot when pmf * mass < w * c, i.e. when the *average* prefix weight
    // falls below w — the faithful aggregate of the per-path rule (4.4), so
    // the exploration volume matches the DFS engine's at equal w instead of
    // keeping a class alive as long as its total merged mass clears w. Cut
    // mass — and every slot once the depth bound N is exceeded (eq. 4.3) —
    // moves into the error bound, weighted by the Poisson tail
    // Pr{ N >= level } (eq. 4.6), exactly as in the per-path rule.
    const double pmf = poisson_pmf(level, mean);
    const double tail = poisson_tail->tail(level);
    const bool too_deep = options.depth_truncation != 0 && level > options.depth_truncation;
    std::size_t write = 0;
    for (std::size_t idx = 0; idx < frontier.size(); ++idx) {
      bool live = false;
      for (std::size_t i = 0; i < slots; ++i) {
        double& weight = frontier.weights[idx * slots + i];
        if (core::exactly_zero(weight)) continue;
        if (too_deep || pmf * weight < w * frontier.counts[idx * slots + i]) {
          ++truncated;
          results[i].error_bound += weight * tail;
          weight = 0.0;
          frontier.counts[idx * slots + i] = 0.0;
          continue;
        }
        live = true;
      }
      if (live) {
        if (write != idx) frontier.move_row(write, idx, sig_len, slots);
        ++write;
      }
    }
    frontier.resize(write, sig_len, slots);
    if (frontier.empty()) break;

    nodes += frontier.size();
    if (nodes > options.max_nodes) {
      throw NodeBudgetError(
          "SignatureClassUntilEngine: class budget exhausted; raise truncation probability w "
          "or use the discretization engine (Lambda*t too large for signature-class DP)");
    }
    max_depth = level;

    // Harvest: classes currently in a Psi-state contribute their level mass
    // PoissonPmf(level) * weight to their signature's accumulator.
    for (std::size_t idx = 0; idx < frontier.size(); ++idx) {
      if (!sig_.psi[frontier.states[idx]]) continue;
      ++stored;
      harvest_sigs.insert(harvest_sigs.end(),
                          frontier.sigs.begin() + static_cast<std::ptrdiff_t>(idx * sig_len),
                          frontier.sigs.begin() + static_cast<std::ptrdiff_t>((idx + 1) * sig_len));
      for (std::size_t i = 0; i < slots; ++i) {
        harvest_mass.push_back(pmf * frontier.weights[idx * slots + i]);
      }
    }

    // Expand one uniformization step. Every class writes its successors into
    // a precomputed disjoint slice of the raw successor arrays, so the
    // parallel loop's output is independent of the chunk layout; the
    // deterministic sort-and-fold then merges colliding (state, signature)
    // keys.
    offsets.assign(frontier.size() + 1, 0);
    for (std::size_t idx = 0; idx < frontier.size(); ++idx) {
      offsets[idx + 1] = offsets[idx] + live_adjacency_[frontier.states[idx]].size();
    }
    const std::size_t total = offsets.back();
    scratch_raw.resize(total, sig_len, slots);
    const unsigned threads =
        parallel::choose_thread_count(options.threads, total * (sig_len + slots));
    parallel::parallel_for(frontier.size(), threads, [&](std::size_t begin, std::size_t end) {
      for (std::size_t idx = begin; idx < end; ++idx) {
        std::size_t out = offsets[idx];
        for (const SignatureTransition& edge : live_adjacency_[frontier.states[idx]]) {
          scratch_raw.states[out] = edge.target;
          std::copy_n(frontier.sigs.begin() + static_cast<std::ptrdiff_t>(idx * sig_len),
                      sig_len,
                      scratch_raw.sigs.begin() + static_cast<std::ptrdiff_t>(out * sig_len));
          ++scratch_raw.sigs[out * sig_len + sig_.reward_class[edge.target]];
          ++scratch_raw.sigs[out * sig_len + num_k + edge.impulse_class];
          for (std::size_t i = 0; i < slots; ++i) {
            scratch_raw.weights[out * slots + i] =
                frontier.weights[idx * slots + i] * edge.probability;
          }
          std::copy_n(frontier.counts.begin() + static_cast<std::ptrdiff_t>(idx * slots), slots,
                      scratch_raw.counts.begin() + static_cast<std::ptrdiff_t>(out * slots));
          ++out;
        }
      }
    });
    classes_merged += sort_and_fold(scratch_raw, scratch_merged, sig_len, slots, order);
    frontier.swap(scratch_merged);
  }

  // Fold the harvested classes: stable-sort the (signature, level mass) rows
  // by signature and sum equal signatures in place, which leaves one row per
  // distinct harvested (k, j) with contributions added in ascending level
  // order. The conditional probability of eq. (4.9) then depends on j only
  // through the threshold r', so classes are further grouped by
  // (k, canonical r') — impulse signatures with equal totals (e.g. one voter
  // repair vs two module repairs when the impulses are 2 and 1) share a
  // single Omega evaluation for the whole batch. Sort order and std::map
  // iteration are both lexicographic, hence deterministic.
  const std::size_t harvest_rows = harvest_sigs.size() / (sig_len == 0 ? 1 : sig_len);
  order.resize(harvest_rows);
  std::iota(order.begin(), order.end(), 0u);
  const auto harvest_row = [&](std::uint32_t row) {
    return harvest_sigs.begin() + static_cast<std::ptrdiff_t>(row * sig_len);
  };
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return std::lexicographical_compare(harvest_row(a), harvest_row(a) + sig_len,
                                        harvest_row(b), harvest_row(b) + sig_len);
  });
  std::size_t signature_classes = 0;
  std::map<std::pair<std::vector<std::uint32_t>, double>, std::vector<double>> groups;
  SpacingCounts j_counts(num_j);
  for (std::size_t i = 0; i < harvest_rows; ++signature_classes) {
    const std::uint32_t lead = order[i];
    double* mass = harvest_mass.data() + static_cast<std::ptrdiff_t>(lead * slots);
    std::size_t next_row = i + 1;
    for (; next_row < harvest_rows &&
           std::equal(harvest_row(lead), harvest_row(lead) + sig_len, harvest_row(order[next_row]));
         ++next_row) {
      const double* other = harvest_mass.data() + static_cast<std::ptrdiff_t>(order[next_row] * slots);
      for (std::size_t slot = 0; slot < slots; ++slot) mass[slot] += other[slot];
    }
    i = next_row;
    SpacingCounts k(harvest_row(lead), harvest_row(lead) + num_k);
    j_counts.assign(harvest_row(lead) + num_k, harvest_row(lead) + sig_len);
    const double r_prime = canonical_threshold(context.threshold(j_counts, t, r));
    auto [it, inserted] = groups.try_emplace({std::move(k), r_prime});
    if (inserted) it->second.assign(slots, 0.0);
    for (std::size_t slot = 0; slot < slots; ++slot) it->second[slot] += mass[slot];
  }
  // Trivial groups reproduce the Omega recursion's base cases bitwise
  // (omega.cpp: result 1 when no present class has d_i > r', 0 when none has
  // d_i <= r') without building or querying an evaluator; only non-trivial
  // groups pay for an Omega evaluation.
  const std::vector<double>& spans = context.coefficients();
  std::size_t conditional_evals = 0;
  std::size_t trivial = 0;
  for (const auto& [key, mass] : groups) {
    const SpacingCounts& k = key.first;
    const double r_prime = key.second;
    bool any_greater = false;
    bool any_lesser = false;
    for (std::size_t l = 0; l < num_k; ++l) {
      if (k[l] == 0) continue;
      (spans[l] > r_prime ? any_greater : any_lesser) = true;
    }
    double cond = 0.0;
    if (!any_greater) {
      cond = 1.0;
      ++trivial;
    } else if (!any_lesser) {
      ++trivial;
      continue;  // cond == 0: the group contributes nothing
    } else {
      cond = context.conditional_probability_for_threshold(k, r_prime);
      ++conditional_evals;
    }
    for (std::size_t i = 0; i < slots; ++i) {
      results[i].probability += mass[i] * cond;
    }
  }

  for (UntilUniformizationResult& result : results) {
    result.paths_stored = stored;
    result.paths_truncated = truncated;
    result.signature_classes = signature_classes;
    result.nodes_expanded = nodes;
    result.max_depth = max_depth;
  }

  obs::counter_add("classdp.levels", levels);
  obs::counter_add("classdp.nodes_expanded", nodes);
  obs::counter_add("classdp.classes_merged", classes_merged);
  obs::counter_add("classdp.conditional_evals", conditional_evals);
  obs::counter_add("classdp.trivial_folds", trivial);
  obs::gauge_max("classdp.frontier_peak", static_cast<double>(frontier_peak));
  return results;
}

}  // namespace csrlmrm::numeric

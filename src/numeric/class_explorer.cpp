#include "numeric/class_explorer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "core/approx.hpp"
#include "core/simd.hpp"
#include "numeric/conditional.hpp"
#include "obs/stats.hpp"
#include "parallel/thread_pool.hpp"

namespace csrlmrm::numeric {

namespace {

/// Prefix counts saturate here instead of overflowing to infinity at extreme
/// depths (an infinite count would truncate everything; saturating merely
/// keeps the truncation rule conservative).
constexpr double kMaxPrefixCount = 1e300;

/// Adaptive-hybrid trigger (PathExplorerOptions::adaptive_hybrid). A level is
/// "ineffective" when the fold kept >= 7/10 of the raw successor rows AND the
/// raw count is at least kAdaptMinRawRows — the absolute floor matters:
/// workloads with tiny frontiers (e.g. TMR-deep, < 500 rows/level at fold
/// ratios ~0.98) still win 30x+ from merging because the *early* levels
/// merged, so a pure ratio test would misfire. kAdaptStreak consecutive
/// ineffective levels fire the escalation: coarsen once, then hand off.
/// Constants calibrated on the committed BENCH workloads (the NMR rows peak
/// at ~1e5 raw rows/level with fold ratios 0.72..1.0 from level 5 on; firing
/// before the frontier peak is what makes the hybrid beat a per-start DFS,
/// since the breadth-first sort of the peak levels is the dominant cost).
constexpr std::size_t kAdaptMinRawRows = 4096;
constexpr std::size_t kAdaptRatioNum = 7;   // ineffective when folded/raw >= 7/10
constexpr std::size_t kAdaptRatioDen = 10;
constexpr std::size_t kAdaptStreak = 2;

/// A double stored bitwise in two signature words (hi word first, so
/// lexicographic word order is deterministic per value). Used for the
/// coarsened impulse total and for the harvested threshold r'.
void store_double_bits(double v, std::uint32_t* out) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  out[0] = static_cast<std::uint32_t>(bits >> 32);
  out[1] = static_cast<std::uint32_t>(bits);
}

double load_double_bits(const std::uint32_t* in) {
  const std::uint64_t bits =
      (static_cast<std::uint64_t>(in[0]) << 32) | static_cast<std::uint64_t>(in[1]);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

/// Struct-of-arrays frontier storage. Row i is the class of every path
/// prefix that ends in states[i] with reward signature
/// sigs[i*sig_len .. (i+1)*sig_len) (k ++ j); its per-batch-slot summed
/// prefix probabilities (1-step products, Poisson factor applied lazily)
/// and merged prefix counts live in weights/counts[i*slots .. +slots).
/// Flat arrays instead of one heap-allocated entry per class: a level's
/// expansion writes a few hundred thousand children, and per-child vector
/// allocations dominated the engine's profile before this layout.
struct Frontier {
  std::vector<core::StateIndex> states;
  std::vector<std::uint32_t> sigs;
  std::vector<double> weights;
  std::vector<double> counts;

  std::size_t size() const { return states.size(); }
  bool empty() const { return states.empty(); }

  void resize(std::size_t n, std::size_t sig_len, std::size_t slots) {
    states.resize(n);
    sigs.resize(n * sig_len);
    weights.resize(n * slots);
    counts.resize(n * slots);
  }

  void clear() {
    states.clear();
    sigs.clear();
    weights.clear();
    counts.clear();
  }

  void swap(Frontier& other) {
    states.swap(other.states);
    sigs.swap(other.sigs);
    weights.swap(other.weights);
    counts.swap(other.counts);
  }

  /// Copies row `from` onto row `to` (prune compaction).
  void move_row(std::size_t to, std::size_t from, std::size_t sig_len, std::size_t slots) {
    states[to] = states[from];
    std::copy_n(sigs.begin() + static_cast<std::ptrdiff_t>(from * sig_len), sig_len,
                sigs.begin() + static_cast<std::ptrdiff_t>(to * sig_len));
    std::copy_n(weights.begin() + static_cast<std::ptrdiff_t>(from * slots), slots,
                weights.begin() + static_cast<std::ptrdiff_t>(to * slots));
    std::copy_n(counts.begin() + static_cast<std::ptrdiff_t>(from * slots), slots,
                counts.begin() + static_cast<std::ptrdiff_t>(to * slots));
  }
};

/// Sorts `raw` rows by (state, signature) and folds equal keys by slot-wise
/// weight/count addition into `merged`, in sorted order — deterministic
/// regardless of how `raw` was produced (the expansion's chunk layout in
/// particular). Returns the number of rows merged away.
std::size_t sort_and_fold(const Frontier& raw, Frontier& merged, std::size_t sig_len,
                          std::size_t slots, std::vector<std::uint32_t>& order) {
  const std::size_t n = raw.size();
  order.resize(n);
  std::iota(order.begin(), order.end(), 0u);
  const auto sig_row = [&](std::uint32_t row) {
    return raw.sigs.begin() + static_cast<std::ptrdiff_t>(row * sig_len);
  };
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (raw.states[a] != raw.states[b]) return raw.states[a] < raw.states[b];
    return std::lexicographical_compare(sig_row(a), sig_row(a) + sig_len, sig_row(b),
                                        sig_row(b) + sig_len);
  });
  const auto key_equal = [&](std::uint32_t a, std::uint32_t b) {
    return raw.states[a] == raw.states[b] && std::equal(sig_row(a), sig_row(a) + sig_len, sig_row(b));
  };

  merged.clear();
  merged.states.reserve(n);
  merged.sigs.reserve(n * sig_len);
  merged.weights.reserve(n * slots);
  merged.counts.reserve(n * slots);
  std::size_t out = 0;
  for (std::size_t i = 0; i < n; ++out) {
    const std::uint32_t lead = order[i];
    merged.states.push_back(raw.states[lead]);
    merged.sigs.insert(merged.sigs.end(), sig_row(lead), sig_row(lead) + sig_len);
    merged.weights.insert(merged.weights.end(),
                          raw.weights.begin() + static_cast<std::ptrdiff_t>(lead * slots),
                          raw.weights.begin() + static_cast<std::ptrdiff_t>((lead + 1) * slots));
    merged.counts.insert(merged.counts.end(),
                         raw.counts.begin() + static_cast<std::ptrdiff_t>(lead * slots),
                         raw.counts.begin() + static_cast<std::ptrdiff_t>((lead + 1) * slots));
    std::size_t j = i + 1;
    for (; j < n && key_equal(lead, order[j]); ++j) {
      const std::size_t other = order[j];
      for (std::size_t slot = 0; slot < slots; ++slot) {
        merged.weights[out * slots + slot] += raw.weights[other * slots + slot];
        merged.counts[out * slots + slot] = std::min(
            merged.counts[out * slots + slot] + raw.counts[other * slots + slot], kMaxPrefixCount);
      }
    }
    i = j;
  }
  return n - out;
}

}  // namespace

SignatureClassUntilEngine::SignatureClassUntilEngine(core::Mrm transformed,
                                                     std::vector<bool> psi,
                                                     std::vector<bool> dead)
    : sig_(std::move(transformed), std::move(psi), std::move(dead)) {
  const std::size_t n = sig_.model.num_states();
  live_adjacency_.resize(n);
  for (core::StateIndex s = 0; s < n; ++s) {
    live_adjacency_[s].reserve(sig_.adjacency[s].size());
    for (const SignatureTransition& edge : sig_.adjacency[s]) {
      if (!sig_.dead[edge.target]) live_adjacency_[s].push_back(edge);
    }
  }
}

UntilUniformizationResult SignatureClassUntilEngine::compute(
    core::StateIndex start, double t, double r, const PathExplorerOptions& options) const {
  return compute_batch({start}, t, r, options).front();
}

std::vector<UntilUniformizationResult> SignatureClassUntilEngine::compute_batch(
    const std::vector<core::StateIndex>& starts, double t, double r,
    const PathExplorerOptions& options) const {
  obs::ScopedTimer timer("classdp.until");
  obs::counter_add("classdp.calls");
  obs::counter_add("classdp.starts", starts.size());
  const std::size_t n = sig_.model.num_states();
  for (core::StateIndex start : starts) {
    if (start >= n) {
      throw std::invalid_argument("SignatureClassUntilEngine::compute: start out of range");
    }
  }
  if (!(t >= 0.0) || !std::isfinite(t)) {
    throw std::invalid_argument("SignatureClassUntilEngine::compute: t must be finite, >= 0");
  }
  if (!(r >= 0.0) || !std::isfinite(r)) {
    throw std::invalid_argument("SignatureClassUntilEngine::compute: r must be finite, >= 0");
  }
  if (!(options.truncation_probability > 0.0) || !(options.truncation_probability < 1.0)) {
    throw std::invalid_argument(
        "SignatureClassUntilEngine::compute: truncation probability must be in (0,1)");
  }

  const std::size_t slots = starts.size();
  std::vector<UntilUniformizationResult> results(slots);
  if (slots == 0) return results;

  if (core::exactly_zero(t)) {
    // inf(I) = inf(J) = 0: the formula holds immediately iff start |= Psi.
    for (std::size_t i = 0; i < slots; ++i) {
      if (!sig_.dead[starts[i]] && sig_.psi[starts[i]]) results[i].probability = 1.0;
    }
    return results;
  }

  const double mean = sig_.uniformized.lambda() * t;
  const double w = options.truncation_probability;
  const auto poisson_tail =
      PoissonTailCache::global().table(mean, poisson_truncation_point(mean, w) + 2);

  const std::size_t num_k = sig_.distinct_state_rewards.size();
  const std::size_t num_j = sig_.distinct_impulse_rewards.size();
  const std::vector<double>& impulse_values = sig_.distinct_impulse_rewards;
  // The frontier signature starts exact — (k counts ++ j counts) — and may be
  // coarsened mid-run to (k counts ++ 2 words of snapped impulse total) when
  // the adaptive trigger fires. Both layouts answer the same question: the
  // conditional probability of eq. (4.9) depends on j only through the
  // threshold r', which is a function of the impulse total alone.
  const std::size_t exact_len = num_k + num_j;
  const std::size_t coarse_len = num_k + 2;
  std::size_t sig_len = exact_len;
  bool coarse = false;
  RewardStructureContext context(sig_.distinct_state_rewards, sig_.distinct_impulse_rewards);

  // Level-0 frontier: one class per live start (k = 1_[rho(start)], j = 0,
  // weight 1 in the owning slot). Duplicate starts merge in the fold.
  Frontier frontier;
  Frontier scratch_raw;
  Frontier scratch_merged;
  std::vector<std::uint32_t> order;
  {
    std::size_t live = 0;
    for (std::size_t i = 0; i < slots; ++i) {
      if (!sig_.dead[starts[i]]) ++live;
    }
    scratch_raw.resize(live, sig_len, slots);
    std::fill(scratch_raw.sigs.begin(), scratch_raw.sigs.end(), 0u);
    std::fill(scratch_raw.weights.begin(), scratch_raw.weights.end(), 0.0);
    std::fill(scratch_raw.counts.begin(), scratch_raw.counts.end(), 0.0);
    std::size_t row = 0;
    for (std::size_t i = 0; i < slots; ++i) {
      if (sig_.dead[starts[i]]) continue;
      scratch_raw.states[row] = starts[i];
      ++scratch_raw.sigs[row * sig_len + sig_.reward_class[starts[i]]];
      scratch_raw.weights[row * slots + i] = 1.0;
      scratch_raw.counts[row * slots + i] = 1.0;
      ++row;
    }
  }
  std::size_t classes_merged = sort_and_fold(scratch_raw, frontier, sig_len, slots, order);

  // Harvested Psi-mass: flat (row, per-slot level mass) pairs, appended per
  // level and folded once after the sweep. Appending beats a per-level map
  // insert by a wide margin on deep runs; the final fold sorts stably, so
  // contributions for one row key are still summed in ascending append
  // (= level) order. Every harvest row has the uniform layout
  //   k counts ++ 2 words of canonical r' bits        (width hwid)
  // with r' computed at harvest time from whichever frontier encoding is
  // current — so rows harvested before and after a mid-run coarsening fold
  // together, and the final fold groups by (k, canonical r') directly, which
  // is the exact granularity at which Omega evaluations differ.
  const std::size_t hwid = num_k + 2;
  std::vector<std::uint32_t> harvest_sigs;
  std::vector<double> harvest_mass;

  std::size_t nodes = 0;
  std::size_t stored = 0;
  std::size_t truncated = 0;
  std::size_t levels = 0;
  std::size_t frontier_peak = 0;
  std::size_t max_depth = 0;
  std::size_t coarsenings = 0;
  std::size_t handoffs = 0;
  std::size_t ineffective_streak = 0;
  bool handoff = false;
  std::size_t handoff_level = 0;

  SpacingCounts j_scratch(num_j);
  const auto append_harvest = [&](const std::uint32_t* sig_row, double pmf,
                                  const double* weight_row) {
    ++stored;
    const std::size_t base = harvest_sigs.size();
    harvest_sigs.resize(base + hwid);
    std::uint32_t* out = harvest_sigs.data() + base;
    std::copy_n(sig_row, num_k, out);
    double r_prime = 0.0;
    if (coarse) {
      r_prime = context.threshold_for_total(load_double_bits(sig_row + num_k), t, r);
    } else {
      j_scratch.assign(sig_row + num_k, sig_row + num_k + num_j);
      r_prime = context.threshold(j_scratch, t, r);
    }
    store_double_bits(canonical_threshold(r_prime), out + num_k);
    for (std::size_t i = 0; i < slots; ++i) harvest_mass.push_back(pmf * weight_row[i]);
  };

  std::vector<std::size_t> offsets;
  const bool trace = std::getenv("CSRLMRM_CLASSDP_TRACE") != nullptr;

  for (std::size_t level = 0; !frontier.empty(); ++level) {
    ++levels;
    frontier_peak = std::max(frontier_peak, frontier.size());

    // Prune per class and slot: a class aggregating c prefixes is cut for a
    // slot when pmf * mass < w * c, i.e. when the *average* prefix weight
    // falls below w — the faithful aggregate of the per-path rule (4.4), so
    // the exploration volume matches the DFS engine's at equal w instead of
    // keeping a class alive as long as its total merged mass clears w. Cut
    // mass — and every slot once the depth bound N is exceeded (eq. 4.3) —
    // moves into the error bound, weighted by the Poisson tail
    // Pr{ N >= level } (eq. 4.6), exactly as in the per-path rule.
    const double pmf = poisson_pmf(level, mean);
    const double tail = poisson_tail->tail(level);
    const bool too_deep = options.depth_truncation != 0 && level > options.depth_truncation;
    std::size_t write = 0;
    for (std::size_t idx = 0; idx < frontier.size(); ++idx) {
      bool live = false;
      for (std::size_t i = 0; i < slots; ++i) {
        double& weight = frontier.weights[idx * slots + i];
        if (core::exactly_zero(weight)) continue;
        if (too_deep || pmf * weight < w * frontier.counts[idx * slots + i]) {
          ++truncated;
          results[i].error_bound += weight * tail;
          weight = 0.0;
          frontier.counts[idx * slots + i] = 0.0;
          continue;
        }
        live = true;
      }
      if (live) {
        if (write != idx) frontier.move_row(write, idx, sig_len, slots);
        ++write;
      }
    }
    frontier.resize(write, sig_len, slots);
    if (frontier.empty()) break;

    nodes += frontier.size();
    if (nodes > options.max_nodes) {
      throw NodeBudgetError(
          "SignatureClassUntilEngine: class budget exhausted; raise truncation probability w "
          "or use the discretization engine (Lambda*t too large for signature-class DP)");
    }
    max_depth = level;

    // Harvest: classes currently in a Psi-state contribute their level mass
    // PoissonPmf(level) * weight to their (k, r') accumulator row.
    for (std::size_t idx = 0; idx < frontier.size(); ++idx) {
      if (!sig_.psi[frontier.states[idx]]) continue;
      append_harvest(frontier.sigs.data() + idx * sig_len, pmf,
                     frontier.weights.data() + idx * slots);
    }

    // Expand one uniformization step. Every class writes its successors into
    // a precomputed disjoint slice of the raw successor arrays, so the
    // parallel loop's output is independent of the chunk layout; the
    // deterministic sort-and-fold then merges colliding (state, signature)
    // keys.
    offsets.assign(frontier.size() + 1, 0);
    for (std::size_t idx = 0; idx < frontier.size(); ++idx) {
      offsets[idx + 1] = offsets[idx] + live_adjacency_[frontier.states[idx]].size();
    }
    const std::size_t total = offsets.back();
    scratch_raw.resize(total, sig_len, slots);
    const unsigned threads =
        parallel::choose_thread_count(options.threads, total * (sig_len + slots));
    parallel::parallel_for(frontier.size(), threads, [&](std::size_t begin, std::size_t end) {
      for (std::size_t idx = begin; idx < end; ++idx) {
        std::size_t out = offsets[idx];
        for (const SignatureTransition& edge : live_adjacency_[frontier.states[idx]]) {
          scratch_raw.states[out] = edge.target;
          std::copy_n(frontier.sigs.begin() + static_cast<std::ptrdiff_t>(idx * sig_len),
                      sig_len,
                      scratch_raw.sigs.begin() + static_cast<std::ptrdiff_t>(out * sig_len));
          ++scratch_raw.sigs[out * sig_len + sig_.reward_class[edge.target]];
          if (!coarse) {
            ++scratch_raw.sigs[out * sig_len + num_k + edge.impulse_class];
          } else if (!core::exactly_zero(impulse_values[edge.impulse_class])) {
            // Coarse mode folds the impulse into a snapped running total;
            // each addition re-snaps, so equal totals reached along
            // different orders keep one representative (<= 2^-41 relative
            // perturbation per transition, see canonical_threshold).
            std::uint32_t* total_bits = scratch_raw.sigs.data() + out * sig_len + num_k;
            store_double_bits(canonical_threshold(load_double_bits(total_bits) +
                                                  impulse_values[edge.impulse_class]),
                              total_bits);
          }
          for (std::size_t i = 0; i < slots; ++i) {
            scratch_raw.weights[out * slots + i] =
                frontier.weights[idx * slots + i] * edge.probability;
          }
          std::copy_n(frontier.counts.begin() + static_cast<std::ptrdiff_t>(idx * slots), slots,
                      scratch_raw.counts.begin() + static_cast<std::ptrdiff_t>(out * slots));
          ++out;
        }
      }
    });
    classes_merged += sort_and_fold(scratch_raw, scratch_merged, sig_len, slots, order);
    frontier.swap(scratch_merged);
    // Calibration aid (how kAdaptMinRawRows / kAdaptStreak were chosen):
    // per-level raw row count and fold ratio on stderr.
    if (trace) {
      std::fprintf(stderr, "level=%zu raw=%zu folded=%zu ratio=%.3f%s\n", level, total,
                   frontier.size(), total ? double(frontier.size()) / double(total) : 0.0,
                   coarse ? " coarse" : "");
    }

    // Adaptive escalation: ratio and row counts are thread-invariant, so the
    // trigger fires at the same level for every thread count.
    if (options.adaptive_hybrid && !frontier.empty()) {
      const bool ineffective =
          total >= kAdaptMinRawRows && frontier.size() * kAdaptRatioDen >= total * kAdaptRatioNum;
      ineffective_streak = ineffective ? ineffective_streak + 1 : 0;
      if (ineffective_streak >= kAdaptStreak) {
        if (!coarse && num_j > 1) {
          // First escalation: re-encode the frontier with snapped impulse
          // totals and refold — distinct j vectors with equal totals (the
          // common case late in a run, when most paths have accrued the same
          // few impulses in different orders) collapse to one class.
          const std::size_t rows = frontier.size();
          scratch_raw.resize(rows, coarse_len, slots);
          for (std::size_t idx = 0; idx < rows; ++idx) {
            scratch_raw.states[idx] = frontier.states[idx];
            const std::uint32_t* src = frontier.sigs.data() + idx * sig_len;
            std::uint32_t* dst = scratch_raw.sigs.data() + idx * coarse_len;
            std::copy_n(src, num_k, dst);
            double total_impulse = 0.0;
            for (std::size_t c = 0; c < num_j; ++c) {
              total_impulse += impulse_values[c] * static_cast<double>(src[num_k + c]);
            }
            store_double_bits(canonical_threshold(total_impulse), dst + num_k);
          }
          std::copy(frontier.weights.begin(), frontier.weights.end(),
                    scratch_raw.weights.begin());
          std::copy(frontier.counts.begin(), frontier.counts.end(),
                    scratch_raw.counts.begin());
          sig_len = coarse_len;
          coarse = true;
          ++coarsenings;
          classes_merged += sort_and_fold(scratch_raw, scratch_merged, sig_len, slots, order);
          frontier.swap(scratch_merged);
          if (trace) {
            std::fprintf(stderr, "level=%zu coarsened folded=%zu\n", level, frontier.size());
          }
          // One more ineffective level (not a fresh streak) escalates again.
          ineffective_streak = kAdaptStreak - 1;
        } else {
          // Second escalation: stop merging altogether and hand the frontier
          // (level `level + 1` rows) to the depth-first continuation below.
          handoff = true;
          handoff_level = level + 1;
          break;
        }
      }
    }
  }

  // Depth-first continuation (second adaptive escalation): when merging has
  // stopped paying, expanding the remaining frontier breadth-first only
  // buys sort-and-fold overhead on rows that will not collide. Finish each
  // surviving class with a plain DFS — identical prune, budget, error and
  // harvest semantics as the level sweep (the per-slot rule of eq. 4.4/4.6,
  // with the class's merged prefix count carried unchanged down the path) —
  // but with no further merge attempts. The whole continuation runs once for
  // the batch (class rows carry all slots), which is what lets the hybrid
  // beat a per-start DFS engine even when merging has gone stale.
  //
  // Root subtrees are independent, so the continuation fans out over a FIXED
  // number of contiguous root chunks (independent of the worker count).
  // Each chunk collects its own harvest rows, error partials and counters;
  // afterwards chunks are combined serially in chunk order. Chunk boundaries,
  // per-chunk work and the combination order are all thread-invariant, so
  // results stay bitwise identical at every thread count.
  if (handoff) {
    ++handoffs;
    const auto handoff_start = std::chrono::steady_clock::now();
    const std::size_t roots = frontier.size();
    // Poisson pmf per level over the tail table's range (bitwise the same
    // values as the sweep's per-level poisson_pmf calls); the rare deeper
    // probe falls back to a direct call.
    const std::vector<double> pmf_by_level =
        poisson_pmf_sequence(poisson_tail->table_size() - 1, mean);

    struct ChunkState {
      std::vector<std::uint32_t> harvest_sigs;
      std::vector<double> harvest_mass;
      std::vector<double> error;
      std::size_t nodes = 0;
      std::size_t stored = 0;
      std::size_t truncated = 0;
      std::size_t max_depth = 0;
      bool overflow = false;
    };
    const std::size_t chunk_count = std::min<std::size_t>(64, roots);
    std::vector<ChunkState> chunks(chunk_count);
    const std::size_t base_nodes = nodes;

    const auto run_chunk = [&](std::size_t chunk) {
      ChunkState& cs = chunks[chunk];
      cs.error.assign(slots, 0.0);
      const std::size_t row_begin = chunk * roots / chunk_count;
      const std::size_t row_end = (chunk + 1) * roots / chunk_count;

      // One frame per path prefix under expansion. The signature is kept in
      // a single shared row, incrementally updated on push and undone on
      // pop; weights and counts get one stack row per depth (children
      // inherit the parent's pruned row, so a slot cut at depth d
      // contributes nothing below d, exactly as a zeroed slot in the
      // sweep's frontier).
      struct DfsFrame {
        core::StateIndex state;
        std::size_t edge_index;
        std::uint32_t k_class;
        std::uint32_t j_class;
        std::uint32_t saved_total[2];
      };
      std::vector<DfsFrame> frames;
      std::vector<std::uint32_t> sig(sig_len);
      std::vector<double> w_stack(slots);
      std::vector<double> c_stack(slots);
      SpacingCounts j_local(num_j);

      const auto pmf_at = [&](std::size_t level) {
        return level < pmf_by_level.size() ? pmf_by_level[level] : poisson_pmf(level, mean);
      };
      const auto enter_node = [&](std::size_t frame_depth, core::StateIndex state) {
        const std::size_t level = handoff_level + frame_depth;
        const double pmf = pmf_at(level);
        const double tail = poisson_tail->tail(level);
        const bool too_deep =
            options.depth_truncation != 0 && level > options.depth_truncation;
        double* wrow = w_stack.data() + frame_depth * slots;
        double* crow = c_stack.data() + frame_depth * slots;
        bool live = false;
        for (std::size_t i = 0; i < slots; ++i) {
          if (core::exactly_zero(wrow[i])) continue;
          if (too_deep || pmf * wrow[i] < w * crow[i]) {
            ++cs.truncated;
            cs.error[i] += wrow[i] * tail;
            wrow[i] = 0.0;
            crow[i] = 0.0;
            continue;
          }
          live = true;
        }
        if (!live) return false;
        ++cs.nodes;
        if (base_nodes + cs.nodes > options.max_nodes) {
          // The budget is shared across the batch; flag and unwind, the
          // combining pass below throws for the whole run.
          cs.overflow = true;
          return false;
        }
        cs.max_depth = std::max(cs.max_depth, level);
        if (sig_.psi[state]) {
          ++cs.stored;
          const std::size_t base = cs.harvest_sigs.size();
          cs.harvest_sigs.resize(base + hwid);
          std::uint32_t* out = cs.harvest_sigs.data() + base;
          std::copy_n(sig.data(), num_k, out);
          double r_prime = 0.0;
          if (coarse) {
            r_prime = context.threshold_for_total(load_double_bits(sig.data() + num_k), t, r);
          } else {
            j_local.assign(sig.begin() + static_cast<std::ptrdiff_t>(num_k), sig.end());
            r_prime = context.threshold(j_local, t, r);
          }
          store_double_bits(canonical_threshold(r_prime), out + num_k);
          for (std::size_t i = 0; i < slots; ++i) cs.harvest_mass.push_back(pmf * wrow[i]);
        }
        return true;
      };
      const auto undo_sig = [&](const DfsFrame& frame) {
        --sig[frame.k_class];
        if (!coarse) {
          --sig[num_k + frame.j_class];
        } else {
          sig[num_k] = frame.saved_total[0];
          sig[num_k + 1] = frame.saved_total[1];
        }
      };

      for (std::size_t row = row_begin; row < row_end && !cs.overflow; ++row) {
        std::copy_n(frontier.sigs.begin() + static_cast<std::ptrdiff_t>(row * sig_len), sig_len,
                    sig.begin());
        std::copy_n(frontier.weights.begin() + static_cast<std::ptrdiff_t>(row * slots), slots,
                    w_stack.begin());
        std::copy_n(frontier.counts.begin() + static_cast<std::ptrdiff_t>(row * slots), slots,
                    c_stack.begin());
        if (!enter_node(0, frontier.states[row])) continue;
        frames.clear();
        frames.push_back({frontier.states[row], 0, 0, 0, {0, 0}});
        while (!frames.empty() && !cs.overflow) {
          const std::size_t depth = frames.size() - 1;
          const std::vector<SignatureTransition>& edges = live_adjacency_[frames.back().state];
          if (frames.back().edge_index >= edges.size()) {
            if (depth > 0) undo_sig(frames.back());
            frames.pop_back();
            continue;
          }
          const SignatureTransition& edge = edges[frames.back().edge_index++];
          const std::size_t child_depth = depth + 1;
          if (w_stack.size() < (child_depth + 1) * slots) {
            w_stack.resize((child_depth + 1) * slots);
            c_stack.resize((child_depth + 1) * slots);
          }
          core::simd::scale(w_stack.data() + child_depth * slots,
                            w_stack.data() + depth * slots, slots, edge.probability);
          std::copy_n(c_stack.begin() + static_cast<std::ptrdiff_t>(depth * slots), slots,
                      c_stack.begin() + static_cast<std::ptrdiff_t>(child_depth * slots));
          DfsFrame child{edge.target, 0,
                         static_cast<std::uint32_t>(sig_.reward_class[edge.target]), 0, {0, 0}};
          ++sig[child.k_class];
          if (!coarse) {
            child.j_class = static_cast<std::uint32_t>(edge.impulse_class);
            ++sig[num_k + child.j_class];
          } else {
            child.saved_total[0] = sig[num_k];
            child.saved_total[1] = sig[num_k + 1];
            if (!core::exactly_zero(impulse_values[edge.impulse_class])) {
              store_double_bits(canonical_threshold(load_double_bits(sig.data() + num_k) +
                                                    impulse_values[edge.impulse_class]),
                                sig.data() + num_k);
            }
          }
          if (enter_node(child_depth, edge.target)) {
            frames.push_back(child);
          } else {
            undo_sig(child);
          }
        }
      }
    };

    const unsigned dfs_threads =
        parallel::choose_thread_count(options.threads, roots * slots * 64);
    parallel::parallel_for(chunk_count, dfs_threads, [&](std::size_t begin, std::size_t end) {
      for (std::size_t chunk = begin; chunk < end; ++chunk) run_chunk(chunk);
    });

    bool overflow = false;
    for (const ChunkState& cs : chunks) {
      nodes += cs.nodes;
      stored += cs.stored;
      truncated += cs.truncated;
      max_depth = std::max(max_depth, cs.max_depth);
      overflow = overflow || cs.overflow;
    }
    if (overflow || nodes > options.max_nodes) {
      throw NodeBudgetError(
          "SignatureClassUntilEngine: class budget exhausted; raise truncation probability w "
          "or use the discretization engine (Lambda*t too large for signature-class DP)");
    }
    for (const ChunkState& cs : chunks) {
      harvest_sigs.insert(harvest_sigs.end(), cs.harvest_sigs.begin(), cs.harvest_sigs.end());
      harvest_mass.insert(harvest_mass.end(), cs.harvest_mass.begin(), cs.harvest_mass.end());
      for (std::size_t i = 0; i < slots; ++i) results[i].error_bound += cs.error[i];
    }
    if (trace) {
      std::fprintf(stderr, "handoff level=%zu roots=%zu nodes=%zu ms=%.1f\n", handoff_level,
                   roots, nodes - base_nodes,
                   std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                            handoff_start)
                       .count());
    }
  }

  // Fold the harvested rows: stable-sort by the uniform (k, r'-bits) key and
  // sum equal keys in place — one row per distinct (k, canonical r'), with
  // contributions added in ascending append (= level) order. That is exactly
  // the granularity at which eq. (4.9) differs: the conditional probability
  // depends on j only through r', so impulse signatures with equal totals
  // (e.g. one voter repair vs two module repairs when the impulses are 2 and
  // 1) share a single Omega evaluation for the whole batch. The sort is over
  // plain word rows, hence deterministic.
  const std::size_t harvest_rows = slots == 0 ? 0 : harvest_mass.size() / slots;
  order.resize(harvest_rows);
  std::iota(order.begin(), order.end(), 0u);
  const auto harvest_row = [&](std::uint32_t row) {
    return harvest_sigs.begin() + static_cast<std::ptrdiff_t>(row * hwid);
  };
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return std::lexicographical_compare(harvest_row(a), harvest_row(a) + hwid, harvest_row(b),
                                        harvest_row(b) + hwid);
  });
  // Trivial groups reproduce the Omega recursion's base cases bitwise
  // (omega.cpp: result 1 when no present class has d_i > r', 0 when none has
  // d_i <= r') without building or querying an evaluator; only non-trivial
  // groups pay for an Omega evaluation.
  const std::vector<double>& spans = context.coefficients();
  std::size_t signature_classes = 0;
  std::size_t conditional_evals = 0;
  std::size_t trivial = 0;
  SpacingCounts k_counts(num_k);
  for (std::size_t i = 0; i < harvest_rows; ++signature_classes) {
    const std::uint32_t lead = order[i];
    double* mass = harvest_mass.data() + static_cast<std::ptrdiff_t>(lead * slots);
    std::size_t next_row = i + 1;
    for (; next_row < harvest_rows &&
           std::equal(harvest_row(lead), harvest_row(lead) + hwid, harvest_row(order[next_row]));
         ++next_row) {
      const double* other =
          harvest_mass.data() + static_cast<std::ptrdiff_t>(order[next_row] * slots);
      for (std::size_t slot = 0; slot < slots; ++slot) mass[slot] += other[slot];
    }
    i = next_row;
    const std::uint32_t* lead_row = harvest_sigs.data() + static_cast<std::ptrdiff_t>(lead * hwid);
    const double r_prime = load_double_bits(lead_row + num_k);
    bool any_greater = false;
    bool any_lesser = false;
    for (std::size_t l = 0; l < num_k; ++l) {
      if (lead_row[l] == 0) continue;
      (spans[l] > r_prime ? any_greater : any_lesser) = true;
    }
    double cond = 0.0;
    if (!any_greater) {
      cond = 1.0;
      ++trivial;
    } else if (!any_lesser) {
      ++trivial;
      continue;  // cond == 0: the group contributes nothing
    } else {
      k_counts.assign(lead_row, lead_row + num_k);
      cond = context.conditional_probability_for_threshold(k_counts, r_prime);
      ++conditional_evals;
    }
    for (std::size_t slot = 0; slot < slots; ++slot) {
      results[slot].probability += mass[slot] * cond;
    }
  }

  for (UntilUniformizationResult& result : results) {
    result.paths_stored = stored;
    result.paths_truncated = truncated;
    result.signature_classes = signature_classes;
    result.nodes_expanded = nodes;
    result.max_depth = max_depth;
  }

  obs::counter_add("classdp.levels", levels);
  obs::counter_add("classdp.nodes_expanded", nodes);
  obs::counter_add("classdp.classes_merged", classes_merged);
  obs::counter_add("classdp.conditional_evals", conditional_evals);
  obs::counter_add("classdp.trivial_folds", trivial);
  obs::counter_add("classdp.coarsenings", coarsenings);
  obs::counter_add("classdp.hybrid_handoffs", handoffs);
  obs::gauge_max("classdp.frontier_peak", static_cast<double>(frontier_peak));
  return results;
}

}  // namespace csrlmrm::numeric

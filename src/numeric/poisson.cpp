#include "numeric/poisson.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/approx.hpp"
#include "core/simd.hpp"
#include "obs/stats.hpp"

namespace csrlmrm::numeric {

namespace {
void require_valid_mean(double mean) {
  if (!(mean >= 0.0) || !std::isfinite(mean)) {
    throw std::invalid_argument("poisson: mean must be finite and >= 0");
  }
}

// std::lgamma writes the global `signgam` (a data race when the thread pool
// evaluates Poisson masses concurrently); the argument here is always >= 1,
// so the sign is irrelevant and the reentrant variant is safe to use.
double log_gamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  // Non-glibc/Apple fallback only: no lgamma_r on this platform, and the
  // serial call sites tolerate the signgam write.
  return std::lgamma(x);  // lint:allow(unsafe-libm)
#endif
}

// Index past which Poisson mass is negligible for any tolerance the engines
// use; poisson_truncation_point bounds its scan with the same expression, and
// PoissonTailCache sizes its tables to it so tail() queries never leave the
// precomputed range.
std::size_t poisson_hard_cap(double mean) {
  return static_cast<std::size_t>(mean + 40.0 * std::sqrt(mean + 1.0)) + 64;
}

// The masses Pr{N = 0}..Pr{N = count-1} for a strictly positive mean, via a
// two-pass log-domain fill: the affine part dn*log(mean) - mean is
// vectorized (core::simd::fill_affine matches poisson_pmf's
// `dn * std::log(mean) - mean` bit for bit, since x + (-m) == x - m in IEEE
// arithmetic), then a scalar lgamma/exp pass. Each entry equals
// poisson_pmf(i, mean) exactly.
void fill_poisson_masses(std::vector<double>& mass, std::size_t count, double mean) {
  mass.resize(count);
  core::simd::fill_affine(mass.data(), count, 0, std::log(mean), -mean);
  for (std::size_t i = 0; i < count; ++i) {
    mass[i] = std::exp(mass[i] - log_gamma(static_cast<double>(i) + 1.0));
  }
}
}  // namespace

double poisson_pmf(std::size_t n, double mean) {
  require_valid_mean(mean);
  if (core::exactly_zero(mean)) return n == 0 ? 1.0 : 0.0;
  const double dn = static_cast<double>(n);
  return std::exp(dn * std::log(mean) - mean - log_gamma(dn + 1.0));
}

double poisson_cdf(std::size_t n, double mean) {
  require_valid_mean(mean);
  double acc = 0.0;
  for (std::size_t i = 0; i <= n; ++i) acc += poisson_pmf(i, mean);
  return std::min(acc, 1.0);
}

std::vector<double> poisson_pmf_sequence(std::size_t n_max, double mean) {
  require_valid_mean(mean);
  std::vector<double> pmf;
  if (core::exactly_zero(mean)) {
    pmf.assign(n_max + 1, 0.0);
    pmf[0] = 1.0;
    return pmf;
  }
  fill_poisson_masses(pmf, n_max + 1, mean);
  return pmf;
}

std::size_t poisson_truncation_point(double mean, double epsilon) {
  require_valid_mean(mean);
  if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
    throw std::invalid_argument("poisson_truncation_point: epsilon must be in (0,1)");
  }
  double cumulative = 0.0;
  std::size_t n = 0;
  // Accumulate until the captured mass reaches 1 - epsilon. The loop is
  // bounded: past the mode the masses decay faster than geometrically, so we
  // cap iterations generously relative to the mean.
  const std::size_t hard_cap = poisson_hard_cap(mean);
  for (;; ++n) {
    cumulative += poisson_pmf(n, mean);
    if (cumulative >= 1.0 - epsilon || n >= hard_cap) return n;
  }
}

PoissonCdfTable::PoissonCdfTable(double mean) : mean_(mean) {
  require_valid_mean(mean);
  cdf_.push_back(poisson_pmf(0, mean_));
}

double PoissonCdfTable::cdf(std::size_t n) {
  while (cdf_.size() <= n) {
    const std::size_t i = cdf_.size();
    cdf_.push_back(std::min(cdf_.back() + poisson_pmf(i, mean_), 1.0));
  }
  return cdf_[n];
}

double PoissonCdfTable::tail(std::size_t n) {
  if (n == 0) return 1.0;
  return std::max(0.0, 1.0 - cdf(n - 1));
}

SharedPoissonTail::SharedPoissonTail(double mean, std::size_t n_max) : mean_(mean) {
  require_valid_mean(mean);
  const std::size_t count = n_max + 1;
  if (core::exactly_zero(mean_)) {  // point mass at 0; log-domain fill would form 0*log(0)
    cdf_.assign(count, 1.0);
    return;
  }
  // Vectorized mass fill, then the same sequential clamped prefix sum
  // PoissonCdfTable uses — the two table forms agree bitwise on the covered
  // range.
  std::vector<double> mass;
  fill_poisson_masses(mass, count, mean_);
  cdf_.resize(count);
  cdf_[0] = mass[0];
  for (std::size_t i = 1; i < count; ++i) cdf_[i] = std::min(cdf_[i - 1] + mass[i], 1.0);
}

double SharedPoissonTail::cdf(std::size_t n) const {
  if (n < cdf_.size()) return cdf_[n];
  // Beyond the precomputed range (possible only when the caller's sizing
  // hint was too small): sum the remaining masses on the fly. No mutation,
  // so concurrent readers stay race-free.
  double acc = cdf_.back();
  for (std::size_t i = cdf_.size(); i <= n; ++i) acc += poisson_pmf(i, mean_);
  return std::min(acc, 1.0);
}

double SharedPoissonTail::tail(std::size_t n) const {
  if (n == 0) return 1.0;
  return std::max(0.0, 1.0 - cdf(n - 1));
}

PoissonTailCache& PoissonTailCache::global() {
  static PoissonTailCache cache;
  return cache;
}

std::shared_ptr<const SharedPoissonTail> PoissonTailCache::table(double mean,
                                                                std::size_t n_max) const {
  require_valid_mean(mean);
  // Build out to the hard truncation cap regardless of the caller's hint:
  // the explorers query tail() at every depth they visit, and depths past
  // the caller's truncation point would otherwise fall into
  // SharedPoissonTail::cdf's per-call summation fallback on every query.
  const std::size_t sized = std::max(n_max, poisson_hard_cap(mean) + 2);
  const std::lock_guard<std::mutex> lock(mutex_);
  ++tick_;
  for (auto& slot : tables_) {
    if (!core::exactly_equal(slot.table->mean(), mean)) continue;
    slot.last_use = tick_;
    if (slot.table->table_size() > sized) return slot.table;
    slot.table = std::make_shared<const SharedPoissonTail>(mean, sized);
    return slot.table;
  }
  if (tables_.size() >= kCapacity) {
    std::size_t victim = 0;
    for (std::size_t i = 1; i < tables_.size(); ++i) {
      if (tables_[i].last_use < tables_[victim].last_use) victim = i;
    }
    tables_.erase(tables_.begin() + static_cast<std::ptrdiff_t>(victim));
    obs::counter_add("poisson.tail_cache_evictions");
  }
  tables_.push_back(Slot{std::make_shared<const SharedPoissonTail>(mean, sized), tick_});
  obs::gauge_max("poisson.tail_cache_occupancy", tables_.size());
  return tables_.back().table;
}

}  // namespace csrlmrm::numeric

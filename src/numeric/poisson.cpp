#include "numeric/poisson.hpp"

#include <cmath>
#include <stdexcept>
#include "core/approx.hpp"

namespace csrlmrm::numeric {

namespace {
void require_valid_mean(double mean) {
  if (!(mean >= 0.0) || !std::isfinite(mean)) {
    throw std::invalid_argument("poisson: mean must be finite and >= 0");
  }
}

// std::lgamma writes the global `signgam` (a data race when the thread pool
// evaluates Poisson masses concurrently); the argument here is always >= 1,
// so the sign is irrelevant and the reentrant variant is safe to use.
double log_gamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  // Non-glibc/Apple fallback only: no lgamma_r on this platform, and the
  // serial call sites tolerate the signgam write.
  return std::lgamma(x);  // lint:allow(unsafe-libm)
#endif
}
}  // namespace

double poisson_pmf(std::size_t n, double mean) {
  require_valid_mean(mean);
  if (core::exactly_zero(mean)) return n == 0 ? 1.0 : 0.0;
  const double dn = static_cast<double>(n);
  return std::exp(dn * std::log(mean) - mean - log_gamma(dn + 1.0));
}

double poisson_cdf(std::size_t n, double mean) {
  require_valid_mean(mean);
  double acc = 0.0;
  for (std::size_t i = 0; i <= n; ++i) acc += poisson_pmf(i, mean);
  return std::min(acc, 1.0);
}

std::vector<double> poisson_pmf_sequence(std::size_t n_max, double mean) {
  require_valid_mean(mean);
  std::vector<double> pmf(n_max + 1, 0.0);
  for (std::size_t i = 0; i <= n_max; ++i) pmf[i] = poisson_pmf(i, mean);
  return pmf;
}

std::size_t poisson_truncation_point(double mean, double epsilon) {
  require_valid_mean(mean);
  if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
    throw std::invalid_argument("poisson_truncation_point: epsilon must be in (0,1)");
  }
  double cumulative = 0.0;
  std::size_t n = 0;
  // Accumulate until the captured mass reaches 1 - epsilon. The loop is
  // bounded: past the mode the masses decay faster than geometrically, so we
  // cap iterations generously relative to the mean.
  const std::size_t hard_cap = static_cast<std::size_t>(mean + 40.0 * std::sqrt(mean + 1.0)) + 64;
  for (;; ++n) {
    cumulative += poisson_pmf(n, mean);
    if (cumulative >= 1.0 - epsilon || n >= hard_cap) return n;
  }
}

PoissonCdfTable::PoissonCdfTable(double mean) : mean_(mean) {
  require_valid_mean(mean);
  cdf_.push_back(poisson_pmf(0, mean_));
}

double PoissonCdfTable::cdf(std::size_t n) {
  while (cdf_.size() <= n) {
    const std::size_t i = cdf_.size();
    cdf_.push_back(std::min(cdf_.back() + poisson_pmf(i, mean_), 1.0));
  }
  return cdf_[n];
}

double PoissonCdfTable::tail(std::size_t n) {
  if (n == 0) return 1.0;
  return std::max(0.0, 1.0 - cdf(n - 1));
}

SharedPoissonTail::SharedPoissonTail(double mean, std::size_t n_max) : mean_(mean) {
  require_valid_mean(mean);
  cdf_.reserve(n_max + 1);
  cdf_.push_back(poisson_pmf(0, mean_));
  for (std::size_t i = 1; i <= n_max; ++i) {
    cdf_.push_back(std::min(cdf_.back() + poisson_pmf(i, mean_), 1.0));
  }
}

double SharedPoissonTail::cdf(std::size_t n) const {
  if (n < cdf_.size()) return cdf_[n];
  // Beyond the precomputed range (possible only when the caller's sizing
  // hint was too small): sum the remaining masses on the fly. No mutation,
  // so concurrent readers stay race-free.
  double acc = cdf_.back();
  for (std::size_t i = cdf_.size(); i <= n; ++i) acc += poisson_pmf(i, mean_);
  return std::min(acc, 1.0);
}

double SharedPoissonTail::tail(std::size_t n) const {
  if (n == 0) return 1.0;
  return std::max(0.0, 1.0 - cdf(n - 1));
}

std::shared_ptr<const SharedPoissonTail> PoissonTailCache::table(double mean,
                                                                std::size_t n_max) const {
  require_valid_mean(mean);
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : tables_) {
    if (!core::exactly_equal(entry->mean(), mean)) continue;
    if (entry->table_size() > n_max) return entry;
    entry = std::make_shared<const SharedPoissonTail>(mean, n_max);
    return entry;
  }
  tables_.push_back(std::make_shared<const SharedPoissonTail>(mean, n_max));
  return tables_.back();
}

}  // namespace csrlmrm::numeric

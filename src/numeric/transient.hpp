// Standard transient analysis of a CTMC by uniformization (eq. 2.2):
//
//   p(t) = sum_{i>=0} PoissonPmf(i; Lambda t) * p(0) * P^i
//
// truncated at the Poisson point capturing mass 1 - epsilon. This is the
// workhorse for the P1 class of until formulas (time bound, no reward bound,
// Theorem 4.1 + [Bai03]) and the reference oracle several property tests
// compare the reward engines against.
#pragma once

#include <vector>

#include "core/rate_matrix.hpp"
#include "linalg/csr_matrix.hpp"

namespace csrlmrm::numeric {

/// Options for the transient solver.
struct TransientOptions {
  /// Total truncation error budget for the Poisson sum.
  double epsilon = 1e-12;
};

/// State occupation probabilities at time t >= 0 starting from distribution
/// `initial` (must have one entry per state, sum 1 within 1e-6). Throws
/// std::invalid_argument on bad inputs.
std::vector<double> transient_distribution(const core::RateMatrix& rates,
                                           const std::vector<double>& initial, double t,
                                           const TransientOptions& options = {});

/// Convenience: transient distribution started from a single state.
std::vector<double> transient_distribution_from(const core::RateMatrix& rates,
                                                core::StateIndex start, double t,
                                                const TransientOptions& options = {});

/// The uniformized one-step matrix P = I + Q/Lambda with Lambda = max exit
/// rate (1 for an all-absorbing chain); `lambda_out` receives Lambda. Shared
/// by the transient solver and the expected-reward measures.
linalg::CsrMatrix uniformized_transition_matrix(const core::RateMatrix& rates,
                                                double& lambda_out);

/// Expected occupation times E[L_s(t)] = E[ time spent in s during [0,t] ]
/// for every state, started from `initial`; computed by uniformization via
/// int_0^t PoissonPmf(k; Lambda u) du = Pr{N_t >= k+1} / Lambda. The entries
/// sum to t.
std::vector<double> expected_occupation_times(const core::RateMatrix& rates,
                                              const std::vector<double>& initial, double t,
                                              const TransientOptions& options = {});

}  // namespace csrlmrm::numeric

// Standard transient analysis of a CTMC by uniformization (eq. 2.2):
//
//   p(t) = sum_{i>=0} PoissonPmf(i; Lambda t) * p(0) * P^i
//
// truncated at the Poisson point capturing mass 1 - epsilon. This is the
// workhorse for the P1 class of until formulas (time bound, no reward bound,
// Theorem 4.1 + [Bai03]) and the reference oracle several property tests
// compare the reward engines against.
//
// The Poisson series ping-pongs two preallocated buffers (no per-term
// allocation). With threads > 1 the vector-matrix product runs row-parallel
// over P^T (the gather form accumulates every output entry in the same
// ascending-source order as the serial scatter, so parallel results are
// bitwise-identical to serial ones).
#pragma once

#include <vector>

#include "core/rate_matrix.hpp"
#include "linalg/csr_matrix.hpp"

namespace csrlmrm::numeric {

/// Options for the transient solver.
struct TransientOptions {
  /// Total truncation error budget for the Poisson sum.
  double epsilon = 1e-12;
  /// Worker threads for the series' matrix-vector products and for batched
  /// per-start-state fan-out; 0 = the process default (CSRLMRM_THREADS or
  /// hardware concurrency).
  unsigned threads = 0;
  /// Steady-state detection (Malhotra '94 / Reibman-Trivedi '88 style): once
  /// successive series terms differ by delta with
  /// delta * (terms remaining) <= steady_epsilon, the remaining Poisson mass
  /// is folded into the current term in one axpy instead of advancing the
  /// series to the Fox-Glynn right edge, so depth stops scaling with
  /// Lambda*t on stiff models. The cut is sound — the contraction of the
  /// uniformized iteration bounds the per-state error by the reported
  /// TransientResult::steady_error <= steady_epsilon — but the folded result
  /// is numerically different from the full series, so detection is opt-in
  /// (off by default; paper-scale results stay bitwise unchanged).
  bool detect_steady_state = false;
  /// Absolute per-state error budget for the steady-state fold.
  double steady_epsilon = 1e-12;
};

/// A transient solve plus the accounting a sound interval verdict needs.
struct TransientResult {
  /// The per-state result vector (a distribution for the forward series, hit
  /// probabilities for the backward series).
  std::vector<double> values;
  /// Bound on the additional two-sided per-state error introduced by the
  /// steady-state fold; 0.0 when detection is off or never fired. The
  /// one-sided Fox-Glynn truncation budget `epsilon` is accounted separately
  /// by callers, as before.
  double steady_error = 0.0;
  /// True iff the series was cut by steady-state detection.
  bool steady_state_detected = false;
  /// Series terms actually accumulated (1 + the number of matrix products).
  std::size_t series_terms = 0;
};

/// State occupation probabilities at time t >= 0 starting from distribution
/// `initial` (must have one entry per state, sum 1 within 1e-6). Throws
/// std::invalid_argument on bad inputs.
std::vector<double> transient_distribution(const core::RateMatrix& rates,
                                           const std::vector<double>& initial, double t,
                                           const TransientOptions& options = {});

/// transient_distribution with the steady-state accounting exposed: the
/// distribution plus the fold error, detection flag, and term count. With
/// options.detect_steady_state == false the values are bitwise identical to
/// transient_distribution's.
TransientResult transient_distribution_checked(const core::RateMatrix& rates,
                                               const std::vector<double>& initial, double t,
                                               const TransientOptions& options = {});

/// Backward uniformization: values[s] = Pr{ X(t) is in `target` | X(0) = s }
/// for EVERY state s, from one column-vector series u_{k+1} = P u_k started
/// at the indicator of `target` — O(nnz * terms) total, where the forward
/// route costs one full series per start state. For an absorbing target set
/// (the P1 until transform M[!Phi v Psi]) this is the probability of
/// reaching `target` within t. The per-state truncation error is bounded by
/// options.epsilon (one-sided, lost mass) plus the reported steady_error
/// (two-sided) when detection fires; the backward iteration contracts in the
/// max norm, which makes the steady-state criterion sound here.
TransientResult transient_hit_probabilities(const core::RateMatrix& rates,
                                            const std::vector<bool>& target, double t,
                                            const TransientOptions& options = {});

/// Convenience: transient distribution started from a single state.
std::vector<double> transient_distribution_from(const core::RateMatrix& rates,
                                                core::StateIndex start, double t,
                                                const TransientOptions& options = {});

/// Transient distributions from many start states at the same horizon t:
/// result[i] is the distribution started from starts[i]. The uniformized
/// matrix and Fox-Glynn window are computed once and shared; the start
/// states fan out over the thread pool (options.threads), each running the
/// serial series, so every row is bitwise-identical to the corresponding
/// transient_distribution_from call.
std::vector<std::vector<double>> transient_distributions_from_states(
    const core::RateMatrix& rates, const std::vector<core::StateIndex>& starts, double t,
    const TransientOptions& options = {});

/// The uniformized one-step matrix P = I + Q/Lambda with Lambda = max exit
/// rate (1 for an all-absorbing chain); `lambda_out` receives Lambda. Shared
/// by the transient solver and the expected-reward measures.
linalg::CsrMatrix uniformized_transition_matrix(const core::RateMatrix& rates,
                                                double& lambda_out);

/// Expected occupation times E[L_s(t)] = E[ time spent in s during [0,t] ]
/// for every state, started from `initial`; computed by uniformization via
/// int_0^t PoissonPmf(k; Lambda u) du = Pr{N_t >= k+1} / Lambda. The entries
/// sum to t.
std::vector<double> expected_occupation_times(const core::RateMatrix& rates,
                                              const std::vector<double>& initial, double t,
                                              const TransientOptions& options = {});

}  // namespace csrlmrm::numeric

#include "numeric/conditional.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/approx.hpp"
#include "obs/stats.hpp"

namespace csrlmrm::numeric {

// Snapping the mantissa to 40 bits merges thresholds that differ only in the
// last few ulps — the typical outcome of computing r/t - r_{K+1} - (1/t) *
// sum i_i j_i with summands in a different association. The relative
// perturbation is at most 2^-41 (~4.5e-13), far below the Omega recursion's
// own conditioning, and every query against a given evaluator uses the same
// canonical value, so results stay deterministic.
double canonical_threshold(double r_prime) {
  if (!std::isfinite(r_prime) || core::exactly_zero(r_prime)) return r_prime;
  int exponent = 0;
  const double mantissa = std::frexp(r_prime, &exponent);
  constexpr double kScale = 1099511627776.0;  // 2^40
  return std::ldexp(std::nearbyint(mantissa * kScale) / kScale, exponent);
}

SharedOmegaCache& SharedOmegaCache::global() {
  static SharedOmegaCache cache;
  return cache;
}

std::shared_ptr<const OmegaEvaluator> SharedOmegaCache::evaluator(
    const std::vector<double>& coefficients, double canonical_r_prime) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++tick_;
  const auto it = entries_.find(Key{coefficients, canonical_r_prime});
  if (it != entries_.end()) {
    it->second.last_use = tick_;
    obs::counter_add("omega.shared_cache_hits");
    return it->second.evaluator;
  }
  obs::counter_add("omega.shared_cache_misses");
  obs::counter_add("omega.evaluators_built");
  if (capacity_ > 0 && entries_.size() >= capacity_) {
    // O(n) LRU scan; the capacity is small and misses are rare once warm.
    auto victim = entries_.begin();
    for (auto cand = entries_.begin(); cand != entries_.end(); ++cand) {
      if (cand->second.last_use < victim->second.last_use) victim = cand;
    }
    entries_.erase(victim);
    obs::counter_add("omega.shared_cache_evictions");
  }
  auto built = std::make_shared<const OmegaEvaluator>(coefficients, canonical_r_prime);
  entries_.emplace(Key{coefficients, canonical_r_prime}, Entry{built, tick_});
  return built;
}

std::size_t SharedOmegaCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void SharedOmegaCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  tick_ = 0;
}

namespace {

void require_strictly_decreasing(const std::vector<double>& v, const char* what) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i]) || v[i] < 0.0) {
      throw std::invalid_argument(std::string(what) + ": rewards must be finite and >= 0");
    }
    if (i > 0 && !(v[i - 1] > v[i])) {
      throw std::invalid_argument(std::string(what) + ": rewards must be strictly decreasing");
    }
  }
}
}  // namespace

RewardStructureContext::RewardStructureContext(std::vector<double> state_rewards_desc,
                                               std::vector<double> impulse_rewards_desc)
    : state_rewards_(std::move(state_rewards_desc)),
      impulse_rewards_(std::move(impulse_rewards_desc)) {
  if (state_rewards_.empty()) {
    throw std::invalid_argument("RewardStructureContext: need at least one state-reward class");
  }
  require_strictly_decreasing(state_rewards_, "RewardStructureContext(state rewards)");
  require_strictly_decreasing(impulse_rewards_, "RewardStructureContext(impulse rewards)");

  const double smallest = state_rewards_.back();
  coefficients_.reserve(state_rewards_.size());
  for (double ri : state_rewards_) coefficients_.push_back(ri - smallest);
}

double RewardStructureContext::threshold(const SpacingCounts& j, double t, double r) const {
  if (j.size() != impulse_rewards_.size()) {
    throw std::invalid_argument("RewardStructureContext: impulse count vector size mismatch");
  }
  if (!(t > 0.0)) throw std::invalid_argument("RewardStructureContext: t must be positive");
  if (!std::isfinite(r) || r < 0.0) {
    throw std::invalid_argument("RewardStructureContext: reward bound must be finite and >= 0");
  }
  double impulse_total = 0.0;
  for (std::size_t i = 0; i < j.size(); ++i) {
    impulse_total += impulse_rewards_[i] * static_cast<double>(j[i]);
  }
  return threshold_for_total(impulse_total, t, r);
}

double RewardStructureContext::threshold_for_total(double impulse_total, double t,
                                                   double r) const {
  if (!(t > 0.0)) throw std::invalid_argument("RewardStructureContext: t must be positive");
  if (!std::isfinite(r) || r < 0.0) {
    throw std::invalid_argument("RewardStructureContext: reward bound must be finite and >= 0");
  }
  return r / t - state_rewards_.back() - impulse_total / t;
}

double RewardStructureContext::conditional_probability(const SpacingCounts& k,
                                                       const SpacingCounts& j, double t,
                                                       double r) {
  if (k.size() != state_rewards_.size()) {
    throw std::invalid_argument("RewardStructureContext: state count vector size mismatch");
  }
  const std::uint64_t residences =
      std::accumulate(k.begin(), k.end(), std::uint64_t{0},
                      [](std::uint64_t acc, std::uint32_t v) { return acc + v; });
  if (residences == 0) {
    throw std::invalid_argument("RewardStructureContext: a path visits at least one state");
  }

  return conditional_probability_for_threshold(k, threshold(j, t, r));
}

double RewardStructureContext::conditional_probability_for_threshold(const SpacingCounts& k,
                                                                     double r_prime) {
  if (k.size() != state_rewards_.size()) {
    throw std::invalid_argument("RewardStructureContext: state count vector size mismatch");
  }
  obs::counter_add("omega.evaluations");
  const double canonical = canonical_threshold(r_prime);
  auto it = evaluators_.find(canonical);
  if (it == evaluators_.end()) {
    it = evaluators_.emplace(canonical, SharedOmegaCache::global().evaluator(coefficients_, canonical))
             .first;
  }
  return it->second->evaluate(k);
}

}  // namespace csrlmrm::numeric

// The Omega recursion of Diniz, de Souza e Silva & Gail [Din02]
// (Algorithm 4.8 of the thesis): the distribution of a linear combination of
// uniform order statistics, written as a weighted sum of the spacings
// Y_1..Y_{n+1} of n iid U(0,1) points,
//
//   Omega(r, k) = Pr{ sum_l c_l * (sum of k_l spacings) <= r }.
//
// The recursion
//   Omega(r,k) = (c_i - r)/(c_i - c_j) * Omega(r, k - 1_j)
//              + (r - c_j)/(c_i - c_j) * Omega(r, k - 1_i)
// with i drawn from G = {l : c_l > r}, j from L = {l : c_l <= r}, and base
// cases Omega = 1 when ||k_G|| = 0 and Omega = 0 when ||k_L|| = 0, only ever
// multiplies numbers in [0,1] — this is the numerical-stability property the
// thesis adopts it for, replacing the unstable Weisberg/Matsunawa methods.
//
// The evaluator memoizes sub-vectors of k, so a full evaluation of a count
// vector k costs O(prod_l (k_l + 1)) instead of the exponential naive
// recursion; evaluations for the same threshold r share the cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace csrlmrm::numeric {

/// Count vector type: counts_[l] spacings carry coefficient c_l.
using SpacingCounts = std::vector<std::uint32_t>;

/// Memoizing evaluator for one fixed threshold r and coefficient vector c.
class OmegaEvaluator {
 public:
  /// `coefficients` are the distinct c_l (any order, need not be sorted);
  /// `r` is the threshold. Throws std::invalid_argument if coefficients are
  /// empty, non-finite, or contain duplicates.
  OmegaEvaluator(std::vector<double> coefficients, double r);

  /// Omega(r, counts). counts must have one entry per coefficient.
  /// With all counts zero the sum is empty and the result is 1 if r >= 0
  /// else 0.
  double evaluate(const SpacingCounts& counts);

  double threshold() const { return r_; }
  const std::vector<double>& coefficients() const { return c_; }

  /// Number of memoized sub-problems (exposed for the ablation bench).
  std::size_t cache_size() const { return memo_.size(); }

 private:
  struct CountsHash {
    std::size_t operator()(const SpacingCounts& k) const noexcept;
  };

  double evaluate_recursive(SpacingCounts& counts);

  std::vector<double> c_;
  double r_;
  std::vector<bool> greater_;  // greater_[l] <=> c_l > r
  std::unordered_map<SpacingCounts, double, CountsHash> memo_;
};

/// One-shot convenience wrapper around OmegaEvaluator.
double omega(double r, const std::vector<double>& coefficients, const SpacingCounts& counts);

}  // namespace csrlmrm::numeric

// The Omega recursion of Diniz, de Souza e Silva & Gail [Din02]
// (Algorithm 4.8 of the thesis): the distribution of a linear combination of
// uniform order statistics, written as a weighted sum of the spacings
// Y_1..Y_{n+1} of n iid U(0,1) points,
//
//   Omega(r, k) = Pr{ sum_l c_l * (sum of k_l spacings) <= r }.
//
// The recursion
//   Omega(r,k) = (c_i - r)/(c_i - c_j) * Omega(r, k - 1_j)
//              + (r - c_j)/(c_i - c_j) * Omega(r, k - 1_i)
// with i drawn from G = {l : c_l > r}, j from L = {l : c_l <= r}, and base
// cases Omega = 1 when ||k_G|| = 0 and Omega = 0 when ||k_L|| = 0, only ever
// multiplies numbers in [0,1] — this is the numerical-stability property the
// thesis adopts it for, replacing the unstable Weisberg/Matsunawa methods.
//
// Because the pivots i and j are always the first nonzero class on each
// side, every reachable sub-problem is determined by the pair
// (g, l) = (decrements taken from G so far, decrements taken from L so far):
// the counts left on each side are the original staircase with its first g
// (resp. l) units removed in class-index order. The evaluator therefore
// solves the recursion as a dense wavefront DP over the (||k_G||+1) x
// (||k_L||+1) lattice — one anti-diagonal at a time, in place, with the
// inner sweep vectorized via core/simd.hpp — instead of hashing count
// vectors into a memo table. Cell values are bit-identical to the memoized
// recursion (same expression, same operands, each cell computed once); only
// the traversal order changed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace csrlmrm::numeric {

/// Count vector type: counts_[l] spacings carry coefficient c_l.
using SpacingCounts = std::vector<std::uint32_t>;

/// Wavefront-DP evaluator for one fixed threshold r and coefficient vector
/// c. Stateless after construction: evaluate() is const and safe to call
/// concurrently from multiple threads on a shared instance.
class OmegaEvaluator {
 public:
  /// `coefficients` are the distinct c_l (any order, need not be sorted);
  /// `r` is the threshold. Throws std::invalid_argument if coefficients are
  /// empty, non-finite, or contain duplicates.
  OmegaEvaluator(std::vector<double> coefficients, double r);

  /// Omega(r, counts). counts must have one entry per coefficient.
  /// With all counts zero the sum is empty and the result is 1 if r >= 0
  /// else 0. Costs O(||k_G|| * ||k_L||) cell updates and O(||k||) memory.
  double evaluate(const SpacingCounts& counts) const;

  double threshold() const { return r_; }
  const std::vector<double>& coefficients() const { return c_; }

 private:
  std::vector<double> c_;
  double r_;
  std::vector<bool> greater_;  // greater_[l] <=> c_l > r
};

/// One-shot convenience wrapper around OmegaEvaluator.
double omega(double r, const std::vector<double>& coefficients, const SpacingCounts& counts);

}  // namespace csrlmrm::numeric

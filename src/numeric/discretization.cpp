#include "numeric/discretization.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/approx.hpp"
#include "core/simd.hpp"
#include "obs/stats.hpp"
#include "parallel/thread_pool.hpp"

namespace csrlmrm::numeric {

namespace {

bool is_integral(double v, double scale = 1.0) {
  return std::abs(v - std::round(v)) <= 1e-9 * std::max(1.0, std::abs(scale));
}

/// dst[k] += a * src[k] over a contiguous range — the level-sweep kernel,
/// vectorized explicitly (no per-iteration index shifting).
void shifted_axpy(double* dst, const double* src, std::size_t count, double a) {
  core::simd::axpy(dst, src, count, a);
}

}  // namespace

unsigned find_integer_scale(const std::vector<double>& values, unsigned max_scale) {
  for (unsigned f = 1; f <= max_scale; ++f) {
    bool all_integral = true;
    for (double v : values) {
      if (!is_integral(v * f, v * f)) {
        all_integral = false;
        break;
      }
    }
    if (all_integral) return f;
  }
  throw std::domain_error(
      "find_integer_scale: no integer factor <= " + std::to_string(max_scale) +
      " makes the state rewards integral; rescale the reward structure manually");
}

UntilDiscretizationResult until_probability_discretization(
    const core::Mrm& transformed, const std::vector<bool>& psi, core::StateIndex start,
    double t, double r, const DiscretizationOptions& options) {
  obs::ScopedTimer timer("discretization.until");
  obs::counter_add("discretization.calls");
  const std::size_t n = transformed.num_states();
  if (psi.size() != n) {
    throw std::invalid_argument("until_probability_discretization: psi mask size mismatch");
  }
  if (start >= n) {
    throw std::invalid_argument("until_probability_discretization: start out of range");
  }
  if (!(t >= 0.0) || !std::isfinite(t) || !(r >= 0.0) || !std::isfinite(r)) {
    throw std::invalid_argument(
        "until_probability_discretization: t and r must be finite and >= 0");
  }
  const double d = options.step;
  if (!(d > 0.0) || !std::isfinite(d)) {
    throw std::invalid_argument("until_probability_discretization: step must be positive");
  }

  UntilDiscretizationResult result;
  if (core::exactly_zero(t)) {
    result.probability = psi[start] ? 1.0 : 0.0;
    return result;
  }

  const double max_exit = transformed.rates().max_exit_rate();
  if (max_exit * d >= 1.0) {
    throw std::invalid_argument(
        "until_probability_discretization: step too coarse (d * max exit rate = " +
        std::to_string(max_exit * d) + " >= 1); choose d < " + std::to_string(1.0 / max_exit));
  }
  if (!is_integral(t / d, t / d)) {
    throw std::invalid_argument(
        "until_probability_discretization: t must be an integer multiple of the step d");
  }
  const std::size_t time_steps = static_cast<std::size_t>(std::llround(t / d));

  // Scale rational state rewards (and with them the impulses and the bound)
  // to integers, as section 4.4.1 prescribes.
  const unsigned scale = find_integer_scale(transformed.state_rewards(),
                                            options.max_reward_scale);
  const double fscale = static_cast<double>(scale);

  // Integer level advance per time step of residence in each state.
  std::vector<std::size_t> residence_shift(n, 0);
  for (core::StateIndex s = 0; s < n; ++s) {
    residence_shift[s] =
        static_cast<std::size_t>(std::llround(transformed.state_reward(s) * fscale));
  }

  // Grid sizing, checked in floating point *before* the integer cast: a
  // large r or tiny d would overflow the cast and/or attempt an n * levels
  // allocation far beyond memory, dying with bad_alloc instead of a
  // diagnosis.
  const double levels_estimate = std::floor(r * fscale / d + 1e-9) + 1.0;  // levels 0..R
  const double cells_estimate = static_cast<double>(n) * levels_estimate;
  if (!(cells_estimate <= static_cast<double>(options.max_grid_cells))) {
    throw std::invalid_argument(
        "until_probability_discretization: reward grid of " + std::to_string(n) +
        " states x " + std::to_string(levels_estimate) +
        " levels exceeds max_grid_cells = " + std::to_string(options.max_grid_cells) +
        "; choose a coarser step d, a smaller reward bound r, or the uniformization engine");
  }
  const std::size_t levels = static_cast<std::size_t>(levels_estimate);
  const std::size_t non_zeros = transformed.rates().matrix().non_zeros();

  // Incoming adjacency per target state: (source, R(source,target)*d,
  // level shift = rho(source) + iota(source,target)/d). Arcs whose shift
  // falls beyond the level cap can never deposit mass inside the grid, so
  // they are dropped here instead of being re-tested every time step.
  struct Incoming {
    core::StateIndex source;
    double probability;     // R(s',s) * d
    std::size_t shift;      // residence + impulse levels consumed
  };
  std::vector<std::vector<Incoming>> incoming(n);
  for (core::StateIndex s_from = 0; s_from < n; ++s_from) {
    for (const auto& e : transformed.rates().transitions(s_from)) {
      const double impulse = transformed.impulse_reward(s_from, e.col);
      const double impulse_levels = impulse * fscale / d;
      if (!is_integral(impulse_levels, impulse_levels)) {
        throw std::invalid_argument(
            "until_probability_discretization: impulse reward " + std::to_string(impulse) +
            " is not a multiple of the (scaled) step; choose d dividing the impulse rewards");
      }
      const std::size_t shift =
          residence_shift[s_from] + static_cast<std::size_t>(std::llround(impulse_levels));
      if (shift >= levels) continue;
      incoming[e.col].push_back({s_from, e.value * d, shift});
    }
  }

  // Probability-mass formulation of Algorithm 4.6: cur[s * levels + k] is the
  // probability of being in s with accumulated reward in level k after the
  // current number of steps (the paper's density F relates by a factor 1/d).
  std::vector<double> cur(n * levels, 0.0);
  std::vector<double> next(n * levels, 0.0);
  if (residence_shift[start] < levels) {
    cur[start * levels + residence_shift[start]] = 1.0;
  }

  // Invariant per-state factors, hoisted out of the time loop: the stay
  // probability 1 - E(s) d and whether the residence term can deposit mass
  // at all (positive stay probability, shift below the level cap).
  std::vector<double> stay(n, 0.0);
  std::vector<bool> residence_active(n, false);
  for (core::StateIndex s = 0; s < n; ++s) {
    stay[s] = 1.0 - transformed.rates().exit_rate(s) * d;
    residence_active[s] = stay[s] > 0.0 && residence_shift[s] < levels;
  }

  // Conservative per-state emptiness of the current grid rows: a row only
  // becomes nonzero by receiving mass from a nonzero row, so propagating one
  // boolean per state along the same residence/incoming structure (O(degree)
  // per row, not O(levels)) lets the sweep skip every shifted-add sourced
  // from a still-empty row — the analogue of the xr == 0.0 skip in
  // CsrMatrix::left_multiply. All grid entries are non-negative, so skipping
  // an empty source only omits += 0.0 terms and the result stays
  // bitwise-identical. Until the probability mass reaches a state (graph
  // distance many steps), its whole row sweep collapses to a fill.
  std::vector<char> row_nonzero(n, 0);
  std::vector<char> next_nonzero(n, 0);
  if (residence_shift[start] < levels) row_nonzero[start] = 1;

  // The level sweep: each target state's next_row is written by exactly one
  // task, in residence-then-incoming order, so the parallel sweep is
  // bitwise-identical to the serial one for every thread count.
  const unsigned threads = parallel::choose_thread_count(
      options.threads, n > 0 ? time_steps * levels * (1 + non_zeros / n) : 0);
  for (std::size_t step = 1; step < time_steps; ++step) {
    parallel::parallel_for(n, threads, [&](std::size_t begin, std::size_t end) {
      for (core::StateIndex s = begin; s < end; ++s) {
        double* next_row = next.data() + s * levels;
        char touched = 0;
        // Residence term: stay in s, advance reward by rho(s) levels.
        if (residence_active[s] && row_nonzero[s]) {
          std::fill(next_row, next_row + residence_shift[s], 0.0);
          const double* cur_row = cur.data() + s * levels;
          double* dst = next_row + residence_shift[s];
          const std::size_t count = levels - residence_shift[s];
          core::simd::scale(dst, cur_row, count, stay[s]);
          touched = 1;
        } else {
          std::fill(next_row, next_row + levels, 0.0);
        }
        // Transition terms: arrive from s', consuming rho(s') + iota levels.
        for (const Incoming& in : incoming[s]) {
          if (!row_nonzero[in.source]) continue;
          shifted_axpy(next_row + in.shift, cur.data() + in.source * levels,
                       levels - in.shift, in.probability);
          touched = 1;
        }
        next_nonzero[s] = touched;
      }
    });
    cur.swap(next);
    row_nonzero.swap(next_nonzero);
  }

  double probability = 0.0;
  for (core::StateIndex s = 0; s < n; ++s) {
    if (!psi[s]) continue;
    const double* row = cur.data() + s * levels;
    for (std::size_t k = 0; k < levels; ++k) probability += row[k];
  }

  result.probability = probability;
  // O(d) error band (see UntilDiscretizationResult::error_bound): discarded
  // multi-jump mass per step plus one step of boundary quantization.
  result.error_bound =
      std::min(1.0, 0.5 * t * max_exit * max_exit * d + max_exit * d);
  result.time_steps = time_steps;
  result.reward_levels = levels;
  result.reward_scale = scale;
  obs::counter_add("discretization.time_steps", time_steps);
  obs::gauge_max("discretization.reward_levels", static_cast<double>(levels));
  obs::gauge_max("discretization.reward_scale", static_cast<double>(scale));
  return result;
}

}  // namespace csrlmrm::numeric

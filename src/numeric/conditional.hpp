// Conditional accumulated-reward probabilities (section 4.6.3):
//
//   Pr{ Y(t) <= r | n, k, j }
//     = Pr{ sum_{i=1}^{K} (r_i - r_{i+1}) U_{(k_1+..+k_i)}(1)
//             <= r/t - r_{K+1} - (1/t) sum_i i_i j_i }        (eq. 4.9)
//     = Omega(r', k)  with coefficients d_i = r_i - r_{K+1}   (eq. 4.10)
//
// where r_1 > ... > r_{K+1} are the distinct state rewards of the model,
// i_1 > ... > i_J its distinct impulse rewards, k counts Poisson-epoch
// residences per state-reward class along a uniformized path, and j counts
// transition occurrences per impulse class. The context below owns the
// distinct-reward bookkeeping and caches one OmegaEvaluator per distinct
// threshold r' (paths with the same impulse signature share an evaluator and
// hence its memo table).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "numeric/omega.hpp"

namespace csrlmrm::numeric {

/// Canonical representation of a threshold r' for evaluator caching and
/// class grouping: the mantissa is snapped to 40 bits (relative perturbation
/// <= 2^-41), so thresholds that agree mathematically but differ by
/// floating-point rounding — e.g. two impulse signatures whose totals are
/// equal — map to one representative. Idempotent; preserves 0 and infinities.
double canonical_threshold(double r_prime);

/// Process-wide, capacity-bounded, thread-safe cache of Omega evaluators
/// keyed by (coefficient vector, canonical threshold). The coefficient
/// vector IS the model's reward fingerprint — two models with identical
/// distinct-reward spacings share evaluators soundly because an evaluator is
/// a pure function of (coefficients, threshold). RewardStructureContext
/// keeps a small per-context map in front of this cache, so the shared map
/// (and its mutex) is only consulted the first time a context sees a
/// threshold; across checker fan-outs and multi-start batches the same
/// evaluator is then reused instead of re-derived per run. Eviction is LRU
/// by lookup order; handed-out evaluators stay valid after eviction.
/// Observability: "omega.shared_cache_hits" / "omega.shared_cache_misses" /
/// "omega.shared_cache_evictions".
class SharedOmegaCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit SharedOmegaCache(std::size_t capacity = kDefaultCapacity) : capacity_(capacity) {}

  /// The process-wide instance every RewardStructureContext consults.
  static SharedOmegaCache& global();

  /// The evaluator for (coefficients, canonical_r_prime), building and
  /// caching it on first request. `canonical_r_prime` must already be
  /// canonicalized (callers go through canonical_threshold).
  std::shared_ptr<const OmegaEvaluator> evaluator(const std::vector<double>& coefficients,
                                                  double canonical_r_prime);

  std::size_t size() const;

  /// Drops every cached evaluator (handed-out shared_ptrs stay valid).
  /// Benchmarks use this to emulate a cold process between runs; production
  /// code has no reason to call it.
  void clear();

 private:
  using Key = std::pair<std::vector<double>, double>;
  struct Entry {
    std::shared_ptr<const OmegaEvaluator> evaluator;
    std::uint64_t last_use = 0;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::uint64_t tick_ = 0;       // lint:guarded_by(mutex_)
  std::map<Key, Entry> entries_;  // lint:guarded_by(mutex_)
};

/// Precomputed reward bookkeeping for conditional-probability queries.
class RewardStructureContext {
 public:
  /// `state_rewards_desc` must be strictly decreasing (the distinct rho
  /// values, largest first); `impulse_rewards_desc` likewise for the distinct
  /// iota values. Either may include 0. Throws std::invalid_argument when a
  /// vector is unsorted, has duplicates, or state_rewards_desc is empty.
  RewardStructureContext(std::vector<double> state_rewards_desc,
                         std::vector<double> impulse_rewards_desc);

  std::size_t num_state_reward_classes() const { return state_rewards_.size(); }
  std::size_t num_impulse_reward_classes() const { return impulse_rewards_.size(); }

  const std::vector<double>& state_rewards() const { return state_rewards_; }
  const std::vector<double>& impulse_rewards() const { return impulse_rewards_; }

  /// Pr{ Y(t) <= r | n, k, j }. k must have one count per state-reward class
  /// (sum = n+1 >= 1), j one count per impulse class (sum = n). t must be
  /// positive, r finite and >= 0.
  ///
  /// Evaluator caching uses a canonicalized threshold (mantissa snapped to 40
  /// bits, relative perturbation <= 2^-41): impulse signatures whose
  /// thresholds agree mathematically but differ by floating-point rounding
  /// share one evaluator and its memo table instead of rebuilding it.
  double conditional_probability(const SpacingCounts& k, const SpacingCounts& j, double t,
                                 double r);

  /// As conditional_probability, but with the threshold r' of eq. (4.9)
  /// already computed (and canonicalized internally). The conditional
  /// probability depends on j only through r', so callers that group their
  /// signature classes by (k, r') — the signature-class DP engine does —
  /// evaluate each group once instead of once per distinct j.
  double conditional_probability_for_threshold(const SpacingCounts& k, double r_prime);

  /// The threshold r' = r/t - r_{K+1} - (1/t) sum_i i_i j_i of eq. (4.9).
  double threshold(const SpacingCounts& j, double t, double r) const;

  /// As threshold(), but with the impulse total sum_i i_i j_i already
  /// accumulated — the coarsened signature encoding of the class DP engine
  /// carries that total directly instead of per-class counts. Matches
  /// threshold() bitwise for equal totals.
  double threshold_for_total(double impulse_total, double t, double r) const;

  /// The Omega coefficients d_i = r_i - r_{K+1} (descending, last entry 0).
  /// Exposed so callers can replicate the recursion's trivial base cases —
  /// Omega = 1 when no class with k_i > 0 has d_i > r', Omega = 0 when none
  /// has d_i <= r' — without paying for an evaluator lookup.
  const std::vector<double>& coefficients() const { return coefficients_; }

  /// Number of distinct Omega thresholds this context has touched (ablation
  /// metric; the evaluators themselves live in SharedOmegaCache).
  std::size_t evaluator_count() const { return evaluators_.size(); }

 private:
  std::vector<double> state_rewards_;    // r_1 > ... > r_{K+1}
  std::vector<double> impulse_rewards_;  // i_1 > ... > i_J (possibly empty)
  std::vector<double> coefficients_;     // d_i = r_i - r_{K+1}
  // Per-context front cache over SharedOmegaCache, keyed by canonical
  // threshold: lock-free repeat lookups within one engine run.
  std::map<double, std::shared_ptr<const OmegaEvaluator>> evaluators_;
};

}  // namespace csrlmrm::numeric

#include "numeric/transient.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>

#include "core/approx.hpp"
#include "core/simd.hpp"
#include "numeric/fox_glynn.hpp"
#include "numeric/poisson.hpp"
#include "obs/stats.hpp"
#include "parallel/thread_pool.hpp"

namespace csrlmrm::numeric {

namespace {

void require_distribution(const core::RateMatrix& rates, const std::vector<double>& initial) {
  if (initial.size() != rates.num_states()) {
    throw std::invalid_argument("transient: initial distribution size mismatch");
  }
  double mass = 0.0;
  for (double p : initial) {
    if (p < 0.0) throw std::invalid_argument("transient: negative probability");
    mass += p;
  }
  if (std::abs(mass - 1.0) > 1e-6) {
    throw std::invalid_argument("transient: initial distribution does not sum to 1");
  }
}

void require_time(double t) {
  if (!(t >= 0.0) || !std::isfinite(t)) {
    throw std::invalid_argument("transient: t must be finite and >= 0");
  }
}

/// Two reused buffers driving term = term * P: the gather form over P^T when
/// a transpose is supplied (row-parallel), the serial scatter otherwise.
/// Both accumulate each output entry in ascending source-state order, so
/// they agree bitwise.
void advance_term(const linalg::CsrMatrix& P, const linalg::CsrMatrix* P_transposed,
                  unsigned threads, std::vector<double>& term, std::vector<double>& scratch) {
  if (P_transposed != nullptr) {
    P_transposed->multiply_into(term, scratch, threads);
  } else {
    P.left_multiply_into(term, scratch);
  }
  term.swap(scratch);
}

/// Body of transient_distribution once the window and matrix exist; shared
/// with the batched per-start-state fan-out.
std::vector<double> accumulate_series(const linalg::CsrMatrix& P,
                                      const linalg::CsrMatrix* P_transposed, unsigned threads,
                                      const FoxGlynnWeights& window,
                                      std::vector<double> initial) {
  obs::counter_add("transient.series_terms", window.right + 1);
  std::vector<double> term = std::move(initial);  // p(0) * P^i
  std::vector<double> scratch(term.size(), 0.0);
  std::vector<double> result(term.size(), 0.0);
  for (std::size_t i = 0; i <= window.right; ++i) {
    if (i >= window.left) {
      const double weight = window.probability(i - window.left);
      core::simd::axpy(result.data(), term.data(), result.size(), weight);
    }
    if (i < window.right) advance_term(P, P_transposed, threads, term, scratch);
  }
  return result;
}

}  // namespace

linalg::CsrMatrix uniformized_transition_matrix(const core::RateMatrix& rates,
                                                double& lambda_out) {
  const std::size_t n = rates.num_states();
  const double max_exit = rates.max_exit_rate();
  lambda_out = max_exit > 0.0 ? max_exit : 1.0;

  linalg::CsrBuilder builder(n, n);
  for (core::StateIndex s = 0; s < n; ++s) {
    double off_diagonal = 0.0;
    for (const auto& e : rates.transitions(s)) {
      if (e.col == s) continue;
      builder.add(s, e.col, e.value / lambda_out);
      off_diagonal += e.value / lambda_out;
    }
    const double self_loop = 1.0 - off_diagonal;
    if (self_loop > 0.0) builder.add(s, s, self_loop);
  }
  return builder.build();
}

std::vector<double> transient_distribution(const core::RateMatrix& rates,
                                           const std::vector<double>& initial, double t,
                                           const TransientOptions& options) {
  obs::ScopedTimer timer("transient.distribution");
  obs::counter_add("transient.calls");
  require_distribution(rates, initial);
  require_time(t);
  if (core::exactly_zero(t)) return initial;
  if (core::exactly_zero(rates.max_exit_rate())) return initial;  // every state absorbing

  double lambda = 0.0;
  const linalg::CsrMatrix P = uniformized_transition_matrix(rates, lambda);

  // Fox-Glynn window and weights: only the [left, right] Poisson terms
  // carry mass above the tolerance; normalizing by the weight total keeps
  // the result an (eps-accurate) distribution.
  const auto window = fox_glynn(lambda * t, options.epsilon);

  const unsigned threads =
      parallel::choose_thread_count(options.threads, P.non_zeros() * (window.right + 1));
  std::optional<linalg::CsrMatrix> P_transposed;
  if (threads > 1 && !parallel::in_parallel_region()) P_transposed = P.transposed();

  return accumulate_series(P, P_transposed ? &*P_transposed : nullptr, threads, window, initial);
}

std::vector<double> transient_distribution_from(const core::RateMatrix& rates,
                                                core::StateIndex start, double t,
                                                const TransientOptions& options) {
  if (start >= rates.num_states()) {
    throw std::invalid_argument("transient_distribution_from: start state out of range");
  }
  std::vector<double> initial(rates.num_states(), 0.0);
  initial[start] = 1.0;
  return transient_distribution(rates, initial, t, options);
}

std::vector<std::vector<double>> transient_distributions_from_states(
    const core::RateMatrix& rates, const std::vector<core::StateIndex>& starts, double t,
    const TransientOptions& options) {
  obs::ScopedTimer timer("transient.distributions_from_states");
  obs::counter_add("transient.calls", starts.size());
  require_time(t);
  const std::size_t n = rates.num_states();
  for (const core::StateIndex start : starts) {
    if (start >= n) {
      throw std::invalid_argument("transient_distributions_from_states: start out of range");
    }
  }
  std::vector<std::vector<double>> results(starts.size());
  if (starts.empty()) return results;

  if (core::exactly_zero(t) || core::exactly_zero(rates.max_exit_rate())) {
    for (std::size_t i = 0; i < starts.size(); ++i) {
      results[i].assign(n, 0.0);
      results[i][starts[i]] = 1.0;
    }
    return results;
  }

  double lambda = 0.0;
  const linalg::CsrMatrix P = uniformized_transition_matrix(rates, lambda);
  const auto window = fox_glynn(lambda * t, options.epsilon);

  // Fan out over start states; every state runs the serial series (nested
  // regions stay inline), so chunking cannot change any row's result.
  const unsigned threads = parallel::choose_thread_count(
      options.threads, starts.size() * P.non_zeros() * (window.right + 1));
  parallel::parallel_for(starts.size(), threads, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      std::vector<double> initial(n, 0.0);
      initial[starts[i]] = 1.0;
      results[i] = accumulate_series(P, nullptr, 1, window, std::move(initial));
    }
  });
  return results;
}

std::vector<double> expected_occupation_times(const core::RateMatrix& rates,
                                              const std::vector<double>& initial, double t,
                                              const TransientOptions& options) {
  obs::ScopedTimer timer("transient.expected_occupation_times");
  obs::counter_add("transient.occupation_calls");
  require_distribution(rates, initial);
  require_time(t);
  const std::size_t n = rates.num_states();
  if (core::exactly_zero(t)) return std::vector<double>(n, 0.0);
  if (core::exactly_zero(rates.max_exit_rate())) {
    // Nothing moves: all time is spent where the chain starts.
    std::vector<double> result(n, 0.0);
    for (std::size_t s = 0; s < n; ++s) result[s] = initial[s] * t;
    return result;
  }

  double lambda = 0.0;
  const linalg::CsrMatrix P = uniformized_transition_matrix(rates, lambda);
  const double mean = lambda * t;

  // E[L_s(t)] = (1/Lambda) sum_{k>=0} Pr{N_t >= k+1} (p0 P^k)_s. The tail
  // weights sum to E[N_t] = Lambda t; truncate once the remaining tail mass
  // contributes less than epsilon * t.
  PoissonCdfTable tail_table(mean);
  const std::size_t hard_cap =
      poisson_truncation_point(mean, options.epsilon / (mean + 1.0)) + 1;

  const unsigned threads =
      parallel::choose_thread_count(options.threads, P.non_zeros() * hard_cap);
  std::optional<linalg::CsrMatrix> P_transposed;
  if (threads > 1 && !parallel::in_parallel_region()) P_transposed = P.transposed();

  std::vector<double> term = initial;
  std::vector<double> scratch(n, 0.0);
  std::vector<double> result(n, 0.0);
  std::size_t terms = 0;
  for (std::size_t k = 0; k <= hard_cap; ++k) {
    const double weight = tail_table.tail(k + 1) / lambda;
    if (weight <= 0.0) break;
    ++terms;
    core::simd::axpy(result.data(), term.data(), n, weight);
    advance_term(P, P_transposed ? &*P_transposed : nullptr, threads, term, scratch);
  }
  obs::counter_add("transient.series_terms", terms);
  return result;
}

}  // namespace csrlmrm::numeric

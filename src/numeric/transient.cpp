#include "numeric/transient.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "core/approx.hpp"
#include "core/simd.hpp"
#include "linalg/blocked_csr.hpp"
#include "numeric/fox_glynn.hpp"
#include "numeric/poisson.hpp"
#include "obs/stats.hpp"
#include "parallel/thread_pool.hpp"

namespace csrlmrm::numeric {

namespace {

/// Model size from which a series repacks its gather matrix into the blocked
/// SELL-C layout (linalg/blocked_csr.hpp): below this the one-off repack
/// costs more than the few dozen products save; above it the halved index
/// bandwidth and SIMD chunk accumulation win (BENCH_large.json records the
/// crossover). Bitwise-neutral either way, so the threshold only moves time.
constexpr std::size_t kBlockedSpmvMinStates = 2048;

void require_distribution(const core::RateMatrix& rates, const std::vector<double>& initial) {
  if (initial.size() != rates.num_states()) {
    throw std::invalid_argument("transient: initial distribution size mismatch");
  }
  double mass = 0.0;
  for (double p : initial) {
    if (p < 0.0) throw std::invalid_argument("transient: negative probability");
    mass += p;
  }
  if (std::abs(mass - 1.0) > 1e-6) {
    throw std::invalid_argument("transient: initial distribution does not sum to 1");
  }
}

void require_time(double t) {
  if (!(t >= 0.0) || !std::isfinite(t)) {
    throw std::invalid_argument("transient: t must be finite and >= 0");
  }
}

/// One step of term = term * P (forward) or u = P * u (backward), driven by
/// whichever operator the entry point prepared: the blocked gather for large
/// models, the row-parallel CSR gather, or the serial scatter. All three
/// accumulate every output entry in the same ascending source order, so the
/// choice is bitwise-invisible (tests/test_blocked_spmv.cpp pins this).
struct SeriesAdvance {
  const linalg::CsrMatrix* scatter = nullptr;         // serial x^T * P
  const linalg::CsrMatrix* gather = nullptr;          // row-parallel gather
  const linalg::BlockedCsrMatrix* blocked = nullptr;  // blocked gather
  unsigned threads = 1;

  void operator()(std::vector<double>& term, std::vector<double>& scratch) const {
    if (blocked != nullptr) {
      blocked->multiply_into(term, scratch, threads);
    } else if (gather != nullptr) {
      gather->multiply_into(term, scratch, threads);
    } else {
      scatter->left_multiply_into(term, scratch);
    }
    term.swap(scratch);
  }
};

/// Norm the steady-state criterion contracts in: the forward (row-vector)
/// iteration is non-expansive in the 1-norm, the backward (column-vector)
/// iteration in the max norm. Either norm bounds every per-state error.
enum class SteadyNorm { kL1, kMax };

/// Body of every uniformization series: accumulate the Fox-Glynn-weighted
/// terms, optionally cutting the series once successive iterates have
/// stabilized. With detection off the operation sequence is exactly the
/// historical one, so results are bitwise unchanged.
TransientResult accumulate_series(const SeriesAdvance& advance, const FoxGlynnWeights& window,
                                  std::vector<double> initial, const TransientOptions& options,
                                  SteadyNorm norm) {
  TransientResult out;
  std::vector<double> term = std::move(initial);  // p(0) * P^i (or P^i * u0)
  std::vector<double> scratch(term.size(), 0.0);
  out.values.assign(term.size(), 0.0);
  for (std::size_t i = 0; i <= window.right; ++i) {
    ++out.series_terms;
    if (i >= window.left) {
      const double weight = window.probability(i - window.left);
      core::simd::axpy(out.values.data(), term.data(), out.values.size(), weight);
    }
    if (i == window.right) break;
    advance(term, scratch);
    // After the swap `scratch` holds the previous iterate, so the
    // steady-state test compares successive terms without extra storage.
    if (options.detect_steady_state && i + 1 < window.right) {
      const std::size_t remaining = window.right - (i + 1);
      double delta = 0.0;
      if (norm == SteadyNorm::kL1) {
        for (std::size_t s = 0; s < term.size(); ++s) delta += std::abs(term[s] - scratch[s]);
      } else {
        for (std::size_t s = 0; s < term.size(); ++s) {
          delta = std::max(delta, std::abs(term[s] - scratch[s]));
        }
      }
      if (delta * static_cast<double>(remaining) <= options.steady_epsilon) {
        // The uniformized step is non-expansive in `norm`, so every future
        // iterate stays within remaining * delta of the current one; folding
        // the whole remaining (normalized) Poisson mass onto the current
        // iterate therefore closes the series with a per-state error of at
        // most steady_error — accounted into the caller's interval.
        double tail_mass = 0.0;
        for (std::size_t k = std::max(window.left, i + 1); k <= window.right; ++k) {
          tail_mass += window.probability(k - window.left);
        }
        core::simd::axpy(out.values.data(), term.data(), out.values.size(), tail_mass);
        out.steady_error = delta * static_cast<double>(remaining);
        out.steady_state_detected = true;
        obs::counter_add("uniformization.steady_detected");
        obs::counter_add("uniformization.terms_saved", remaining);
        break;
      }
    }
  }
  obs::counter_add("transient.series_terms", out.series_terms);
  return out;
}

}  // namespace

linalg::CsrMatrix uniformized_transition_matrix(const core::RateMatrix& rates,
                                                double& lambda_out) {
  const std::size_t n = rates.num_states();
  const double max_exit = rates.max_exit_rate();
  lambda_out = max_exit > 0.0 ? max_exit : 1.0;

  linalg::CsrBuilder builder(n, n);
  builder.reserve(rates.matrix().non_zeros() + n);
  for (core::StateIndex s = 0; s < n; ++s) {
    double off_diagonal = 0.0;
    for (const auto& e : rates.transitions(s)) {
      if (e.col == s) continue;
      builder.add(s, e.col, e.value / lambda_out);
      off_diagonal += e.value / lambda_out;
    }
    const double self_loop = 1.0 - off_diagonal;
    if (self_loop > 0.0) builder.add(s, s, self_loop);
  }
  return builder.build();
}

TransientResult transient_distribution_checked(const core::RateMatrix& rates,
                                               const std::vector<double>& initial, double t,
                                               const TransientOptions& options) {
  obs::ScopedTimer timer("transient.distribution");
  obs::counter_add("transient.calls");
  require_distribution(rates, initial);
  require_time(t);
  TransientResult out;
  if (core::exactly_zero(t) || core::exactly_zero(rates.max_exit_rate())) {
    out.values = initial;  // nothing moves (t = 0 or every state absorbing)
    return out;
  }

  double lambda = 0.0;
  const linalg::CsrMatrix P = uniformized_transition_matrix(rates, lambda);

  // Fox-Glynn window and weights: only the [left, right] Poisson terms
  // carry mass above the tolerance; normalizing by the weight total keeps
  // the result an (eps-accurate) distribution.
  const auto window = fox_glynn(lambda * t, options.epsilon);

  const unsigned threads =
      parallel::choose_thread_count(options.threads, P.non_zeros() * (window.right + 1));
  std::optional<linalg::CsrMatrix> transpose;
  std::optional<linalg::BlockedCsrMatrix> blocked;
  SeriesAdvance advance;
  advance.threads = threads;
  const bool parallel_gather = threads > 1 && !parallel::in_parallel_region();
  const bool large = rates.num_states() >= kBlockedSpmvMinStates;
  if (parallel_gather || large) {
    transpose = P.transposed();
    if (large) {
      blocked.emplace(*transpose);
      advance.blocked = &*blocked;
    } else {
      advance.gather = &*transpose;
    }
  } else {
    advance.scatter = &P;
  }
  return accumulate_series(advance, window, initial, options, SteadyNorm::kL1);
}

std::vector<double> transient_distribution(const core::RateMatrix& rates,
                                           const std::vector<double>& initial, double t,
                                           const TransientOptions& options) {
  return transient_distribution_checked(rates, initial, t, options).values;
}

std::vector<double> transient_distribution_from(const core::RateMatrix& rates,
                                                core::StateIndex start, double t,
                                                const TransientOptions& options) {
  if (start >= rates.num_states()) {
    throw std::invalid_argument("transient_distribution_from: start state out of range");
  }
  std::vector<double> initial(rates.num_states(), 0.0);
  initial[start] = 1.0;
  return transient_distribution(rates, initial, t, options);
}

std::vector<std::vector<double>> transient_distributions_from_states(
    const core::RateMatrix& rates, const std::vector<core::StateIndex>& starts, double t,
    const TransientOptions& options) {
  obs::ScopedTimer timer("transient.distributions_from_states");
  obs::counter_add("transient.calls", starts.size());
  require_time(t);
  const std::size_t n = rates.num_states();
  for (const core::StateIndex start : starts) {
    if (start >= n) {
      throw std::invalid_argument("transient_distributions_from_states: start out of range");
    }
  }
  std::vector<std::vector<double>> results(starts.size());
  if (starts.empty()) return results;

  if (core::exactly_zero(t) || core::exactly_zero(rates.max_exit_rate())) {
    for (std::size_t i = 0; i < starts.size(); ++i) {
      results[i].assign(n, 0.0);
      results[i][starts[i]] = 1.0;
    }
    return results;
  }

  double lambda = 0.0;
  const linalg::CsrMatrix P = uniformized_transition_matrix(rates, lambda);
  const auto window = fox_glynn(lambda * t, options.epsilon);

  // This fan-out returns bare vectors with no error accounting beyond the
  // Fox-Glynn epsilon, so the steady-state cut (whose extra error callers
  // could not see) is forced off for every row.
  TransientOptions row_options = options;
  row_options.detect_steady_state = false;
  SeriesAdvance serial;
  serial.scatter = &P;

  // Fan out over start states; every state runs the serial series (nested
  // regions stay inline), so chunking cannot change any row's result.
  const unsigned threads = parallel::choose_thread_count(
      options.threads, starts.size() * P.non_zeros() * (window.right + 1));
  parallel::parallel_for(starts.size(), threads, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      std::vector<double> initial(n, 0.0);
      initial[starts[i]] = 1.0;
      results[i] =
          accumulate_series(serial, window, std::move(initial), row_options, SteadyNorm::kL1)
              .values;
    }
  });
  return results;
}

TransientResult transient_hit_probabilities(const core::RateMatrix& rates,
                                            const std::vector<bool>& target, double t,
                                            const TransientOptions& options) {
  obs::ScopedTimer timer("transient.hit_probabilities");
  obs::counter_add("transient.hit_calls");
  const std::size_t n = rates.num_states();
  if (target.size() != n) {
    throw std::invalid_argument("transient_hit_probabilities: target mask size mismatch");
  }
  require_time(t);

  std::vector<double> indicator(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    if (target[s]) indicator[s] = 1.0;
  }
  TransientResult out;
  if (core::exactly_zero(t) || core::exactly_zero(rates.max_exit_rate())) {
    out.values = std::move(indicator);  // the chain never leaves its start
    return out;
  }

  double lambda = 0.0;
  const linalg::CsrMatrix P = uniformized_transition_matrix(rates, lambda);
  const auto window = fox_glynn(lambda * t, options.epsilon);

  // The backward series gathers over P itself (u_{k+1} = P u_k): no
  // transpose is ever materialized.
  const unsigned threads =
      parallel::choose_thread_count(options.threads, P.non_zeros() * (window.right + 1));
  std::optional<linalg::BlockedCsrMatrix> blocked;
  SeriesAdvance advance;
  advance.threads = threads;
  if (n >= kBlockedSpmvMinStates) {
    blocked.emplace(P);
    advance.blocked = &*blocked;
  } else {
    advance.gather = &P;
  }
  return accumulate_series(advance, window, std::move(indicator), options, SteadyNorm::kMax);
}

std::vector<double> expected_occupation_times(const core::RateMatrix& rates,
                                              const std::vector<double>& initial, double t,
                                              const TransientOptions& options) {
  obs::ScopedTimer timer("transient.expected_occupation_times");
  obs::counter_add("transient.occupation_calls");
  require_distribution(rates, initial);
  require_time(t);
  const std::size_t n = rates.num_states();
  if (core::exactly_zero(t)) return std::vector<double>(n, 0.0);
  if (core::exactly_zero(rates.max_exit_rate())) {
    // Nothing moves: all time is spent where the chain starts.
    std::vector<double> result(n, 0.0);
    for (std::size_t s = 0; s < n; ++s) result[s] = initial[s] * t;
    return result;
  }

  double lambda = 0.0;
  const linalg::CsrMatrix P = uniformized_transition_matrix(rates, lambda);
  const double mean = lambda * t;

  // E[L_s(t)] = (1/Lambda) sum_{k>=0} Pr{N_t >= k+1} (p0 P^k)_s. The tail
  // weights sum to E[N_t] = Lambda t; truncate once the remaining tail mass
  // contributes less than epsilon * t.
  PoissonCdfTable tail_table(mean);
  const std::size_t hard_cap =
      poisson_truncation_point(mean, options.epsilon / (mean + 1.0)) + 1;

  const unsigned threads =
      parallel::choose_thread_count(options.threads, P.non_zeros() * hard_cap);
  std::optional<linalg::CsrMatrix> transpose;
  std::optional<linalg::BlockedCsrMatrix> blocked;
  SeriesAdvance advance;
  advance.threads = threads;
  const bool parallel_gather = threads > 1 && !parallel::in_parallel_region();
  const bool large = n >= kBlockedSpmvMinStates;
  if (parallel_gather || large) {
    transpose = P.transposed();
    if (large) {
      blocked.emplace(*transpose);
      advance.blocked = &*blocked;
    } else {
      advance.gather = &*transpose;
    }
  } else {
    advance.scatter = &P;
  }

  std::vector<double> term = initial;
  std::vector<double> scratch(n, 0.0);
  std::vector<double> result(n, 0.0);
  std::size_t terms = 0;
  for (std::size_t k = 0; k <= hard_cap; ++k) {
    const double weight = tail_table.tail(k + 1) / lambda;
    if (weight <= 0.0) break;
    ++terms;
    core::simd::axpy(result.data(), term.data(), n, weight);
    advance(term, scratch);
  }
  obs::counter_add("transient.series_terms", terms);
  return result;
}

}  // namespace csrlmrm::numeric

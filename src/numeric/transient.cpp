#include "numeric/transient.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/fox_glynn.hpp"
#include "numeric/poisson.hpp"

namespace csrlmrm::numeric {

namespace {

void require_distribution(const core::RateMatrix& rates, const std::vector<double>& initial) {
  if (initial.size() != rates.num_states()) {
    throw std::invalid_argument("transient: initial distribution size mismatch");
  }
  double mass = 0.0;
  for (double p : initial) {
    if (p < 0.0) throw std::invalid_argument("transient: negative probability");
    mass += p;
  }
  if (std::abs(mass - 1.0) > 1e-6) {
    throw std::invalid_argument("transient: initial distribution does not sum to 1");
  }
}

void require_time(double t) {
  if (!(t >= 0.0) || !std::isfinite(t)) {
    throw std::invalid_argument("transient: t must be finite and >= 0");
  }
}

}  // namespace

linalg::CsrMatrix uniformized_transition_matrix(const core::RateMatrix& rates,
                                                double& lambda_out) {
  const std::size_t n = rates.num_states();
  const double max_exit = rates.max_exit_rate();
  lambda_out = max_exit > 0.0 ? max_exit : 1.0;

  linalg::CsrBuilder builder(n, n);
  for (core::StateIndex s = 0; s < n; ++s) {
    double off_diagonal = 0.0;
    for (const auto& e : rates.transitions(s)) {
      if (e.col == s) continue;
      builder.add(s, e.col, e.value / lambda_out);
      off_diagonal += e.value / lambda_out;
    }
    const double self_loop = 1.0 - off_diagonal;
    if (self_loop > 0.0) builder.add(s, s, self_loop);
  }
  return builder.build();
}

std::vector<double> transient_distribution(const core::RateMatrix& rates,
                                           const std::vector<double>& initial, double t,
                                           const TransientOptions& options) {
  require_distribution(rates, initial);
  require_time(t);
  if (t == 0.0) return initial;
  if (rates.max_exit_rate() == 0.0) return initial;  // every state absorbing

  double lambda = 0.0;
  const linalg::CsrMatrix P = uniformized_transition_matrix(rates, lambda);

  // Fox-Glynn window and weights: only the [left, right] Poisson terms
  // carry mass above the tolerance; normalizing by the weight total keeps
  // the result an (eps-accurate) distribution.
  const auto window = fox_glynn(lambda * t, options.epsilon);

  std::vector<double> term = initial;  // p(0) * P^i
  std::vector<double> result(rates.num_states(), 0.0);
  for (std::size_t i = 0; i <= window.right; ++i) {
    if (i >= window.left) {
      const double weight = window.probability(i - window.left);
      for (std::size_t s = 0; s < result.size(); ++s) result[s] += weight * term[s];
    }
    if (i < window.right) term = P.left_multiply(term);
  }
  return result;
}

std::vector<double> transient_distribution_from(const core::RateMatrix& rates,
                                                core::StateIndex start, double t,
                                                const TransientOptions& options) {
  if (start >= rates.num_states()) {
    throw std::invalid_argument("transient_distribution_from: start state out of range");
  }
  std::vector<double> initial(rates.num_states(), 0.0);
  initial[start] = 1.0;
  return transient_distribution(rates, initial, t, options);
}

std::vector<double> expected_occupation_times(const core::RateMatrix& rates,
                                              const std::vector<double>& initial, double t,
                                              const TransientOptions& options) {
  require_distribution(rates, initial);
  require_time(t);
  const std::size_t n = rates.num_states();
  if (t == 0.0) return std::vector<double>(n, 0.0);
  if (rates.max_exit_rate() == 0.0) {
    // Nothing moves: all time is spent where the chain starts.
    std::vector<double> result(n, 0.0);
    for (std::size_t s = 0; s < n; ++s) result[s] = initial[s] * t;
    return result;
  }

  double lambda = 0.0;
  const linalg::CsrMatrix P = uniformized_transition_matrix(rates, lambda);
  const double mean = lambda * t;

  // E[L_s(t)] = (1/Lambda) sum_{k>=0} Pr{N_t >= k+1} (p0 P^k)_s. The tail
  // weights sum to E[N_t] = Lambda t; truncate once the remaining tail mass
  // contributes less than epsilon * t.
  PoissonCdfTable tail_table(mean);
  std::vector<double> term = initial;
  std::vector<double> result(n, 0.0);
  const std::size_t hard_cap =
      poisson_truncation_point(mean, options.epsilon / (mean + 1.0)) + 1;
  for (std::size_t k = 0; k <= hard_cap; ++k) {
    const double weight = tail_table.tail(k + 1) / lambda;
    if (weight <= 0.0) break;
    for (std::size_t s = 0; s < n; ++s) result[s] += weight * term[s];
    term = P.left_multiply(term);
  }
  return result;
}

}  // namespace csrlmrm::numeric

#include "plan/executor.hpp"

#include <stdexcept>

#include "obs/stats.hpp"

namespace csrlmrm::plan {

namespace {

/// Expands a per-quotient-state vector to the original states (identity when
/// block_of is empty, i.e. the plan is not lumped).
template <typename T>
std::vector<T> maybe_expand(std::vector<T> values, const Plan& plan) {
  if (!plan.lumped) return values;
  std::vector<T> out(plan.block_of.size());
  for (std::size_t s = 0; s < plan.block_of.size(); ++s) out[s] = values[plan.block_of[s]];
  return out;
}

}  // namespace

PlanResult execute(const Plan& plan, const core::Mrm& model, const ExecutionOptions& exec) {
  obs::ScopedTimer timer("plan.execute");
  obs::counter_add("plan.execute.calls");
  if (model.num_states() != plan.original_states) {
    throw std::invalid_argument(
        "plan::execute: model has a different state count than the plan was compiled for");
  }
  const core::Mrm& target = plan.lumped ? *plan.quotient : model;
  const std::size_t n = target.num_states();
  checker::CheckerOptions options = plan.options;
  if (exec.threads != 0) options.threads = exec.threads;
  core::TransformCache* transforms = plan.transforms.get();

  // Per-op result slots (only the slot matching the op's kind is filled).
  const std::size_t m = plan.ops.size();
  std::vector<checker::SatSets> sets(m);
  std::vector<std::vector<checker::ProbabilityBound>> solve_bounds(m);
  std::vector<std::vector<checker::UntilValue>> solve_untils(m);
  std::vector<std::vector<double>> solve_values(m);

  for (OpId id = 0; id < m; ++id) {
    const PlanOp& op = plan.ops[id];
    switch (op.kind) {
      case OpKind::kConstTrue:
        sets[id].sat.assign(n, true);
        sets[id].unknown.assign(n, false);
        break;
      case OpKind::kConstFalse:
        sets[id].sat.assign(n, false);
        sets[id].unknown.assign(n, false);
        break;
      case OpKind::kLabelSet:
        sets[id].sat = target.labels().states_with(op.label);
        sets[id].unknown.assign(n, false);
        break;
      case OpKind::kNot:
        sets[id] = checker::kleene_not(sets[op.inputs[0]]);
        break;
      case OpKind::kAnd:
        sets[id] = checker::kleene_and(sets[op.inputs[0]], sets[op.inputs[1]]);
        break;
      case OpKind::kOr:
        sets[id] = checker::kleene_or(sets[op.inputs[0]], sets[op.inputs[1]]);
        break;
      case OpKind::kTransform:
        // Structural only: the model itself is built through the plan's
        // TransformCache on first use inside an until solve (prewarmed at
        // compile time when the masks were compile-time known).
        break;
      case OpKind::kSteadySolve: {
        auto evaluation =
            checker::evaluate_steady_operator(target, sets[op.inputs[0]], options);
        solve_values[id] = std::move(evaluation.values);
        solve_bounds[id] = std::move(evaluation.bounds);
        break;
      }
      case OpKind::kNextSolve: {
        auto evaluation = checker::evaluate_next_operator(
            target, sets[op.inputs[0]], op.time_bound, op.reward_bound, options);
        solve_values[id] = std::move(evaluation.probabilities);
        solve_bounds[id] = std::move(evaluation.bounds);
        break;
      }
      case OpKind::kUntilSolve: {
        // Apply the compile-time engine pin. Sound because the prediction ran
        // checker::choose_until_engine on the identical transformed model, so
        // this skips a re-derivation, never changes the outcome. A predicted
        // kDiscretization is deliberately NOT pinned: the runtime auto path
        // also adapts the step (adapted_discretization_options), and pinning
        // the method alone would skip that adaptation and diverge.
        checker::CheckerOptions until_options = options;
        if (op.engine_known &&
            op.engine_choice.method == checker::UntilMethod::kUniformization) {
          until_options.until_engine = op.engine_choice.engine;
          if (op.engine_choice.adaptive_hybrid) {
            until_options.uniformization.adaptive_hybrid = true;
          }
          obs::counter_add("plan.execute.pins_applied");
        }
        auto evaluation = checker::evaluate_until_operator(
            target, sets[op.inputs[0]], sets[op.inputs[1]], op.time_bound, op.reward_bound,
            until_options, transforms);
        solve_untils[id] = std::move(evaluation.values);
        solve_bounds[id] = std::move(evaluation.bounds);
        break;
      }
      case OpKind::kRewardSolve: {
        const auto& node =
            static_cast<const logic::ExpectedRewardFormula&>(*op.reward_node);
        const checker::SatSets* operand =
            op.inputs.empty() ? nullptr : &sets[op.inputs[0]];
        auto evaluation = checker::evaluate_reward_operator(target, node, operand, options);
        solve_values[id] = std::move(evaluation.values);
        solve_bounds[id] = std::move(evaluation.bounds);
        break;
      }
      case OpKind::kCompare:
        sets[id] = checker::compare_operator_bounds(solve_bounds[op.inputs[0]],
                                                    op.compare_op, op.threshold);
        break;
    }
  }

  PlanResult result;
  result.formulas.reserve(plan.roots.size());
  for (const OpId root : plan.roots) {
    const PlanOp& root_op = plan.ops[root];
    FormulaResult formula;
    formula.sat = maybe_expand(sets[root].sat, plan);
    formula.unknown = maybe_expand(sets[root].unknown, plan);
    formula.verdicts.assign(formula.sat.size(), checker::Verdict::kUnsat);
    for (std::size_t s = 0; s < formula.sat.size(); ++s) {
      if (formula.sat[s]) {
        formula.verdicts[s] = checker::Verdict::kSat;
      } else if (formula.unknown[s]) {
        formula.verdicts[s] = checker::Verdict::kUnknown;
      }
    }
    if (exec.collect_values && root_op.kind == OpKind::kCompare) {
      const OpId solve = root_op.inputs[0];
      formula.has_bounds = true;
      formula.bounds = maybe_expand(solve_bounds[solve], plan);
      switch (plan.ops[solve].kind) {
        case OpKind::kUntilSolve:
          formula.has_probabilities = true;
          formula.probabilities = maybe_expand(solve_untils[solve], plan);
          break;
        case OpKind::kNextSolve: {
          // Next probabilities are exact; the direct checker reports them as
          // point-interval UntilValues and so does the plan.
          std::vector<checker::UntilValue> values(solve_values[solve].size());
          for (std::size_t s = 0; s < values.size(); ++s) {
            values[s] = checker::exact_until_value(solve_values[solve][s]);
          }
          formula.has_probabilities = true;
          formula.probabilities = maybe_expand(std::move(values), plan);
          break;
        }
        case OpKind::kSteadySolve:
        case OpKind::kRewardSolve:
          formula.has_values = true;
          formula.values = maybe_expand(solve_values[solve], plan);
          break;
        default:
          break;
      }
    }
    result.formulas.push_back(std::move(formula));
  }
  return result;
}

}  // namespace csrlmrm::plan

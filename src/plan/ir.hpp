// The plan IR: a CSRL formula batch lowered to a DAG of typed ops.
//
// A Plan is the compiled form of a batch of state formulas against one MRM
// and one CheckerOptions configuration (ROADMAP item 2, the prerequisite for
// a resident mrmcheckd service that caches compiled plans across requests).
// Ops come in three families:
//
//   set ops      const tt/ff, label-set eval, Kleene !/&&/|| — produce a
//                three-valued SatSets per state
//   numeric ops  steady-/next-/until-/reward-solve — produce the widened
//                per-state value enclosures (and the raw pessimistic values)
//                by calling the same checker/operator_eval.hpp functions the
//                direct ModelChecker uses
//   compare ops  threshold comparison of a solve op's enclosures — produce
//                a SatSets again
//
// plus structural kTransform ops that name the hoisted absorbing transforms
// (M[!Phi v Psi], M[!Phi], M[!Phi && !Psi]) shared by the until solves; the
// actual models live in the plan's TransformCache, prewarmed at compile time
// where operand sets are compile-time known.
//
// Ops are stored in topological order (inputs strictly before consumers), so
// the executor is a single forward walk. The compiler's common-subformula
// dedup guarantees at most one op per structural key, which is what makes a
// batch share label sets, operand sets, solves (formulas differing only in
// their threshold share the whole solve!) and transforms.
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "checker/options.hpp"
#include "checker/until.hpp"
#include "core/mrm.hpp"
#include "core/transform.hpp"
#include "logic/ast.hpp"

namespace csrlmrm::plan {

using OpId = std::size_t;
inline constexpr OpId kNoOp = std::numeric_limits<OpId>::max();

enum class OpKind {
  kConstTrue,
  kConstFalse,
  kLabelSet,
  kNot,
  kAnd,
  kOr,
  kTransform,
  kSteadySolve,
  kNextSolve,
  kUntilSolve,
  kRewardSolve,
  kCompare,
};

/// Stable lower-case op name for the plan printer ("labelset", "until", ...).
const char* to_string(OpKind kind);

/// Which dispatch class of checker/until.hpp an until-solve op lands in
/// (decided at compile time from the bound shapes alone).
enum class UntilClass {
  kUnbounded,        // P0: linear system on the embedded DTMC
  kTimeBounded,      // P1: transient analysis of M[!Phi v Psi]
  kTwoPhase,         // P1': [t1,t2] two-phase reduction via M[!Phi]
  kTimeReward,       // P2: [0,t] + [0,r] on M[!Phi v Psi], engine-evaluated
  kPointTimeReward,  // [t,t] + [0,r] on M[!Phi && !Psi] (Theorem 4.2)
  kUnsupported,      // raises UnsupportedFormulaError at execution
};

const char* to_string(UntilClass cls);

/// Shape of a hoisted absorbing transform, relative to an until op's operand
/// sets (Phi = inputs[0], Psi = inputs[1]).
enum class TransformShape {
  kNotPhiOrPsi,  // M[!Phi v Psi] (Theorem 4.1)
  kNotPhi,       // M[!Phi] (the [Bai03] phase-one chain)
  kDead,         // M[!Phi && !Psi] (Theorem 4.2)
};

const char* to_string(TransformShape shape);

/// One op. Which fields are meaningful depends on `kind`; unused fields keep
/// their defaults so ops compare and print deterministically.
struct PlanOp {
  OpKind kind = OpKind::kConstTrue;
  /// Set-valued operand ops (kNot: 1; kAnd/kOr: 2; kSteadySolve: 1;
  /// kNextSolve: 1; kUntilSolve: lhs, rhs; kTransform: the sets its mask is
  /// built from; kRewardSolve: the F-target for reachability queries, else
  /// empty; kCompare: the solve op whose bounds it compares).
  std::vector<OpId> inputs;

  std::string label;                      // kLabelSet: the atomic proposition
  logic::Comparison compare_op = logic::Comparison::kGreaterEqual;  // kCompare
  double threshold = 0.0;                                           // kCompare
  logic::Interval time_bound;             // kUntilSolve / kNextSolve
  logic::Interval reward_bound;           // kUntilSolve / kNextSolve
  logic::FormulaPtr reward_node;          // kRewardSolve: the R-operator node
  UntilClass until_class = UntilClass::kUnbounded;      // kUntilSolve
  TransformShape transform_shape = TransformShape::kNotPhiOrPsi;  // kTransform
  OpId transform = kNoOp;                 // kUntilSolve: its hoisted transform

  /// Number of consumers in the DAG (other ops' inputs/transform references);
  /// the printer reports transforms and solves shared by more than one.
  std::size_t uses = 0;

  // --- engine-selection pass annotations (kUntilSolve, P2 classes only) ---
  /// True when the cost model resolved the engine at compile time (operand
  /// sets were compile-time known and the options ask for kAuto). The
  /// executor then pins the choice instead of re-deriving it per run —
  /// sound because the prediction runs checker::choose_until_engine on the
  /// identical transformed model.
  bool engine_known = false;
  checker::AutoEngineChoice engine_choice;
  /// True when recorded history (PlanOptions::adaptive_cost_model) overrode
  /// the static heuristic; such a pin may diverge from what a direct check
  /// would pick, which is why the knob is opt-in.
  bool engine_history_adjusted = false;
  /// Cost-model inputs, for the printer: non-absorbing states of the
  /// transformed model and the Poisson truncation depth at the op's horizon.
  std::size_t predicted_live = 0;
  std::size_t predicted_levels = 0;
};

/// A compiled batch. Bound to the model and options it was compiled against;
/// executing it on a different model is undefined.
struct Plan {
  std::vector<PlanOp> ops;   // topological order
  /// One root op per input formula, in input order.
  std::vector<OpId> roots;
  /// The input formulas (for printing; roots[i] realizes formulas[i]).
  std::vector<logic::FormulaPtr> formulas;
  /// The checker configuration baked into every solve op.
  checker::CheckerOptions options;

  /// Hoisted absorbing transforms, prewarmed at compile time for ops whose
  /// masks were compile-time known and filled lazily during execution for
  /// the rest. Shared across executions of this plan (not thread-safe: one
  /// execution at a time). Null when hoisting is disabled.
  std::shared_ptr<core::TransformCache> transforms;

  // --- lumping pass (optional, off by default) ---
  /// When true the ops run on `quotient` and results are expanded through
  /// `block_of`. CSRL-preserving by the lumpability criterion of
  /// core/lumping.hpp, but the quotient's numerics are not bitwise-identical
  /// to the original model's, so the pass is opt-in.
  bool lumped = false;
  std::shared_ptr<const core::Mrm> quotient;
  std::vector<std::size_t> block_of;  // original state -> quotient state

  /// States the ops run on (quotient size when lumped).
  std::size_t num_states = 0;
  /// Original model size (== num_states unless lumped).
  std::size_t original_states = 0;

  // --- pass summary (deterministic; pinned by the pass-level tests) ---
  /// Lowering requests answered by an already-interned op (the CSE pass).
  std::size_t cse_hits = 0;
  /// Transform-op references beyond each transform's first (hoisting wins).
  std::size_t transforms_hoisted = 0;
  /// Until ops whose engine the cost model resolved at compile time.
  std::size_t engines_pinned = 0;
};

}  // namespace csrlmrm::plan

// Deterministic textual rendering of a compiled plan (`mrmcheck --explain`).
//
// The format is part of the tool's stable surface — tests/golden_plans/
// pins it over the paper's formula corpus, so changes here must update the
// golden files deliberately. Numbers print in shortest round-trip form
// (logic/number_format.hpp) and ops in their topological storage order, so
// the same (model, batch, options) always renders the same text.
#pragma once

#include <string>

#include "plan/ir.hpp"

namespace csrlmrm::plan {

/// Renders the plan:
///
///   plan: 2 formulas, 7 ops, states=12
///   passes: cse_hits=3 transforms_hoisted=1 engines_pinned=1
///   %0 = labelset "up"
///   %1 = not %0
///   %2 = transform M[!phi|psi] of %0 %1 [shared x2]
///   %3 = until %0 %1 time=[0,5] reward=[0,3] class=P2:time-reward
///        transform=%2 engine=classdp+hybrid (live=10 levels=42)
///   %4 = compare %3 >= 0.3
///   root[0] = %4  ; P(>= 0.3) [(up) U[0,5][0,3] (!up)]
///
/// (each op on one line; the until line above is wrapped for this comment
/// only). Lumped plans report "states=K (lumped from N)".
std::string print_plan(const Plan& plan);

}  // namespace csrlmrm::plan

#include "plan/cost_model.hpp"

#include "numeric/poisson.hpp"
#include "obs/stats.hpp"

namespace csrlmrm::plan {

CostModelHistory CostModelHistory::from_global_stats() {
  const auto& stats = obs::StatsRegistry::global();
  CostModelHistory history;
  history.auto_classdp = stats.counter("engine.auto_choice.classdp");
  history.auto_dfpg = stats.counter("engine.auto_choice.dfpg");
  history.auto_discretization = stats.counter("engine.auto_choice.discretization");
  history.classdp_fallbacks = stats.counter("classdp.fallbacks");
  history.uniformization_fallbacks = stats.counter("uniformization.fallbacks");
  history.uniformization_widenings = stats.counter("uniformization.widenings");
  return history;
}

EnginePrediction predict_until_engine(const core::Mrm& transformed, double t,
                                      const checker::CheckerOptions& options,
                                      const CostModelHistory& history, bool adaptive) {
  EnginePrediction prediction;
  // The decision itself comes from the run-time rule — never re-derive it
  // here, or plan and direct check could disagree.
  prediction.choice = checker::choose_until_engine(transformed, t, options);

  // Replicate the rule's inputs for the printer.
  const std::size_t n = transformed.num_states();
  std::size_t live = 0;
  for (core::StateIndex s = 0; s < n; ++s) {
    if (transformed.rates().exit_rate(s) > 0.0) ++live;
  }
  prediction.live_states = live;
  const double mean = transformed.rates().max_exit_rate() * t;
  prediction.poisson_levels =
      mean > 0.0 ? numeric::poisson_truncation_point(
                       mean, options.uniformization.truncation_probability)
                 : 0;

  const std::string work = std::to_string(prediction.live_states) + "x" +
                           std::to_string(prediction.poisson_levels) + " nodes vs budget " +
                           std::to_string(options.uniformization.max_nodes);
  if (prediction.choice.method == checker::UntilMethod::kDiscretization) {
    prediction.rationale = "discretization: uniformization over budget (" + work + ")";
    return prediction;
  }
  if (prediction.choice.engine == checker::UntilEngine::kDfpg) {
    prediction.rationale = "dfpg: aggregate_signatures disabled";
  } else {
    prediction.rationale = "classdp+hybrid: within budget (" + work + ")";
  }

  // Adaptive demotion: when at least 4 class-DP runs were recorded and at
  // least half exhausted their class budget and fell back, this workload's
  // frontiers evidently do not merge — start the next batch on DFPG and skip
  // the doomed sweeps. The thresholds are deliberately coarse; the knob is
  // off by default and the pinned-decision regression tests cover both sides.
  if (adaptive && prediction.choice.engine == checker::UntilEngine::kClassDp &&
      history.auto_classdp >= 4 &&
      history.classdp_fallbacks * 2 >= history.auto_classdp) {
    prediction.choice.engine = checker::UntilEngine::kDfpg;
    prediction.choice.adaptive_hybrid = false;
    prediction.history_adjusted = true;
    prediction.rationale = "dfpg: history shows " + std::to_string(history.classdp_fallbacks) +
                           "/" + std::to_string(history.auto_classdp) +
                           " classdp runs fell back";
  }
  return prediction;
}

}  // namespace csrlmrm::plan

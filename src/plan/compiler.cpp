#include "plan/compiler.hpp"

#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "checker/operator_eval.hpp"
#include "core/approx.hpp"
#include "core/lumping.hpp"
#include "core/transform.hpp"
#include "logic/number_format.hpp"
#include "obs/stats.hpp"
#include "plan/cost_model.hpp"

namespace csrlmrm::plan {

namespace {

/// Mirrors the dispatch order of checker::until_probabilities exactly; see
/// the comments there. Classification only looks at the bound shapes, which
/// the AST fixes at compile time.
UntilClass classify_until(const logic::Interval& time, const logic::Interval& reward) {
  const bool time_trivial = time.is_trivial();
  const bool reward_trivial = reward.is_trivial();
  if (!reward_trivial &&
      (!core::exactly_zero(reward.lower()) || reward.is_upper_unbounded())) {
    return UntilClass::kUnsupported;  // reward bounds must be [0,r]
  }
  if (time_trivial && reward_trivial) return UntilClass::kUnbounded;
  if (reward_trivial && time.lower() > 0.0 && !time.is_upper_unbounded()) {
    return UntilClass::kTwoPhase;
  }
  const bool time_zero_based = core::exactly_zero(time.lower()) && !time.is_upper_unbounded();
  const bool time_point = time.is_point() && !time.is_upper_unbounded();
  if (!time_zero_based && !time_point) return UntilClass::kUnsupported;
  if (reward_trivial) return UntilClass::kTimeBounded;  // time_zero_based holds here
  if (time_point && time.lower() > 0.0) return UntilClass::kPointTimeReward;
  return UntilClass::kTimeReward;
}

/// The primary absorbing transform each until class builds (the two-phase
/// class additionally builds M[!Phi v Psi] for its residual query, reached
/// lazily through the shared cache at execution time).
std::optional<TransformShape> primary_transform(UntilClass cls) {
  switch (cls) {
    case UntilClass::kTimeBounded:
    case UntilClass::kTimeReward:
      return TransformShape::kNotPhiOrPsi;
    case UntilClass::kTwoPhase:
      return TransformShape::kNotPhi;
    case UntilClass::kPointTimeReward:
      return TransformShape::kDead;
    case UntilClass::kUnbounded:
    case UntilClass::kUnsupported:
      return std::nullopt;
  }
  return std::nullopt;
}

/// The absorbing mask of one transform shape over compile-time operand sets.
std::vector<bool> transform_mask(TransformShape shape, const checker::SatSets& phi,
                                 const checker::SatSets& psi) {
  const std::size_t n = phi.sat.size();
  std::vector<bool> absorb(n, false);
  for (std::size_t s = 0; s < n; ++s) {
    switch (shape) {
      case TransformShape::kNotPhiOrPsi:
        absorb[s] = !phi.sat[s] || psi.sat[s];
        break;
      case TransformShape::kNotPhi:
        absorb[s] = !phi.sat[s];
        break;
      case TransformShape::kDead:
        absorb[s] = !phi.sat[s] && !psi.sat[s];
        break;
    }
  }
  return absorb;
}

class Lowerer {
 public:
  Lowerer(const core::Mrm& model, const PlanOptions& plan_options, Plan& plan)
      : model_(model), plan_options_(plan_options), plan_(plan) {
    if (plan_options_.adaptive_cost_model) {
      history_ = CostModelHistory::from_global_stats();
    }
  }

  OpId lower(const logic::FormulaPtr& formula) {
    if (!formula) throw std::invalid_argument("plan::compile: null formula");
    switch (formula->kind) {
      case logic::FormulaKind::kTrue: {
        PlanOp op;
        op.kind = OpKind::kConstTrue;
        checker::SatSets sets;
        sets.sat.assign(model_.num_states(), true);
        sets.unknown.assign(model_.num_states(), false);
        return intern("tt", std::move(op), std::move(sets));
      }
      case logic::FormulaKind::kFalse: {
        PlanOp op;
        op.kind = OpKind::kConstFalse;
        checker::SatSets sets;
        sets.sat.assign(model_.num_states(), false);
        sets.unknown.assign(model_.num_states(), false);
        return intern("ff", std::move(op), std::move(sets));
      }
      case logic::FormulaKind::kAtomic: {
        const auto& node = static_cast<const logic::AtomicFormula&>(*formula);
        PlanOp op;
        op.kind = OpKind::kLabelSet;
        op.label = node.name;
        checker::SatSets sets;
        sets.sat = model_.labels().states_with(node.name);
        sets.unknown.assign(model_.num_states(), false);
        return intern("label:" + node.name, std::move(op), std::move(sets));
      }
      case logic::FormulaKind::kNot: {
        const OpId inner = lower(static_cast<const logic::NotFormula&>(*formula).operand);
        PlanOp op;
        op.kind = OpKind::kNot;
        op.inputs = {inner};
        std::optional<checker::SatSets> sets;
        if (known_[inner]) sets = checker::kleene_not(*known_[inner]);
        return intern("not(" + std::to_string(inner) + ")", std::move(op), std::move(sets));
      }
      case logic::FormulaKind::kOr:
      case logic::FormulaKind::kAnd: {
        const bool is_or = formula->kind == logic::FormulaKind::kOr;
        const logic::FormulaPtr& lhs_formula =
            is_or ? static_cast<const logic::OrFormula&>(*formula).lhs
                  : static_cast<const logic::AndFormula&>(*formula).lhs;
        const logic::FormulaPtr& rhs_formula =
            is_or ? static_cast<const logic::OrFormula&>(*formula).rhs
                  : static_cast<const logic::AndFormula&>(*formula).rhs;
        const OpId lhs = lower(lhs_formula);
        const OpId rhs = lower(rhs_formula);
        PlanOp op;
        op.kind = is_or ? OpKind::kOr : OpKind::kAnd;
        op.inputs = {lhs, rhs};
        std::optional<checker::SatSets> sets;
        if (known_[lhs] && known_[rhs]) {
          sets = is_or ? checker::kleene_or(*known_[lhs], *known_[rhs])
                       : checker::kleene_and(*known_[lhs], *known_[rhs]);
        }
        const std::string key = std::string(is_or ? "or(" : "and(") + std::to_string(lhs) +
                                "," + std::to_string(rhs) + ")";
        return intern(key, std::move(op), std::move(sets));
      }
      case logic::FormulaKind::kSteady: {
        const auto& node = static_cast<const logic::SteadyFormula&>(*formula);
        const OpId operand = lower(node.operand);
        PlanOp op;
        op.kind = OpKind::kSteadySolve;
        op.inputs = {operand};
        const OpId solve =
            intern("steady(" + std::to_string(operand) + ")", std::move(op), std::nullopt);
        return lower_compare(solve, node.op, node.bound);
      }
      case logic::FormulaKind::kProbNext: {
        const auto& node = static_cast<const logic::ProbNextFormula&>(*formula);
        const OpId operand = lower(node.operand);
        PlanOp op;
        op.kind = OpKind::kNextSolve;
        op.inputs = {operand};
        op.time_bound = node.time_bound;
        op.reward_bound = node.reward_bound;
        const std::string key = "next(" + std::to_string(operand) + "," +
                                node.time_bound.to_string() + "," +
                                node.reward_bound.to_string() + ")";
        const OpId solve = intern(key, std::move(op), std::nullopt);
        return lower_compare(solve, node.op, node.bound);
      }
      case logic::FormulaKind::kProbUntil: {
        const auto& node = static_cast<const logic::ProbUntilFormula&>(*formula);
        const OpId solve = lower_until_solve(node);
        return lower_compare(solve, node.op, node.bound);
      }
      case logic::FormulaKind::kExpectedReward: {
        const auto& node = static_cast<const logic::ExpectedRewardFormula&>(*formula);
        const OpId solve = lower_reward_solve(formula, node);
        return lower_compare(solve, node.op, node.bound);
      }
    }
    throw std::logic_error("plan::compile: unknown formula kind");
  }

 private:
  /// Interns one op under its structural key: with CSE on, an existing op
  /// with the same key is reused; otherwise a fresh op is appended. `sets`
  /// is the compile-time satisfaction result when one exists (consts,
  /// labels, and boolean combinations thereof — never compare ops, so a
  /// known set always has an empty unknown mask).
  OpId intern(const std::string& key, PlanOp op, std::optional<checker::SatSets> sets) {
    if (plan_options_.cse) {
      const auto found = memo_.find(key);
      if (found != memo_.end()) {
        ++plan_.cse_hits;
        return found->second;
      }
    }
    const OpId id = plan_.ops.size();
    plan_.ops.push_back(std::move(op));
    known_.push_back(std::move(sets));
    if (plan_options_.cse) memo_.emplace(key, id);
    return id;
  }

  OpId lower_compare(OpId solve, logic::Comparison cmp, double threshold) {
    PlanOp op;
    op.kind = OpKind::kCompare;
    op.inputs = {solve};
    op.compare_op = cmp;
    op.threshold = threshold;
    // Thresholds key by their shortest round-trip form — exact, since the
    // printer round-trip guarantees distinct doubles print distinctly.
    const std::string key = "cmp(" + std::to_string(solve) + "," + logic::to_string(cmp) +
                            "," + logic::format_number(threshold) + ")";
    return intern(key, std::move(op), std::nullopt);
  }

  OpId lower_until_solve(const logic::ProbUntilFormula& node) {
    const OpId lhs = lower(node.lhs);
    const OpId rhs = lower(node.rhs);
    const std::string key = "until(" + std::to_string(lhs) + "," + std::to_string(rhs) + "," +
                            node.time_bound.to_string() + "," +
                            node.reward_bound.to_string() + ")";
    // Probe the memo before running the transform/prediction side effects: a
    // duplicate until solve must not count a second hoist or pin.
    if (plan_options_.cse) {
      const auto found = memo_.find(key);
      if (found != memo_.end()) {
        ++plan_.cse_hits;
        return found->second;
      }
    }
    PlanOp op;
    op.kind = OpKind::kUntilSolve;
    op.inputs = {lhs, rhs};
    op.time_bound = node.time_bound;
    op.reward_bound = node.reward_bound;
    op.until_class = classify_until(node.time_bound, node.reward_bound);

    // Pass 3: the hoisted transform op (and cache prewarm when computable).
    const auto shape = primary_transform(op.until_class);
    if (plan_options_.hoist_transforms && shape) {
      op.transform = transform_op(*shape, lhs, rhs);
    }

    // Pass 4: compile-time engine resolution. Only legal when the operand
    // sets are fully known here (unknown operand states trigger a second
    // optimistic-mask run on a *different* transformed model at execution
    // time, which a single pinned prediction cannot speak for — known sets
    // have empty unknown masks, so the one prediction covers the one run).
    const bool reward_class = op.until_class == UntilClass::kTimeReward ||
                              op.until_class == UntilClass::kPointTimeReward;
    if (plan_options_.engine_selection && reward_class &&
        plan_.options.until_method == checker::UntilMethod::kUniformization &&
        plan_.options.until_engine == checker::UntilEngine::kAuto && known_[lhs] &&
        known_[rhs]) {
      const auto absorb = transform_mask(*shape, *known_[lhs], *known_[rhs]);
      const std::shared_ptr<const core::Mrm> transformed =
          plan_.transforms
              ? plan_.transforms->absorbing(model_, absorb)
              : std::make_shared<const core::Mrm>(core::make_absorbing(model_, absorb));
      const EnginePrediction prediction =
          predict_until_engine(*transformed, node.time_bound.upper(), plan_.options,
                               history_, plan_options_.adaptive_cost_model);
      op.engine_known = true;
      op.engine_choice = prediction.choice;
      op.engine_history_adjusted = prediction.history_adjusted;
      op.predicted_live = prediction.live_states;
      op.predicted_levels = prediction.poisson_levels;
      ++plan_.engines_pinned;
    }
    return intern(key, std::move(op), std::nullopt);
  }

  OpId lower_reward_solve(const logic::FormulaPtr& formula,
                          const logic::ExpectedRewardFormula& node) {
    PlanOp op;
    op.kind = OpKind::kRewardSolve;
    // The executor reads only query/time_horizon/operand off this node, so
    // R nodes differing in threshold alone share one solve op.
    op.reward_node = formula;
    std::string key;
    switch (node.query) {
      case logic::RewardQuery::kCumulative:
        key = "reward:C(" + logic::format_number(node.time_horizon) + ")";
        break;
      case logic::RewardQuery::kReachability: {
        const OpId operand = lower(node.operand);
        op.inputs = {operand};
        key = "reward:F(" + std::to_string(operand) + ")";
        break;
      }
      case logic::RewardQuery::kLongRun:
        key = "reward:S";
        break;
    }
    return intern(key, std::move(op), std::nullopt);
  }

  /// The shared kTransform op for (shape, phi, psi), prewarming the plan's
  /// TransformCache when the masks are compile-time computable. Reuse beyond
  /// the first reference is a hoisting win (counted even with CSE off — the
  /// transform memo is what pass 3 IS).
  OpId transform_op(TransformShape shape, OpId phi, OpId psi) {
    std::string key = "xform(";
    key += to_string(shape);
    key += ",";
    key += std::to_string(phi);
    if (shape != TransformShape::kNotPhi) {
      key += ",";
      key += std::to_string(psi);
    }
    key += ")";
    const auto found = transform_memo_.find(key);
    if (found != transform_memo_.end()) {
      ++plan_.transforms_hoisted;
      return found->second;
    }
    PlanOp op;
    op.kind = OpKind::kTransform;
    op.transform_shape = shape;
    op.inputs = shape == TransformShape::kNotPhi ? std::vector<OpId>{phi}
                                                 : std::vector<OpId>{phi, psi};
    if (plan_.transforms && known_[phi] && known_[psi]) {
      plan_.transforms->absorbing(model_, transform_mask(shape, *known_[phi], *known_[psi]));
      obs::counter_add("plan.transform_prewarms");
    }
    const OpId id = plan_.ops.size();
    plan_.ops.push_back(std::move(op));
    known_.push_back(std::nullopt);
    transform_memo_.emplace(std::move(key), id);
    return id;
  }

  const core::Mrm& model_;
  const PlanOptions& plan_options_;
  Plan& plan_;
  std::map<std::string, OpId> memo_;
  std::map<std::string, OpId> transform_memo_;
  /// Parallel to plan_.ops: the compile-time satisfaction result, when the
  /// op has one (see intern()).
  std::vector<std::optional<checker::SatSets>> known_;
  CostModelHistory history_;
};

}  // namespace

Plan compile(const core::Mrm& model, const std::vector<logic::FormulaPtr>& formulas,
             const checker::CheckerOptions& options, const PlanOptions& plan_options) {
  obs::ScopedTimer timer("plan.compile");
  obs::counter_add("plan.compile.calls");

  Plan plan;
  plan.options = options;
  plan.formulas = formulas;
  plan.original_states = model.num_states();

  // Pass 1 (opt-in): lump, and compile everything downstream against the
  // quotient.
  const core::Mrm* target = &model;
  if (plan_options.lumping) {
    const core::Lumping lumping = core::compute_lumping(model);
    if (lumping.num_blocks < model.num_states()) {
      plan.lumped = true;
      plan.quotient =
          std::make_shared<const core::Mrm>(core::build_quotient(model, lumping));
      plan.block_of = lumping.block_of;
      target = plan.quotient.get();
      obs::counter_add("plan.lumping.applied");
    }
  }
  plan.num_states = target->num_states();

  if (plan_options.hoist_transforms) {
    // A lumped plan compiles against the quotient, whose transforms must not
    // mix with the original model's in a caller-shared cache (the cache keys
    // by mask alone); reuse only applies to the unlumped path.
    plan.transforms = (plan_options.shared_transforms && !plan.lumped)
                          ? plan_options.shared_transforms
                          : std::make_shared<core::TransformCache>();
  }

  Lowerer lowerer(*target, plan_options, plan);
  plan.roots.reserve(formulas.size());
  for (const auto& formula : formulas) {
    plan.roots.push_back(lowerer.lower(formula));
  }

  // Use counts, for the printer's sharing annotations.
  for (const PlanOp& op : plan.ops) {
    for (const OpId input : op.inputs) ++plan.ops[input].uses;
    if (op.transform != kNoOp) ++plan.ops[op.transform].uses;
  }

  obs::counter_add("plan.ops", plan.ops.size());
  obs::counter_add("plan.cse.hits", plan.cse_hits);
  obs::counter_add("plan.transforms.hoisted", plan.transforms_hoisted);
  obs::counter_add("plan.engines.pinned", plan.engines_pinned);
  return plan;
}

}  // namespace csrlmrm::plan

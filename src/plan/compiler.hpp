// The plan compiler: lowers a CSRL formula batch into the plan IR through a
// fixed pass pipeline.
//
//   1. (opt-in) lumping minimization — quotient the model by ordinary MRM
//      lumpability (core/lumping.hpp) and compile against the quotient;
//   2. lowering with common-subformula dedup — every structurally equal
//      subformula (logic::equal) becomes one op, and numeric solves are
//      keyed *without* their threshold, so P(>0.1)[phi] and P(>0.5)[phi]
//      share the entire solve and differ only in their compare op;
//   3. transform hoisting — the absorbing transforms behind the until
//      classes (M[!Phi v Psi], M[!Phi], M[!Phi && !Psi]) become shared
//      kTransform ops, prewarmed into the plan's TransformCache when the
//      operand sets are compile-time computable;
//   4. engine selection — P2-class until ops with compile-time-known
//      operands and --until-engine=auto get their engine resolved now by
//      the cost model (plan/cost_model.hpp), so the executor can pin the
//      choice and --explain can report it.
//
// Compilation runs no numeric solves; it is O(batch size + transforms).
#pragma once

#include <memory>
#include <vector>

#include "checker/options.hpp"
#include "core/mrm.hpp"
#include "core/transform.hpp"
#include "logic/ast.hpp"
#include "plan/ir.hpp"

namespace csrlmrm::plan {

/// Pass toggles. The defaults are what `mrmcheck --formulas` uses; tests
/// switch passes off individually to pin each one's effect.
struct PlanOptions {
  /// Common-subformula dedup across the batch (pass 2). Off: every
  /// subformula occurrence lowers to its own op.
  bool cse = true;
  /// Shared absorbing-transform ops + compile-time prewarming (pass 3).
  /// Off: the plan carries no TransformCache and every until query rebuilds
  /// its transforms, like a direct check.
  bool hoist_transforms = true;
  /// Lumping minimization (pass 1). Off by default: the quotient preserves
  /// every CSRL formula but its numerics are not bitwise-identical to the
  /// original model's.
  bool lumping = false;
  /// Compile-time engine resolution for eligible until ops (pass 4).
  bool engine_selection = true;
  /// Let recorded engine counters (CostModelHistory::from_global_stats)
  /// adjust the static engine choice. Off by default: a history-adjusted pin
  /// may differ from what a direct check would pick.
  bool adaptive_cost_model = false;
  /// When set (and hoist_transforms is on), the compiled plan uses this
  /// TransformCache instead of a fresh one, so transforms built by earlier
  /// compilations of the SAME model stay warm — mrmcheckd binds one cache per
  /// resident model and passes it here on every request. The cache keys by
  /// mask alone; the caller owns the cache-per-model discipline.
  std::shared_ptr<core::TransformCache> shared_transforms;
};

/// Compiles `formulas` against `model` under `options`. The returned plan
/// holds shared_ptr state (transforms, quotient) and the input formulas; the
/// model itself is NOT retained — pass the same model to execute().
Plan compile(const core::Mrm& model, const std::vector<logic::FormulaPtr>& formulas,
             const checker::CheckerOptions& options, const PlanOptions& plan_options = {});

}  // namespace csrlmrm::plan

// The engine-selection pass's cost model.
//
// The static part delegates to checker::choose_until_engine — the single
// source of truth for what --until-engine=auto does at run time — and only
// adds the diagnostics the plan printer reports (live states, Poisson
// levels). The adaptive part (opt-in, PlanOptions::adaptive_cost_model)
// additionally consults the recorded `classdp.*` / `uniformization.*` /
// `engine.auto_choice.*` counters of earlier runs in this process: a
// fallback-heavy class-DP history demotes the static class-DP pick to DFPG,
// on the theory that this workload's frontiers do not merge. History-adjusted
// pins can differ from what a direct check would choose, so the executor only
// applies them when the caller opted in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "checker/options.hpp"
#include "checker/until.hpp"
#include "core/mrm.hpp"

namespace csrlmrm::plan {

/// Snapshot of the engine-behavior counters the adaptive cost model reads.
/// Plain data so tests can fabricate histories without touching the global
/// registry.
struct CostModelHistory {
  std::uint64_t auto_classdp = 0;        // engine.auto_choice.classdp
  std::uint64_t auto_dfpg = 0;           // engine.auto_choice.dfpg
  std::uint64_t auto_discretization = 0; // engine.auto_choice.discretization
  std::uint64_t classdp_fallbacks = 0;   // classdp.fallbacks
  std::uint64_t uniformization_fallbacks = 0;  // uniformization.fallbacks
  std::uint64_t uniformization_widenings = 0;  // uniformization.widenings

  /// Reads the counters above from obs::StatsRegistry::global().
  static CostModelHistory from_global_stats();
};

/// One until op's compile-time engine resolution.
struct EnginePrediction {
  checker::AutoEngineChoice choice;
  /// Non-absorbing states of the transformed model (cost-model input).
  std::size_t live_states = 0;
  /// Poisson truncation depth at the op's horizon (cost-model input).
  std::size_t poisson_levels = 0;
  /// True when history demoted the static choice (adaptive mode only).
  bool history_adjusted = false;
  /// One-line printable justification ("classdp: live*levels=120 <= budget",
  /// "dfpg: history shows 3/4 classdp runs fell back", ...).
  std::string rationale;
};

/// Resolves the engine for one P2-class until query on `transformed` with
/// horizon `t` exactly as the run-time auto path would, plus diagnostics.
/// When `adaptive` is set, `history` may override the static pick as
/// described above; pass CostModelHistory{} (all zero) to disable.
EnginePrediction predict_until_engine(const core::Mrm& transformed, double t,
                                      const checker::CheckerOptions& options,
                                      const CostModelHistory& history, bool adaptive);

}  // namespace csrlmrm::plan

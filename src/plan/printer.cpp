#include "plan/printer.hpp"

#include <string>

#include "logic/number_format.hpp"
#include "logic/printer.hpp"

namespace csrlmrm::plan {

namespace {

// All text is built by in-place append: GCC 12's -Wrestrict misfires on the
// `const char* + std::string&&` operator under -O2 (visible in the -Werror
// nostats guard build), and append-only code sidesteps the whole pattern.
template <typename... Parts>
void append(std::string& out, const Parts&... parts) {
  ((out += parts), ...);
}

std::string op_ref(OpId id) {
  std::string out = "%";
  out += std::to_string(id);
  return out;
}

void append_engine(std::string& line, const PlanOp& op) {
  line += " engine=";
  if (op.engine_choice.method == checker::UntilMethod::kDiscretization) {
    line += "discretization(adapted-step)";
  } else if (op.engine_choice.engine == checker::UntilEngine::kClassDp) {
    line += op.engine_choice.adaptive_hybrid ? "classdp+hybrid" : "classdp";
  } else {
    line += "dfpg";
  }
  append(line, " (live=", std::to_string(op.predicted_live),
         " levels=", std::to_string(op.predicted_levels), ")");
  if (op.engine_history_adjusted) line += " {history-adjusted}";
}

std::string op_line(OpId id, const PlanOp& op) {
  std::string line;
  append(line, op_ref(id), " = ", to_string(op.kind));
  switch (op.kind) {
    case OpKind::kConstTrue:
    case OpKind::kConstFalse:
      break;
    case OpKind::kLabelSet:
      append(line, " \"", op.label, "\"");
      break;
    case OpKind::kNot:
    case OpKind::kAnd:
    case OpKind::kOr:
    case OpKind::kSteadySolve:
      for (const OpId input : op.inputs) append(line, " ", op_ref(input));
      break;
    case OpKind::kTransform:
      append(line, " ", to_string(op.transform_shape), " of");
      for (const OpId input : op.inputs) append(line, " ", op_ref(input));
      break;
    case OpKind::kNextSolve:
      append(line, " ", op_ref(op.inputs[0]), " time=", op.time_bound.to_string(),
             " reward=", op.reward_bound.to_string());
      break;
    case OpKind::kUntilSolve:
      append(line, " ", op_ref(op.inputs[0]), " ", op_ref(op.inputs[1]),
             " time=", op.time_bound.to_string(), " reward=", op.reward_bound.to_string(),
             " class=", to_string(op.until_class));
      if (op.transform != kNoOp) append(line, " transform=", op_ref(op.transform));
      if (op.engine_known) append_engine(line, op);
      break;
    case OpKind::kRewardSolve: {
      const auto& node =
          static_cast<const logic::ExpectedRewardFormula&>(*op.reward_node);
      switch (node.query) {
        case logic::RewardQuery::kCumulative:
          append(line, " C[0,", logic::format_number(node.time_horizon), "]");
          break;
        case logic::RewardQuery::kReachability:
          append(line, " F ", op_ref(op.inputs[0]));
          break;
        case logic::RewardQuery::kLongRun:
          line += " S";
          break;
      }
      break;
    }
    case OpKind::kCompare:
      append(line, " ", op_ref(op.inputs[0]), " ", logic::to_string(op.compare_op), " ",
             logic::format_number(op.threshold));
      break;
  }
  // Sharing annotations only on the ops where sharing is a win worth seeing
  // (transforms and solves); shared set ops would be line noise.
  const bool shareable = op.kind == OpKind::kTransform ||
                         op.kind == OpKind::kSteadySolve ||
                         op.kind == OpKind::kNextSolve ||
                         op.kind == OpKind::kUntilSolve ||
                         op.kind == OpKind::kRewardSolve;
  if (shareable && op.uses > 1) {
    append(line, " [shared x", std::to_string(op.uses), "]");
  }
  return line;
}

}  // namespace

std::string print_plan(const Plan& plan) {
  std::string out;
  append(out, "plan: ", std::to_string(plan.formulas.size()), " formulas, ",
         std::to_string(plan.ops.size()), " ops, states=",
         std::to_string(plan.num_states));
  if (plan.lumped) {
    append(out, " (lumped from ", std::to_string(plan.original_states), ")");
  }
  out += "\n";
  append(out, "passes: cse_hits=", std::to_string(plan.cse_hits),
         " transforms_hoisted=", std::to_string(plan.transforms_hoisted),
         " engines_pinned=", std::to_string(plan.engines_pinned), "\n");
  for (OpId id = 0; id < plan.ops.size(); ++id) {
    append(out, op_line(id, plan.ops[id]), "\n");
  }
  for (std::size_t i = 0; i < plan.roots.size(); ++i) {
    append(out, "root[", std::to_string(i), "] = ", op_ref(plan.roots[i]), "  ; ",
           logic::to_string(plan.formulas[i]), "\n");
  }
  return out;
}

}  // namespace csrlmrm::plan

#include "plan/ir.hpp"

namespace csrlmrm::plan {

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kConstTrue:
      return "const:tt";
    case OpKind::kConstFalse:
      return "const:ff";
    case OpKind::kLabelSet:
      return "labelset";
    case OpKind::kNot:
      return "not";
    case OpKind::kAnd:
      return "and";
    case OpKind::kOr:
      return "or";
    case OpKind::kTransform:
      return "transform";
    case OpKind::kSteadySolve:
      return "steady";
    case OpKind::kNextSolve:
      return "next";
    case OpKind::kUntilSolve:
      return "until";
    case OpKind::kRewardSolve:
      return "reward";
    case OpKind::kCompare:
      return "compare";
  }
  return "?";
}

const char* to_string(UntilClass cls) {
  switch (cls) {
    case UntilClass::kUnbounded:
      return "P0:unbounded";
    case UntilClass::kTimeBounded:
      return "P1:time-bounded";
    case UntilClass::kTwoPhase:
      return "P1':two-phase";
    case UntilClass::kTimeReward:
      return "P2:time-reward";
    case UntilClass::kPointTimeReward:
      return "P2:point-time-reward";
    case UntilClass::kUnsupported:
      return "unsupported";
  }
  return "?";
}

const char* to_string(TransformShape shape) {
  switch (shape) {
    case TransformShape::kNotPhiOrPsi:
      return "M[!phi|psi]";
    case TransformShape::kNotPhi:
      return "M[!phi]";
    case TransformShape::kDead:
      return "M[!phi&!psi]";
  }
  return "?";
}

}  // namespace csrlmrm::plan

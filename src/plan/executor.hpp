// The plan executor: one forward walk over a compiled plan's ops.
//
// Every numeric op calls the same checker/operator_eval.hpp function the
// direct ModelChecker would, against the same model and options, so verdicts
// and value enclosures are bitwise-identical to a per-formula direct check
// (tests/test_plan_differential.cpp asserts this at 1/2/8 threads). What the
// plan buys is work shared across the batch:
//
//   - each deduplicated solve runs ONCE for every formula referencing it,
//     and serves both the printed probabilities and the verdicts from that
//     one run (the direct CLI path solves twice for the same output);
//   - absorbing transforms are served from the plan's prewarmed
//     TransformCache instead of rebuilt per until query;
//   - Omega/Poisson setup behind the uniformization engines is shared via
//     numeric::SharedOmegaCache, which ops hitting the same transformed
//     model reach with identical keys.
//
// Execution is serial over ops (each numeric op parallelizes internally over
// start states, exactly like the direct checker). The TransformCache locks
// internally, so concurrent executions of plans sharing one cache (the
// mrmcheckd per-model resident cache) are safe; a single PlanResult is still
// built by one thread.
#pragma once

#include <vector>

#include "checker/operator_eval.hpp"
#include "checker/until.hpp"
#include "checker/verdict.hpp"
#include "core/mrm.hpp"
#include "plan/ir.hpp"

namespace csrlmrm::plan {

struct ExecutionOptions {
  /// Copy each root's underlying numeric results (probabilities, expected
  /// rewards, value enclosures) into the FormulaResult. Off skips the
  /// copies when only verdicts are needed.
  bool collect_values = true;
  /// Overrides the plan's CheckerOptions::threads when non-zero (the solves
  /// are identical at any thread count; this exists so one compiled plan can
  /// be executed at several counts).
  unsigned threads = 0;
};

/// Per-formula results, all sized to the ORIGINAL model's states (lumped
/// plans expand through block_of before returning).
struct FormulaResult {
  std::vector<bool> sat;
  std::vector<bool> unknown;
  std::vector<checker::Verdict> verdicts;

  /// Widened per-state value enclosures of the root operator, when the root
  /// is an S/P/R node (ModelChecker::value_bounds equivalent).
  bool has_bounds = false;
  std::vector<checker::ProbabilityBound> bounds;

  /// Raw path probabilities, when the root is a P node
  /// (ModelChecker::path_probabilities equivalent).
  bool has_probabilities = false;
  std::vector<checker::UntilValue> probabilities;

  /// Raw numeric values, when the root is an S node (steady-state
  /// probabilities) or R node (expected rewards).
  bool has_values = false;
  std::vector<double> values;
};

struct PlanResult {
  /// One entry per plan root / input formula, in order.
  std::vector<FormulaResult> formulas;
};

/// Executes `plan` against `model` — the same model it was compiled for
/// (checked by state count). Throws checker::UnsupportedFormulaError for
/// kUnsupported until ops, exactly like the direct checker would.
PlanResult execute(const Plan& plan, const core::Mrm& model,
                   const ExecutionOptions& exec = {});

}  // namespace csrlmrm::plan

#include "parallel/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "obs/stats.hpp"

namespace csrlmrm::parallel {

namespace {

thread_local bool t_in_parallel_region = false;

std::atomic<unsigned> g_default_override{0};

unsigned environment_thread_count() {
  const char* text = std::getenv("CSRLMRM_THREADS");
  if (text == nullptr || *text == '\0') return 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || value == 0 || value > 4096) return 0;
  return static_cast<unsigned>(value);
}

/// Below this much scalar work a default-threaded region stays serial: pool
/// dispatch costs a few microseconds, which only amortizes over ~10^4 ops.
constexpr std::size_t kMinParallelWork = 1 << 14;

}  // namespace

unsigned default_thread_count() {
  const unsigned override = g_default_override.load(std::memory_order_relaxed);
  if (override > 0) return override;
  const unsigned from_environment = environment_thread_count();
  if (from_environment > 0) return from_environment;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

void set_default_thread_count(unsigned count) {
  g_default_override.store(count, std::memory_order_relaxed);
}

unsigned resolve_thread_count(unsigned requested) {
  return requested > 0 ? requested : default_thread_count();
}

bool in_parallel_region() { return t_in_parallel_region; }

unsigned choose_thread_count(unsigned requested, std::size_t work) {
  if (requested > 0) return requested;
  return work < kMinParallelWork ? 1 : default_thread_count();
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::worker_count() {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

void ThreadPool::ensure_workers_locked(std::size_t wanted) {
  while (workers_.size() < wanted) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen_epoch = 0;
  for (;;) {
    wake_.wait(lock, [&] {
      return stop_ || (task_ != nullptr && epoch_ != seen_epoch && next_chunk_ < chunks_);
    });
    if (stop_) return;
    seen_epoch = epoch_;
    drain_current_job(lock);
  }
}

void ThreadPool::drain_current_job(std::unique_lock<std::mutex>& lock) {
  while (task_ != nullptr && next_chunk_ < chunks_) {
    const std::size_t chunk = next_chunk_++;
    const auto* task = task_;
    ++active_;
    lock.unlock();
    t_in_parallel_region = true;
    try {
      (*task)(chunk);
    } catch (...) {
      t_in_parallel_region = false;
      obs::flush_thread();  // unwind closed any timers; don't strand the data
      lock.lock();
      if (!error_) error_ = std::current_exception();
      --active_;
      continue;
    }
    t_in_parallel_region = false;
    obs::counter_add("thread_pool.chunks");
    // Flush this thread's pending stats before reporting the chunk done:
    // run() returns only after active_ reaches 0 under this mutex, so every
    // flush happens-before the region completes — no thread-local data from
    // the region can race with a post-region registry snapshot.
    obs::flush_thread();
    lock.lock();
    --active_;
  }
  if (next_chunk_ >= chunks_ && active_ == 0) done_.notify_all();
}

void ThreadPool::run(std::size_t chunks, const std::function<void(std::size_t)>& task) {
  if (chunks == 0) return;
  obs::counter_add("thread_pool.jobs");
  std::unique_lock<std::mutex> lock(mutex_);
  // One job at a time: the pool is only entered from non-nested regions, and
  // concurrent top-level callers serialize here.
  done_.wait(lock, [&] { return task_ == nullptr; });
  ensure_workers_locked(chunks > 0 ? chunks - 1 : 0);
  task_ = &task;
  chunks_ = chunks;
  next_chunk_ = 0;
  error_ = nullptr;
  ++epoch_;
  wake_.notify_all();
  drain_current_job(lock);  // the caller works too
  done_.wait(lock, [&] { return next_chunk_ >= chunks_ && active_ == 0; });
  task_ = nullptr;
  std::exception_ptr error = std::exchange(error_, nullptr);
  done_.notify_all();  // release any queued top-level caller
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const unsigned effective = resolve_thread_count(threads);
  if (effective <= 1 || count == 1 || in_parallel_region()) {
    body(0, count);
    return;
  }
  const std::size_t chunks = std::min<std::size_t>(effective, count);
  ThreadPool::instance().run(chunks, [&](std::size_t c) {
    const std::size_t begin = count * c / chunks;
    const std::size_t end = count * (c + 1) / chunks;
    if (begin < end) body(begin, end);
  });
}

}  // namespace csrlmrm::parallel

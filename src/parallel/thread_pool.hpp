// Lazily-started shared thread pool and deterministic parallel loops.
//
// The numeric engines (discretization level sweeps, uniformization series,
// per-state checker fan-out) are embarrassingly parallel over states, so the
// library funnels them through one process-wide worker pool instead of
// spawning threads per call. Design constraints, in order:
//
//   1. Determinism: for a fixed thread count the work is split into a fixed
//      chunk layout that depends only on (item count, thread count) — never
//      on timing or on how many workers actually execute the chunks — and
//      parallel_reduce combines per-chunk partials in chunk order. Kernels
//      whose per-item computation is order-independent therefore produce
//      bitwise-identical results at every thread count.
//   2. Laziness: no thread is started until the first parallel region with
//      an effective thread count > 1 runs; a serial process never pays.
//   3. Composability: regions nested inside a pool worker run sequentially
//      on the calling thread (no deadlock, no oversubscription), so a
//      parallel checker loop can call an engine that is itself parallel
//      when used standalone.
//
// Thread-count resolution: an options-level `threads` field of 0 means "the
// process default", which is the CSRLMRM_THREADS environment variable when
// set to a positive integer, else std::thread::hardware_concurrency().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace csrlmrm::parallel {

/// Process default worker count: set_default_thread_count override if any,
/// else CSRLMRM_THREADS, else hardware concurrency (at least 1).
unsigned default_thread_count();

/// Overrides the process-wide default thread count; 0 restores the
/// environment/hardware default. Thread-safe.
void set_default_thread_count(unsigned count);

/// Resolves an options-level thread count: 0 means the process default.
unsigned resolve_thread_count(unsigned requested);

/// True while the calling thread executes a pool task; nested parallel
/// regions detect this and run inline.
bool in_parallel_region();

/// Picks the thread count for a region processing roughly `work` scalar
/// operations. An explicit request (> 0) is honored as-is; the default (0)
/// stays serial below a dispatch-amortization threshold so tiny problems
/// never pay pool overhead.
unsigned choose_thread_count(unsigned requested, std::size_t work);

/// The shared pool. Use through parallel_for / parallel_reduce; exposed for
/// tests and custom chunkings.
class ThreadPool {
 public:
  /// The process-wide pool (created on first use, workers started lazily).
  static ThreadPool& instance();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Runs task(chunk) for every chunk in [0, chunks), distributing chunks
  /// over the workers; the calling thread participates. Blocks until every
  /// chunk finished. The first exception thrown by any chunk is rethrown
  /// here (remaining chunks still run). Must not be called from inside a
  /// pool task — nest through parallel_for, which serializes instead.
  void run(std::size_t chunks, const std::function<void(std::size_t)>& task);

  /// Workers currently started (grows on demand, never shrinks).
  std::size_t worker_count();

 private:
  ThreadPool() = default;
  void ensure_workers_locked(std::size_t wanted);
  void worker_loop();
  /// Executes chunks of the current job until none remain. `lock` must hold
  /// mutex_ on entry and holds it again on return.
  void drain_current_job(std::unique_lock<std::mutex>& lock);

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::vector<std::thread> workers_;
  const std::function<void(std::size_t)>* task_ = nullptr;  // null = idle
  std::size_t chunks_ = 0;
  std::size_t next_chunk_ = 0;
  std::size_t active_ = 0;  // workers inside task_ right now
  std::uint64_t epoch_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
};

/// Splits [0, count) into min(threads, count) contiguous chunks and runs
/// body(begin, end) for each, in parallel. The chunk layout depends only on
/// (count, effective thread count). Runs inline when the effective thread
/// count is 1, count <= 1, or the caller is already inside a pool task.
void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Deterministic chunked reduction: `chunk(begin, end, identity)` produces
/// one partial per chunk (same layout as parallel_for) and `join` combines
/// the partials strictly in ascending chunk order, so the result depends
/// only on the effective thread count, not on scheduling.
template <typename T, typename ChunkFn, typename JoinFn>
T parallel_reduce(std::size_t count, unsigned threads, T identity, ChunkFn chunk,
                  JoinFn join) {
  if (count == 0) return identity;
  const unsigned effective = resolve_thread_count(threads);
  if (effective <= 1 || count == 1 || in_parallel_region()) {
    return chunk(std::size_t{0}, count, std::move(identity));
  }
  const std::size_t chunks = std::min<std::size_t>(effective, count);
  std::vector<T> partials(chunks, identity);
  ThreadPool::instance().run(chunks, [&](std::size_t c) {
    const std::size_t begin = count * c / chunks;
    const std::size_t end = count * (c + 1) / chunks;
    partials[c] = chunk(begin, end, partials[c]);
  });
  T result = std::move(partials[0]);
  for (std::size_t c = 1; c < chunks; ++c) result = join(std::move(result), std::move(partials[c]));
  return result;
}

}  // namespace csrlmrm::parallel

#include "logic/number_format.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>
#include <system_error>

namespace csrlmrm::logic {

std::string format_number(double value) {
  if (!std::isfinite(value)) {
    throw std::invalid_argument("format_number: value must be finite");
  }
  // 32 chars comfortably fit the longest shortest-form double
  // (-2.2250738585072014e-308 is 24 chars).
  char buffer[32];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (result.ec != std::errc()) {
    throw std::logic_error("format_number: to_chars failed");
  }
  return std::string(buffer, result.ptr);
}

}  // namespace csrlmrm::logic

// Pretty printer for CSRL formulas, producing the concrete syntax the parser
// accepts (parse(print(f)) is structurally equal to f; round-trip tested).
#pragma once

#include <string>

#include "logic/ast.hpp"

namespace csrlmrm::logic {

/// Renders a formula in the appendix syntax, fully parenthesizing binary
/// operators for unambiguous round-trips.
std::string to_string(const FormulaPtr& formula);

}  // namespace csrlmrm::logic

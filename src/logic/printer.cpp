#include "logic/printer.hpp"

#include <sstream>
#include <stdexcept>

#include "logic/number_format.hpp"

namespace csrlmrm::logic {

namespace {

void print(const FormulaPtr& f, std::ostringstream& out);

void print_bounds(const Interval& time, const Interval& reward, std::ostringstream& out) {
  // Omit trivial bounds entirely; a non-trivial reward bound forces the time
  // bound to be printed too (the first interval is always the time bound).
  if (time.is_trivial() && reward.is_trivial()) return;
  out << time.to_string();
  if (!reward.is_trivial()) out << reward.to_string();
}

void print(const FormulaPtr& f, std::ostringstream& out) {
  if (!f) throw std::invalid_argument("to_string: null formula");
  switch (f->kind) {
    case FormulaKind::kTrue:
      out << "TT";
      return;
    case FormulaKind::kFalse:
      out << "FF";
      return;
    case FormulaKind::kAtomic:
      out << static_cast<const AtomicFormula&>(*f).name;
      return;
    case FormulaKind::kNot: {
      const auto& node = static_cast<const NotFormula&>(*f);
      out << "!(";
      print(node.operand, out);
      out << ")";
      return;
    }
    case FormulaKind::kOr: {
      const auto& node = static_cast<const OrFormula&>(*f);
      out << "(";
      print(node.lhs, out);
      out << " || ";
      print(node.rhs, out);
      out << ")";
      return;
    }
    case FormulaKind::kAnd: {
      const auto& node = static_cast<const AndFormula&>(*f);
      out << "(";
      print(node.lhs, out);
      out << " && ";
      print(node.rhs, out);
      out << ")";
      return;
    }
    case FormulaKind::kSteady: {
      const auto& node = static_cast<const SteadyFormula&>(*f);
      out << "S(" << to_string(node.op) << " " << format_number(node.bound) << ") (";
      print(node.operand, out);
      out << ")";
      return;
    }
    case FormulaKind::kProbNext: {
      const auto& node = static_cast<const ProbNextFormula&>(*f);
      out << "P(" << to_string(node.op) << " " << format_number(node.bound) << ") [X";
      print_bounds(node.time_bound, node.reward_bound, out);
      out << " ";
      print(node.operand, out);
      out << "]";
      return;
    }
    case FormulaKind::kProbUntil: {
      const auto& node = static_cast<const ProbUntilFormula&>(*f);
      out << "P(" << to_string(node.op) << " " << format_number(node.bound) << ") [";
      print(node.lhs, out);
      out << " U";
      print_bounds(node.time_bound, node.reward_bound, out);
      out << " ";
      print(node.rhs, out);
      out << "]";
      return;
    }
    case FormulaKind::kExpectedReward: {
      const auto& node = static_cast<const ExpectedRewardFormula&>(*f);
      out << "R(" << to_string(node.op) << " " << format_number(node.bound) << ") [";
      switch (node.query) {
        case RewardQuery::kCumulative:
          out << "C[0," << format_number(node.time_horizon) << "]";
          break;
        case RewardQuery::kReachability:
          out << "F ";
          print(node.operand, out);
          break;
        case RewardQuery::kLongRun:
          out << "S";
          break;
      }
      out << "]";
      return;
    }
  }
  throw std::logic_error("to_string: unknown formula kind");
}

}  // namespace

std::string to_string(const FormulaPtr& formula) {
  std::ostringstream out;
  print(formula, out);
  return out.str();
}

}  // namespace csrlmrm::logic

#include "logic/parser.hpp"

#include <limits>
#include "core/approx.hpp"

namespace csrlmrm::logic {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  FormulaPtr parse() {
    FormulaPtr formula = parse_or();
    expect(TokenKind::kEnd, "end of input");
    return formula;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }

  const Token& advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  bool match(TokenKind kind) {
    if (peek().kind != kind) return false;
    advance();
    return true;
  }

  const Token& expect(TokenKind kind, const char* what) {
    if (peek().kind != kind) {
      throw ParseError(std::string("expected ") + what + ", found '" + peek().text + "'",
                       peek().column);
    }
    return advance();
  }

  bool peek_is_word(const char* word, std::size_t ahead = 0) const {
    return peek(ahead).kind == TokenKind::kIdentifier && peek(ahead).text == word;
  }

  FormulaPtr parse_or() {
    FormulaPtr lhs = parse_and();
    while (match(TokenKind::kOrOr)) lhs = make_or(std::move(lhs), parse_and());
    return lhs;
  }

  FormulaPtr parse_and() {
    FormulaPtr lhs = parse_unary();
    while (match(TokenKind::kAndAnd)) lhs = make_and(std::move(lhs), parse_unary());
    return lhs;
  }

  FormulaPtr parse_unary() {
    if (match(TokenKind::kBang)) return make_not(parse_unary());
    return parse_primary();
  }

  FormulaPtr parse_primary() {
    if (match(TokenKind::kLParen)) {
      FormulaPtr inner = parse_or();
      expect(TokenKind::kRParen, "')'");
      return inner;
    }
    const Token& token = peek();
    if (token.kind != TokenKind::kIdentifier) {
      throw ParseError("expected a state formula, found '" + token.text + "'", token.column);
    }
    if (token.text == "TT" || token.text == "tt") {
      advance();
      return make_true();
    }
    if (token.text == "FF" || token.text == "ff") {
      advance();
      return make_false();
    }
    // S and P act as operators only when immediately followed by '('; this
    // keeps propositions like "Sup" or a bare "P" usable as atoms.
    if (token.text == "S" && peek(1).kind == TokenKind::kLParen) {
      advance();
      auto [op, bound] = parse_probability_bound();
      return make_steady(op, bound, parse_unary());
    }
    if (token.text == "P" && peek(1).kind == TokenKind::kLParen) {
      advance();
      auto [op, bound] = parse_probability_bound();
      expect(TokenKind::kLBracket, "'[' opening a path formula");
      FormulaPtr formula = parse_path(op, bound);
      expect(TokenKind::kRBracket, "']' closing the path formula");
      return formula;
    }
    if (token.text == "R" && peek(1).kind == TokenKind::kLParen) {
      advance();
      auto [op, bound] = parse_reward_threshold();
      expect(TokenKind::kLBracket, "'[' opening a reward query");
      FormulaPtr formula = parse_reward_query(op, bound);
      expect(TokenKind::kRBracket, "']' closing the reward query");
      return formula;
    }
    advance();
    return make_atomic(token.text);
  }

  std::pair<Comparison, double> parse_probability_bound() {
    expect(TokenKind::kLParen, "'('");
    Comparison op;
    switch (peek().kind) {
      case TokenKind::kLess:
        op = Comparison::kLess;
        break;
      case TokenKind::kLessEqual:
        op = Comparison::kLessEqual;
        break;
      case TokenKind::kGreater:
        op = Comparison::kGreater;
        break;
      case TokenKind::kGreaterEqual:
        op = Comparison::kGreaterEqual;
        break;
      default:
        throw ParseError("expected a comparison operator (<, <=, >, >=), found '" +
                             peek().text + "'",
                         peek().column);
    }
    advance();
    const Token& number = expect(TokenKind::kNumber, "a probability");
    if (number.value < 0.0 || number.value > 1.0) {
      throw ParseError("probability bound must be in [0,1]", number.column);
    }
    expect(TokenKind::kRParen, "')'");
    return {op, number.value};
  }

  /// Like parse_probability_bound but the threshold is any non-negative
  /// real (expected rewards are unbounded above).
  std::pair<Comparison, double> parse_reward_threshold() {
    expect(TokenKind::kLParen, "'('");
    Comparison op;
    switch (peek().kind) {
      case TokenKind::kLess:
        op = Comparison::kLess;
        break;
      case TokenKind::kLessEqual:
        op = Comparison::kLessEqual;
        break;
      case TokenKind::kGreater:
        op = Comparison::kGreater;
        break;
      case TokenKind::kGreaterEqual:
        op = Comparison::kGreaterEqual;
        break;
      default:
        throw ParseError("expected a comparison operator (<, <=, >, >=), found '" +
                             peek().text + "'",
                         peek().column);
    }
    advance();
    const Token& number = expect(TokenKind::kNumber, "a reward threshold");
    expect(TokenKind::kRParen, "')'");
    return {op, number.value};
  }

  /// reward_query := 'C' interval? | 'F' state | 'S'.
  FormulaPtr parse_reward_query(Comparison op, double bound) {
    if (peek_is_word("C")) {
      advance();
      Interval horizon = full_interval();
      if (peek().kind == TokenKind::kLBracket) horizon = parse_interval();
      if (!core::exactly_zero(horizon.lower()) || horizon.is_upper_unbounded()) {
        throw ParseError("cumulative reward horizons must have the form [0,t]",
                         peek().column);
      }
      return make_reward_cumulative(op, bound, horizon.upper());
    }
    if (peek_is_word("F")) {
      advance();
      return make_reward_reachability(op, bound, parse_or());
    }
    if (peek_is_word("S")) {
      advance();
      return make_reward_long_run(op, bound);
    }
    throw ParseError("expected a reward query (C[0,t], F formula, or S), found '" +
                         peek().text + "'",
                     peek().column);
  }

  /// path := 'X' bounds state | state 'U' bounds state. A leading word "X"
  /// denotes the Next operator unless it is immediately followed by the word
  /// "U" (then it is an atomic proposition on the left of an until).
  FormulaPtr parse_path(Comparison op, double bound) {
    if (peek_is_word("X") && !peek_is_word("U", 1)) {
      advance();
      const auto [time, reward] = parse_bounds();
      return make_prob_next(op, bound, time, reward, parse_or());
    }
    FormulaPtr lhs = parse_or();
    if (!peek_is_word("U")) {
      throw ParseError("expected 'U' in path formula, found '" + peek().text + "'",
                       peek().column);
    }
    advance();
    const auto [time, reward] = parse_bounds();
    FormulaPtr rhs = parse_or();
    return make_prob_until(op, bound, time, reward, std::move(lhs), std::move(rhs));
  }

  /// bounds := interval? interval? — first is the time bound I, second the
  /// reward bound J; both default to [0,~].
  std::pair<Interval, Interval> parse_bounds() {
    Interval time = full_interval();
    Interval reward = full_interval();
    if (peek().kind == TokenKind::kLBracket) {
      time = parse_interval();
      if (peek().kind == TokenKind::kLBracket) reward = parse_interval();
    }
    return {time, reward};
  }

  Interval parse_interval() {
    expect(TokenKind::kLBracket, "'['");
    const double lower = parse_number_or_infinity();
    expect(TokenKind::kComma, "','");
    const double upper = parse_number_or_infinity();
    const std::size_t column = peek().column;
    expect(TokenKind::kRBracket, "']'");
    try {
      return Interval(lower, upper);
    } catch (const std::invalid_argument& error) {
      throw ParseError(error.what(), column);
    }
  }

  double parse_number_or_infinity() {
    if (match(TokenKind::kTilde)) return std::numeric_limits<double>::infinity();
    return expect(TokenKind::kNumber, "a number or '~'").value;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

FormulaPtr parse_formula(const std::string& input) {
  return Parser(tokenize(input)).parse();
}

}  // namespace csrlmrm::logic

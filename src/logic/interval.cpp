#include "logic/interval.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "logic/number_format.hpp"

namespace csrlmrm::logic {

Interval::Interval(double lower, double upper) : lower_(lower), upper_(upper) {
  if (std::isnan(lower) || std::isnan(upper)) {
    throw std::invalid_argument("Interval: NaN bound");
  }
  if (lower < 0.0 || !std::isfinite(lower)) {
    throw std::invalid_argument("Interval: lower bound must be finite and >= 0");
  }
  if (upper < lower) {
    throw std::invalid_argument("Interval: upper bound below lower bound");
  }
}

std::string Interval::to_string() const {
  std::ostringstream out;
  out << '[' << format_number(lower_) << ',';
  if (is_upper_unbounded()) {
    out << '~';
  } else {
    out << format_number(upper_);
  }
  out << ']';
  return out.str();
}

Interval up_to(double bound) { return Interval(0.0, bound); }

}  // namespace csrlmrm::logic

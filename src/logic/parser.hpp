// Recursive-descent parser for the appendix CSRL grammar:
//
//   state   := or
//   or      := and ( '||' and )*
//   and     := unary ( '&&' unary )*
//   unary   := '!' unary | primary
//   primary := '(' state ')' | 'TT' | 'FF'
//            | 'S' '(' cmp number ')' unary
//            | 'P' '(' cmp number ')' '[' path ']'
//            | identifier
//   path    := 'X' bounds state | state 'U' bounds state
//   bounds  := interval? interval?        (first = time I, second = reward J;
//                                          omitted intervals mean [0,~])
//   interval:= '[' num_or_inf ',' num_or_inf ']'
//   cmp     := '<' | '<=' | '>' | '>='
//
// TT/FF (and lowercase tt/ff) are recognized keywords; S, P, X, U act as
// keywords only in operator position, so atomic propositions such as "Sup"
// or "Up" parse as plain identifiers.
#pragma once

#include <string>

#include "logic/ast.hpp"
#include "logic/lexer.hpp"

namespace csrlmrm::logic {

/// Parses a CSRL state formula; throws ParseError with a column on failure.
FormulaPtr parse_formula(const std::string& input);

}  // namespace csrlmrm::logic

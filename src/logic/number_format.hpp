// Shortest round-trip rendering of doubles for the CSRL printers.
//
// The concrete-syntax printers (logic/printer.cpp, logic/interval.cpp, and
// the plan printer) must satisfy parse(print(f)) == f *structurally*, which
// requires every numeric literal to re-parse to the identical double. The
// default ostream precision (6 significant digits) loses bits on arbitrary
// bounds; fixed 17-digit precision round-trips but renders 0.3 as
// 0.29999999999999999. std::to_chars's shortest form does both: minimal
// digits, exact round-trip.
#pragma once

#include <string>

namespace csrlmrm::logic {

/// The shortest decimal string that parses back to exactly `value`
/// (std::to_chars general format; "0.3" stays "0.3", arbitrary doubles get
/// however many digits they need). `value` must be finite.
std::string format_number(double value);

}  // namespace csrlmrm::logic

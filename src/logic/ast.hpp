// Abstract syntax of CSRL (Definition 3.5).
//
// State formulas:  tt | ff | a | !Phi | Phi || Psi | Phi && Psi
//                | S(op p) Phi | P(op p)[ phi ]
// Path formulas:   X[I][J] Phi | Phi U[I][J] Psi
//
// Nodes are immutable and shared (std::shared_ptr<const Formula>), so
// sub-formulas can be reused freely and the checker can memoize satisfaction
// sets per node identity.
#pragma once

#include <memory>
#include <string>

#include "logic/interval.hpp"

namespace csrlmrm::logic {

/// Probability comparison operators appearing in S and P operators.
enum class Comparison { kLess, kLessEqual, kGreater, kGreaterEqual };

/// Applies a comparison: `value <op> bound`.
bool compare(double value, Comparison op, double bound);

/// Printable form ("<", "<=", ">", ">=").
std::string to_string(Comparison op);

/// Discriminator for Formula nodes.
enum class FormulaKind {
  kTrue,
  kFalse,
  kAtomic,
  kNot,
  kOr,
  kAnd,
  kSteady,
  kProbNext,
  kProbUntil,
  kExpectedReward,
};

/// The reward query inside an R operator (an extension over the thesis,
/// following the feature set of the MRMC successor tool):
///   kCumulative    R(op x)[C[0,t]] — expected reward accumulated by time t
///   kReachability  R(op x)[F Phi]  — expected reward until first reaching
///                                    a Phi-state (+infinity if not almost
///                                    surely reached)
///   kLongRun       R(op x)[S]      — long-run reward rate
enum class RewardQuery { kCumulative, kReachability, kLongRun };

struct Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// Base of all CSRL state-formula nodes.
struct Formula {
  explicit Formula(FormulaKind k) : kind(k) {}
  virtual ~Formula() = default;
  Formula(const Formula&) = delete;
  Formula& operator=(const Formula&) = delete;

  const FormulaKind kind;
};

/// tt.
struct TrueFormula final : Formula {
  TrueFormula() : Formula(FormulaKind::kTrue) {}
};

/// ff (= !tt; kept explicit for faithful printing).
struct FalseFormula final : Formula {
  FalseFormula() : Formula(FormulaKind::kFalse) {}
};

/// An atomic proposition a in AP.
struct AtomicFormula final : Formula {
  explicit AtomicFormula(std::string n) : Formula(FormulaKind::kAtomic), name(std::move(n)) {}
  const std::string name;
};

/// !Phi.
struct NotFormula final : Formula {
  explicit NotFormula(FormulaPtr f) : Formula(FormulaKind::kNot), operand(std::move(f)) {}
  const FormulaPtr operand;
};

/// Phi || Psi.
struct OrFormula final : Formula {
  OrFormula(FormulaPtr l, FormulaPtr r)
      : Formula(FormulaKind::kOr), lhs(std::move(l)), rhs(std::move(r)) {}
  const FormulaPtr lhs;
  const FormulaPtr rhs;
};

/// Phi && Psi (derived operator, kept explicit for faithful printing).
struct AndFormula final : Formula {
  AndFormula(FormulaPtr l, FormulaPtr r)
      : Formula(FormulaKind::kAnd), lhs(std::move(l)), rhs(std::move(r)) {}
  const FormulaPtr lhs;
  const FormulaPtr rhs;
};

/// S(op p) Phi — the steady-state probability of the Phi-states meets the
/// bound.
struct SteadyFormula final : Formula {
  SteadyFormula(Comparison o, double b, FormulaPtr f)
      : Formula(FormulaKind::kSteady), op(o), bound(b), operand(std::move(f)) {}
  const Comparison op;
  const double bound;
  const FormulaPtr operand;
};

/// P(op p)[ X[I][J] Phi ].
struct ProbNextFormula final : Formula {
  ProbNextFormula(Comparison o, double b, Interval time, Interval reward, FormulaPtr f)
      : Formula(FormulaKind::kProbNext),
        op(o),
        bound(b),
        time_bound(time),
        reward_bound(reward),
        operand(std::move(f)) {}
  const Comparison op;
  const double bound;
  const Interval time_bound;    // I
  const Interval reward_bound;  // J
  const FormulaPtr operand;
};

/// P(op p)[ Phi U[I][J] Psi ].
struct ProbUntilFormula final : Formula {
  ProbUntilFormula(Comparison o, double b, Interval time, Interval reward, FormulaPtr l,
                   FormulaPtr r)
      : Formula(FormulaKind::kProbUntil),
        op(o),
        bound(b),
        time_bound(time),
        reward_bound(reward),
        lhs(std::move(l)),
        rhs(std::move(r)) {}
  const Comparison op;
  const double bound;
  const Interval time_bound;    // I
  const Interval reward_bound;  // J
  const FormulaPtr lhs;
  const FormulaPtr rhs;
};

/// R(op x)[ C[0,t] | F Phi | S ] — expected-reward bound.
struct ExpectedRewardFormula final : Formula {
  ExpectedRewardFormula(Comparison o, double b, RewardQuery q, double t, FormulaPtr f)
      : Formula(FormulaKind::kExpectedReward),
        op(o),
        bound(b),
        query(q),
        time_horizon(t),
        operand(std::move(f)) {}
  const Comparison op;
  const double bound;          // the x in R(op x); any non-negative real
  const RewardQuery query;
  const double time_horizon;   // t for kCumulative; unused otherwise
  const FormulaPtr operand;    // Phi for kReachability; null otherwise
};

/// Structural equality of two formulas: same shape, same proposition names,
/// and bitwise-equal numeric parameters (thresholds, interval endpoints,
/// time horizons). Null pointers are equal only to each other. This is the
/// relation the printer round-trip guarantees (parse(print(f)) equals f) and
/// the plan compiler's common-subformula dedup works up to.
bool equal(const FormulaPtr& lhs, const FormulaPtr& rhs);

// --- Factory helpers (the preferred way to build formulas in code) --------

FormulaPtr make_true();
FormulaPtr make_false();
FormulaPtr make_atomic(std::string name);
FormulaPtr make_not(FormulaPtr operand);
FormulaPtr make_or(FormulaPtr lhs, FormulaPtr rhs);
FormulaPtr make_and(FormulaPtr lhs, FormulaPtr rhs);
/// Phi => Psi, desugared to !Phi || Psi.
FormulaPtr make_implies(FormulaPtr lhs, FormulaPtr rhs);
FormulaPtr make_steady(Comparison op, double bound, FormulaPtr operand);
FormulaPtr make_prob_next(Comparison op, double bound, Interval time, Interval reward,
                          FormulaPtr operand);
FormulaPtr make_prob_until(Comparison op, double bound, Interval time, Interval reward,
                           FormulaPtr lhs, FormulaPtr rhs);
/// The eventually operator: Diamond[I][J] Phi = tt U[I][J] Phi.
FormulaPtr make_prob_eventually(Comparison op, double bound, Interval time, Interval reward,
                                FormulaPtr operand);
/// R(op x)[C[0,t]]: expected cumulative reward by time t.
FormulaPtr make_reward_cumulative(Comparison op, double bound, double time_horizon);
/// R(op x)[F Phi]: expected reward until first reaching Phi.
FormulaPtr make_reward_reachability(Comparison op, double bound, FormulaPtr operand);
/// R(op x)[S]: long-run reward rate.
FormulaPtr make_reward_long_run(Comparison op, double bound);

}  // namespace csrlmrm::logic

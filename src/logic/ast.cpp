#include "logic/ast.hpp"

#include <cmath>
#include <stdexcept>

namespace csrlmrm::logic {

bool compare(double value, Comparison op, double bound) {
  switch (op) {
    case Comparison::kLess:
      return value < bound;
    case Comparison::kLessEqual:
      return value <= bound;
    case Comparison::kGreater:
      return value > bound;
    case Comparison::kGreaterEqual:
      return value >= bound;
  }
  throw std::logic_error("compare: invalid comparison operator");
}

std::string to_string(Comparison op) {
  switch (op) {
    case Comparison::kLess:
      return "<";
    case Comparison::kLessEqual:
      return "<=";
    case Comparison::kGreater:
      return ">";
    case Comparison::kGreaterEqual:
      return ">=";
  }
  throw std::logic_error("to_string: invalid comparison operator");
}

namespace {
void require_probability_bound(double bound) {
  if (std::isnan(bound) || bound < 0.0 || bound > 1.0) {
    throw std::invalid_argument("probability bound must be in [0,1]");
  }
}
void require_operand(const FormulaPtr& f, const char* what) {
  if (!f) throw std::invalid_argument(std::string(what) + ": null sub-formula");
}
}  // namespace

FormulaPtr make_true() { return std::make_shared<TrueFormula>(); }

FormulaPtr make_false() { return std::make_shared<FalseFormula>(); }

FormulaPtr make_atomic(std::string name) {
  if (name.empty()) throw std::invalid_argument("make_atomic: empty proposition name");
  return std::make_shared<AtomicFormula>(std::move(name));
}

FormulaPtr make_not(FormulaPtr operand) {
  require_operand(operand, "make_not");
  return std::make_shared<NotFormula>(std::move(operand));
}

FormulaPtr make_or(FormulaPtr lhs, FormulaPtr rhs) {
  require_operand(lhs, "make_or");
  require_operand(rhs, "make_or");
  return std::make_shared<OrFormula>(std::move(lhs), std::move(rhs));
}

FormulaPtr make_and(FormulaPtr lhs, FormulaPtr rhs) {
  require_operand(lhs, "make_and");
  require_operand(rhs, "make_and");
  return std::make_shared<AndFormula>(std::move(lhs), std::move(rhs));
}

FormulaPtr make_implies(FormulaPtr lhs, FormulaPtr rhs) {
  return make_or(make_not(std::move(lhs)), std::move(rhs));
}

FormulaPtr make_steady(Comparison op, double bound, FormulaPtr operand) {
  require_probability_bound(bound);
  require_operand(operand, "make_steady");
  return std::make_shared<SteadyFormula>(op, bound, std::move(operand));
}

FormulaPtr make_prob_next(Comparison op, double bound, Interval time, Interval reward,
                          FormulaPtr operand) {
  require_probability_bound(bound);
  require_operand(operand, "make_prob_next");
  return std::make_shared<ProbNextFormula>(op, bound, time, reward, std::move(operand));
}

FormulaPtr make_prob_until(Comparison op, double bound, Interval time, Interval reward,
                           FormulaPtr lhs, FormulaPtr rhs) {
  require_probability_bound(bound);
  require_operand(lhs, "make_prob_until");
  require_operand(rhs, "make_prob_until");
  return std::make_shared<ProbUntilFormula>(op, bound, time, reward, std::move(lhs),
                                            std::move(rhs));
}

FormulaPtr make_prob_eventually(Comparison op, double bound, Interval time, Interval reward,
                                FormulaPtr operand) {
  return make_prob_until(op, bound, time, reward, make_true(), std::move(operand));
}

namespace {
void require_reward_bound(double bound) {
  if (std::isnan(bound) || bound < 0.0) {
    throw std::invalid_argument("reward bound must be >= 0");
  }
}
}  // namespace

FormulaPtr make_reward_cumulative(Comparison op, double bound, double time_horizon) {
  require_reward_bound(bound);
  if (std::isnan(time_horizon) || time_horizon < 0.0 || std::isinf(time_horizon)) {
    throw std::invalid_argument("make_reward_cumulative: time horizon must be finite, >= 0");
  }
  return std::make_shared<ExpectedRewardFormula>(op, bound, RewardQuery::kCumulative,
                                                 time_horizon, nullptr);
}

FormulaPtr make_reward_reachability(Comparison op, double bound, FormulaPtr operand) {
  require_reward_bound(bound);
  require_operand(operand, "make_reward_reachability");
  return std::make_shared<ExpectedRewardFormula>(op, bound, RewardQuery::kReachability, 0.0,
                                                 std::move(operand));
}

FormulaPtr make_reward_long_run(Comparison op, double bound) {
  require_reward_bound(bound);
  return std::make_shared<ExpectedRewardFormula>(op, bound, RewardQuery::kLongRun, 0.0,
                                                 nullptr);
}

}  // namespace csrlmrm::logic

#include "logic/ast.hpp"

#include <cmath>
#include <stdexcept>

namespace csrlmrm::logic {

bool compare(double value, Comparison op, double bound) {
  switch (op) {
    case Comparison::kLess:
      return value < bound;
    case Comparison::kLessEqual:
      return value <= bound;
    case Comparison::kGreater:
      return value > bound;
    case Comparison::kGreaterEqual:
      return value >= bound;
  }
  throw std::logic_error("compare: invalid comparison operator");
}

std::string to_string(Comparison op) {
  switch (op) {
    case Comparison::kLess:
      return "<";
    case Comparison::kLessEqual:
      return "<=";
    case Comparison::kGreater:
      return ">";
    case Comparison::kGreaterEqual:
      return ">=";
  }
  throw std::logic_error("to_string: invalid comparison operator");
}

namespace {

bool intervals_equal(const Interval& a, const Interval& b) {
  // Bitwise endpoint comparison (infinities compare equal to themselves);
  // NaN endpoints cannot occur (Interval's constructor rejects them).
  return core::exactly_equal(a.lower(), b.lower()) &&
         core::exactly_equal(a.upper(), b.upper());
}

}  // namespace

bool equal(const FormulaPtr& lhs, const FormulaPtr& rhs) {
  if (lhs.get() == rhs.get()) return true;
  if (!lhs || !rhs) return false;
  if (lhs->kind != rhs->kind) return false;
  switch (lhs->kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return true;
    case FormulaKind::kAtomic:
      return static_cast<const AtomicFormula&>(*lhs).name ==
             static_cast<const AtomicFormula&>(*rhs).name;
    case FormulaKind::kNot:
      return equal(static_cast<const NotFormula&>(*lhs).operand,
                   static_cast<const NotFormula&>(*rhs).operand);
    case FormulaKind::kOr: {
      const auto& a = static_cast<const OrFormula&>(*lhs);
      const auto& b = static_cast<const OrFormula&>(*rhs);
      return equal(a.lhs, b.lhs) && equal(a.rhs, b.rhs);
    }
    case FormulaKind::kAnd: {
      const auto& a = static_cast<const AndFormula&>(*lhs);
      const auto& b = static_cast<const AndFormula&>(*rhs);
      return equal(a.lhs, b.lhs) && equal(a.rhs, b.rhs);
    }
    case FormulaKind::kSteady: {
      const auto& a = static_cast<const SteadyFormula&>(*lhs);
      const auto& b = static_cast<const SteadyFormula&>(*rhs);
      return a.op == b.op && core::exactly_equal(a.bound, b.bound) &&
             equal(a.operand, b.operand);
    }
    case FormulaKind::kProbNext: {
      const auto& a = static_cast<const ProbNextFormula&>(*lhs);
      const auto& b = static_cast<const ProbNextFormula&>(*rhs);
      return a.op == b.op && core::exactly_equal(a.bound, b.bound) &&
             intervals_equal(a.time_bound, b.time_bound) &&
             intervals_equal(a.reward_bound, b.reward_bound) && equal(a.operand, b.operand);
    }
    case FormulaKind::kProbUntil: {
      const auto& a = static_cast<const ProbUntilFormula&>(*lhs);
      const auto& b = static_cast<const ProbUntilFormula&>(*rhs);
      return a.op == b.op && core::exactly_equal(a.bound, b.bound) &&
             intervals_equal(a.time_bound, b.time_bound) &&
             intervals_equal(a.reward_bound, b.reward_bound) && equal(a.lhs, b.lhs) &&
             equal(a.rhs, b.rhs);
    }
    case FormulaKind::kExpectedReward: {
      const auto& a = static_cast<const ExpectedRewardFormula&>(*lhs);
      const auto& b = static_cast<const ExpectedRewardFormula&>(*rhs);
      return a.op == b.op && core::exactly_equal(a.bound, b.bound) && a.query == b.query &&
             core::exactly_equal(a.time_horizon, b.time_horizon) && equal(a.operand, b.operand);
    }
  }
  throw std::logic_error("logic::equal: unknown formula kind");
}

namespace {
void require_probability_bound(double bound) {
  if (std::isnan(bound) || bound < 0.0 || bound > 1.0) {
    throw std::invalid_argument("probability bound must be in [0,1]");
  }
}
void require_operand(const FormulaPtr& f, const char* what) {
  if (!f) throw std::invalid_argument(std::string(what) + ": null sub-formula");
}
}  // namespace

FormulaPtr make_true() { return std::make_shared<TrueFormula>(); }

FormulaPtr make_false() { return std::make_shared<FalseFormula>(); }

FormulaPtr make_atomic(std::string name) {
  if (name.empty()) throw std::invalid_argument("make_atomic: empty proposition name");
  return std::make_shared<AtomicFormula>(std::move(name));
}

FormulaPtr make_not(FormulaPtr operand) {
  require_operand(operand, "make_not");
  return std::make_shared<NotFormula>(std::move(operand));
}

FormulaPtr make_or(FormulaPtr lhs, FormulaPtr rhs) {
  require_operand(lhs, "make_or");
  require_operand(rhs, "make_or");
  return std::make_shared<OrFormula>(std::move(lhs), std::move(rhs));
}

FormulaPtr make_and(FormulaPtr lhs, FormulaPtr rhs) {
  require_operand(lhs, "make_and");
  require_operand(rhs, "make_and");
  return std::make_shared<AndFormula>(std::move(lhs), std::move(rhs));
}

FormulaPtr make_implies(FormulaPtr lhs, FormulaPtr rhs) {
  return make_or(make_not(std::move(lhs)), std::move(rhs));
}

FormulaPtr make_steady(Comparison op, double bound, FormulaPtr operand) {
  require_probability_bound(bound);
  require_operand(operand, "make_steady");
  return std::make_shared<SteadyFormula>(op, bound, std::move(operand));
}

FormulaPtr make_prob_next(Comparison op, double bound, Interval time, Interval reward,
                          FormulaPtr operand) {
  require_probability_bound(bound);
  require_operand(operand, "make_prob_next");
  return std::make_shared<ProbNextFormula>(op, bound, time, reward, std::move(operand));
}

FormulaPtr make_prob_until(Comparison op, double bound, Interval time, Interval reward,
                           FormulaPtr lhs, FormulaPtr rhs) {
  require_probability_bound(bound);
  require_operand(lhs, "make_prob_until");
  require_operand(rhs, "make_prob_until");
  return std::make_shared<ProbUntilFormula>(op, bound, time, reward, std::move(lhs),
                                            std::move(rhs));
}

FormulaPtr make_prob_eventually(Comparison op, double bound, Interval time, Interval reward,
                                FormulaPtr operand) {
  return make_prob_until(op, bound, time, reward, make_true(), std::move(operand));
}

namespace {
void require_reward_bound(double bound) {
  if (std::isnan(bound) || bound < 0.0) {
    throw std::invalid_argument("reward bound must be >= 0");
  }
}
}  // namespace

FormulaPtr make_reward_cumulative(Comparison op, double bound, double time_horizon) {
  require_reward_bound(bound);
  if (std::isnan(time_horizon) || time_horizon < 0.0 || std::isinf(time_horizon)) {
    throw std::invalid_argument("make_reward_cumulative: time horizon must be finite, >= 0");
  }
  return std::make_shared<ExpectedRewardFormula>(op, bound, RewardQuery::kCumulative,
                                                 time_horizon, nullptr);
}

FormulaPtr make_reward_reachability(Comparison op, double bound, FormulaPtr operand) {
  require_reward_bound(bound);
  require_operand(operand, "make_reward_reachability");
  return std::make_shared<ExpectedRewardFormula>(op, bound, RewardQuery::kReachability, 0.0,
                                                 std::move(operand));
}

FormulaPtr make_reward_long_run(Comparison op, double bound) {
  require_reward_bound(bound);
  return std::make_shared<ExpectedRewardFormula>(op, bound, RewardQuery::kLongRun, 0.0,
                                                 nullptr);
}

}  // namespace csrlmrm::logic

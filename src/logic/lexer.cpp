#include "logic/lexer.hpp"

#include <cctype>

namespace csrlmrm::logic {

ParseError::ParseError(const std::string& message, std::size_t column)
    : std::runtime_error(message + " (column " + std::to_string(column) + ")"),
      column_(column) {}

std::vector<Token> tokenize(const std::string& input) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = input.size();

  const auto push = [&](TokenKind kind, std::size_t start, std::size_t length, double value = 0) {
    tokens.push_back({kind, input.substr(start, length), value, start + 1});
  };

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) || input[i] == '_')) {
        ++i;
      }
      push(TokenKind::kIdentifier, start, i - start);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      std::size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) || input[i] == '.')) {
        ++i;
      }
      // Optional exponent.
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        std::size_t exp = i + 1;
        if (exp < n && (input[exp] == '+' || input[exp] == '-')) ++exp;
        if (exp < n && std::isdigit(static_cast<unsigned char>(input[exp]))) {
          i = exp;
          while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
        }
      }
      const std::string text = input.substr(start, i - start);
      try {
        push(TokenKind::kNumber, start, i - start, std::stod(text));
      } catch (const std::exception&) {
        throw ParseError("malformed number '" + text + "'", start + 1);
      }
      continue;
    }
    switch (c) {
      case '(':
        push(TokenKind::kLParen, i, 1);
        ++i;
        break;
      case ')':
        push(TokenKind::kRParen, i, 1);
        ++i;
        break;
      case '[':
        push(TokenKind::kLBracket, i, 1);
        ++i;
        break;
      case ']':
        push(TokenKind::kRBracket, i, 1);
        ++i;
        break;
      case ',':
        push(TokenKind::kComma, i, 1);
        ++i;
        break;
      case '!':
        push(TokenKind::kBang, i, 1);
        ++i;
        break;
      case '~':
        push(TokenKind::kTilde, i, 1);
        ++i;
        break;
      case '&':
        if (i + 1 < n && input[i + 1] == '&') {
          push(TokenKind::kAndAnd, i, 2);
          i += 2;
        } else {
          throw ParseError("expected '&&'", i + 1);
        }
        break;
      case '|':
        if (i + 1 < n && input[i + 1] == '|') {
          push(TokenKind::kOrOr, i, 2);
          i += 2;
        } else {
          throw ParseError("expected '||'", i + 1);
        }
        break;
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kLessEqual, i, 2);
          i += 2;
        } else {
          push(TokenKind::kLess, i, 1);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kGreaterEqual, i, 2);
          i += 2;
        } else {
          push(TokenKind::kGreater, i, 1);
          ++i;
        }
        break;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'", i + 1);
    }
  }
  tokens.push_back({TokenKind::kEnd, "", 0.0, n + 1});
  return tokens;
}

}  // namespace csrlmrm::logic

// Tokenizer for the concrete CSRL syntax of the thesis appendix:
//
//   TT FF && || ! ~ S(op fl) f    P(op fl) [X[fl,fl][fl,fl] f]
//   P(op fl) [f U[fl,fl][fl,fl] f]
//
// Identifiers (atomic propositions and the S/P/X/U/TT/FF words, which the
// parser disambiguates contextually) are [A-Za-z_][A-Za-z0-9_]*; numbers are
// ordinary decimal floats. Errors carry the 1-based column of the offending
// character.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace csrlmrm::logic {

/// Token categories of the CSRL surface syntax.
enum class TokenKind {
  kIdentifier,  // atomic propositions and keyword-like words (S, P, X, U, TT)
  kNumber,
  kLParen,      // (
  kRParen,      // )
  kLBracket,    // [
  kRBracket,    // ]
  kComma,       // ,
  kAndAnd,      // &&
  kOrOr,        // ||
  kBang,        // !
  kTilde,       // ~ (infinity)
  kLess,        // <
  kLessEqual,   // <=
  kGreater,     // >
  kGreaterEqual,  // >=
  kEnd,
};

/// One lexed token. `text` is the raw spelling; `value` is meaningful for
/// kNumber only.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double value = 0.0;
  std::size_t column = 0;  // 1-based position in the input
};

/// Raised for malformed input by both the lexer and the parser.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t column);
  std::size_t column() const { return column_; }

 private:
  std::size_t column_;
};

/// Tokenizes `input`; the result always ends with a kEnd token.
std::vector<Token> tokenize(const std::string& input);

}  // namespace csrlmrm::logic

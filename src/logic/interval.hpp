// Closed intervals of non-negative reals with an optionally infinite upper
// bound — the time bound I and reward bound J decorating CSRL path operators
// (Definition 3.5). `~` in the concrete syntax denotes infinity.
#pragma once

#include <limits>
#include <string>
#include "core/approx.hpp"

namespace csrlmrm::logic {

/// A closed interval [lower, upper] subset of R>=0; upper may be +infinity.
class Interval {
 public:
  /// The default interval [0, infinity) — no constraint.
  constexpr Interval() = default;

  /// Throws std::invalid_argument unless 0 <= lower <= upper and lower is
  /// finite.
  Interval(double lower, double upper);

  double lower() const { return lower_; }
  double upper() const { return upper_; }

  /// True iff lower <= x <= upper.
  bool contains(double x) const { return x >= lower_ && x <= upper_; }

  /// True iff the upper bound is +infinity.
  bool is_upper_unbounded() const { return upper_ == std::numeric_limits<double>::infinity(); }

  /// True iff the interval is [0, infinity), i.e. imposes no constraint.
  bool is_trivial() const { return core::exactly_zero(lower_) && is_upper_unbounded(); }

  /// True iff the interval is the point [v, v].
  bool is_point() const { return lower_ == upper_; }

  /// "[a,b]" with "~" for an infinite upper bound.
  std::string to_string() const;

  friend bool operator==(const Interval&, const Interval&) = default;

 private:
  double lower_ = 0.0;
  double upper_ = std::numeric_limits<double>::infinity();
};

/// The unconstrained interval [0, infinity).
inline Interval full_interval() { return Interval{}; }

/// The interval [0, bound].
Interval up_to(double bound);

}  // namespace csrlmrm::logic

// Strongly connected components and bottom strongly connected components
// (BSCCs) of the directed graph induced by a rate matrix (edge s -> s' iff
// R(s,s') > 0).
//
// This implements the BSCC detection of Algorithm 4.2 in the thesis: Tarjan's
// SCC algorithm augmented with a "can reach another component" flag, so a
// component is reported as bottom iff no state in it can leave it. We use an
// explicit stack instead of recursion so state spaces with long chains do not
// overflow the call stack; the visit order and O(M + N) complexity match the
// recursive formulation.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/csr_matrix.hpp"

namespace csrlmrm::graph {

/// Result of an SCC decomposition.
struct SccDecomposition {
  /// component_of[s] is the 0-based component id of state s. Ids are assigned
  /// in reverse topological order of the component DAG (a Tarjan property):
  /// if component A has an edge to component B then id(A) > id(B).
  std::vector<std::size_t> component_of;
  /// Number of components.
  std::size_t component_count = 0;
  /// is_bottom[c] is true iff component c has no edge leaving it.
  std::vector<bool> is_bottom;
};

/// Decomposes the graph of `adjacency` (square matrix; entries > 0 are edges)
/// into SCCs and flags the bottom ones. Throws std::invalid_argument for a
/// non-square matrix.
SccDecomposition strongly_connected_components(const linalg::CsrMatrix& adjacency);

/// The bottom strongly connected components as explicit state lists (each
/// sorted ascending), in ascending order of their smallest state. This is the
/// ListOfBSCC of Algorithm 4.2.
std::vector<std::vector<std::size_t>> bottom_sccs(const linalg::CsrMatrix& adjacency);

}  // namespace csrlmrm::graph

// Reachability queries on the directed graph of a rate matrix. Used by the
// model checker for the graph-based precomputations of unbounded-until
// ("Prob0": states that cannot reach a Psi-state through Phi-states get
// probability exactly 0) and for steady-state BSCC reachability.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/csr_matrix.hpp"

namespace csrlmrm::graph {

/// States reachable from any state in `sources` by following edges forward
/// (every source is reachable from itself). `sources` and the result are
/// membership masks of length adjacency.rows().
std::vector<bool> forward_reachable(const linalg::CsrMatrix& adjacency,
                                    const std::vector<bool>& sources);

/// States from which some state in `targets` is reachable (every target can
/// reach itself).
std::vector<bool> backward_reachable(const linalg::CsrMatrix& adjacency,
                                     const std::vector<bool>& targets);

/// States from which a `targets`-state is reachable along paths whose
/// intermediate states (all states strictly before the target) are in
/// `allowed`. Targets count as reachable from themselves regardless of
/// `allowed`. This is the precomputation for P(s, Phi U Psi) > 0: pass
/// allowed = Sat(Phi), targets = Sat(Psi).
std::vector<bool> backward_reachable_via(const linalg::CsrMatrix& adjacency,
                                         const std::vector<bool>& allowed,
                                         const std::vector<bool>& targets);

}  // namespace csrlmrm::graph

#include "graph/reachability.hpp"

#include <stdexcept>

namespace csrlmrm::graph {

namespace {
void require_square_and_sized(const linalg::CsrMatrix& adjacency, const std::vector<bool>& mask,
                              const char* what) {
  if (adjacency.cols() != adjacency.rows()) {
    throw std::invalid_argument(std::string(what) + ": matrix not square");
  }
  if (mask.size() != adjacency.rows()) {
    throw std::invalid_argument(std::string(what) + ": mask size mismatch");
  }
}
}  // namespace

std::vector<bool> forward_reachable(const linalg::CsrMatrix& adjacency,
                                    const std::vector<bool>& sources) {
  require_square_and_sized(adjacency, sources, "forward_reachable");
  std::vector<bool> seen = sources;
  std::vector<std::size_t> worklist;
  for (std::size_t v = 0; v < seen.size(); ++v) {
    if (seen[v]) worklist.push_back(v);
  }
  while (!worklist.empty()) {
    const std::size_t v = worklist.back();
    worklist.pop_back();
    for (const auto& e : adjacency.row(v)) {
      if (!seen[e.col]) {
        seen[e.col] = true;
        worklist.push_back(e.col);
      }
    }
  }
  return seen;
}

std::vector<bool> backward_reachable(const linalg::CsrMatrix& adjacency,
                                     const std::vector<bool>& targets) {
  std::vector<bool> allowed(adjacency.rows(), true);
  return backward_reachable_via(adjacency, allowed, targets);
}

std::vector<bool> backward_reachable_via(const linalg::CsrMatrix& adjacency,
                                         const std::vector<bool>& allowed,
                                         const std::vector<bool>& targets) {
  require_square_and_sized(adjacency, targets, "backward_reachable_via");
  require_square_and_sized(adjacency, allowed, "backward_reachable_via");

  const linalg::CsrMatrix reverse = adjacency.transposed();
  std::vector<bool> seen = targets;
  std::vector<std::size_t> worklist;
  for (std::size_t v = 0; v < seen.size(); ++v) {
    if (seen[v]) worklist.push_back(v);
  }
  while (!worklist.empty()) {
    const std::size_t v = worklist.back();
    worklist.pop_back();
    for (const auto& e : reverse.row(v)) {
      // e.col has an edge into v; it may pass through only if it is allowed
      // (targets themselves were already seeded above).
      if (!seen[e.col] && allowed[e.col]) {
        seen[e.col] = true;
        worklist.push_back(e.col);
      }
    }
  }
  return seen;
}

}  // namespace csrlmrm::graph

#include "graph/scc.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace csrlmrm::graph {

namespace {
constexpr std::size_t kUnvisited = std::numeric_limits<std::size_t>::max();
}

SccDecomposition strongly_connected_components(const linalg::CsrMatrix& adjacency) {
  const std::size_t n = adjacency.rows();
  if (adjacency.cols() != n) {
    throw std::invalid_argument("strongly_connected_components: matrix not square");
  }

  SccDecomposition out;
  out.component_of.assign(n, kUnvisited);

  std::vector<std::size_t> index(n, kUnvisited);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> tarjan_stack;
  std::size_t next_index = 0;

  // Explicit DFS frames: state plus position within its (sparse) edge list.
  struct Frame {
    std::size_t v;
    std::size_t edge;
  };
  std::vector<Frame> dfs;

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    tarjan_stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const auto edges = adjacency.row(frame.v);
      bool descended = false;
      while (frame.edge < edges.size()) {
        const std::size_t w = edges[frame.edge].col;
        ++frame.edge;
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          tarjan_stack.push_back(w);
          on_stack[w] = true;
          dfs.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) {
          lowlink[frame.v] = std::min(lowlink[frame.v], index[w]);
        }
      }
      if (descended) continue;

      // All edges of frame.v explored: close the frame.
      const std::size_t v = frame.v;
      dfs.pop_back();
      if (!dfs.empty()) {
        lowlink[dfs.back().v] = std::min(lowlink[dfs.back().v], lowlink[v]);
      }
      if (lowlink[v] == index[v]) {
        // v is the root of a component; pop it off the Tarjan stack.
        const std::size_t component = out.component_count++;
        while (true) {
          const std::size_t w = tarjan_stack.back();
          tarjan_stack.pop_back();
          on_stack[w] = false;
          out.component_of[w] = component;
          if (w == v) break;
        }
      }
    }
  }

  // A component is bottom iff no edge leaves it.
  out.is_bottom.assign(out.component_count, true);
  for (std::size_t v = 0; v < n; ++v) {
    for (const auto& e : adjacency.row(v)) {
      if (out.component_of[v] != out.component_of[e.col]) {
        out.is_bottom[out.component_of[v]] = false;
      }
    }
  }
  return out;
}

std::vector<std::vector<std::size_t>> bottom_sccs(const linalg::CsrMatrix& adjacency) {
  const SccDecomposition scc = strongly_connected_components(adjacency);
  std::vector<std::vector<std::size_t>> members(scc.component_count);
  for (std::size_t v = 0; v < scc.component_of.size(); ++v) {
    members[scc.component_of[v]].push_back(v);
  }
  std::vector<std::vector<std::size_t>> result;
  for (std::size_t c = 0; c < scc.component_count; ++c) {
    if (scc.is_bottom[c]) result.push_back(std::move(members[c]));
  }
  std::sort(result.begin(), result.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return result;
}

}  // namespace csrlmrm::graph

# Empty dependencies file for wavelan_energy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wavelan_energy.dir/wavelan_energy.cpp.o"
  "CMakeFiles/wavelan_energy.dir/wavelan_energy.cpp.o.d"
  "wavelan_energy"
  "wavelan_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavelan_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

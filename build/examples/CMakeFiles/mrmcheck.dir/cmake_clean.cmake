file(REMOVE_RECURSE
  "CMakeFiles/mrmcheck.dir/mrmcheck.cpp.o"
  "CMakeFiles/mrmcheck.dir/mrmcheck.cpp.o.d"
  "mrmcheck"
  "mrmcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

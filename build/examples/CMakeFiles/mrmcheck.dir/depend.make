# Empty dependencies file for mrmcheck.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tmr_dependability.dir/tmr_dependability.cpp.o"
  "CMakeFiles/tmr_dependability.dir/tmr_dependability.cpp.o.d"
  "tmr_dependability"
  "tmr_dependability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmr_dependability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

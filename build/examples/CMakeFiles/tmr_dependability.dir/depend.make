# Empty dependencies file for tmr_dependability.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/server_energy.dir/server_energy.cpp.o"
  "CMakeFiles/server_energy.dir/server_energy.cpp.o.d"
  "server_energy"
  "server_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for server_energy.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checker/absorption.cpp" "src/CMakeFiles/csrlmrm.dir/checker/absorption.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/checker/absorption.cpp.o.d"
  "/root/repo/src/checker/next.cpp" "src/CMakeFiles/csrlmrm.dir/checker/next.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/checker/next.cpp.o.d"
  "/root/repo/src/checker/options.cpp" "src/CMakeFiles/csrlmrm.dir/checker/options.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/checker/options.cpp.o.d"
  "/root/repo/src/checker/performability.cpp" "src/CMakeFiles/csrlmrm.dir/checker/performability.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/checker/performability.cpp.o.d"
  "/root/repo/src/checker/sat.cpp" "src/CMakeFiles/csrlmrm.dir/checker/sat.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/checker/sat.cpp.o.d"
  "/root/repo/src/checker/steady.cpp" "src/CMakeFiles/csrlmrm.dir/checker/steady.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/checker/steady.cpp.o.d"
  "/root/repo/src/checker/until.cpp" "src/CMakeFiles/csrlmrm.dir/checker/until.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/checker/until.cpp.o.d"
  "/root/repo/src/core/ctmc.cpp" "src/CMakeFiles/csrlmrm.dir/core/ctmc.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/core/ctmc.cpp.o.d"
  "/root/repo/src/core/labels.cpp" "src/CMakeFiles/csrlmrm.dir/core/labels.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/core/labels.cpp.o.d"
  "/root/repo/src/core/lumping.cpp" "src/CMakeFiles/csrlmrm.dir/core/lumping.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/core/lumping.cpp.o.d"
  "/root/repo/src/core/mrm.cpp" "src/CMakeFiles/csrlmrm.dir/core/mrm.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/core/mrm.cpp.o.d"
  "/root/repo/src/core/path.cpp" "src/CMakeFiles/csrlmrm.dir/core/path.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/core/path.cpp.o.d"
  "/root/repo/src/core/rate_matrix.cpp" "src/CMakeFiles/csrlmrm.dir/core/rate_matrix.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/core/rate_matrix.cpp.o.d"
  "/root/repo/src/core/transform.cpp" "src/CMakeFiles/csrlmrm.dir/core/transform.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/core/transform.cpp.o.d"
  "/root/repo/src/core/uniformized.cpp" "src/CMakeFiles/csrlmrm.dir/core/uniformized.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/core/uniformized.cpp.o.d"
  "/root/repo/src/graph/reachability.cpp" "src/CMakeFiles/csrlmrm.dir/graph/reachability.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/graph/reachability.cpp.o.d"
  "/root/repo/src/graph/scc.cpp" "src/CMakeFiles/csrlmrm.dir/graph/scc.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/graph/scc.cpp.o.d"
  "/root/repo/src/io/model_files.cpp" "src/CMakeFiles/csrlmrm.dir/io/model_files.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/io/model_files.cpp.o.d"
  "/root/repo/src/lang/builder.cpp" "src/CMakeFiles/csrlmrm.dir/lang/builder.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/lang/builder.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "src/CMakeFiles/csrlmrm.dir/lang/parser.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/lang/parser.cpp.o.d"
  "/root/repo/src/lang/spec.cpp" "src/CMakeFiles/csrlmrm.dir/lang/spec.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/lang/spec.cpp.o.d"
  "/root/repo/src/linalg/csr_matrix.cpp" "src/CMakeFiles/csrlmrm.dir/linalg/csr_matrix.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/linalg/csr_matrix.cpp.o.d"
  "/root/repo/src/linalg/dense_solve.cpp" "src/CMakeFiles/csrlmrm.dir/linalg/dense_solve.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/linalg/dense_solve.cpp.o.d"
  "/root/repo/src/linalg/gauss_seidel.cpp" "src/CMakeFiles/csrlmrm.dir/linalg/gauss_seidel.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/linalg/gauss_seidel.cpp.o.d"
  "/root/repo/src/linalg/jacobi.cpp" "src/CMakeFiles/csrlmrm.dir/linalg/jacobi.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/linalg/jacobi.cpp.o.d"
  "/root/repo/src/linalg/vector_ops.cpp" "src/CMakeFiles/csrlmrm.dir/linalg/vector_ops.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/linalg/vector_ops.cpp.o.d"
  "/root/repo/src/logic/ast.cpp" "src/CMakeFiles/csrlmrm.dir/logic/ast.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/logic/ast.cpp.o.d"
  "/root/repo/src/logic/interval.cpp" "src/CMakeFiles/csrlmrm.dir/logic/interval.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/logic/interval.cpp.o.d"
  "/root/repo/src/logic/lexer.cpp" "src/CMakeFiles/csrlmrm.dir/logic/lexer.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/logic/lexer.cpp.o.d"
  "/root/repo/src/logic/parser.cpp" "src/CMakeFiles/csrlmrm.dir/logic/parser.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/logic/parser.cpp.o.d"
  "/root/repo/src/logic/printer.cpp" "src/CMakeFiles/csrlmrm.dir/logic/printer.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/logic/printer.cpp.o.d"
  "/root/repo/src/models/cellphone.cpp" "src/CMakeFiles/csrlmrm.dir/models/cellphone.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/models/cellphone.cpp.o.d"
  "/root/repo/src/models/explicit_nmr.cpp" "src/CMakeFiles/csrlmrm.dir/models/explicit_nmr.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/models/explicit_nmr.cpp.o.d"
  "/root/repo/src/models/mm1k.cpp" "src/CMakeFiles/csrlmrm.dir/models/mm1k.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/models/mm1k.cpp.o.d"
  "/root/repo/src/models/random_formula.cpp" "src/CMakeFiles/csrlmrm.dir/models/random_formula.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/models/random_formula.cpp.o.d"
  "/root/repo/src/models/random_mrm.cpp" "src/CMakeFiles/csrlmrm.dir/models/random_mrm.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/models/random_mrm.cpp.o.d"
  "/root/repo/src/models/tmr.cpp" "src/CMakeFiles/csrlmrm.dir/models/tmr.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/models/tmr.cpp.o.d"
  "/root/repo/src/models/wavelan.cpp" "src/CMakeFiles/csrlmrm.dir/models/wavelan.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/models/wavelan.cpp.o.d"
  "/root/repo/src/numeric/conditional.cpp" "src/CMakeFiles/csrlmrm.dir/numeric/conditional.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/numeric/conditional.cpp.o.d"
  "/root/repo/src/numeric/discretization.cpp" "src/CMakeFiles/csrlmrm.dir/numeric/discretization.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/numeric/discretization.cpp.o.d"
  "/root/repo/src/numeric/fox_glynn.cpp" "src/CMakeFiles/csrlmrm.dir/numeric/fox_glynn.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/numeric/fox_glynn.cpp.o.d"
  "/root/repo/src/numeric/omega.cpp" "src/CMakeFiles/csrlmrm.dir/numeric/omega.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/numeric/omega.cpp.o.d"
  "/root/repo/src/numeric/path_explorer.cpp" "src/CMakeFiles/csrlmrm.dir/numeric/path_explorer.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/numeric/path_explorer.cpp.o.d"
  "/root/repo/src/numeric/poisson.cpp" "src/CMakeFiles/csrlmrm.dir/numeric/poisson.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/numeric/poisson.cpp.o.d"
  "/root/repo/src/numeric/transient.cpp" "src/CMakeFiles/csrlmrm.dir/numeric/transient.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/numeric/transient.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/csrlmrm.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/csrlmrm.dir/sim/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

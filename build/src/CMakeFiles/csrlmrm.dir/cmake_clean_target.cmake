file(REMOVE_RECURSE
  "libcsrlmrm.a"
)

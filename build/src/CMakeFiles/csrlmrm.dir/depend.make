# Empty dependencies file for csrlmrm.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_table_5_5.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_lumping.dir/bench_lumping.cpp.o"
  "CMakeFiles/bench_lumping.dir/bench_lumping.cpp.o.d"
  "bench_lumping"
  "bench_lumping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lumping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

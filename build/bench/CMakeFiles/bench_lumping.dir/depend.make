# Empty dependencies file for bench_lumping.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table_5_7.dir/bench_table_5_7.cpp.o"
  "CMakeFiles/bench_table_5_7.dir/bench_table_5_7.cpp.o.d"
  "bench_table_5_7"
  "bench_table_5_7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_5_7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_table_5_7.
# This may be replaced when dependencies are built.

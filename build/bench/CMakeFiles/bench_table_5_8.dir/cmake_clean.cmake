file(REMOVE_RECURSE
  "CMakeFiles/bench_table_5_8.dir/bench_table_5_8.cpp.o"
  "CMakeFiles/bench_table_5_8.dir/bench_table_5_8.cpp.o.d"
  "bench_table_5_8"
  "bench_table_5_8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_5_8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_absorption.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_absorption.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_absorption.cpp.o.d"
  "/root/repo/tests/test_checker.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_checker.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_checker.cpp.o.d"
  "/root/repo/tests/test_conditional.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_conditional.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_conditional.cpp.o.d"
  "/root/repo/tests/test_csr_matrix.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_csr_matrix.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_csr_matrix.cpp.o.d"
  "/root/repo/tests/test_depth_truncation.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_depth_truncation.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_depth_truncation.cpp.o.d"
  "/root/repo/tests/test_discretization.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_discretization.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_discretization.cpp.o.d"
  "/root/repo/tests/test_explicit_nmr.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_explicit_nmr.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_explicit_nmr.cpp.o.d"
  "/root/repo/tests/test_fox_glynn.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_fox_glynn.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_fox_glynn.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_interval.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_interval.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_interval.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_labels.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_labels.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_labels.cpp.o.d"
  "/root/repo/tests/test_lang_builder.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_lang_builder.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_lang_builder.cpp.o.d"
  "/root/repo/tests/test_lang_parser.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_lang_parser.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_lang_parser.cpp.o.d"
  "/root/repo/tests/test_lumping.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_lumping.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_lumping.cpp.o.d"
  "/root/repo/tests/test_mm1k.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_mm1k.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_mm1k.cpp.o.d"
  "/root/repo/tests/test_models.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_models.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_models.cpp.o.d"
  "/root/repo/tests/test_mrm.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_mrm.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_mrm.cpp.o.d"
  "/root/repo/tests/test_next.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_next.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_next.cpp.o.d"
  "/root/repo/tests/test_occupation_times.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_occupation_times.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_occupation_times.cpp.o.d"
  "/root/repo/tests/test_omega.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_omega.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_omega.cpp.o.d"
  "/root/repo/tests/test_parser.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_parser.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_parser.cpp.o.d"
  "/root/repo/tests/test_path.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_path.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_path.cpp.o.d"
  "/root/repo/tests/test_performability.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_performability.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_performability.cpp.o.d"
  "/root/repo/tests/test_poisson.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_poisson.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_poisson.cpp.o.d"
  "/root/repo/tests/test_printer.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_printer.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_printer.cpp.o.d"
  "/root/repo/tests/test_property_cross_validation.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_property_cross_validation.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_property_cross_validation.cpp.o.d"
  "/root/repo/tests/test_property_invariants.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_property_invariants.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_property_invariants.cpp.o.d"
  "/root/repo/tests/test_random_formulas.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_random_formulas.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_random_formulas.cpp.o.d"
  "/root/repo/tests/test_rate_matrix.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_rate_matrix.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_rate_matrix.cpp.o.d"
  "/root/repo/tests/test_reachability.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_reachability.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_reachability.cpp.o.d"
  "/root/repo/tests/test_reward_operator.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_reward_operator.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_reward_operator.cpp.o.d"
  "/root/repo/tests/test_scc.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_scc.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_scc.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_solvers.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_solvers.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_solvers.cpp.o.d"
  "/root/repo/tests/test_steady.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_steady.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_steady.cpp.o.d"
  "/root/repo/tests/test_transform.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_transform.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_transform.cpp.o.d"
  "/root/repo/tests/test_transient.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_transient.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_transient.cpp.o.d"
  "/root/repo/tests/test_uniformized.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_uniformized.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_uniformized.cpp.o.d"
  "/root/repo/tests/test_until_interval.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_until_interval.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_until_interval.cpp.o.d"
  "/root/repo/tests/test_until_reward_bounded.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_until_reward_bounded.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_until_reward_bounded.cpp.o.d"
  "/root/repo/tests/test_until_time_bounded.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_until_time_bounded.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_until_time_bounded.cpp.o.d"
  "/root/repo/tests/test_until_unbounded.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_until_unbounded.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_until_unbounded.cpp.o.d"
  "/root/repo/tests/test_vector_ops.cpp" "tests/CMakeFiles/csrlmrm_tests.dir/test_vector_ops.cpp.o" "gcc" "tests/CMakeFiles/csrlmrm_tests.dir/test_vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/csrlmrm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

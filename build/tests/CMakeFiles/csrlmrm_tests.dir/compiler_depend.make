# Empty compiler generated dependencies file for csrlmrm_tests.
# This may be replaced when dependencies are built.

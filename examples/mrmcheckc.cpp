// mrmcheckc — command-line client for mrmcheckd:
//
//   mrmcheckc --socket=<path> ping
//   mrmcheckc --socket=<path> load <name> <model.spec | prefix>
//   mrmcheckc --socket=<path> check <model> [w=<w>] [--max-nodes=N]
//             [--deadline-ms=D] [--until-engine=e] [--fallback=p]
//             "<formula>" ["<formula>" ...]
//   mrmcheckc --socket=<path> stats
//   mrmcheckc --socket=<path> shutdown
//
// `load` registers the model under <name> (a `.spec` path builds from the
// guarded-command language; anything else is read as <prefix>.tra/.lab/
// .rewr[/.rewi]) and prints its content fingerprint. `check` prints each
// formula's verdict string ('Y'/'N'/'?' per state, 1-based) and numeric
// values, mirroring mrmcheck's output. Exit codes: 0 ok, 1 daemon-side or
// connection error, 2 usage, 4 batch completed but some formulas failed.
#include <cstdio>
#include <string>
#include <vector>

#include "daemon/client.hpp"
#include "daemon/protocol.hpp"
#include "obs/json.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: mrmcheckc --socket=<path> <op> [args]\n"
               "  ping\n"
               "  load <name> <model.spec | file-prefix>\n"
               "  check <model> [w=<w>] [--max-nodes=N] [--deadline-ms=D]\n"
               "        [--until-engine=auto|classdp|dfpg]\n"
               "        [--fallback=throw|discretize|widen-w]\n"
               "        \"<formula>\" [\"<formula>\" ...]\n"
               "  stats\n"
               "  shutdown\n");
}

bool ends_with(const std::string& text, const char* suffix) {
  const std::string s(suffix);
  return text.size() >= s.size() && text.compare(text.size() - s.size(), s.size(), s) == 0;
}

int print_check_reply(const csrlmrm::daemon::CheckReply& reply) {
  if (!reply.ok) {
    std::fprintf(stderr, "mrmcheckc: check failed: %s\n", reply.error.c_str());
    return 1;
  }
  if (reply.degraded) {
    std::printf("degraded: %s (every verdict '?', enclosure [0,1])\n", reply.error.c_str());
  }
  if (reply.batch_requests > 1) {
    std::printf("batched with %zu requests\n", reply.batch_requests);
  }
  bool any_failed = false;
  for (std::size_t i = 0; i < reply.formulas.size(); ++i) {
    const auto& formula = reply.formulas[i];
    std::printf("[%zu/%zu] formula: %s\n", i + 1, reply.formulas.size(),
                formula.formula.c_str());
    if (!formula.ok) {
      any_failed = true;
      std::printf("  error: %s\n", formula.error.c_str());
      continue;
    }
    if (formula.has_probabilities) {
      for (std::size_t s = 0; s < formula.probabilities.size(); ++s) {
        std::printf("  P(state %zu) = %.17g\n", s + 1, formula.probabilities[s]);
      }
    }
    if (formula.has_values) {
      for (std::size_t s = 0; s < formula.values.size(); ++s) {
        std::printf("  value(state %zu) = %.17g\n", s + 1, formula.values[s]);
      }
    }
    std::printf("  verdicts: %s\n", formula.verdicts.c_str());
  }
  return any_failed ? 4 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csrlmrm;
  using obs::JsonValue;

  std::string socket_path;
  std::vector<std::string> args;
  for (int arg = 1; arg < argc; ++arg) {
    const std::string token = argv[arg];
    if (token.rfind("--socket=", 0) == 0) {
      socket_path = token.substr(9);
    } else {
      args.push_back(token);
    }
  }
  if (socket_path.empty() || args.empty()) {
    usage();
    return 2;
  }

  try {
    daemon::Client client(socket_path);
    const std::string& op = args[0];

    if (op == "ping" || op == "stats" || op == "shutdown") {
      JsonValue request = JsonValue::object();
      request.set("op", JsonValue(op));
      const JsonValue reply = client.roundtrip(request);
      std::printf("%s", obs::write_json(reply).c_str());
      return reply.at("ok").as_bool() ? 0 : 1;
    }

    if (op == "load") {
      if (args.size() != 3) {
        usage();
        return 2;
      }
      JsonValue request = JsonValue::object();
      request.set("op", JsonValue(std::string("load")));
      request.set("name", JsonValue(args[1]));
      if (ends_with(args[2], ".spec")) {
        request.set("spec", JsonValue(args[2]));
      } else {
        request.set("tra", JsonValue(args[2] + ".tra"));
        request.set("lab", JsonValue(args[2] + ".lab"));
        request.set("rewr", JsonValue(args[2] + ".rewr"));
        request.set("rewi", JsonValue(args[2] + ".rewi"));
      }
      const JsonValue reply = client.roundtrip(request);
      std::printf("%s", obs::write_json(reply).c_str());
      return reply.at("ok").as_bool() ? 0 : 1;
    }

    if (op == "check") {
      if (args.size() < 3) {
        usage();
        return 2;
      }
      daemon::CheckRequest check;
      check.model = args[1];
      for (std::size_t i = 2; i < args.size(); ++i) {
        const std::string& token = args[i];
        if (token.rfind("w=", 0) == 0) {
          check.options.w = std::stod(token.substr(2));
        } else if (token.rfind("--max-nodes=", 0) == 0) {
          check.options.max_nodes = static_cast<std::size_t>(std::stoull(token.substr(12)));
        } else if (token.rfind("--deadline-ms=", 0) == 0) {
          check.options.deadline_ms = std::stod(token.substr(14));
        } else if (token.rfind("--until-engine=", 0) == 0) {
          check.options.until_engine = token.substr(15);
        } else if (token.rfind("--fallback=", 0) == 0) {
          check.options.fallback = token.substr(11);
        } else {
          check.formulas.push_back(token);
        }
      }
      if (check.formulas.empty()) {
        usage();
        return 2;
      }
      const JsonValue reply = client.roundtrip(daemon::check_request_to_json(check));
      return print_check_reply(daemon::check_reply_from_json(reply));
    }

    std::fprintf(stderr, "mrmcheckc: unknown op '%s'\n", op.c_str());
    usage();
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mrmcheckc: %s\n", error.what());
    return 1;
  }
}

// large_models — explore the streamed model generators from the command
// line: print the resulting model's shape, or materialize it to the four
// model-file formats (the bridge between the streamed and file-based
// workflows; tests pin that both routes produce bitwise-identical models).
//
//   large_models <family:key=value,...> [--save <prefix>] [--max-states N]
//
//   large_models grid:width=256,height=256
//   large_models crowd:population=200 --save /tmp/crowd200
#include <cstdio>
#include <cstring>
#include <string>

#include "io/model_files.hpp"
#include "models/generator.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: large_models <family:key=value,...> [--save <prefix>] [--max-states N]\n"
               "\n"
               "  families: crowd (epidemic spread), grid (mesh network),\n"
               "            virus (host infection); see src/models/*.hpp for keys\n"
               "  --save <prefix>  write <prefix>.tra/.lab/.rewr/.rewi\n"
               "  --max-states N   abort if exploration exceeds N states\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csrlmrm;
  if (argc < 2) {
    usage();
    return 2;
  }
  try {
    const std::string spec = argv[1];
    std::string save_prefix;
    models::ExploreOptions explore_options;
    for (int arg = 2; arg < argc; ++arg) {
      if (std::strcmp(argv[arg], "--save") == 0 && arg + 1 < argc) {
        save_prefix = argv[++arg];
      } else if (std::strcmp(argv[arg], "--max-states") == 0 && arg + 1 < argc) {
        explore_options.max_states = static_cast<std::size_t>(std::stoull(argv[++arg]));
      } else {
        std::fprintf(stderr, "large_models: unknown argument '%s'\n", argv[arg]);
        usage();
        return 2;
      }
    }

    const core::Mrm model = models::make_generated_mrm(spec, explore_options);
    std::printf("model: %zu states, %zu transitions, %zu impulse entries\n",
                model.num_states(), model.rates().matrix().non_zeros(),
                model.impulse_rewards().non_zeros());
    std::printf("labels:");
    for (const auto& ap : model.labels().propositions()) {
      std::printf(" %s(%zu)", ap.c_str(), [&] {
        std::size_t count = 0;
        for (const bool b : model.labels().states_with(ap)) count += b ? 1 : 0;
        return count;
      }());
    }
    std::printf("\nmax exit rate: %.17g\n", model.rates().max_exit_rate());

    if (!save_prefix.empty()) {
      io::save_mrm(model, save_prefix);
      std::printf("written: %s.tra/.lab/.rewr/.rewi\n", save_prefix.c_str());
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "large_models: %s\n", error.what());
    return 1;
  }
}

// mrmcheck — the command-line model checker of the thesis appendix:
//
//   mrmcheck <model.tra> <model.lab> <model.rewr> [model.rewi]
//            [u=<w> | d=<step>] [--threads N] [NP] "<CSRL formula>"
//   mrmcheck <model.spec> [u=<w> | d=<step>] [--threads N] [NP] "<CSRL formula>"
//
// Reads an MRM from the four file formats (or builds it from a
// guarded-command .spec file, see src/lang/spec.hpp), checks the formula,
// and prints the satisfying states (and, unless NP is given, the computed
// per-state probabilities for the outermost S/P/R operator). Defaults to
// uniformization with w = 1e-8, exactly like the original tool.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "checker/sat.hpp"
#include "io/model_files.hpp"
#include "models/generator.hpp"
#include "lang/builder.hpp"
#include "logic/parser.hpp"
#include "logic/printer.hpp"
#include "obs/stats.hpp"
#include "parallel/thread_pool.hpp"
#include "plan/compiler.hpp"
#include "plan/executor.hpp"
#include "plan/printer.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: mrmcheck <model.tra> <model.lab> <model.rewr> [model.rewi]\n"
               "                [u=<w> | d=<step>] [NP] \"<CSRL formula>\"\n"
               "       mrmcheck <model.spec> [u=<w> | d=<step>] [NP] \"<CSRL formula>\"\n"
               "       mrmcheck --model-gen=<family:k=v,...> [options] \"<CSRL formula>\"\n"
               "\n"
               "  --model-gen=<spec>  build the model from a streamed generator instead\n"
               "            of model files (must be the first argument). Families:\n"
               "            grid  (mesh network:   width, height, hop, drift, energy, power)\n"
               "            crowd (epidemic:       population, contact, recovery,\n"
               "                                   treatment, outbreak)\n"
               "            virus (host infection: hosts, infect, recover, damage)\n"
               "            e.g. --model-gen=grid:width=256,height=256\n"
               "  --steady-detect[=eps]  let uniformization series stop early once the\n"
               "            iterate is steady within eps (default 1e-12); the cut's\n"
               "            error is accounted into the reported value intervals\n"
               "  u=<w>     until formulas by uniformization, truncation probability w\n"
               "            (default: u=1e-8)\n"
               "  d=<step>  until formulas by discretization with the given step\n"
               "  --threads N  worker threads for the numeric engines and the\n"
               "            per-state fan-out (default: CSRLMRM_THREADS env var,\n"
               "            else hardware concurrency; 1 = serial)\n"
               "  --stats[=file.json]  collect engine statistics (solver iterations,\n"
               "            Fox-Glynn windows, path counts, per-operator timings) and\n"
               "            write them as JSON to the file (or stdout). The\n"
               "            CSRLMRM_STATS env var enables collection as well.\n"
               "  --strict  exit with status 3 when any state's verdict is UNKNOWN\n"
               "            (its value interval straddles a threshold); the default\n"
               "            only warns and lists the offending intervals\n"
               "  --fallback=<policy>  what to do when the uniformization engine\n"
               "            exhausts its node budget: 'discretize' (default: redo\n"
               "            that state with the discretization engine), 'widen-w'\n"
               "            (retry with coarser truncation), or 'throw' (fail)\n"
               "  --until-engine=<e>  uniformization engine variant: 'auto' (default:\n"
               "            an up-front cost model picks per query between the class\n"
               "            DP with its adaptive coarsen/hand-off hybrid, the DFS\n"
               "            generator, and discretization; recorded in the\n"
               "            engine.auto_choice.* stats counters), 'classdp'\n"
               "            (signature-class dynamic programming, all start states\n"
               "            batched through one frontier sweep) or 'dfpg'\n"
               "            (depth-first path generation, one DFS per start state —\n"
               "            the thesis appendix's algorithm)\n"
               "  --max-nodes=N  node budget for the uniformization engines (DFS\n"
               "            node expansions / DP frontier classes, default 500000000)\n"
               "  --formulas=<file>  check a batch of formulas (one per line; blank\n"
               "            lines and '#' comments skipped) through one compiled plan\n"
               "            that deduplicates shared subformulas, solves, and\n"
               "            absorbing transforms across the batch; replaces the\n"
               "            positional formula argument. A malformed or unsupported\n"
               "            formula fails alone (its error printed in its slot), the\n"
               "            rest of the batch still runs, and the exit status is 4\n"
               "  --explain  compile the formula (or --formulas batch) into a plan,\n"
               "            print it — ops, sharing, chosen until engines — and exit\n"
               "            without checking anything\n"
               "  NP        do not print per-state probabilities\n"
               "\n"
               "formula syntax (appendix of the thesis, plus the R extension):\n"
               "  TT FF ! && || S(op p) f P(op p)[f U[t1,t2][r1,r2] f]\n"
               "  P(op p)[X[t1,t2][r1,r2] f] R(op x)[C[0,t]] R(op x)[F f] R(op x)[S]\n"
               "  with op in < <= > >=, ~ = infinity\n");
}

bool ends_with(const std::string& text, const char* suffix) {
  const std::string s(suffix);
  return text.size() >= s.size() && text.compare(text.size() - s.size(), s.size(), s) == 0;
}

/// Parses the --threads value; returns 0 (and prints a diagnostic) when it
/// is not a positive integer, so a typo fails with a named error instead of
/// a bare std::stoi exception message.
unsigned parse_thread_count(const std::string& text) {
  try {
    std::size_t consumed = 0;
    const int threads = std::stoi(text, &consumed);
    if (consumed != text.size() || threads < 1) throw std::invalid_argument(text);
    return static_cast<unsigned>(threads);
  } catch (const std::exception&) {
    std::fprintf(stderr, "mrmcheck: --threads expects a positive integer, got '%s'\n",
                 text.c_str());
    return 0;
  }
}

/// Parses the value of u= / d= strictly: the whole token must be a finite,
/// positive double. Returns false (with a diagnostic) otherwise, so
/// `u=1e-8x` or `d=` fail loudly instead of being half-parsed by stod.
bool parse_positive_double(const std::string& text, const char* flag, double& out) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed != text.size() || !(value > 0.0) || !std::isfinite(value)) {
      throw std::invalid_argument(text);
    }
    out = value;
    return true;
  } catch (const std::exception&) {
    std::fprintf(stderr, "mrmcheck: %s expects a positive number, got '%s'\n", flag,
                 text.c_str());
    return false;
  }
}

csrlmrm::core::Mrm load_spec_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto built = csrlmrm::lang::build_model_from_text(buffer.str());
  return std::move(*built.model);
}

/// Reads a --formulas file: one formula per line, blank lines and lines
/// starting with '#' skipped.
std::vector<std::string> load_formula_lines(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open formulas file '" + path + "'");
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    const std::size_t end = line.find_last_not_of(" \t\r");
    lines.push_back(line.substr(start, end - start + 1));
  }
  if (lines.empty()) {
    throw std::runtime_error("formulas file '" + path + "' contains no formulas");
  }
  return lines;
}

/// Prints one batch formula's results in the single-formula output format
/// (per-state values, satisfying states, UNKNOWN warnings). Returns whether
/// any state's verdict is UNKNOWN.
bool report_plan_formula(const csrlmrm::core::Mrm& model,
                         const csrlmrm::logic::FormulaPtr& formula,
                         const csrlmrm::plan::FormulaResult& result,
                         bool print_probabilities) {
  using namespace csrlmrm;
  std::printf("formula: %s\n", logic::to_string(formula).c_str());
  if (print_probabilities && result.has_probabilities) {
    for (core::StateIndex s = 0; s < model.num_states(); ++s) {
      std::printf("  P(state %zu) = %.17g", s + 1, result.probabilities[s].probability);
      if (result.probabilities[s].bound.width() > 0.0) {
        std::printf("  (in %s)", result.probabilities[s].bound.to_string().c_str());
      }
      std::printf("\n");
    }
  }
  if (print_probabilities && result.has_values) {
    const char* name = formula->kind == logic::FormulaKind::kSteady ? "pi" : "E";
    for (core::StateIndex s = 0; s < model.num_states(); ++s) {
      std::printf("  %s(state %zu) = %.17g\n", name, s + 1, result.values[s]);
    }
  }
  std::printf("satisfying states (1-based):");
  bool any = false;
  bool any_unknown = false;
  for (core::StateIndex s = 0; s < model.num_states(); ++s) {
    if (result.verdicts[s] == checker::Verdict::kSat) {
      std::printf(" %zu", s + 1);
      any = true;
    } else if (result.verdicts[s] == checker::Verdict::kUnknown) {
      any_unknown = true;
    }
  }
  std::printf("%s\n", any ? "" : " (none)");
  if (any_unknown) {
    std::printf("UNKNOWN states (1-based):");
    for (core::StateIndex s = 0; s < model.num_states(); ++s) {
      if (result.verdicts[s] == checker::Verdict::kUnknown) std::printf(" %zu", s + 1);
    }
    std::printf("\n");
    for (core::StateIndex s = 0; s < model.num_states(); ++s) {
      if (result.verdicts[s] != checker::Verdict::kUnknown) continue;
      if (result.has_bounds) {
        std::fprintf(stderr,
                     "mrmcheck: warning: state %zu is UNKNOWN — value interval %s straddles "
                     "the threshold; tighten w/epsilon/d or use --strict to fail\n",
                     s + 1, result.bounds[s].to_string().c_str());
      } else {
        std::fprintf(stderr,
                     "mrmcheck: warning: state %zu is UNKNOWN — a sub-formula's value "
                     "interval straddles its threshold at the configured accuracy\n",
                     s + 1);
      }
    }
  }
  return any_unknown;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csrlmrm;
  if (argc < 3) {
    usage();
    return 2;
  }

  try {
    int arg = 1;
    std::string model_gen;
    if (std::string(argv[1]).rfind("--model-gen=", 0) == 0) {
      model_gen = std::string(argv[1]).substr(12);
      if (model_gen.empty()) {
        std::fprintf(stderr, "mrmcheck: --model-gen= expects family:key=value,...\n");
        return 2;
      }
      ++arg;
    }
    const bool from_spec = model_gen.empty() && ends_with(argv[1], ".spec");
    std::string tra;
    std::string lab;
    std::string rewr;
    std::string rewi;
    std::string spec_path;
    if (!model_gen.empty()) {
      // the generator spec replaces every positional model argument
    } else if (from_spec) {
      spec_path = argv[arg++];
    } else {
      if (argc < 5) {
        usage();
        return 2;
      }
      tra = argv[arg++];
      lab = argv[arg++];
      rewr = argv[arg++];
      if (arg < argc && std::strstr(argv[arg], ".rewi") != nullptr) rewi = argv[arg++];
    }

    checker::CheckerOptions options;
    bool print_probabilities = true;
    bool strict = false;
    bool explain = false;
    bool stats_requested = obs::stats_enabled();  // CSRLMRM_STATS env var
    std::string stats_path;
    std::string formulas_path;
    bool have_formula = false;
    std::string formula_text;
    for (; arg < argc; ++arg) {
      const std::string token = argv[arg];
      if (token.rfind("u=", 0) == 0) {
        options.until_method = checker::UntilMethod::kUniformization;
        if (!parse_positive_double(token.substr(2), "u=",
                                   options.uniformization.truncation_probability)) {
          return 2;
        }
      } else if (token.rfind("d=", 0) == 0) {
        options.until_method = checker::UntilMethod::kDiscretization;
        if (!parse_positive_double(token.substr(2), "d=", options.discretization.step)) {
          return 2;
        }
      } else if (token == "--threads" || token.rfind("--threads=", 0) == 0) {
        std::string value;
        if (token == "--threads") {
          if (arg + 1 >= argc) {
            usage();
            return 2;
          }
          value = argv[++arg];
        } else {
          value = token.substr(10);
        }
        options.threads = parse_thread_count(value);
        if (options.threads == 0) return 2;
        parallel::set_default_thread_count(options.threads);
      } else if (token == "--stats" || token.rfind("--stats=", 0) == 0) {
        stats_requested = true;
        if (token.rfind("--stats=", 0) == 0) {
          stats_path = token.substr(8);
          if (stats_path.empty()) {
            std::fprintf(stderr, "mrmcheck: --stats= expects a file path\n");
            return 2;
          }
        }
      } else if (token == "--steady-detect" || token.rfind("--steady-detect=", 0) == 0) {
        options.transient.detect_steady_state = true;
        if (token.rfind("--steady-detect=", 0) == 0 &&
            !parse_positive_double(token.substr(16), "--steady-detect=",
                                   options.transient.steady_epsilon)) {
          return 2;
        }
      } else if (token == "--strict") {
        strict = true;
      } else if (token == "--explain") {
        explain = true;
      } else if (token.rfind("--formulas=", 0) == 0) {
        formulas_path = token.substr(11);
        if (formulas_path.empty()) {
          std::fprintf(stderr, "mrmcheck: --formulas= expects a file path\n");
          return 2;
        }
      } else if (token.rfind("--fallback=", 0) == 0) {
        const std::string policy = token.substr(11);
        if (policy == "throw") {
          options.on_budget_exhausted = checker::BudgetPolicy::kThrow;
        } else if (policy == "discretize") {
          options.on_budget_exhausted = checker::BudgetPolicy::kFallbackToDiscretization;
        } else if (policy == "widen-w") {
          options.on_budget_exhausted = checker::BudgetPolicy::kWidenW;
        } else {
          std::fprintf(stderr,
                       "mrmcheck: --fallback= expects 'throw', 'discretize' or 'widen-w', "
                       "got '%s'\n",
                       policy.c_str());
          return 2;
        }
      } else if (token.rfind("--until-engine=", 0) == 0) {
        const std::string engine = token.substr(15);
        if (engine == "auto") {
          options.until_engine = checker::UntilEngine::kAuto;
        } else if (engine == "classdp") {
          options.until_engine = checker::UntilEngine::kClassDp;
        } else if (engine == "dfpg") {
          options.until_engine = checker::UntilEngine::kDfpg;
        } else {
          std::fprintf(stderr,
                       "mrmcheck: --until-engine= expects 'auto', 'classdp' or 'dfpg', "
                       "got '%s'\n",
                       engine.c_str());
          return 2;
        }
      } else if (token.rfind("--max-nodes=", 0) == 0) {
        const std::string value = token.substr(12);
        try {
          std::size_t consumed = 0;
          const unsigned long long nodes = std::stoull(value, &consumed);
          if (consumed != value.size() || nodes == 0) throw std::invalid_argument(value);
          options.uniformization.max_nodes = static_cast<std::size_t>(nodes);
        } catch (const std::exception&) {
          std::fprintf(stderr, "mrmcheck: --max-nodes= expects a positive integer, got '%s'\n",
                       value.c_str());
          return 2;
        }
      } else if (token.rfind("--", 0) == 0) {
        std::fprintf(stderr, "mrmcheck: unknown option '%s'\n", token.c_str());
        usage();
        return 2;
      } else if (token == "NP") {
        print_probabilities = false;
      } else if (!have_formula) {
        formula_text = token;
        have_formula = true;
      } else {
        std::fprintf(stderr, "mrmcheck: unexpected argument '%s' (formula already given as '%s')\n",
                     token.c_str(), formula_text.c_str());
        usage();
        return 2;
      }
    }
    if (formulas_path.empty() ? (!have_formula || formula_text.empty()) : have_formula) {
      if (!formulas_path.empty()) {
        std::fprintf(stderr,
                     "mrmcheck: --formulas=%s replaces the positional formula argument\n",
                     formulas_path.c_str());
      }
      usage();
      return 2;
    }

    if (stats_requested) {
      obs::set_stats_enabled(true);
      if (!stats_path.empty()) {
        // Fail before any model checking runs: a long run that then cannot
        // record its stats is the worst outcome.
        std::ofstream probe(stats_path);
        if (!probe) {
          std::fprintf(stderr, "mrmcheck: cannot write stats file '%s'\n", stats_path.c_str());
          return 2;
        }
      }
    }

    const core::Mrm model = !model_gen.empty() ? models::make_generated_mrm(model_gen)
                            : from_spec        ? load_spec_model(spec_path)
                                               : io::load_mrm(tra, lab, rewr, rewi);
    std::printf("model: %zu states, %zu transitions, impulse rewards: %s\n",
                model.num_states(), model.rates().matrix().non_zeros(),
                model.has_impulse_rewards() ? "yes" : "no");

    if (!formulas_path.empty() || explain) {
      // Batch / explain mode: compile the whole batch into one plan so
      // structurally shared subformulas, solves, and absorbing transforms
      // are each evaluated once (see src/plan/).
      //
      // Per-formula error isolation: a malformed (or unsupported) formula
      // fails alone — its error is reported in its batch slot, every other
      // formula still runs, and the process exits 4 instead of aborting the
      // whole batch on the first bad line.
      const std::vector<std::string> texts =
          formulas_path.empty() ? std::vector<std::string>{formula_text}
                                : load_formula_lines(formulas_path);
      std::vector<logic::FormulaPtr> formulas(texts.size());
      std::vector<std::string> parse_errors(texts.size());
      std::vector<std::size_t> runnable;
      for (std::size_t i = 0; i < texts.size(); ++i) {
        try {
          formulas[i] = logic::parse_formula(texts[i]);
          runnable.push_back(i);
        } catch (const std::exception& error) {
          parse_errors[i] = error.what();
        }
      }
      std::vector<logic::FormulaPtr> good;
      good.reserve(runnable.size());
      for (const std::size_t i : runnable) good.push_back(formulas[i]);

      if (explain) {
        for (std::size_t i = 0; i < texts.size(); ++i) {
          if (!parse_errors[i].empty()) {
            std::fprintf(stderr, "mrmcheck: formula %zu '%s': %s\n", i + 1,
                         texts[i].c_str(), parse_errors[i].c_str());
          }
        }
        if (!good.empty()) {
          const plan::Plan compiled = plan::compile(model, good, options);
          std::printf("%s", plan::print_plan(compiled).c_str());
        }
        return runnable.size() == texts.size() ? 0 : 4;
      }

      // Execute the parsed formulas as one shared plan; when a formula
      // poisons the shared execution (unsupported bound shapes surface at
      // solve time), re-run each alone so only the offender fails — plan
      // results are bitwise-identical at every batch composition.
      std::vector<const plan::FormulaResult*> results_by_index(texts.size(), nullptr);
      std::vector<std::string> check_errors(texts.size());
      plan::PlanResult batch_results;
      std::vector<plan::PlanResult> single_results(texts.size());
      bool batch_ok = false;
      if (!good.empty()) {
        try {
          const plan::Plan compiled = plan::compile(model, good, options);
          batch_results = plan::execute(compiled, model);
          batch_ok = true;
          for (std::size_t k = 0; k < runnable.size(); ++k) {
            results_by_index[runnable[k]] = &batch_results.formulas[k];
          }
        } catch (const std::exception&) {
          // fall through to per-formula runs
        }
        if (!batch_ok) {
          for (const std::size_t i : runnable) {
            try {
              const plan::Plan single = plan::compile(model, {formulas[i]}, options);
              single_results[i] = plan::execute(single, model);
              results_by_index[i] = &single_results[i].formulas[0];
            } catch (const std::exception& error) {
              check_errors[i] = error.what();
            }
          }
        }
      }

      bool batch_unknown = false;
      bool any_failed = false;
      for (std::size_t i = 0; i < texts.size(); ++i) {
        std::printf("[%zu/%zu] ", i + 1, texts.size());
        if (results_by_index[i] != nullptr) {
          const bool unknown = report_plan_formula(model, formulas[i], *results_by_index[i],
                                                   print_probabilities);
          batch_unknown = batch_unknown || unknown;
        } else {
          const std::string& message =
              parse_errors[i].empty() ? check_errors[i] : parse_errors[i];
          std::printf("formula: %s\n  error: %s\n", texts[i].c_str(), message.c_str());
          std::fprintf(stderr, "mrmcheck: formula %zu '%s': %s\n", i + 1, texts[i].c_str(),
                       message.c_str());
          any_failed = true;
        }
      }
      if (stats_requested) {
        const std::string json = obs::StatsRegistry::global().to_json();
        if (stats_path.empty()) {
          std::printf("stats:\n%s", json.c_str());
        } else {
          std::ofstream out(stats_path);
          out << json;
          if (!out) {
            std::fprintf(stderr, "mrmcheck: failed writing stats file '%s'\n",
                         stats_path.c_str());
            return 1;
          }
          std::printf("stats: written to %s\n", stats_path.c_str());
        }
      }
      if (strict && batch_unknown) {
        std::fprintf(stderr, "mrmcheck: --strict: UNKNOWN verdicts present\n");
        if (!any_failed) return 3;
      }
      if (any_failed) {
        std::fprintf(stderr, "mrmcheck: batch completed with per-formula failures\n");
        return 4;
      }
      return 0;
    }

    const logic::FormulaPtr formula = logic::parse_formula(formula_text);
    std::printf("formula: %s\n", logic::to_string(formula).c_str());

    checker::ModelChecker checker(model, options);

    if (print_probabilities &&
        (formula->kind == logic::FormulaKind::kProbUntil ||
         formula->kind == logic::FormulaKind::kProbNext)) {
      const auto values = checker.path_probabilities(formula);
      for (core::StateIndex s = 0; s < model.num_states(); ++s) {
        std::printf("  P(state %zu) = %.17g", s + 1, values[s].probability);
        if (values[s].bound.width() > 0.0) {
          std::printf("  (in %s)", values[s].bound.to_string().c_str());
        }
        std::printf("\n");
      }
    }
    if (print_probabilities && formula->kind == logic::FormulaKind::kSteady) {
      const auto values = checker.steady_probabilities(formula);
      for (core::StateIndex s = 0; s < model.num_states(); ++s) {
        std::printf("  pi(state %zu) = %.17g\n", s + 1, values[s]);
      }
    }
    if (print_probabilities && formula->kind == logic::FormulaKind::kExpectedReward) {
      const auto values = checker.expected_rewards(formula);
      for (core::StateIndex s = 0; s < model.num_states(); ++s) {
        std::printf("  E(state %zu) = %.17g\n", s + 1, values[s]);
      }
    }

    const auto verdicts = checker.verdicts(formula);
    std::printf("satisfying states (1-based):");
    bool any = false;
    bool any_unknown = false;
    for (core::StateIndex s = 0; s < model.num_states(); ++s) {
      if (verdicts[s] == checker::Verdict::kSat) {
        std::printf(" %zu", s + 1);
        any = true;
      } else if (verdicts[s] == checker::Verdict::kUnknown) {
        any_unknown = true;
      }
    }
    std::printf("%s\n", any ? "" : " (none)");

    if (any_unknown) {
      const bool is_operator = formula->kind == logic::FormulaKind::kSteady ||
                               formula->kind == logic::FormulaKind::kProbNext ||
                               formula->kind == logic::FormulaKind::kProbUntil ||
                               formula->kind == logic::FormulaKind::kExpectedReward;
      std::vector<checker::ProbabilityBound> bounds;
      if (is_operator) bounds = checker.value_bounds(formula);
      std::printf("UNKNOWN states (1-based):");
      for (core::StateIndex s = 0; s < model.num_states(); ++s) {
        if (verdicts[s] == checker::Verdict::kUnknown) std::printf(" %zu", s + 1);
      }
      std::printf("\n");
      for (core::StateIndex s = 0; s < model.num_states(); ++s) {
        if (verdicts[s] != checker::Verdict::kUnknown) continue;
        if (is_operator) {
          std::fprintf(stderr,
                       "mrmcheck: warning: state %zu is UNKNOWN — value interval %s straddles "
                       "the threshold; tighten w/epsilon/d or use --strict to fail\n",
                       s + 1, bounds[s].to_string().c_str());
        } else {
          std::fprintf(stderr,
                       "mrmcheck: warning: state %zu is UNKNOWN — a sub-formula's value "
                       "interval straddles its threshold at the configured accuracy\n",
                       s + 1);
        }
      }
    }

    if (stats_requested) {
      const std::string json = obs::StatsRegistry::global().to_json();
      if (stats_path.empty()) {
        std::printf("stats:\n%s", json.c_str());
      } else {
        std::ofstream out(stats_path);
        out << json;
        if (!out) {
          std::fprintf(stderr, "mrmcheck: failed writing stats file '%s'\n", stats_path.c_str());
          return 1;
        }
        std::printf("stats: written to %s\n", stats_path.c_str());
      }
    }
    if (strict && any_unknown) {
      std::fprintf(stderr, "mrmcheck: --strict: UNKNOWN verdicts present\n");
      return 3;
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mrmcheck: %s\n", error.what());
    return 1;
  }
}

// mrmcheckd — the long-lived model-checking service:
//
//   mrmcheckd --socket=<path> [--threads N] [--max-queue N]
//             [--models N] [--stats]
//             [--preload name=<model.spec> | name=<prefix> ...]
//
// Listens on a unix domain socket for newline-delimited JSON requests (see
// src/daemon/protocol.hpp for the protocol): load a model once, check many
// formula batches against it with warm caches, read /stats, shut down.
// Same-model requests arriving together are batched into one shared plan
// execution; results are bitwise-identical to a cold one-shot mrmcheck run.
//
// --preload registers models at startup: `name=<file.spec>` builds from a
// guarded-command spec, `name=gen:<family:k=v,...>` explores a streamed
// generator (src/models/generator.hpp) without ever materializing model
// files, and `name=<prefix>` reads <prefix>.tra/.lab/.rewr (and .rewi when
// present).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "daemon/server.hpp"
#include "io/model_files.hpp"
#include "lang/builder.hpp"
#include "models/generator.hpp"
#include "obs/stats.hpp"
#include "parallel/thread_pool.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: mrmcheckd --socket=<path> [--threads N] [--max-queue N]\n"
               "                 [--models N] [--stats] [--preload name=<model> ...]\n"
               "\n"
               "  --socket=<path>   unix socket to listen on (required)\n"
               "  --threads N       worker threads for the numeric engines\n"
               "  --max-queue N     pending requests admitted before answering\n"
               "                    degraded (default 64)\n"
               "  --models N        resident model capacity (default 8, LRU)\n"
               "  --stats           enable engine statistics collection\n"
               "  --preload name=<model.spec or prefix or gen:spec>  register a\n"
               "                    model at startup under the given name;\n"
               "                    gen:<family:k=v,...> streams it from a model\n"
               "                    generator (families: crowd, grid, virus)\n");
}

bool parse_count(const std::string& text, const char* flag, std::size_t& out) {
  try {
    std::size_t consumed = 0;
    const unsigned long long value = std::stoull(text, &consumed);
    if (consumed != text.size() || value == 0) throw std::invalid_argument(text);
    out = static_cast<std::size_t>(value);
    return true;
  } catch (const std::exception&) {
    std::fprintf(stderr, "mrmcheckd: %s expects a positive integer, got '%s'\n", flag,
                 text.c_str());
    return false;
  }
}

bool ends_with(const std::string& text, const char* suffix) {
  const std::string s(suffix);
  return text.size() >= s.size() && text.compare(text.size() - s.size(), s.size(), s) == 0;
}

csrlmrm::core::Mrm load_preload_model(const std::string& path) {
  using namespace csrlmrm;
  if (path.rfind("gen:", 0) == 0) return models::make_generated_mrm(path.substr(4));
  if (ends_with(path, ".spec")) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto built = lang::build_model_from_text(buffer.str());
    return std::move(*built.model);
  }
  std::ifstream rewi_probe(path + ".rewi");
  return io::load_mrm(path + ".tra", path + ".lab", path + ".rewr",
                      rewi_probe ? path + ".rewi" : "");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csrlmrm;
  daemon::ServerOptions options;
  std::vector<std::pair<std::string, std::string>> preloads;  // name -> path
  for (int arg = 1; arg < argc; ++arg) {
    const std::string token = argv[arg];
    if (token.rfind("--socket=", 0) == 0) {
      options.socket_path = token.substr(9);
    } else if (token == "--threads" || token.rfind("--threads=", 0) == 0) {
      std::string value;
      if (token == "--threads") {
        if (arg + 1 >= argc) {
          usage();
          return 2;
        }
        value = argv[++arg];
      } else {
        value = token.substr(10);
      }
      std::size_t threads = 0;
      if (!parse_count(value, "--threads", threads)) return 2;
      options.service.checker.threads = static_cast<unsigned>(threads);
      parallel::set_default_thread_count(static_cast<unsigned>(threads));
    } else if (token.rfind("--max-queue=", 0) == 0) {
      if (!parse_count(token.substr(12), "--max-queue=", options.service.max_queue)) return 2;
    } else if (token.rfind("--models=", 0) == 0) {
      if (!parse_count(token.substr(9), "--models=", options.registry_capacity)) return 2;
    } else if (token == "--stats") {
      obs::set_stats_enabled(true);
    } else if (token == "--preload") {
      if (arg + 1 >= argc) {
        usage();
        return 2;
      }
      const std::string spec = argv[++arg];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::fprintf(stderr, "mrmcheckd: --preload expects name=<model>, got '%s'\n",
                     spec.c_str());
        return 2;
      }
      preloads.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else {
      std::fprintf(stderr, "mrmcheckd: unknown option '%s'\n", token.c_str());
      usage();
      return 2;
    }
  }
  if (options.socket_path.empty()) {
    usage();
    return 2;
  }

  try {
    daemon::DaemonServer server(std::move(options));
    for (const auto& [name, path] : preloads) {
      const auto resident = server.registry().add(load_preload_model(path), name);
      std::printf("mrmcheckd: preloaded '%s' (%s, %zu states)\n", name.c_str(),
                  resident->fingerprint.c_str(), resident->model->num_states());
    }
    server.start();
    std::printf("mrmcheckd: listening on %s\n", server.socket_path().c_str());
    std::fflush(stdout);
    server.wait_for_shutdown();
    server.stop();
    std::printf("mrmcheckd: shut down\n");
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mrmcheckd: %s\n", error.what());
    return 1;
  }
}

// WaveLAN energy study: the motivating scenario of the thesis's introduction
// (energy-aware wireless interfaces). Sweeps the energy budget and the
// deadline of Example 3.3's properties to show how impulse rewards (mode
// switch costs) change verdicts compared to a rate-reward-only model.
#include <cstdio>

#include "checker/until.hpp"
#include "core/transform.hpp"
#include "models/wavelan.hpp"
#include "numeric/path_explorer.hpp"

int main() {
  using namespace csrlmrm;
  const core::Mrm with_impulses = models::make_wavelan();

  // The same model with the impulse rewards stripped: what [Bai00]/[Hav02]
  // could analyze before this thesis's extension.
  const core::Mrm without_impulses(with_impulses.ctmc(),
                                   std::vector<double>(with_impulses.state_rewards()));

  checker::CheckerOptions options;
  options.uniformization.truncation_probability = 1e-15;

  const auto idle = with_impulses.labels().states_with("idle");
  const auto busy = with_impulses.labels().states_with("busy");

  std::printf("P(idle, idle U[0,t][0,r] busy): probability of serving traffic from the\n");
  std::printf("idle mode within deadline t (hours) and energy budget r, with and\n");
  std::printf("without the mode-switch impulse costs.\n\n");
  std::printf("%-6s %-8s %-14s %-14s %-10s\n", "t", "r", "P(impulse)", "P(rate-only)",
              "delta");
  for (const double t : {0.05, 0.2, 1.0}) {
    for (const double r : {1.0, 10.0, 100.0, 2000.0}) {
      const auto with = checker::until_probabilities(with_impulses, idle, busy,
                                                     logic::up_to(t), logic::up_to(r), options);
      const auto without =
          checker::until_probabilities(without_impulses, idle, busy, logic::up_to(t),
                                       logic::up_to(r), options);
      const double pw = with[models::kWavelanIdle].probability;
      const double po = without[models::kWavelanIdle].probability;
      std::printf("%-6.2f %-8.0f %-14.8f %-14.8f %-10.2e\n", t, r, pw, po, po - pw);
    }
  }

  std::printf(
      "\nReading the table: at generous budgets the impulse costs are negligible,\n"
      "but at small r the 0.36-0.43 mJ mode-switch impulses visibly reduce the\n"
      "probability (every path into a busy mode pays them) - the effect a\n"
      "rate-reward-only analysis cannot express (thesis section 1.3).\n");
  return 0;
}

// Quickstart: build an MRM in code, parse CSRL formulas, and check them.
//
// The model is the WaveLAN modem of the thesis (Examples 2.4/3.1): five
// power modes with energy draws as state rewards and mode-switch energies as
// impulse rewards. We check the thesis's own example properties.
#include <cstdio>

#include "checker/sat.hpp"
#include "logic/parser.hpp"
#include "logic/printer.hpp"
#include "models/wavelan.hpp"

int main() {
  using namespace csrlmrm;

  // 1. Build (or load, see the mrmcheck example) a Markov reward model.
  const core::Mrm model = models::make_wavelan();
  std::printf("WaveLAN modem MRM: %zu states, impulse rewards: %s\n\n", model.num_states(),
              model.has_impulse_rewards() ? "yes" : "no");

  // 2. Configure the checker. Uniformization is the default engine for
  //    time- and reward-bounded until; w is the path-truncation probability.
  checker::CheckerOptions options;
  options.uniformization.truncation_probability = 1e-14;
  checker::ModelChecker checker(model, options);

  // 3. Parse and check CSRL formulas.
  const char* const formulas[] = {
      // Steady state: the modem is busy (tx or rx) a non-trivial fraction of
      // the time, but certainly not most of it.
      "S(>0.01) busy",
      "S(>0.5) busy",
      // Example 3.6: from idle, reach a busy mode within 2 hours while
      // consuming at most 2000 units -> probability 0.158, so > 0.1 holds.
      "P(>0.1)[idle U[0,2][0,2000] busy]",
      // Example 3.3-style next property: one transition into sleep within 10
      // time units spending at most 50 units of energy.
      "P(>0.8)[X[0,10][0,50] sleep]",
      // Eventually busy, no bounds: certain in this irreducible chain.
      "P(>=0.99)[TT U busy]",
  };

  for (const char* const text : formulas) {
    const logic::FormulaPtr formula = logic::parse_formula(text);
    const std::vector<bool> sat = checker.satisfaction_set(formula);
    std::printf("%s\n  Sat = {", logic::to_string(formula).c_str());
    bool first = true;
    const char* const names[] = {"off", "sleep", "idle", "receive", "transmit"};
    for (core::StateIndex s = 0; s < model.num_states(); ++s) {
      if (!sat[s]) continue;
      std::printf("%s%s", first ? "" : ", ", names[s]);
      first = false;
    }
    std::printf("}\n\n");
  }

  // 4. Numeric values (not just the boolean verdict) are available too.
  const auto values = checker.path_probabilities(
      logic::parse_formula("P(>0.1)[idle U[0,2][0,2000] busy]"));
  std::printf("P(idle, idle U[0,2][0,2000] busy) = %.6f (error bound %.2e)\n",
              values[models::kWavelanIdle].probability,
              values[models::kWavelanIdle].error_bound);
  std::printf("(thesis Example 3.6 computes 0.15789 by hand)\n");
  return 0;
}

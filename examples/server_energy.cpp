// Energy-aware server (M/M/1/K queue): performability analysis with state
// and impulse rewards — blocking probability, energy budgets, expected
// consumption, and what the wake-up impulse adds.
#include <cstdio>

#include "checker/performability.hpp"
#include "checker/sat.hpp"
#include "logic/parser.hpp"
#include "models/mm1k.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace csrlmrm;

  models::Mm1kConfig config;  // K=8, lambda=0.8, mu=1, idle 1W, busy 5W, wakeup 2J
  const core::Mrm model = models::make_mm1k(config);
  std::printf("energy-aware M/M/1/%u server: lambda=%.2f mu=%.2f idle=%.0fW busy=%.0fW "
              "wakeup=%.0fJ\n\n",
              config.capacity, config.arrival_rate, config.service_rate, config.idle_power,
              config.busy_power, config.wakeup_energy);

  checker::CheckerOptions options;
  options.uniformization.truncation_probability = 1e-10;
  checker::ModelChecker checker(model, options);

  // Service-level statements in CSRL.
  for (const char* text : {
           "S(<0.05) full",                      // blocking below 5% in the long run
           "S(>0.3) empty",                      // the server can nap often
           "P(<0.3)[TT U[0,5][0,50] full]",      // no overload soon, within energy budget
           "P(>0.5)[!full U[0,5][0,75] empty]",  // drains before overflowing
       }) {
    const auto formula = logic::parse_formula(text);
    std::printf("%-38s -> from empty: %s\n", text,
                checker.satisfies(0, formula) ? "SATISFIED" : "not satisfied");
  }

  // Performability: distribution of consumed energy over a 5-hour shift.
  std::printf("\nPr{ energy(t=5) <= r } from the empty queue:\n  r: ");
  const std::vector<double> budgets{12, 16, 20, 24, 32};
  const auto cdf = checker::performability_cdf(model, 0, 5.0, budgets, options);
  for (std::size_t i = 0; i < budgets.size(); ++i) std::printf(" %6.0f", budgets[i]);
  std::printf("\n  P: ");
  for (const auto& value : cdf) std::printf(" %6.4f", value.probability);

  const double expected = checker::expected_accumulated_reward(model, 0, 5.0);
  const auto rate = checker::long_run_reward_rate(model);
  std::printf("\n\nexpected energy over the 5h shift: %.3f (long-run %.4f per hour)\n",
              expected, rate[0]);

  // Quantify the wake-up impulse: compare with an impulse-free twin.
  models::Mm1kConfig no_wakeup = config;
  no_wakeup.wakeup_energy = 0.0;
  const core::Mrm baseline = models::make_mm1k(no_wakeup);
  const double baseline_expected = checker::expected_accumulated_reward(baseline, 0, 5.0);
  std::printf("without the wake-up impulse it would be %.3f -> the impulse structure\n"
              "accounts for %.3f units (%.1f%% of the bill), invisible to rate-only "
              "models.\n",
              baseline_expected, expected - baseline_expected,
              100.0 * (expected - baseline_expected) / expected);

  // Cross-check by simulation (the library's third, independent engine).
  const auto simulated = sim::estimate_expected_reward(model, 0, 5.0, {100000, 2024});
  std::printf("\nMonte Carlo cross-check: %.3f +- %.3f (95%% CI, %zu samples)\n",
              simulated.mean, simulated.half_width_95, simulated.samples);
  return 0;
}

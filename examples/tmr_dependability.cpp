// TMR dependability study: the chapter-5 experimental model driven through
// the full checker — steady-state availability, time/reward-bounded
// reachability of repair goals, and the effect of the repair-impulse costs.
#include <cstdio>
#include <string>

#include "checker/sat.hpp"
#include "logic/parser.hpp"
#include "models/tmr.hpp"

int main() {
  using namespace csrlmrm;

  models::TmrConfig config;  // 3 modules + voter, Table 5.2 rates
  const core::Mrm model = models::make_tmr(config);

  checker::CheckerOptions options;
  options.uniformization.truncation_probability = 1e-12;
  checker::ModelChecker checker(model, options);

  std::printf("Triple-modular-redundant system (Table 5.2 rates)\n");
  std::printf("states: 0=3up 1=2up 2=1up 3=0up 4=vdown\n\n");

  // Long-run availability: the system is operational (Sup) almost always
  // (pi(Sup) ~ 0.9983 with the Table 5.2 rates).
  for (const char* text : {"S(>0.99) Sup", "S(>0.999) Sup", "S(<0.01) failed"}) {
    const auto formula = logic::parse_formula(text);
    std::printf("%-22s -> state 3up %s\n", text,
                checker.satisfies(0, formula) ? "SATISFIED" : "not satisfied");
  }

  // Mission-time dependability: chance of hitting a failure state within a
  // mission of t hours while operating all along, with bounded resource use.
  std::printf("\nP(3up, Sup U[0,t][0,3000] failed):\n");
  for (const double t : {50.0, 200.0, 500.0}) {
    const auto values = checker.path_probabilities(logic::parse_formula(
        "P(>0.1)[Sup U[0," + std::to_string(t) + "][0,3000] failed]"));
    std::printf("  t = %-4.0f  P = %-12.8f  error <= %.2e\n", t, values[0].probability,
                values[0].error_bound);
  }

  // Repair-team perspective: from a degraded state, how likely is full
  // recovery within a shift, within a parts budget? Note the repair impulse
  // (2.5 per module, 5 for the voter) charged on every completed repair.
  std::printf("\nP(s, tt U[0,8][0,r] allUp) from degraded states:\n");
  std::printf("%-8s %-10s %-10s %-10s\n", "start", "r=100", "r=50", "r=25");
  const char* const starts[] = {"2up", "1up", "0up", "vdown"};
  const core::StateIndex start_states[] = {1, 2, 3, models::tmr_voter_down_state(3)};
  for (int i = 0; i < 4; ++i) {
    std::printf("%-8s", starts[i]);
    for (const double r : {100.0, 50.0, 25.0}) {
      const auto values = checker.path_probabilities(logic::parse_formula(
          "P(>0.5)[TT U[0,8][0," + std::to_string(r) + "] allUp]"));
      std::printf(" %-10.6f", values[start_states[i]].probability);
    }
    std::printf("\n");
  }
  std::printf(
      "\nNote how the rows collapse as r shrinks: deeper degradation burns resources\n"
      "faster (rho rises with failed modules) and every completed repair pays an\n"
      "impulse on top — the impulse-reward effect this thesis adds to CSRL model\n"
      "checking.\n");

  // A nested property: from every operational state, with high probability
  // the next transition keeps the system operational.
  const auto nested = logic::parse_formula("P(>0.9)[X Sup]");
  std::printf("\nP(>0.9)[X Sup]: ");
  for (core::StateIndex s = 0; s < model.num_states(); ++s) {
    if (checker.satisfies(s, nested)) std::printf("state%zu ", s);
  }
  std::printf("satisfy.\n");
  return 0;
}

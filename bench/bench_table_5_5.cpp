// Table 5.5 — "Reaching the Fully Operational State with Constant Failure
// Rates": 11-module NMR system, P(>0.1)[tt U[0,100][0,2000] allUp] from
// states with n = 0..10 working modules, w = 1e-8.
#include <cstdio>

#include "bench_support.hpp"
#include "models/tmr.hpp"

int main() {
  using namespace csrlmrm;
  const core::Mrm model = models::make_tmr(models::chapter5_nmr_config());
  benchsupport::UntilExperiment experiment(model, "TT", "allUp");

  benchsupport::print_header(
      "Table 5.5 - reaching the fully operational state, constant failure rates",
      "11 modules + voter; P(>0.1)[tt U[0,100][0,2000] allUp], w = 1e-8;\n"
      "n = number of working modules in the starting state");

  const double paper_p[] = {0.00482952588914756, 0.0068486521925764, 0.0131488893307554,
                            0.0307864803541378,  0.0735906999244802, 0.161653274832831,
                            0.311639369763902,   0.516966415983422,  0.733673548795558,
                            0.899015328912742,   0.980329681725223};

  std::printf("%-3s  %-22s  %-13s  %-8s  %-22s\n", "n", "P", "E", "T(s)", "paper P");
  for (unsigned working = 0; working <= 10; ++working) {
    const auto start = models::tmr_state_with_failed(11 - working);
    const auto result = experiment.uniformization(start, 100.0, 2000.0, 1e-8);
    std::printf("%-3u  %-22.17g  %-13.6e  %-8.3f  %-22.17g\n", working, result.probability,
                result.error_bound, result.seconds, paper_p[working]);
  }
  std::printf(
      "\nExpected shape: steep S-curve in n — near 0 for n <= 3 (the time bound and\n"
      "the repair-cost reward bound both bite), near 1 for n = 10; computation time\n"
      "falls with n (fewer, more probable paths reach allUp).\n");
  return 0;
}

// Table 5.7 — "Reaching the Fully Operational State with Variable Failure
// Rates": as Table 5.5 but module failure rate scales with the number of
// working modules (Table 5.6: n x 0.0004 / h).
#include <cstdio>

#include "bench_support.hpp"
#include "models/tmr.hpp"

int main() {
  using namespace csrlmrm;
  const core::Mrm model =
      models::make_tmr(models::chapter5_nmr_config(/*variable_failure_rate=*/true));
  benchsupport::UntilExperiment experiment(model, "TT", "allUp");

  benchsupport::print_header(
      "Table 5.7 - reaching the fully operational state, variable failure rates",
      "Table 5.6 rates: module failure n x 0.0004/h (n = working modules),\n"
      "voter failure 0.0001/h, module repair 0.05/h, voter repair 0.06/h;\n"
      "P(>0.1)[tt U[0,100][0,2000] allUp], w = 1e-8");

  const double paper_p[] = {0.00477909028870443, 0.00664628290706118, 0.0124264528171119,
                            0.0285473649414625,  0.0676727123697789,  0.14851270909792,
                            0.287706855662473,   0.482315748557532,   0.695701644333058,
                            0.87014207211784,    0.968076165457539};

  std::printf("%-3s  %-22s  %-13s  %-8s  %-22s\n", "n", "P", "E", "T(s)", "paper P");
  for (unsigned working = 0; working <= 10; ++working) {
    const auto start = models::tmr_state_with_failed(11 - working);
    const auto result = experiment.uniformization(start, 100.0, 2000.0, 1e-8);
    std::printf("%-3u  %-22.17g  %-13.6e  %-8.3f  %-22.17g\n", working, result.probability,
                result.error_bound, result.seconds, paper_p[working]);
  }
  std::printf(
      "\nExpected shape: same S-curve as Table 5.5 but uniformly lower — more working\n"
      "modules mean a higher total failure rate pulling away from allUp.\n");
  return 0;
}

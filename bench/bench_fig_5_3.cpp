// Figure 5.3 — "T vs. t and E vs. t for constant w = 1e-11": the two series
// plotted in the thesis's figure, generated from the Table 5.3 computation
// and printed as plot-ready columns.
#include <cstdio>

#include "bench_support.hpp"
#include "models/tmr.hpp"

int main() {
  using namespace csrlmrm;
  const core::Mrm model = models::make_tmr(models::TmrConfig{});
  benchsupport::UntilExperiment experiment(model, "Sup", "failed");

  benchsupport::print_header(
      "Figure 5.3 - computation time and error bound vs t at fixed w = 1e-11",
      "series: (t, T_seconds) and (t, E); TMR, P[Sup U[0,t][0,3000] failed]");

  std::printf("# %-5s  %-10s  %-13s\n", "t", "T(s)", "E");
  for (double t = 50.0; t <= 500.0; t += 50.0) {
    const auto result = experiment.uniformization(0, t, 3000.0, 1e-11);
    std::printf("  %-5.0f  %-10.4f  %-13.6e\n", t, result.seconds, result.error_bound);
  }
  std::printf(
      "\nExpected shape: both series hockey-stick upward — T grows fast even at\n"
      "fixed w (longer paths to enumerate), and E grows by orders of magnitude\n"
      "once e^(-Lambda t) pushes whole path families below the cutoff.\n");
  return 0;
}

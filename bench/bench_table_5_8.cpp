// Table 5.8 — "Results by Discretization": the Table 5.3/5.4 TMR formula
// evaluated with the discretization engine, d = 0.25, t = 50..200. The
// values must converge to the same numbers as uniformization (the thesis's
// correctness argument for the impulse-reward case).
#include <cstdio>

#include "bench_support.hpp"
#include "models/tmr.hpp"

int main() {
  using namespace csrlmrm;
  const core::Mrm model = models::make_tmr(models::TmrConfig{});
  benchsupport::UntilExperiment experiment(model, "Sup", "failed");

  benchsupport::print_header(
      "Table 5.8 - results by discretization (TMR, d = 0.25)",
      "P(>0.1)[Sup U[0,t][0,3000] failed] from state 1");

  const double paper_p[] = {0.005061779415718182, 0.010175568967901463, 0.015267158582408371,
                            0.020332872743413364};

  std::printf("%-5s  %-22s  %-8s  %-22s  %-22s\n", "t", "P (discretization)", "T(s)",
              "P (uniformization)", "paper P");
  int row = 0;
  for (double t = 50.0; t <= 200.0; t += 50.0, ++row) {
    const auto disc = experiment.discretization(0, t, 3000.0, 0.25);
    const auto uni = experiment.uniformization(0, t, 3000.0, 1e-12);
    std::printf("%-5.0f  %-22.17g  %-8.3f  %-22.17g  %-22.17g\n", t, disc.probability,
                disc.seconds, uni.probability, paper_p[row]);
  }
  std::printf(
      "\nExpected shape: discretization and uniformization agree to ~1e-4 (both the\n"
      "paper's Table 5.4-vs-5.8 comparison and ours); discretization is orders of\n"
      "magnitude slower and its cost grows superlinearly in t.\n");
  return 0;
}

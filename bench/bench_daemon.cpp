// Warm daemon vs cold processes, written to BENCH_daemon.json (CWD, or the
// path given as argv[1]).
//
// Workload: the Table 5.4 formula family P(>0.1)[Sup U[0,t][0,3000] failed]
// on the TMR model, one query per t = 50..500 step 50, the whole sweep
// repeated over several rounds. Three lanes:
//
//   cold — every query spawns the real mrmcheck binary (fork/exec, model
//     files re-parsed, every cache empty), which is what scripting the CLI
//     per query costs;
//   warm — the same queries through one resident daemon::CheckService: the
//     model is parsed once, absorbing transforms stay in the per-model
//     TransformCache, and the Poisson/Omega tables stay warm across queries
//     (one untimed round first — a long-lived daemon is measured at its
//     steady state);
//   concurrent — the warm sweep issued by 8 client threads at once, to
//     record multi-client throughput through the batching dispatcher.
//
// Daemon replies are checked bitwise against a fresh-process-state direct
// check (SharedOmegaCache cleared first) — "bitwise_identical" lands in the
// JSON; the speedup buys identical answers or it does not count.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "checker/options.hpp"
#include "core/approx.hpp"
#include "daemon/model_registry.hpp"
#include "daemon/protocol.hpp"
#include "daemon/service.hpp"
#include "logic/parser.hpp"
#include "models/tmr.hpp"
#include "numeric/conditional.hpp"
#include "plan/compiler.hpp"
#include "plan/executor.hpp"

namespace {

using namespace csrlmrm;

int g_rounds = 5;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One cold-process query: the real mrmcheck binary against the checked-in
/// TMR model files. Returns false when the child fails.
bool run_cold_query(const std::string& formula) {
  const std::string models = CSRLMRM_EXAMPLE_MODELS_DIR;
  const std::string command = std::string("'") + MRMCHECK_BINARY + "' '" + models +
                              "/tmr.tra' '" + models + "/tmr.lab' '" + models +
                              "/tmr.rewr' '" + models + "/tmr.rewi' NP '" + formula +
                              "' >/dev/null 2>/dev/null";
  return std::system(command.c_str()) == 0;
}

bool reply_matches_direct(const daemon::CheckReply& reply,
                          const plan::FormulaResult& expected) {
  if (!reply.ok || reply.degraded || reply.formulas.size() != 1) return false;
  const daemon::FormulaReply& formula = reply.formulas[0];
  if (!formula.ok || formula.verdicts.size() != expected.verdicts.size()) return false;
  for (std::size_t s = 0; s < expected.verdicts.size(); ++s) {
    const char want = expected.verdicts[s] == checker::Verdict::kSat      ? 'Y'
                      : expected.verdicts[s] == checker::Verdict::kUnsat ? 'N'
                                                                         : '?';
    if (formula.verdicts[s] != want) return false;
  }
  if (!formula.has_probabilities ||
      formula.probabilities.size() != expected.probabilities.size()) {
    return false;
  }
  for (std::size_t s = 0; s < expected.probabilities.size(); ++s) {
    if (!core::exactly_equal(formula.probabilities[s],
                             expected.probabilities[s].probability)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_daemon.json";
  double t_end = 500.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_rounds = 1;
      t_end = 100.0;  // two formulas x one round: every code path, fast
    } else {
      out_path = argv[i];
    }
  }

  std::vector<std::string> texts;
  for (double t = 50.0; t <= t_end; t += 50.0) {
    char text[96];
    std::snprintf(text, sizeof(text), "P(>0.1)[Sup U[0,%.0f][0,3000] failed]", t);
    texts.emplace_back(text);
  }
  const std::size_t queries_per_round = texts.size();
  const std::size_t total_queries = queries_per_round * static_cast<std::size_t>(g_rounds);

  // Fresh-process-state reference results for the bitwise check.
  const core::Mrm model = models::make_tmr();
  numeric::SharedOmegaCache::global().clear();
  std::vector<plan::FormulaResult> expected;
  for (const std::string& text : texts) {
    const auto formula = logic::parse_formula(text);
    const plan::Plan compiled = plan::compile(model, {formula}, checker::CheckerOptions{});
    plan::PlanResult result = plan::execute(compiled, model);
    expected.push_back(std::move(result.formulas[0]));
  }

  // --- cold lane: one mrmcheck process per query --------------------------
  bool cold_ok = true;
  const double cold_start = now_ms();
  for (int round = 0; round < g_rounds; ++round) {
    for (const std::string& text : texts) cold_ok = run_cold_query(text) && cold_ok;
  }
  const double cold_ms = now_ms() - cold_start;
  if (!cold_ok) {
    std::printf("cold lane failed: mrmcheck returned nonzero\n");
    return 1;
  }

  // --- warm lane: one resident service, sequential queries ----------------
  daemon::ModelRegistry registry;
  registry.add(models::make_tmr(), "tmr");
  daemon::CheckService service(registry);
  const auto submit_one = [&service](const std::string& text) {
    daemon::CheckRequest request;
    request.model = "tmr";
    request.formulas = {text};
    return service.submit(std::move(request)).get();
  };

  bool identical = true;
  for (std::size_t i = 0; i < queries_per_round; ++i) {  // untimed warmup round
    identical = reply_matches_direct(submit_one(texts[i]), expected[i]) && identical;
  }
  const double warm_start = now_ms();
  for (int round = 0; round < g_rounds; ++round) {
    for (std::size_t i = 0; i < queries_per_round; ++i) {
      identical = reply_matches_direct(submit_one(texts[i]), expected[i]) && identical;
    }
  }
  const double warm_ms = now_ms() - warm_start;

  // --- concurrent lane: 8 clients hammering the same service --------------
  constexpr int kClients = 8;
  std::vector<int> client_mismatches(kClients, 0);
  const double concurrent_start = now_ms();
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int round = 0; round < g_rounds; ++round) {
          for (std::size_t i = 0; i < queries_per_round; ++i) {
            const std::size_t at = (static_cast<std::size_t>(c) + i) % queries_per_round;
            if (!reply_matches_direct(submit_one(texts[at]), expected[at])) {
              ++client_mismatches[c];
            }
          }
        }
      });
    }
    for (std::thread& client : clients) client.join();
  }
  const double concurrent_ms = now_ms() - concurrent_start;
  for (const int mismatches : client_mismatches) identical = identical && mismatches == 0;

  const double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
  const double concurrent_queries =
      static_cast<double>(total_queries) * static_cast<double>(kClients);
  const double concurrent_qps =
      concurrent_ms > 0.0 ? 1000.0 * concurrent_queries / concurrent_ms : 0.0;
  std::printf("daemon bench (TMR, %zu queries/lane, %d rounds)\n", total_queries, g_rounds);
  std::printf("  cold processes: %8.3f ms (%.3f ms/query)\n", cold_ms,
              cold_ms / static_cast<double>(total_queries));
  std::printf("  warm daemon:    %8.3f ms (%.3f ms/query)\n", warm_ms,
              warm_ms / static_cast<double>(total_queries));
  std::printf("  speedup:        %.2fx\n", speedup);
  std::printf("  concurrent:     %8.3f ms for %d clients (%.0f queries/s)\n", concurrent_ms,
              kClients, concurrent_qps);
  std::printf("  bitwise identical: %s\n", identical ? "yes" : "NO");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::printf("cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"daemon_warm_vs_cold_process\",\n");
  std::fprintf(out, "  \"model\": \"tmr\",\n  \"formula_family\": "
                    "\"P(>0.1)[Sup U[0,t][0,3000] failed]\",\n");
  std::fprintf(out, "  \"t_values\": [");
  for (std::size_t i = 0; i < queries_per_round; ++i) {
    std::fprintf(out, "%s%.0f", i == 0 ? "" : ", ", 50.0 * static_cast<double>(i + 1));
  }
  std::fprintf(out, "],\n");
  std::fprintf(out, "  \"rounds\": %d,\n", g_rounds);
  std::fprintf(out, "  \"queries_per_lane\": %zu,\n", total_queries);
  std::fprintf(out, "  \"cold_process_ms\": %.3f,\n", cold_ms);
  std::fprintf(out, "  \"warm_daemon_ms\": %.3f,\n", warm_ms);
  std::fprintf(out, "  \"speedup\": %.2f,\n", speedup);
  std::fprintf(out, "  \"concurrent_clients\": %d,\n", kClients);
  std::fprintf(out, "  \"concurrent_ms\": %.3f,\n", concurrent_ms);
  std::fprintf(out, "  \"concurrent_queries_per_s\": %.0f,\n", concurrent_qps);
  std::fprintf(out, "  \"bitwise_identical\": %s\n}\n", identical ? "true" : "false");
  std::fclose(out);

  return identical ? 0 : 1;
}

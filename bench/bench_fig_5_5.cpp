// Figure 5.5 — "P and T vs. Number of working modules with variable failure
// rates": plot-ready series for the Table 5.7 experiment.
#include <cstdio>

#include "bench_support.hpp"
#include "models/tmr.hpp"

int main() {
  using namespace csrlmrm;
  const core::Mrm model =
      models::make_tmr(models::chapter5_nmr_config(/*variable_failure_rate=*/true));
  benchsupport::UntilExperiment experiment(model, "TT", "allUp");

  benchsupport::print_header(
      "Figure 5.5 - P and T vs number of working modules (variable failure rates)",
      "series: (n, P) and (n, T_seconds); P[tt U[0,100][0,2000] allUp], w = 1e-8;\n"
      "module failure rate scales with working modules (Table 5.6)");

  std::printf("# %-3s  %-12s  %-10s\n", "n", "P", "T(s)");
  for (unsigned working = 0; working <= 10; ++working) {
    const auto start = models::tmr_state_with_failed(11 - working);
    const auto result = experiment.uniformization(start, 100.0, 2000.0, 1e-8);
    std::printf("  %-3u  %-12.6f  %-10.4f\n", working, result.probability, result.seconds);
  }
  std::printf(
      "\nExpected shape: the Figure 5.4 S-curve shifted down (higher aggregate\n"
      "failure rates), with slightly higher computation times per start state.\n");
  return 0;
}

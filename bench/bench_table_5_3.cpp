// Table 5.3 — "Maintaining Constant Value for Truncation Probability":
// TMR system, P(>0.1)[Sup U[0,t][0,3000] failed] from the fully operational
// state, w = 1e-11 fixed, t = 50..500.
#include <cstdio>

#include "bench_support.hpp"
#include "models/tmr.hpp"

int main() {
  using namespace csrlmrm;
  const models::TmrConfig config;
  const core::Mrm model = models::make_tmr(config);
  benchsupport::UntilExperiment experiment(model, "Sup", "failed");

  benchsupport::print_header(
      "Table 5.3 - constant truncation probability w = 1e-11 (TMR)",
      "Table 5.2 rates: module failure 0.0004/h, voter failure 0.0001/h,\n"
      "module repair 0.05/h, voter repair 0.06/h\n"
      "P(>0.1)[Sup U[0,t][0,3000] failed] from state 1 (= all modules up)");

  // Paper columns for side-by-side comparison (P, E as printed in the table).
  const double paper_p[] = {0.005087386344177422, 0.010200965534212462, 0.015292345758962047,
                            0.020357846035241836, 0.025397296769503298, 0.0304108011763401,
                            0.035398424356873154, 0.037778881862768586, 0.035702997386052426,
                            0.033399142731982794};
  const double paper_e[] = {2.4358698148888235e-9, 1.2515341178826049e-8,
                            3.082240323341275e-8,  9.586925654419818e-8,
                            2.23071030162702e-7,   3.719970665306907e-7,
                            8.059405465802234e-7,  1.8187796388985496e-5,
                            2.09565155821465e-3,   1.19809420907302e-2};

  std::printf("%-5s  %-22s  %-13s  %-8s  %-22s  %-13s\n", "t", "P", "E", "T(s)", "paper P",
              "paper E");
  int row = 0;
  for (double t = 50.0; t <= 500.0; t += 50.0, ++row) {
    const auto result = experiment.uniformization(0, t, 3000.0, 1e-11);
    std::printf("%-5.0f  %-22.17g  %-13.6e  %-8.3f  %-22.17g  %-13.6e\n", t,
                result.probability, result.error_bound, result.seconds, paper_p[row],
                paper_e[row]);
  }
  std::printf(
      "\nExpected shape: P grows ~linearly, then stalls/declines past t ~ 400 as the\n"
      "fixed w discards ever more of the (longer) relevant paths; E explodes there.\n");
  return 0;
}

// Table 5.4 — "Maintaining Error Bound": same TMR formula as Table 5.3 but
// the truncation probability w is tightened per t until the a-priori error
// bound E drops below 1e-4; reports the chosen w, P, E and time.
#include <cstdio>

#include "bench_support.hpp"
#include "models/tmr.hpp"

int main() {
  using namespace csrlmrm;
  const core::Mrm model = models::make_tmr(models::TmrConfig{});
  benchsupport::UntilExperiment experiment(model, "Sup", "failed");

  benchsupport::print_header(
      "Table 5.4 - maintaining error bound E <= 1e-4 (TMR)",
      "P(>0.1)[Sup U[0,t][0,3000] failed] from state 1; w lowered per t until\n"
      "the eq. (4.6) bound is below 1e-4 (paper schedule: 1e-6 .. 1e-13)");

  const double paper_p[] = {0.005066346970920541, 0.010192188416409224, 0.01526891561598995,
                            0.02034951753667224,  0.02535926036855204,  0.0303887127539854,
                            0.035379256114703495, 0.037778881862768586, 0.03777910398006526,
                            0.037779567600526885};

  std::printf("%-5s  %-8s  %-22s  %-13s  %-8s  %-22s\n", "t", "w", "P", "E", "T(s)",
              "paper P");
  int row = 0;
  for (double t = 50.0; t <= 500.0; t += 50.0, ++row) {
    double w = 1e-6;
    benchsupport::UntilExperiment::Result result;
    for (;; w /= 10.0) {
      result = experiment.uniformization(0, t, 3000.0, w);
      if (result.error_bound <= 1e-4 || w < 1e-15) break;
    }
    std::printf("%-5.0f  %-8.0e  %-22.17g  %-13.6e  %-8.3f  %-22.17g\n", t, w,
                result.probability, result.error_bound, result.seconds, paper_p[row]);
  }
  std::printf(
      "\nExpected shape: P keeps the Table 5.3 trajectory but now *plateaus* at\n"
      "~0.0378 for t >= 400 (the reward bound r = 3000 binds); the required w\n"
      "falls and the computation time grows much faster than in Table 5.3.\n");
  return 0;
}

// Table 5.1 — "Result without Impulse Rewards": discretization convergence
// on the cell-phone case study (substitute for [Hav02], see DESIGN.md §4).
//
// Formula: P(>0.5)[(Call_Idle || Doze) U[0,24][0,600] Call_Initiated] from
// the Call_Idle start state; d = 1/16, 1/32, 1/64. The paper's reference
// value (0.49540399 for the original [Hav02] model) is replaced by our
// uniformization engine at w = 1e-14 — the cross-validation argument the
// thesis itself makes.
#include <cstdio>

#include "bench_support.hpp"
#include "models/cellphone.hpp"

int main() {
  using namespace csrlmrm;
  const core::Mrm model = models::make_cellphone();
  benchsupport::UntilExperiment experiment(model, "Call_Idle || Doze", "Call_Initiated");

  const double t = 24.0;
  const double r = 600.0;
  const auto start = models::kCellphoneStart;

  benchsupport::print_header(
      "Table 5.1 - discretization without impulse rewards (cell-phone substitute)",
      "P[(Call_Idle v Doze) U[0,24][0,600] Call_Initiated] from Call_Idle\n"
      "paper (original [Hav02] model): 0.49564786 / 0.49545080 / 0.49534976,\n"
      "converging to reference 0.49540399; our model: own reference below");

  const auto reference = experiment.uniformization(start, t, r, 1e-14);
  std::printf("reference (uniformization, w=1e-14): %s  (error bound %s)\n\n",
              benchsupport::format_probability(reference.probability).c_str(),
              benchsupport::format_error(reference.error_bound).c_str());

  std::printf("%-8s  %-22s  %-12s  %s\n", "d", "Pr{Y(24)<=600, X|=Psi}", "|P-ref|",
              "time(s)");
  for (const int denominator : {16, 32, 64}) {
    const double d = 1.0 / denominator;
    const auto result = experiment.discretization(start, t, r, d);
    std::printf("1/%-6d  %-22.17g  %-12.3e  %s\n", denominator, result.probability,
                std::abs(result.probability - reference.probability),
                benchsupport::format_seconds(result.seconds).c_str());
  }
  std::printf("\nExpected shape: |P-ref| shrinks ~linearly in d; time grows ~4x per halving"
              "\n(the thesis reports 7.99s / 65.86s / 518.67s on 2004 hardware).\n");
  return 0;
}

#include "bench_support.hpp"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "checker/sat.hpp"
#include "logic/parser.hpp"
#include "numeric/discretization.hpp"

namespace csrlmrm::benchsupport {

namespace {
double elapsed_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}
}  // namespace

UntilExperiment::Prepared UntilExperiment::prepare(const core::Mrm& model,
                                                   const std::string& phi,
                                                   const std::string& psi) {
  checker::ModelChecker checker(model);
  const std::vector<bool> sat_phi = checker.satisfaction_set(logic::parse_formula(phi));
  const std::vector<bool> sat_psi = checker.satisfaction_set(logic::parse_formula(psi));

  std::vector<bool> absorb(model.num_states());
  std::vector<bool> dead(model.num_states());
  for (core::StateIndex s = 0; s < model.num_states(); ++s) {
    absorb[s] = !sat_phi[s] || sat_psi[s];
    dead[s] = !sat_phi[s] && !sat_psi[s];
  }
  return {core::make_absorbing(model, absorb), sat_psi, std::move(dead)};
}

UntilExperiment::UntilExperiment(Prepared prepared)
    : transformed_(std::move(prepared.transformed)),
      psi_(std::move(prepared.psi)),
      dead_(std::move(prepared.dead)),
      engine_(transformed_, psi_, dead_),
      class_engine_(transformed_, psi_, dead_) {}

UntilExperiment::UntilExperiment(const core::Mrm& model, const std::string& phi,
                                 const std::string& psi)
    : UntilExperiment(prepare(model, phi, psi)) {}

UntilExperiment::Result UntilExperiment::uniformization(core::StateIndex start, double t,
                                                        double r, double w,
                                                        bool aggregate_signatures) const {
  numeric::PathExplorerOptions options;
  options.truncation_probability = w;
  options.aggregate_signatures = aggregate_signatures;
  const auto begin = std::chrono::steady_clock::now();
  const auto computed = engine_.compute(start, t, r, options);
  Result result;
  result.probability = computed.probability;
  result.error_bound = computed.error_bound;
  result.seconds = elapsed_seconds(begin);
  result.paths_stored = computed.paths_stored;
  result.signature_classes = computed.signature_classes;
  result.nodes_expanded = computed.nodes_expanded;
  return result;
}

std::vector<UntilExperiment::Result> UntilExperiment::classdp_batch(
    const std::vector<core::StateIndex>& starts, double t, double r, double w,
    unsigned threads, bool adaptive_hybrid) const {
  numeric::PathExplorerOptions options;
  options.truncation_probability = w;
  options.threads = threads;
  options.adaptive_hybrid = adaptive_hybrid;
  const auto begin = std::chrono::steady_clock::now();
  const auto batch = class_engine_.compute_batch(starts, t, r, options);
  const double seconds = elapsed_seconds(begin);
  std::vector<Result> results(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    results[i].probability = batch[i].probability;
    results[i].error_bound = batch[i].error_bound;
    results[i].seconds = seconds;
    results[i].paths_stored = batch[i].paths_stored;
    results[i].signature_classes = batch[i].signature_classes;
    results[i].nodes_expanded = batch[i].nodes_expanded;
  }
  return results;
}

UntilExperiment::Result UntilExperiment::discretization(core::StateIndex start, double t,
                                                        double r, double d) const {
  numeric::DiscretizationOptions options;
  options.step = d;
  const auto begin = std::chrono::steady_clock::now();
  const auto computed =
      numeric::until_probability_discretization(transformed_, psi_, start, t, r, options);
  Result result;
  result.probability = computed.probability;
  result.seconds = elapsed_seconds(begin);
  return result;
}

void print_header(const std::string& title, const std::string& subtitle) {
  std::printf("== %s ==\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
  std::printf("\n");
}

std::string format_probability(double p) {
  std::ostringstream out;
  out.precision(17);
  out << p;
  return out.str();
}

std::string format_error(double e) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.6e", e);
  return buffer;
}

std::string format_seconds(double s) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.3f", s);
  return buffer;
}

}  // namespace csrlmrm::benchsupport

// google-benchmark microbenchmarks for the numerical kernels: Omega
// recursion, Poisson masses, Gauss-Seidel sweeps, BSCC detection, the DFPG
// path explorer, one discretization step-sweep, serial-vs-parallel scaling
// cases for the thread-pool layer (Arg = thread count; run `bench_parallel`
// for the JSON scaling record), and the observability-layer overhead
// benches (BM_Stats*, Arg = stats enabled). After the benchmark run, main()
// re-runs one representative DFPG + discretization workload with statistics
// collection on and writes the registry to BENCH_kernels_stats.json.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "checker/steady.hpp"
#include "checker/until.hpp"
#include "core/transform.hpp"
#include "graph/scc.hpp"
#include "linalg/gauss_seidel.hpp"
#include "models/mm1k.hpp"
#include "models/random_mrm.hpp"
#include "models/tmr.hpp"
#include "numeric/discretization.hpp"
#include "numeric/omega.hpp"
#include "numeric/path_explorer.hpp"
#include "numeric/poisson.hpp"
#include "numeric/transient.hpp"
#include "obs/stats.hpp"

namespace {

using namespace csrlmrm;

void BM_OmegaEvaluate(benchmark::State& state) {
  const auto count = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    // Fresh evaluator per iteration: measures the full memoized recursion.
    numeric::OmegaEvaluator evaluator({5.0, 3.0, 1.0, 0.0}, 1.7);
    benchmark::DoNotOptimize(evaluator.evaluate({count, count, count, count}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OmegaEvaluate)->RangeMultiplier(2)->Range(4, 64)->Complexity();

void BM_OmegaMemoizedRequery(benchmark::State& state) {
  numeric::OmegaEvaluator evaluator({5.0, 3.0, 1.0, 0.0}, 1.7);
  evaluator.evaluate({32, 32, 32, 32});
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate({32, 32, 32, 32}));
  }
}
BENCHMARK(BM_OmegaMemoizedRequery);

void BM_PoissonPmf(benchmark::State& state) {
  std::size_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric::poisson_pmf(n++ % 256, 42.0));
  }
}
BENCHMARK(BM_PoissonPmf);

void BM_GaussSeidelSweeps(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  linalg::CsrBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add(i, i, 4.0);
    if (i > 0) builder.add(i, i - 1, -1.0);
    if (i + 1 < n) builder.add(i, i + 1, -1.0);
  }
  const auto matrix = builder.build();
  const std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    std::vector<double> x(n, 0.0);
    benchmark::DoNotOptimize(linalg::gauss_seidel_solve(matrix, b, x));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GaussSeidelSweeps)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_BsccDetection(benchmark::State& state) {
  models::RandomMrmConfig config;
  config.num_states = static_cast<std::size_t>(state.range(0));
  config.edge_probability = 8.0 / static_cast<double>(state.range(0));  // sparse
  const core::Mrm model = models::make_random_mrm(99, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::bottom_sccs(model.rates().matrix()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BsccDetection)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_DfpgTmrUntil(benchmark::State& state) {
  const double t = static_cast<double>(state.range(0));
  const core::Mrm model = models::make_tmr(models::TmrConfig{});
  const auto sup = model.labels().states_with("Sup");
  const auto failed = model.labels().states_with("failed");
  std::vector<bool> absorb(model.num_states());
  std::vector<bool> dead(model.num_states());
  for (core::StateIndex s = 0; s < model.num_states(); ++s) {
    absorb[s] = !sup[s] || failed[s];
    dead[s] = !sup[s] && !failed[s];
  }
  numeric::UniformizationUntilEngine engine(core::make_absorbing(model, absorb), failed, dead);
  numeric::PathExplorerOptions options;
  options.truncation_probability = 1e-11;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.compute(0, t, 3000.0, options));
  }
}
BENCHMARK(BM_DfpgTmrUntil)->Arg(50)->Arg(100)->Arg(200)->Arg(300);

void BM_DiscretizationTmrUntil(benchmark::State& state) {
  const core::Mrm model = models::make_tmr(models::TmrConfig{});
  const auto sup = model.labels().states_with("Sup");
  const auto failed = model.labels().states_with("failed");
  std::vector<bool> absorb(model.num_states());
  for (core::StateIndex s = 0; s < model.num_states(); ++s) absorb[s] = !sup[s] || failed[s];
  const core::Mrm transformed = core::make_absorbing(model, absorb);
  numeric::DiscretizationOptions options;
  // Coarse grid (a microbenchmark, not an accuracy run); 0.5 still divides
  // the TMR repair impulses (2.5 / 5).
  options.step = 0.5;
  const double t = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        numeric::until_probability_discretization(transformed, failed, 0, t, 3000.0, options));
  }
}
BENCHMARK(BM_DiscretizationTmrUntil)->Arg(50)->Arg(100)->Arg(200);

// --- Serial-vs-parallel scaling (Arg = worker threads) ---------------------

void BM_DiscretizationMm1kSweepThreads(benchmark::State& state) {
  models::Mm1kConfig config;
  config.capacity = 64;
  const core::Mrm model = models::make_mm1k(config);
  const auto full = model.labels().states_with("full");
  numeric::DiscretizationOptions options;
  options.step = 0.25;  // d * max exit rate = 0.45; divides the wakeup impulse
  options.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        numeric::until_probability_discretization(model, full, 0, 50.0, 200.0, options));
  }
}
BENCHMARK(BM_DiscretizationMm1kSweepThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_TransientMm1kThreads(benchmark::State& state) {
  models::Mm1kConfig config;
  config.capacity = 4096;  // large state space: row-parallel SpMV territory
  const core::Mrm model = models::make_mm1k(config);
  numeric::TransientOptions options;
  options.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        numeric::transient_distribution_from(model.rates(), 0, 100.0, options));
  }
}
BENCHMARK(BM_TransientMm1kThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_UntilFanoutMm1kThreads(benchmark::State& state) {
  models::Mm1kConfig config;
  config.capacity = 16;
  const core::Mrm model = models::make_mm1k(config);
  const auto busy = model.labels().states_with("busy");
  const auto full = model.labels().states_with("full");
  checker::CheckerOptions options;
  options.until_method = checker::UntilMethod::kDiscretization;
  options.discretization.step = 0.25;
  options.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker::until_probabilities(
        model, busy, full, logic::Interval(0.0, 20.0), logic::Interval(0.0, 60.0), options));
  }
}
BENCHMARK(BM_UntilFanoutMm1kThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_SteadyStateNmr(benchmark::State& state) {
  models::TmrConfig config;
  config.num_modules = static_cast<unsigned>(state.range(0));
  const core::Mrm model = models::make_tmr(config);
  const auto failed = model.labels().states_with("failed");
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker::steady_state_probability_of_set(model, failed));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SteadyStateNmr)->Arg(3)->Arg(11)->Arg(41)->Arg(101);

// --- Observability overhead (Arg: 0 = stats disabled, 1 = enabled) ---------

/// RAII enable/disable around a benchmark body; resets the registry on exit
/// so repeated runs don't accumulate into one snapshot.
struct StatsMode {
  explicit StatsMode(bool enabled) { obs::set_stats_enabled(enabled); }
  ~StatsMode() {
    obs::set_stats_enabled(false);
    obs::StatsRegistry::global().reset();
  }
};

void BM_StatsCounterAdd(benchmark::State& state) {
  const StatsMode mode(state.range(0) != 0);
  for (auto _ : state) {
    obs::counter_add("bench.counter");
  }
}
BENCHMARK(BM_StatsCounterAdd)->Arg(0)->Arg(1);

void BM_StatsScopedTimer(benchmark::State& state) {
  const StatsMode mode(state.range(0) != 0);
  for (auto _ : state) {
    obs::ScopedTimer timer("bench.scope");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_StatsScopedTimer)->Arg(0)->Arg(1);

/// The overhead claim that matters: a real instrumented kernel with
/// collection off must cost the same as before the instrumentation existed
/// (the disabled checks are one relaxed atomic load per call site).
void BM_StatsInstrumentedGaussSeidel(benchmark::State& state) {
  const StatsMode mode(state.range(0) != 0);
  constexpr std::size_t n = 512;
  linalg::CsrBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add(i, i, 4.0);
    if (i > 0) builder.add(i, i - 1, -1.0);
    if (i + 1 < n) builder.add(i, i + 1, -1.0);
  }
  const auto matrix = builder.build();
  const std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    std::vector<double> x(n, 0.0);
    benchmark::DoNotOptimize(linalg::gauss_seidel_solve(matrix, b, x));
  }
}
BENCHMARK(BM_StatsInstrumentedGaussSeidel)->Arg(0)->Arg(1);

void BM_StatsInstrumentedDfpg(benchmark::State& state) {
  const StatsMode mode(state.range(0) != 0);
  const core::Mrm model = models::make_tmr(models::TmrConfig{});
  const auto sup = model.labels().states_with("Sup");
  const auto failed = model.labels().states_with("failed");
  std::vector<bool> absorb(model.num_states());
  std::vector<bool> dead(model.num_states());
  for (core::StateIndex s = 0; s < model.num_states(); ++s) {
    absorb[s] = !sup[s] || failed[s];
    dead[s] = !sup[s] && !failed[s];
  }
  numeric::UniformizationUntilEngine engine(core::make_absorbing(model, absorb), failed, dead);
  numeric::PathExplorerOptions options;
  options.truncation_probability = 1e-11;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.compute(0, 100.0, 3000.0, options));
  }
}
BENCHMARK(BM_StatsInstrumentedDfpg)->Arg(0)->Arg(1);

/// One representative instrumented workload (the TMR DFPG until plus its
/// discretization counterpart) whose statistics snapshot becomes
/// BENCH_kernels_stats.json.
void write_stats_record(const char* path) {
  obs::set_stats_enabled(true);
  obs::StatsRegistry::global().reset();

  const core::Mrm model = models::make_tmr(models::TmrConfig{});
  const auto sup = model.labels().states_with("Sup");
  const auto failed = model.labels().states_with("failed");
  std::vector<bool> absorb(model.num_states());
  std::vector<bool> dead(model.num_states());
  for (core::StateIndex s = 0; s < model.num_states(); ++s) {
    absorb[s] = !sup[s] || failed[s];
    dead[s] = !sup[s] && !failed[s];
  }
  const core::Mrm transformed = core::make_absorbing(model, absorb);
  numeric::UniformizationUntilEngine engine(transformed, failed, dead);
  numeric::PathExplorerOptions uopts;
  uopts.truncation_probability = 1e-11;
  engine.compute(0, 100.0, 3000.0, uopts);
  numeric::DiscretizationOptions dopts;
  dopts.step = 0.5;
  numeric::until_probability_discretization(transformed, failed, 0, 100.0, 3000.0, dopts);
  checker::steady_state_probability_of_set(model, failed);

  const std::string json = obs::StatsRegistry::global().to_json();
  obs::StatsRegistry::global().reset();
  obs::set_stats_enabled(false);

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_kernels: cannot write %s\n", path);
    return;
  }
  std::fputs(json.c_str(), out);
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_stats_record("BENCH_kernels_stats.json");
  return 0;
}

// Lumping ablation: checking the explicit-state NMR model (2^N * 2 states)
// directly vs lumping it to the (N+2)-state counter abstraction first.
// Quantifies the classic state-space-collapse argument for the systems the
// thesis evaluates.
#include <chrono>
#include <cstdio>

#include "bench_support.hpp"
#include "checker/steady.hpp"
#include "core/lumping.hpp"
#include "models/explicit_nmr.hpp"

namespace {
double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}
}  // namespace

int main() {
  using namespace csrlmrm;
  benchsupport::print_header(
      "Lumping - explicit per-module NMR vs lumped counter abstraction",
      "steady-state pi(failed) and a reward-bounded until, before/after lumping");

  std::printf("%-3s  %-7s  %-8s  %-10s  %-10s  %-10s  %-12s\n", "N", "states", "blocks",
              "T_lump(s)", "T_full(s)", "T_quot(s)", "|dP steady|");
  for (unsigned modules : {4u, 6u, 8u, 10u, 12u, 14u}) {
    models::TmrConfig config;
    config.num_modules = modules;
    config.variable_failure_rate = true;
    const core::Mrm explicit_model = models::make_explicit_nmr(config);

    const auto lump_begin = std::chrono::steady_clock::now();
    const core::Lumping lumping = core::compute_lumping(explicit_model);
    const core::Mrm quotient = core::build_quotient(explicit_model, lumping);
    const double lump_seconds = seconds_since(lump_begin);

    const auto failed_full = explicit_model.labels().states_with("failed");
    const auto full_begin = std::chrono::steady_clock::now();
    const double pi_full =
        checker::steady_state_probability_of_set(explicit_model, failed_full)[0];
    const double full_seconds = seconds_since(full_begin);

    const auto failed_quotient = quotient.labels().states_with("failed");
    const auto quotient_begin = std::chrono::steady_clock::now();
    const double pi_quotient = checker::steady_state_probability_of_set(
        quotient, failed_quotient)[lumping.block_of[0]];
    const double quotient_seconds = seconds_since(quotient_begin);

    std::printf("%-3u  %-7zu  %-8zu  %-10.4f  %-10.4f  %-10.4f  %-12.2e\n", modules,
                explicit_model.num_states(), lumping.num_blocks, lump_seconds, full_seconds,
                quotient_seconds, std::abs(pi_full - pi_quotient));
  }
  std::printf(
      "\nExpected: blocks = N+2 regardless of the 2^(N+1) explicit states; identical\n"
      "measures; the quotient analysis time is flat while the full one grows\n"
      "exponentially — lump once, check many properties.\n");
  return 0;
}

// Serial-vs-parallel scaling record for the thread-pool layer, written to
// BENCH_parallel.json (CWD, or the path given as argv[1]).
//
// Three workloads on MM1K-sized models:
//   1. discretization_sweep  — one Tijms-Veldman until evaluation (the
//      per-state level sweep of Algorithm 4.6), including a re-created
//      pre-optimization "seed" kernel (no hoisting, no zero-row skip, no
//      contiguous axpy, no parallelism) so the restructuring gain is
//      recorded alongside the thread scaling;
//   2. transient_distribution — the Fox-Glynn uniformization series with the
//      row-parallel SpMV on a large queue;
//   3. checker_until_fanout  — a full per-state Until check through the
//      checker layer.
//
// Every parallel result is compared against the serial run and the maximum
// absolute deviation is recorded (the engines are designed to be bitwise
// identical across thread counts, so the expectation is 0.0). Timings are
// the best of `kRepeats` wall-clock runs. hardware_threads is recorded so
// single-core CI boxes are not mistaken for scaling regressions.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "checker/until.hpp"
#include "models/mm1k.hpp"
#include "numeric/discretization.hpp"
#include "numeric/transient.hpp"
#include "obs/stats.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace csrlmrm;

// Best-of repetition count; `--smoke` (the bench-smoke ctest lane) drops it
// to 1 and shrinks every model so the binary finishes in well under a second.
int g_repeats = 3;
const unsigned kThreadCounts[] = {1, 2, 4, 8};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename Fn>
double best_of(Fn&& fn) {
  double best = 1e300;
  for (int repeat = 0; repeat < g_repeats; ++repeat) {
    const double start = now_ms();
    fn();
    best = std::min(best, now_ms() - start);
  }
  return best;
}

/// The discretization stepper exactly as the seed shipped it: global grid
/// refill, stay/edge checks inside the time loop, shifted indexing in the
/// inner loop, no zero-mass skipping, single-threaded. Used as the baseline
/// for the kernel-restructuring speedup.
double seed_discretization(const core::Mrm& model, const std::vector<bool>& psi,
                           core::StateIndex start, double t, double r, double d) {
  const std::size_t n = model.num_states();
  const std::size_t time_steps = static_cast<std::size_t>(std::llround(t / d));
  std::vector<std::size_t> residence_shift(n, 0);
  for (core::StateIndex s = 0; s < n; ++s) {
    residence_shift[s] = static_cast<std::size_t>(std::llround(model.state_reward(s)));
  }
  const std::size_t levels = static_cast<std::size_t>(std::floor(r / d + 1e-9)) + 1;

  struct Incoming {
    core::StateIndex source;
    double probability;
    std::size_t shift;
  };
  std::vector<std::vector<Incoming>> incoming(n);
  for (core::StateIndex s_from = 0; s_from < n; ++s_from) {
    for (const auto& e : model.rates().transitions(s_from)) {
      const double impulse = model.impulse_reward(s_from, e.col);
      incoming[e.col].push_back(
          {s_from, e.value * d,
           residence_shift[s_from] + static_cast<std::size_t>(std::llround(impulse / d))});
    }
  }

  std::vector<double> cur(n * levels, 0.0);
  std::vector<double> next(n * levels, 0.0);
  if (residence_shift[start] < levels) cur[start * levels + residence_shift[start]] = 1.0;
  std::vector<double> stay(n, 0.0);
  for (core::StateIndex s = 0; s < n; ++s) stay[s] = 1.0 - model.rates().exit_rate(s) * d;

  for (std::size_t step = 1; step < time_steps; ++step) {
    std::fill(next.begin(), next.end(), 0.0);
    for (core::StateIndex s = 0; s < n; ++s) {
      double* next_row = next.data() + s * levels;
      const double* cur_row = cur.data() + s * levels;
      const std::size_t shift = residence_shift[s];
      if (stay[s] > 0.0) {
        for (std::size_t k = shift; k < levels; ++k) next_row[k] += cur_row[k - shift] * stay[s];
      }
      for (const Incoming& in : incoming[s]) {
        const double* src_row = cur.data() + in.source * levels;
        for (std::size_t k = in.shift; k < levels; ++k) {
          next_row[k] += src_row[k - in.shift] * in.probability;
        }
      }
    }
    cur.swap(next);
  }

  double probability = 0.0;
  for (core::StateIndex s = 0; s < n; ++s) {
    if (!psi[s]) continue;
    const double* row = cur.data() + s * levels;
    for (std::size_t k = 0; k < levels; ++k) probability += row[k];
  }
  return probability;
}

struct CaseRecord {
  std::string name;
  std::string model;
  double seed_baseline_ms = -1.0;  // < 0 = no seed-kernel baseline for this case
  std::vector<double> timings_ms;  // one per kThreadCounts entry
  double max_abs_diff_vs_serial = 0.0;
  std::string stats_json;  // obs stats of one instrumented evaluation
};

/// Runs `fn` once with statistics collection on and returns the registry as
/// a JSON blob. Collection stays off for the timed runs (the timings must
/// keep measuring the engines, not the instrumentation).
template <typename Fn>
std::string capture_stats(Fn&& fn) {
  obs::set_stats_enabled(true);
  obs::StatsRegistry::global().reset();
  fn();
  std::string json = obs::StatsRegistry::global().to_json();
  obs::StatsRegistry::global().reset();
  obs::set_stats_enabled(false);
  return json;
}

/// Re-indents a serialized JSON document so it can be embedded as a member
/// of the hand-written BENCH_parallel.json at the given depth.
std::string indent_json(const std::string& json, const std::string& indent) {
  std::string out;
  out.reserve(json.size());
  for (std::size_t i = 0; i < json.size(); ++i) {
    out.push_back(json[i]);
    if (json[i] == '\n' && i + 1 < json.size()) out += indent;
  }
  while (!out.empty() && (out.back() == '\n' || out.back() == ' ')) out.pop_back();
  return out;
}

void print_case(std::FILE* out, const CaseRecord& record, bool last) {
  std::fprintf(out, "    {\n      \"name\": \"%s\",\n      \"model\": \"%s\",\n",
               record.name.c_str(), record.model.c_str());
  if (record.seed_baseline_ms >= 0.0) {
    std::fprintf(out, "      \"seed_kernel_ms\": %.3f,\n", record.seed_baseline_ms);
    std::fprintf(out, "      \"speedup_vs_seed_kernel_serial\": %.2f,\n",
                 record.seed_baseline_ms / record.timings_ms[0]);
    std::fprintf(out, "      \"speedup_vs_seed_kernel_at_4_threads\": %.2f,\n",
                 record.seed_baseline_ms / record.timings_ms[2]);
  }
  std::fprintf(out, "      \"timings_ms\": {");
  for (std::size_t i = 0; i < record.timings_ms.size(); ++i) {
    std::fprintf(out, "%s\"%u\": %.3f", i == 0 ? "" : ", ", kThreadCounts[i],
                 record.timings_ms[i]);
  }
  std::fprintf(out, "},\n");
  std::fprintf(out, "      \"speedup_at_4_threads\": %.2f,\n",
               record.timings_ms[0] / record.timings_ms[2]);
  std::fprintf(out, "      \"max_abs_diff_vs_serial\": %.3e,\n",
               record.max_abs_diff_vs_serial);
  std::fprintf(out, "      \"stats\": %s\n    }%s\n",
               indent_json(record.stats_json, "      ").c_str(), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_parallel.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
      g_repeats = 1;
    } else {
      out_path = argv[i];
    }
  }
  std::vector<CaseRecord> records;

  // Case 1: one discretization level sweep, MM1K capacity 64 (65 states).
  {
    models::Mm1kConfig config;
    config.capacity = smoke ? 16 : 64;
    const core::Mrm model = models::make_mm1k(config);
    const auto full = model.labels().states_with("full");
    const double t = smoke ? 10.0 : 50.0;
    const double r = smoke ? 40.0 : 200.0;
    const double d = 0.25;

    CaseRecord record;
    record.name = "discretization_sweep";
    record.model = smoke ? "mm1k(capacity=16), t=10, r=40, d=0.25"
                         : "mm1k(capacity=64), t=50, r=200, d=0.25";
    record.seed_baseline_ms =
        best_of([&] { seed_discretization(model, full, 0, t, r, d); });
    const double seed_probability = seed_discretization(model, full, 0, t, r, d);

    double serial_probability = 0.0;
    for (const unsigned threads : kThreadCounts) {
      numeric::DiscretizationOptions options;
      options.step = d;
      options.threads = threads;
      const auto result =
          numeric::until_probability_discretization(model, full, 0, t, r, options);
      if (threads == 1) serial_probability = result.probability;
      record.max_abs_diff_vs_serial = std::max(
          record.max_abs_diff_vs_serial, std::abs(result.probability - serial_probability));
      record.timings_ms.push_back(best_of(
          [&] { numeric::until_probability_discretization(model, full, 0, t, r, options); }));
    }
    record.max_abs_diff_vs_serial = std::max(
        record.max_abs_diff_vs_serial, std::abs(seed_probability - serial_probability));
    record.stats_json = capture_stats([&] {
      numeric::DiscretizationOptions options;
      options.step = d;
      options.threads = 4;
      numeric::until_probability_discretization(model, full, 0, t, r, options);
    });
    records.push_back(std::move(record));
    std::printf("discretization_sweep: seed kernel %.2f ms, serial %.2f ms, 4 threads %.2f ms\n",
                records.back().seed_baseline_ms, records.back().timings_ms[0],
                records.back().timings_ms[2]);
  }

  // Case 2: the uniformization series on a large queue.
  {
    models::Mm1kConfig config;
    config.capacity = smoke ? 256 : 4096;
    const core::Mrm model = models::make_mm1k(config);
    const double t = smoke ? 20.0 : 100.0;
    CaseRecord record;
    record.name = "transient_distribution";
    record.model = smoke ? "mm1k(capacity=256), t=20" : "mm1k(capacity=4096), t=100";

    std::vector<double> serial;
    for (const unsigned threads : kThreadCounts) {
      numeric::TransientOptions options;
      options.threads = threads;
      const auto result = numeric::transient_distribution_from(model.rates(), 0, t, options);
      if (threads == 1) serial = result;
      for (std::size_t s = 0; s < result.size(); ++s) {
        record.max_abs_diff_vs_serial =
            std::max(record.max_abs_diff_vs_serial, std::abs(result[s] - serial[s]));
      }
      record.timings_ms.push_back(best_of(
          [&] { numeric::transient_distribution_from(model.rates(), 0, t, options); }));
    }
    record.stats_json = capture_stats([&] {
      numeric::TransientOptions options;
      options.threads = 4;
      numeric::transient_distribution_from(model.rates(), 0, t, options);
    });
    records.push_back(std::move(record));
    std::printf("transient_distribution: serial %.2f ms, 4 threads %.2f ms\n",
                records.back().timings_ms[0], records.back().timings_ms[2]);
  }

  // Case 3: full per-state Until fan-out through the checker.
  {
    models::Mm1kConfig config;
    config.capacity = smoke ? 8 : 16;
    const core::Mrm model = models::make_mm1k(config);
    const auto busy = model.labels().states_with("busy");
    const auto full = model.labels().states_with("full");
    const logic::Interval time_bound(0.0, 20.0);
    const logic::Interval reward_bound(0.0, 60.0);
    CaseRecord record;
    record.name = "checker_until_fanout";
    record.model = smoke ? "mm1k(capacity=8), P[busy U[0,20][0,60] full], discretization d=0.25"
                         : "mm1k(capacity=16), P[busy U[0,20][0,60] full], discretization d=0.25";

    std::vector<checker::UntilValue> serial;
    for (const unsigned threads : kThreadCounts) {
      checker::CheckerOptions options;
      options.until_method = checker::UntilMethod::kDiscretization;
      options.discretization.step = 0.25;
      options.threads = threads;
      const auto result =
          checker::until_probabilities(model, busy, full, time_bound, reward_bound, options);
      if (threads == 1) serial = result;
      for (std::size_t s = 0; s < result.size(); ++s) {
        record.max_abs_diff_vs_serial = std::max(
            record.max_abs_diff_vs_serial,
            std::abs(result[s].probability - serial[s].probability));
      }
      record.timings_ms.push_back(best_of([&] {
        checker::until_probabilities(model, busy, full, time_bound, reward_bound, options);
      }));
    }
    record.stats_json = capture_stats([&] {
      checker::CheckerOptions options;
      options.until_method = checker::UntilMethod::kDiscretization;
      options.discretization.step = 0.25;
      options.threads = 4;
      checker::until_probabilities(model, busy, full, time_bound, reward_bound, options);
    });
    records.push_back(std::move(record));
    std::printf("checker_until_fanout: serial %.2f ms, 4 threads %.2f ms\n",
                records.back().timings_ms[0], records.back().timings_ms[2]);
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_parallel: cannot write %s\n", out_path.c_str());
    return 1;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  unsigned widest = 0;
  for (const unsigned threads : kThreadCounts) widest = std::max(widest, threads);
  std::fprintf(out, "{\n  \"hardware_threads\": %u,\n", hardware);
  // Machine-readable version of the prose caveat: consumers must not read
  // the per-thread timings as a scaling curve when the host could not
  // actually run the widest configuration on its own cores.
  std::fprintf(out, "  \"scaling_measured\": %s,\n",
               hardware >= widest ? "true" : "false");
  std::fprintf(out,
               "  \"note\": \"timings are best-of-%d wall clock; speedups above 1 require "
               "as many free cores as worker threads — when scaling_measured is false the "
               "host had fewer cores than the widest worker count and the parallel "
               "timings measure dispatch overhead, not scaling\",\n",
               g_repeats);
  std::fprintf(out, "  \"cases\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    print_case(out, records[i], i + 1 == records.size());
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
